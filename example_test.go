package hypermodel_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hypermodel"
)

// ExampleGenerate builds the paper's smallest test database and shows
// its structural constants.
func ExampleGenerate() {
	dir, err := os.MkdirTemp("", "hm-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := hypermodel.OpenOODB(filepath.Join(dir, "ex.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	layout, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", layout.Total())
	fmt.Println("form nodes:", layout.FormCount())
	fmt.Println("first/last id:", layout.FirstID(), layout.LastID())
	// Output:
	// nodes: 781
	// form nodes: 5
	// first/last id: 1 781
}

// ExampleClosure1N derives a document's table of contents: the
// pre-order transitive closure of the ordered 1-N aggregation.
func ExampleClosure1N() {
	dir, err := os.MkdirTemp("", "hm-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := hypermodel.OpenOODB(filepath.Join(dir, "ex.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 4, Seed: 1}); err != nil {
		log.Fatal(err)
	}

	// Node 7 is the first level-2 node: a "document" in the paper's
	// archive reading. Its closure holds the document, its 5 chapters
	// and their 25 leaves: 31 nodes in the level-4 database.
	toc, err := hypermodel.Closure1N(db, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("table of contents entries:", len(toc))
	fmt.Println("starts at the document:", toc[0])
	// Output:
	// table of contents entries: 31
	// starts at the document: 7
}

// ExampleTotalNodes shows the paper's three database sizes.
func ExampleTotalNodes() {
	for _, level := range []int{4, 5, 6} {
		fmt.Printf("level %d: %d nodes\n", level, hypermodel.TotalNodes(level))
	}
	// Output:
	// level 4: 781 nodes
	// level 5: 3906 nodes
	// level 6: 19531 nodes
}
