package hypermodel_test

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
	"hypermodel/internal/storage/store"
	"hypermodel/internal/txn"
)

// rotated returns s left-rotated by n bytes — the closed form of n
// applications of the writers' one-byte rotation, so the final text
// encodes exactly how many transactions really committed: a lost
// update shows up as too few rotations, a doubled commit as too many.
func rotated(s string, n int) string {
	if len(s) == 0 {
		return s
	}
	n %= len(s)
	return s[n:] + s[:n]
}

// rotateTxn is one writer transaction: read the TextNode, store a
// one-byte left rotation. Same length in, same length out — the object
// never moves, so the only page the transaction dirties is the node's
// own data page.
func rotateTxn(db *oodb.DB, target hyper.NodeID) func() error {
	return func() error {
		text, err := db.Text(target)
		if err != nil {
			return err
		}
		rot := make([]byte, len(text))
		copy(rot, text[1:])
		rot[len(rot)-1] = text[0]
		return db.SetText(target, string(rot))
	}
}

// commitN drives exactly n committed rotate transactions through
// txn.RunN, backing off briefly when a retry budget is exhausted under
// heavy contention (the budget bounds each attempt; the loop, not the
// budget, owns completion).
func commitN(db *oodb.DB, target hyper.NodeID, n int, rng *rand.Rand) error {
	for committed := 0; committed < n; {
		err := txn.RunN(db, 50, rotateTxn(db, target))
		if errors.Is(err, txn.ErrTooManyConflicts) {
			time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
			continue
		}
		if err != nil {
			return err
		}
		committed++
	}
	return nil
}

// TestConcurrentWritersGroupCommit is the multi-writer stress test for
// the server's group commit: W writer clients each drive K committed
// transactions through the leader/follower commit path, first against
// disjoint TextNodes (commit-rate bound — batches form whenever a
// commit arrives while the leader is flushing) and then all against
// one shared TextNode (conflict bound — optimistic validation rejects
// stale batch members and the clients retry). In both phases the final
// state must equal exactly W×K one-byte rotations and the server must
// have applied exactly W×K transactions: group commit may reorder and
// batch, but never lose, double, or tear a commit.
func TestConcurrentWritersGroupCommit(t *testing.T) {
	const (
		writers   = 4
		perWriter = 25
		level     = 3
	)
	st, err := store.Open(filepath.Join(t.TempDir(), "writers.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	boot, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bdb, err := oodb.New(boot, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := hyper.Generate(bdb, hyper.GenConfig{LeafLevel: level, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := bdb.Commit(); err != nil {
		t.Fatal(err)
	}

	// Disjoint targets: one TextNode per writer, spread across the leaf
	// level; the shared target reuses writer 0's.
	firstLeaf, lastLeaf := hyper.LevelIDs(level)
	leaves := int(lastLeaf - firstLeaf + 1)
	targets := make([]hyper.NodeID, writers)
	for u := range targets {
		j := u * (leaves / writers)
		if hyper.IsFormLeaf(j) {
			j = (j + 1) % leaves
		}
		targets[u] = firstLeaf + hyper.NodeID(j)
	}
	before := make(map[hyper.NodeID]string)
	for _, id := range targets {
		text, err := bdb.Text(id)
		if err != nil {
			t.Fatal(err)
		}
		before[id] = text
	}
	if err := bdb.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(name string, target func(u int) hyper.NodeID) {
		commitsBefore, _, _ := srv.Stats()
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for u := 0; u < writers; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				client, err := remote.Dial(addr.String(), remote.ClientOptions{})
				if err != nil {
					errs <- err
					return
				}
				db, err := oodb.New(client, oodb.DefaultOptions())
				if err != nil {
					client.Close()
					errs <- err
					return
				}
				defer db.Close()
				rng := rand.New(rand.NewSource(int64(u) + 99))
				errs <- commitN(db, target(u), perWriter, rng)
			}(u)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		commitsAfter, _, _ := srv.Stats()
		if got := commitsAfter - commitsBefore; got != writers*perWriter {
			t.Fatalf("%s: server applied %d transactions, want exactly %d",
				name, got, writers*perWriter)
		}
	}

	run("disjoint", func(u int) hyper.NodeID { return targets[u] })
	run("contended", func(int) hyper.NodeID { return targets[0] })

	flushes, batches, grouped, maxBatch, fastPath := srv.GroupCommitStats()
	t.Logf("group commit: %d flushes, %d multi-txn batches, %d grouped txns, max batch %d, %d fast-path validations",
		flushes, batches, grouped, maxBatch, fastPath)

	// Ground truth: every target holds its original text rotated once
	// per committed transaction — perWriter times for the disjoint
	// phase, plus writers×perWriter more on writer 0's node from the
	// contended phase. The one-byte rotation commutes, so the count is
	// exact no matter how commits interleaved or batched.
	check, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := oodb.New(check, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	for u, id := range targets {
		rot := perWriter
		if id == targets[0] {
			rot += writers * perWriter
		}
		want := rotated(before[id], rot)
		got, err := cdb.Text(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("writer %d target %d: text is %d rotations off ground truth",
				u, id, rotationDistance(t, before[id], got, want))
		}
	}
}

// rotationDistance reports how many rotations separate got from want
// (for the failure message; -1 if got is not a rotation of the
// original at all).
func rotationDistance(t *testing.T, original, got, want string) int {
	t.Helper()
	for n := 0; n < len(original); n++ {
		if rotated(original, n) == got {
			for m := 0; m < len(original); m++ {
				if rotated(original, m) == want {
					return n - m
				}
			}
		}
	}
	return -1
}

// TestWritersSerializedBaseline runs the disjoint-writer workload with
// group commit disabled: the pre-batching one-commit-one-fsync
// discipline must preserve the same exactly-once guarantees (this is
// the baseline E19 measures against, so it has to stay correct, not
// just slow).
func TestWritersSerializedBaseline(t *testing.T) {
	const writers, perWriter, level = 3, 10, 3
	st, err := store.Open(filepath.Join(t.TempDir(), "serialized.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(st)
	srv.SetGroupCommit(false)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	boot, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bdb, err := oodb.New(boot, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := hyper.Generate(bdb, hyper.GenConfig{LeafLevel: level, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := bdb.Commit(); err != nil {
		t.Fatal(err)
	}
	firstLeaf, _ := hyper.LevelIDs(level)
	target := firstLeaf // leaf 0 is a TextNode (form leaves are every 125th)
	original, err := bdb.Text(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := bdb.Close(); err != nil {
		t.Fatal(err)
	}

	commitsBefore, _, _ := srv.Stats()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for u := 0; u < writers; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			client, err := remote.Dial(addr.String(), remote.ClientOptions{})
			if err != nil {
				errs <- err
				return
			}
			db, err := oodb.New(client, oodb.DefaultOptions())
			if err != nil {
				client.Close()
				errs <- err
				return
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(int64(u) + 7))
			errs <- commitN(db, target, perWriter, rng)
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	commitsAfter, _, _ := srv.Stats()
	if got := commitsAfter - commitsBefore; got != writers*perWriter {
		t.Fatalf("serialized server applied %d transactions, want exactly %d", got, writers*perWriter)
	}
	_, gcBatches, _, _, _ := srv.GroupCommitStats()
	if gcBatches != 0 {
		t.Fatalf("serialized mode formed %d batches, want none", gcBatches)
	}

	check, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := oodb.New(check, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	got, err := cdb.Text(target)
	if err != nil {
		t.Fatal(err)
	}
	if want := rotated(original, writers*perWriter); got != want {
		t.Fatalf("text is %d rotations off ground truth", rotationDistance(t, original, got, want))
	}
}
