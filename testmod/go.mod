// testmod is a separate module on purpose: it consumes hypermodel the
// way an external application would, so it can only see the exported
// facade. If a facade change forces this module to import an internal
// package, the build breaks here first.
module hypermodel/testmod

go 1.22

require hypermodel v0.0.0

replace hypermodel => ../
