// Package consumer compiles and runs against hypermodel's exported
// facade from outside the module. Everything an application needs —
// opening databases, generating the test tree, running operations,
// transactions, snapshots — must be reachable through the facade
// alone: this file must never import a hypermodel/internal package
// (and as a separate module, it can't).
package consumer

import (
	"errors"
	"path/filepath"
	"testing"

	"hypermodel"
)

// The constructors return the DB interface, not concrete backend
// types; an application can hold any backend in the same variable.
var openers = []struct {
	name string
	open func(path string) (hypermodel.DB, error)
}{
	{"oodb", hypermodel.OpenOODB},
	{"reldb", hypermodel.OpenRelDB},
	{"memdb", hypermodel.OpenMemDB},
}

func TestFacadeLocalBackends(t *testing.T) {
	for _, o := range openers {
		o := o
		t.Run(o.name, func(t *testing.T) {
			db, err := o.open(filepath.Join(t.TempDir(), "db"))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			lay, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 3, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Commit(); err != nil {
				t.Fatal(err)
			}
			name, err := hypermodel.NameLookup(db, lay.FirstID())
			if err != nil {
				t.Fatal(err)
			}
			if name < 0 || name > 99 {
				t.Fatalf("hundred attribute %d out of range", name)
			}
			nodes, err := hypermodel.Closure1N(db, lay.FirstID())
			if err != nil {
				t.Fatal(err)
			}
			if want := hypermodel.TotalNodes(3); len(nodes) != want {
				t.Fatalf("closure over the root visited %d nodes, want %d", len(nodes), want)
			}
			if cs := db.CommitStats(); cs.Commits == 0 {
				t.Fatalf("commit counters not visible through the facade: %+v", cs)
			}
		})
	}
}

// TestFacadeSnapshotIsolation drives the MVCC read API purely through
// the interface: a snapshot's reads stay pinned while the parent
// commits, and backends without version retention say so with the
// exported sentinel.
func TestFacadeSnapshotIsolation(t *testing.T) {
	for _, o := range openers[:2] { // oodb and reldb have version rings
		o := o
		t.Run(o.name, func(t *testing.T) { testSnapshotIsolation(t, o.open) })
	}
	// The image backend has no version ring and must say so.
	db, err := hypermodel.OpenMemDB(filepath.Join(t.TempDir(), "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Snapshot(); !errors.Is(err, hypermodel.ErrNoSnapshots) {
		t.Fatalf("memdb snapshot: %v, want ErrNoSnapshots", err)
	}
}

func testSnapshotIsolation(t *testing.T, open func(string) (hypermodel.DB, error)) {
	db, err := open(filepath.Join(t.TempDir(), "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lay, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	id := lay.FirstID()
	before, err := hypermodel.NameLookup(db, id)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := db.SetHundred(id, (before+1)%100); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := hypermodel.NameLookup(snap, id)
	if err != nil {
		t.Fatal(err)
	}
	if got != before {
		t.Fatalf("snapshot read %d, want the pinned %d", got, before)
	}
	if err := snap.SetHundred(id, 0); err == nil {
		t.Fatal("mutating a snapshot succeeded")
	}
}

// TestFacadeRemote runs the client/server path end to end through the
// facade: start a page server, dial it, commit, read back.
func TestFacadeRemote(t *testing.T) {
	addr, stop, err := hypermodel.StartServer(filepath.Join(t.TempDir(), "srv.db"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	db, err := hypermodel.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lay, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := hypermodel.NameLookup(db, lay.FirstID()); err != nil {
		t.Fatal(err)
	}
	// The commit-conflict and commit-unknown sentinels are exported, so
	// applications can write their retry loops without internal imports.
	if errors.Is(hypermodel.ErrConflict, hypermodel.ErrCommitUnknown) {
		t.Fatal("distinct sentinels compare equal")
	}
}
