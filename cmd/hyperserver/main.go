// Command hyperserver runs the page server of the workstation/server
// architecture (R6): it owns the database file and serves pages,
// allocation and optimistically-validated commits to hypermodel
// clients (hypermodel.DialServer).
//
// Usage:
//
//	hyperserver -db ./data/shared.db -addr 127.0.0.1:7077
//
// As one shard of a horizontally sharded cluster, give every server
// the full membership and its own index in it; clients bootstrap the
// routing table from any shard (hypermodel.DialCluster):
//
//	hyperserver -db shard0.db -addr :7077 -shard 0 -peers host0:7077,host1:7078
//	hyperserver -db shard1.db -addr :7078 -shard 1 -peers host0:7077,host1:7078
//
// Robustness knobs: -idle-timeout reaps connections that sit silent
// between requests, -max-conns refuses clients beyond a concurrency
// limit with a clean "server busy" error, and -max-inflight
// backpressures any one connection that pipelines more than that many
// concurrent requests. On SIGINT or SIGTERM the server stops
// accepting, drains in-flight requests up to the -drain deadline, and
// exits cleanly — a checkpointed store, nothing to recover.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hypermodel/internal/remote"
	"hypermodel/internal/storage/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hyperserver: ")
	var (
		db          = flag.String("db", "hypermodel.db", "database file to serve")
		addr        = flag.String("addr", "127.0.0.1:7077", "listen address")
		idleTimeout = flag.Duration("idle-timeout", 0, "disconnect clients idle this long (0 = never)")
		maxConns    = flag.Int("max-conns", 0, "refuse connections beyond this many (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "per-connection cap on concurrently executing requests (0 = unlimited)")
		shard       = flag.Int("shard", 0, "this server's shard ID within -peers")
		peers       = flag.String("peers", "", "comma-separated shard addresses, index = shard ID (empty = standalone)")
		routeEpoch  = flag.Uint64("route-epoch", 1, "routing-table epoch served to clients (with -peers)")
		drain       = flag.Duration("drain", 5*time.Second, "in-flight drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	var opts *store.Options
	if *peers != "" {
		// A shard must remember applied cross-shard commit tokens well
		// past the WAL generation that carried them, so resent decides
		// and in-doubt status polls get definite answers after restarts.
		opts = &store.Options{TokenKeep: 1024}
	}
	st, err := store.Open(*db, opts)
	if err != nil {
		log.Fatal(err)
	}
	srv := remote.NewServer(st)
	srv.SetLogf(log.Printf)
	srv.SetIdleTimeout(*idleTimeout)
	srv.SetMaxConns(*maxConns)
	srv.SetMaxInflight(*maxInflight)
	if *peers != "" {
		addrs := strings.Split(*peers, ",")
		if *shard < 0 || *shard >= len(addrs) {
			log.Fatalf("-shard %d out of range for %d peers", *shard, len(addrs))
		}
		srv.SetShardID(*shard)
		srv.SetRouteTable(*routeEpoch, addrs)
	}

	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		st.Close()
		log.Fatal(err)
	}
	if *peers != "" {
		log.Printf("serving %s on %s as shard %d of %d (route epoch %d)",
			*db, bound, *shard, len(strings.Split(*peers, ",")), *routeEpoch)
	} else {
		log.Printf("serving %s on %s", *db, bound)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	log.Printf("%s: draining (deadline %s)", sig, *drain)
	if err := srv.Shutdown(*drain); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("clean shutdown")
}
