// Command hyperserver runs the page server of the workstation/server
// architecture (R6): it owns the database file and serves pages,
// allocation and optimistically-validated commits to hypermodel
// clients (hypermodel.DialServer).
//
// Usage:
//
//	hyperserver -db ./data/shared.db -addr 127.0.0.1:7077
//
// Robustness knobs: -idle-timeout reaps connections that sit silent
// between requests, -max-conns refuses clients beyond a concurrency
// limit with a clean "server busy" error, and -max-inflight
// backpressures any one connection that pipelines more than that many
// concurrent requests.
package main

import (
	"flag"
	"log"

	"hypermodel/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hyperserver: ")
	var (
		db          = flag.String("db", "hypermodel.db", "database file to serve")
		addr        = flag.String("addr", "127.0.0.1:7077", "listen address")
		idleTimeout = flag.Duration("idle-timeout", 0, "disconnect clients idle this long (0 = never)")
		maxConns    = flag.Int("max-conns", 0, "refuse connections beyond this many (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "per-connection cap on concurrently executing requests (0 = unlimited)")
	)
	flag.Parse()
	if err := remote.ListenAndServeStore(*db, *addr, nil, *idleTimeout, *maxConns, *maxInflight); err != nil {
		log.Fatal(err)
	}
}
