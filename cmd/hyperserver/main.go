// Command hyperserver runs the page server of the workstation/server
// architecture (R6): it owns the database file and serves pages,
// allocation and optimistically-validated commits to hypermodel
// clients (hypermodel.DialServer).
//
// Usage:
//
//	hyperserver -db ./data/shared.db -addr 127.0.0.1:7077
package main

import (
	"flag"
	"log"

	"hypermodel/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hyperserver: ")
	var (
		db   = flag.String("db", "hypermodel.db", "database file to serve")
		addr = flag.String("addr", "127.0.0.1:7077", "listen address")
	)
	flag.Parse()
	if err := remote.ListenAndServeStore(*db, *addr, nil); err != nil {
		log.Fatal(err)
	}
}
