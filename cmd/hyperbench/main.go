// Command hyperbench regenerates the paper's evaluation: every
// operation of §6 under the cold/warm protocol, the §5.3 creation
// measurements, and the repository's additional experiments (see
// DESIGN.md §4 for the experiment index).
//
// Examples:
//
//	hyperbench                                 # full matrix, level 4, all backends
//	hyperbench -level 6 -backends oodb         # the paper's big database
//	hyperbench -exp cluster -level 5           # E11 clustering ablation
//	hyperbench -exp remote                     # E13 workstation/server
//	hyperbench -exp multiuser -users 4         # E15
//	hyperbench -exp concurrency -clients 1024  # E18 pipelined wire throughput
//	hyperbench -exp writers -writers 8         # E19 group-commit throughput
//	hyperbench -exp shards -shards 4           # E20 sharded scaling + chaos soak
//	hyperbench -list                           # the experiment index
//	hyperbench -csv results.csv                # machine-readable output
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hyperbench: ")
	var (
		exp      = flag.String("exp", "all", "experiment: create, ops, cluster, remote, ext, cache, multiuser, throughput, concurrency, writers, shards or all (see -list)")
		list     = flag.Bool("list", false, "print the experiment index and exit")
		backends = flag.String("backends", "all", "comma-separated backends (oodb,reldb,memdb) or all")
		level    = flag.Int("level", 4, "leaf level (paper: 4, 5, 6)")
		iters    = flag.Int("iters", 50, "iterations per operation (paper: 50)")
		depth    = flag.Int("depth", 25, "M-N attribute closure depth (paper: 25)")
		seed     = flag.Int64("seed", 1, "random seed")
		users    = flag.Int("users", 3, "users for the multiuser experiment")
		userOps  = flag.Int("userops", 10, "transactions per user for the multiuser experiment")
		parallel = flag.Int("parallel", 4, "max concurrent readers for the throughput experiment")
		clients  = flag.Int("clients", 1024, "max concurrent clients for the concurrency experiment")
		writers  = flag.Int("writers", 8, "max concurrent writers for the writers experiment")
		rtt      = flag.Duration("rtt", time.Millisecond, "simulated link round trip for the concurrency and shards experiments (0 = raw loopback)")
		shards   = flag.Int("shards", 4, "max shard count for the shards experiment (sweep doubles up to it)")
		soak     = flag.Duration("soak", 2*time.Second, "chaos-soak duration for the shards experiment (0 = skip the soak)")
		window   = flag.Duration("window", time.Second, "measurement window per throughput configuration")
		opsList  = flag.String("ops", "", "comma-separated operation filter, e.g. O10,O14")
		dir      = flag.String("dir", "", "working directory (default: a temp dir, removed afterwards)")
		csvPath  = flag.String("csv", "", "also write the operation matrix as CSV to this file")
	)
	flag.Parse()

	if *list {
		printExperiments()
		return
	}
	known := map[string]bool{
		"all": true, "create": true, "ops": true, "cluster": true, "remote": true,
		"ext": true, "cache": true, "multiuser": true, "throughput": true,
		"concurrency": true, "writers": true, "shards": true,
	}
	if !known[*exp] {
		log.Fatalf("unknown experiment %q; run hyperbench -list for the index", *exp)
	}

	workdir := *dir
	if workdir == "" {
		var err error
		workdir, err = os.MkdirTemp("", "hyperbench-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(workdir)
	} else if err := os.MkdirAll(workdir, 0o755); err != nil {
		log.Fatal(err)
	}

	var kinds []harness.BackendKind
	if *backends == "all" {
		kinds = harness.AllBackends
	} else {
		for _, k := range strings.Split(*backends, ",") {
			kinds = append(kinds, harness.BackendKind(strings.TrimSpace(k)))
		}
	}
	cfg := harness.Config{Iterations: *iters, Seed: *seed, Depth: *depth}
	if *opsList != "" {
		cfg.Ops = strings.Split(*opsList, ",")
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		csv = f
	}

	if want("create") || want("ops") {
		for _, kind := range kinds {
			bdir := fmt.Sprintf("%s/%s", workdir, kind)
			if err := os.MkdirAll(bdir, 0o755); err != nil {
				log.Fatal(err)
			}
			b, lay, tm, err := harness.Build(kind, bdir, *level, *seed)
			if err != nil {
				log.Fatalf("%s: %v", kind, err)
			}
			if want("create") {
				harness.RenderCreation(os.Stdout,
					fmt.Sprintf("E1: database creation — %s, level %d (%d nodes)", kind, *level, lay.Total()), tm)
				if err := b.Close(); err != nil {
					log.Fatalf("%s: close before open timing: %v", kind, err)
				}
				open, err := harness.TimeOpen(kind, bdir)
				if err != nil {
					log.Fatalf("%s: open timing: %v", kind, err)
				}
				fmt.Printf("database open (existing %s, level %d): %.1fms\n\n", kind, *level, float64(open.Nanoseconds())/1e6)
				b, err = harness.OpenBackend(kind, bdir)
				if err != nil {
					log.Fatalf("%s: reopen: %v", kind, err)
				}
				lay = hypLayout(*level, *seed)
			}
			if want("ops") {
				results, err := harness.Run(b, lay, cfg)
				if err != nil {
					b.Close()
					log.Fatalf("%s: %v", kind, err)
				}
				harness.RenderOperations(os.Stdout,
					fmt.Sprintf("E2–E10: operations — %s, level %d, %d iterations", kind, *level, cfg.Iterations), results)
				if csv != nil {
					harness.RenderCSV(csv, string(kind), *level, results)
				}
			}
			if err := b.Close(); err != nil {
				log.Fatalf("%s: close: %v", kind, err)
			}
		}
	}

	if want("cluster") {
		results, err := harness.RunClusterAblation(workdir, *level, *seed, cfg)
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		harness.RenderClusterAblation(os.Stdout, results)
	}

	if want("remote") {
		rdir := workdir + "/remote"
		if err := os.MkdirAll(rdir, 0o755); err != nil {
			log.Fatal(err)
		}
		results, err := harness.RunRemote(rdir, *level, *seed, cfg)
		if err != nil {
			log.Fatalf("remote: %v", err)
		}
		harness.RenderRemote(os.Stdout, results)
	}

	if want("ext") {
		edir := workdir + "/ext"
		if err := os.MkdirAll(edir, 0o755); err != nil {
			log.Fatal(err)
		}
		results, err := harness.RunExtensions(edir, *level, *seed)
		if err != nil {
			log.Fatalf("ext: %v", err)
		}
		harness.RenderExtensions(os.Stdout, results)
	}

	if want("cache") {
		cdir := workdir + "/cache"
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			log.Fatal(err)
		}
		results, err := harness.RunCacheSweep(cdir, *level, *seed, []int{64, 256, 1024, 4096}, cfg)
		if err != nil {
			log.Fatalf("cache: %v", err)
		}
		harness.RenderCacheSweep(os.Stdout, *level, results)
	}

	if want("throughput") {
		tdir := workdir + "/throughput"
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			log.Fatal(err)
		}
		results, err := harness.RunThroughput(tdir, *level, *seed, *parallel, *window)
		if err != nil {
			log.Fatalf("throughput: %v", err)
		}
		harness.RenderThroughput(os.Stdout, *level, results)
	}

	if want("concurrency") {
		cdir := workdir + "/concurrency"
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			log.Fatal(err)
		}
		counts := []int{}
		for n := 64; n < *clients; n *= 4 {
			counts = append(counts, n)
		}
		if *clients >= 1 {
			counts = append(counts, *clients)
		}
		results, err := harness.RunConcurrencySweep(cdir, min(*level, 4), *seed, counts, *window, *rtt)
		if err != nil {
			log.Fatalf("concurrency: %v", err)
		}
		harness.RenderConcurrencySweep(os.Stdout, min(*level, 4), results)
	}

	if want("writers") {
		wdir := workdir + "/writers"
		if err := os.MkdirAll(wdir, 0o755); err != nil {
			log.Fatal(err)
		}
		counts := []int{}
		for n := 1; n < *writers; n *= 2 {
			counts = append(counts, n)
		}
		if *writers >= 1 {
			counts = append(counts, *writers)
		}
		results, err := harness.RunWriters(wdir, min(*level, 4), *seed, counts, *window)
		if err != nil {
			log.Fatalf("writers: %v", err)
		}
		harness.RenderWriters(os.Stdout, min(*level, 4), results)
	}

	if want("shards") {
		sdir := workdir + "/shards"
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			log.Fatal(err)
		}
		counts := []int{}
		for n := 1; n < *shards; n *= 2 {
			counts = append(counts, n)
		}
		if *shards >= 1 {
			counts = append(counts, *shards)
		}
		results, err := harness.RunShardSweep(sdir, counts, *window, *rtt, 0, 0)
		if err != nil {
			log.Fatalf("shards: %v", err)
		}
		harness.RenderShardSweep(os.Stdout, results)
		if *soak > 0 && *shards >= 2 {
			chaos, err := harness.RunShardChaos(sdir+"/chaos", min(*shards, 4), *soak)
			if err != nil {
				log.Fatalf("shards chaos: %v", err)
			}
			harness.RenderShardChaos(os.Stdout, chaos)
		}
	}

	if want("multiuser") {
		mdir := workdir + "/multi"
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			log.Fatal(err)
		}
		results, err := harness.RunMultiUser(mdir, min(*level, 3), *seed, *users, *userOps)
		if err != nil {
			log.Fatalf("multiuser: %v", err)
		}
		harness.RenderMultiUser(os.Stdout, results)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// printExperiments writes the E1–E20 index: what each -exp value runs.
func printExperiments() {
	index := []struct{ name, id, desc string }{
		{"create", "E1", "database creation and open timings (§5.3)"},
		{"ops", "E2–E10", "the twenty operations under the cold/warm protocol (§6)"},
		{"cluster", "E11", "clustering ablation: closure traversals with placement on/off"},
		{"ops (all backends)", "E12", "backend comparison axis: oodb vs reldb vs memdb"},
		{"remote", "E13", "workstation/server architecture: local vs page-server backend"},
		{"ext", "E14", "schema extension and dynamic-class operations (R4)"},
		{"multiuser", "E15", "multi-user optimistic concurrency with conflict retries (R8)"},
		{"cache", "E16", "workstation cache-size sweep (cold/warm sensitivity)"},
		{"throughput", "E17", "concurrent read-closure throughput on a shared store"},
		{"concurrency", "E18", "pipelined wire throughput vs the request/response baseline"},
		{"writers", "E19", "multi-writer commit throughput: group commit vs serialized"},
		{"shards", "E20", "horizontal shard scaling sweep plus the cross-shard chaos soak"},
	}
	fmt.Println("experiments (-exp NAME; default all):")
	for _, e := range index {
		fmt.Printf("  %-7s %-20s %s\n", e.id, e.name, e.desc)
	}
}

// hypLayout reconstructs the layout of a database generated with the
// default base at the given level and seed.
func hypLayout(level int, seed int64) hyper.Layout {
	return hyper.Layout{LeafLevel: level, Seed: seed, Base: 1}
}
