// Command hyperquery runs ad-hoc queries (R12) against a generated
// HyperModel database, printing the chosen plan (index scan vs
// sequential scan) and the matching nodes.
//
// One-shot:
//
//	hyperquery -backend oodb -dir ./data -level 4 'select where hundred between 10 and 19 limit 5'
//
// Or as a REPL when no query argument is given:
//
//	hyperquery -backend oodb -dir ./data -level 4
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
	"hypermodel/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hyperquery: ")
	var (
		backend = flag.String("backend", "oodb", "backend: oodb, reldb or memdb")
		dir     = flag.String("dir", ".", "directory holding the database files")
		level   = flag.Int("level", 4, "leaf level the database was generated with")
	)
	flag.Parse()

	b, err := harness.OpenBackend(harness.BackendKind(*backend), *dir)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	last := hyper.NodeID(hyper.TotalNodes(*level))

	runOne := func(q string) {
		res, plan, err := query.Run(b, 1, last, q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		fmt.Printf("plan: %s\n", plan)
		if res.Agg != nil {
			fmt.Println(res.Agg)
			return
		}
		ids := res.IDs
		fmt.Printf("%d node(s)", len(ids))
		if len(ids) > 0 {
			max := len(ids)
			if max > 20 {
				max = 20
			}
			fmt.Printf(": %v", ids[:max])
			if len(ids) > max {
				fmt.Printf(" ... (+%d more)", len(ids)-max)
			}
		}
		fmt.Println()
	}

	if flag.NArg() > 0 {
		runOne(strings.Join(flag.Args(), " "))
		return
	}
	fmt.Println("hyperquery REPL — e.g.: select where hundred between 10 and 19 and kind = text limit 5")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		runOne(line)
	}
}
