// Command hyperquery runs ad-hoc queries (R12) against a generated
// HyperModel database, printing the chosen plan (index scan vs
// sequential scan) and the matching nodes.
//
// One-shot:
//
//	hyperquery -backend oodb -dir ./data -level 4 'select where hundred between 10 and 19 limit 5'
//
// Or as a REPL when no query argument is given:
//
//	hyperquery -backend oodb -dir ./data -level 4
//
// The scrub verb validates a database file's at-rest state — every
// page checksum, the free list, the meta page, and the WAL — and
// prints a per-page damage report. Exit status 1 means damage:
//
//	hyperquery scrub ./data/oodb.db
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hypermodel"
	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
	"hypermodel/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hyperquery: ")
	if len(os.Args) > 1 && os.Args[1] == "scrub" {
		runScrub(os.Args[2:])
		return
	}
	var (
		backend = flag.String("backend", "oodb", "backend: oodb, reldb or memdb")
		dir     = flag.String("dir", ".", "directory holding the database files")
		level   = flag.Int("level", 4, "leaf level the database was generated with")
	)
	flag.Parse()

	b, err := harness.OpenBackend(harness.BackendKind(*backend), *dir)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	last := hyper.NodeID(hyper.TotalNodes(*level))

	runOne := func(q string) {
		res, plan, err := query.Run(b, 1, last, q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		fmt.Printf("plan: %s\n", plan)
		if res.Agg != nil {
			fmt.Println(res.Agg)
			return
		}
		ids := res.IDs
		fmt.Printf("%d node(s)", len(ids))
		if len(ids) > 0 {
			max := len(ids)
			if max > 20 {
				max = 20
			}
			fmt.Printf(": %v", ids[:max])
			if len(ids) > max {
				fmt.Printf(" ... (+%d more)", len(ids)-max)
			}
		}
		fmt.Println()
	}

	if flag.NArg() > 0 {
		runOne(strings.Join(flag.Args(), " "))
		return
	}
	fmt.Println("hyperquery REPL — e.g.: select where hundred between 10 and 19 and kind = text limit 5")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		runOne(line)
	}
}

// runScrub handles "hyperquery scrub <dbfile>": run a full scrub pass
// and print the damage report. Exits 1 when damage was found, so the
// verb composes with scripts and CI.
func runScrub(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hyperquery scrub <dbfile>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	rep, err := hypermodel.ScrubDatabase(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	if !rep.Clean() {
		os.Exit(1)
	}
}
