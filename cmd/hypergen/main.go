// Command hypergen builds a HyperModel test database (§5.2) on one of
// the backends and reports the §5.3 creation measurements.
//
// Usage:
//
//	hypergen -backend oodb -dir ./data -level 4 -seed 1
//
// Levels 4, 5 and 6 are the paper's sizes (781 / 3 906 / 19 531
// nodes); smaller levels work for experiments.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hypergen: ")
	var (
		backend = flag.String("backend", "oodb", "backend: oodb, reldb or memdb")
		dir     = flag.String("dir", ".", "directory for the database files")
		level   = flag.Int("level", 4, "leaf level of the 1-N hierarchy (paper: 4, 5, 6)")
		seed    = flag.Int64("seed", 1, "random seed (equal seeds give identical databases)")
		order   = flag.String("order", "dfs", "creation order: dfs (clustering-friendly) or bfs")
	)
	flag.Parse()

	cfg := hyper.GenConfig{LeafLevel: *level, Seed: *seed}
	switch *order {
	case "dfs":
		cfg.Order = hyper.OrderDFS
	case "bfs":
		cfg.Order = hyper.OrderBFS
	default:
		log.Fatalf("unknown order %q (want dfs or bfs)", *order)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	b, err := harness.OpenBackend(harness.BackendKind(*backend), *dir)
	if err != nil {
		log.Fatal(err)
	}
	lay, tm, err := hyper.Generate(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := b.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d nodes (leaf level %d, seed %d) on %s in %s\n\n",
		lay.Total(), *level, *seed, *backend, *dir)
	harness.RenderCreation(os.Stdout,
		fmt.Sprintf("E1: database creation — %s, level %d", *backend, *level), tm)
}
