package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"

	"hypermodel/internal/analysis"
	"hypermodel/internal/analysis/loader"
)

// vetConfig is the JSON the go command writes for each package when
// driving a vet tool (see cmd/go/internal/work.buildVetConfig). Only
// the fields hyperlint consumes are declared; unknown fields are
// ignored by encoding/json.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	GoVersion   string

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// unit is one package ready for analysis.
type unit struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// runUnitchecker executes one vet.cfg invocation from the go command.
func runUnitchecker(cfgPath string, active []*analysis.Analyzer, asJSON bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "hyperlint: reading config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "hyperlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// Dependency invocations exist only to produce facts; hyperlint
	// keeps none, so write the (empty) facts file and return without
	// analyzing. The file must exist for the go command to cache the
	// step.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return 0
	}

	fset := token.NewFileSet()
	files, err := loader.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "hyperlint: %v\n", err)
		return 2
	}
	imp := loader.NewExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, info, err := loader.Check(cfg.ImportPath, fset, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "hyperlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, exit := runPackage(&unit{fset: fset, files: files, pkg: pkg, info: info}, active, stderr)
	writeVetx(cfg.VetxOutput)
	if code := emit(stdout, stderr, fset, map[string][]analysis.Diagnostic{cfg.ImportPath: diags}, asJSON); code > exit {
		exit = code
	}
	return exit
}

// writeVetx records the (empty) fact set for this package. Best
// effort: a missing facts file only costs the go command a cache
// entry.
func writeVetx(path string) {
	if path != "" {
		os.WriteFile(path, []byte("hyperlint: no facts\n"), 0o666)
	}
}
