package main_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// toolPath holds the hyperlint binary built once for the whole test
// process; the driver tests exercise it exactly as make lint does.
var toolPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "hyperlint-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	toolPath = filepath.Join(dir, "hyperlint")
	if out, err := exec.Command("go", "build", "-o", toolPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building hyperlint: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// writeModule lays out a throwaway module for the tool to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const scratchGoMod = "module scratch\n\ngo 1.22\n"

// scratchBad contains one erris violation.
const scratchBad = `package scratch

import "errors"

var ErrX = errors.New("x")

func Check(err error) bool { return err == ErrX }
`

const scratchGood = `package scratch

import "errors"

var ErrX = errors.New("x")

func Check(err error) bool { return errors.Is(err, ErrX) }
`

// runTool executes the built binary in dir and returns exit code,
// stdout and stderr.
func runTool(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(toolPath, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running hyperlint: %v", err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": scratchGoMod, "x.go": scratchBad})
	code, _, stderr := runTool(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "erris") || !strings.Contains(stderr, "use errors.Is") {
		t.Errorf("stderr missing erris diagnostic:\n%s", stderr)
	}
}

func TestCleanExitZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": scratchGoMod, "x.go": scratchGood})
	code, stdout, stderr := runTool(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr)
	}
	if stdout != "" || stderr != "" {
		t.Errorf("clean run should be silent; stdout=%q stderr=%q", stdout, stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": scratchGoMod, "x.go": scratchBad})
	code, stdout, stderr := runTool(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	var out map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("stdout is not the documented JSON shape: %v\n%s", err, stdout)
	}
	diags := out["scratch"]["erris"]
	if len(diags) != 1 {
		t.Fatalf("want one scratch/erris diagnostic, got %+v", out)
	}
	if !strings.Contains(diags[0].Posn, "x.go:7") {
		t.Errorf("posn = %q, want x.go:7", diags[0].Posn)
	}
	if !strings.Contains(diags[0].Message, "use errors.Is") {
		t.Errorf("message = %q", diags[0].Message)
	}
}

func TestDisableFlag(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": scratchGoMod, "x.go": scratchBad})
	code, _, stderr := runTool(t, dir, "-erris=false", "./...")
	if code != 0 {
		t.Fatalf("exit = %d with erris disabled, want 0; stderr:\n%s", code, stderr)
	}
}

func TestBrokenSourceExitTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": scratchGoMod,
		"x.go":   "package scratch\n\nfunc Broken( {}\n",
	})
	code, _, _ := runTool(t, dir, "./...")
	if code != 2 {
		t.Fatalf("exit = %d for unparsable source, want 2", code)
	}
}

func TestVersionProbe(t *testing.T) {
	code, stdout, _ := runTool(t, t.TempDir(), "-V=full")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.HasPrefix(stdout, "hyperlint version devel") || !strings.Contains(stdout, "buildID=") {
		t.Errorf("-V=full output not in the go command's expected shape: %q", stdout)
	}
}

func TestFlagsProbe(t *testing.T) {
	code, stdout, _ := runTool(t, t.TempDir(), "-flags")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(stdout), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, stdout)
	}
	names := make(map[string]bool)
	for _, f := range flags {
		names[f.Name] = true
	}
	for _, want := range []string{"json", "detrand", "erris", "framerelease", "mutexio", "opcodes"} {
		if !names[want] {
			t.Errorf("-flags output missing %q: %s", want, stdout)
		}
	}
}

// TestVetTool drives the binary through the real go vet -vettool
// protocol, the way make lint runs it.
func TestVetTool(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		code int
	}{
		{"findings", scratchBad, 1},
		{"clean", scratchGood, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeModule(t, map[string]string{"go.mod": scratchGoMod, "x.go": tc.src})
			cmd := exec.Command("go", "vet", "-vettool="+toolPath, "./...")
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			code := 0
			if err != nil {
				ee, ok := err.(*exec.ExitError)
				if !ok {
					t.Fatalf("go vet: %v", err)
				}
				code = ee.ExitCode()
			}
			if code != tc.code {
				t.Fatalf("go vet exit = %d, want %d; output:\n%s", code, tc.code, out)
			}
			if tc.code == 1 && !strings.Contains(string(out), "use errors.Is") {
				t.Errorf("go vet output missing diagnostic:\n%s", out)
			}
		})
	}
}

// scratchWire holds one wiresym violation: the encoder writes a u32
// slot where the dispatch handler reads a u64.
const scratchWire = `package scratch

import "encoding/binary"

const opSwap = 1

func encodeSwap(slot uint32) []byte {
	b := []byte{opSwap}
	b = binary.LittleEndian.AppendUint32(b, slot)
	return b
}

func serve(req []byte) []byte {
	switch req[0] {
	case opSwap:
		return handleSwap(req[1:])
	}
	return nil
}

func handleSwap(body []byte) []byte {
	_ = binary.LittleEndian.Uint64(body)
	return nil
}
`

// TestJSONGolden pins the -json schema byte for byte: map from
// package path to analyzer to [{posn, message}], tab-indented, keys
// sorted. The module directory in posn strings is normalized since
// the test runs in a temp dir.
func TestJSONGolden(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  scratchGoMod,
		"x.go":    scratchBad,
		"wire.go": scratchWire,
	})
	code, stdout, stderr := runTool(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	real, err := filepath.EvalSymlinks(dir)
	if err != nil {
		real = dir
	}
	got := strings.ReplaceAll(stdout, real, "MODULE")
	got = strings.ReplaceAll(got, dir, "MODULE")
	golden := filepath.Join("testdata", "json.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-json output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
