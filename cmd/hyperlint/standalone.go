package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"strings"

	"hypermodel/internal/analysis"
	"hypermodel/internal/analysis/loader"
)

// listPackage is the slice of "go list -json" output the standalone
// driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// runStandalone loads the requested patterns with the go command and
// analyzes every main-module package from source (non-test files;
// test coverage comes from the go vet -vettool path, which analyzes
// test variants too).
func runStandalone(patterns []string, active []*analysis.Analyzer, asJSON bool, stdout, stderr io.Writer) int {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(stderr, "hyperlint: go list: %v\n", err)
		return 2
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			fmt.Fprintf(stderr, "hyperlint: decoding go list output: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, p)
	}

	// Export data for every dependency (identity import map: the
	// module neither vendors nor renames).
	exportFiles := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := loader.NewExportImporter(fset, nil, exportFiles)
	byPkg := make(map[string][]analysis.Diagnostic)
	exit := 0
	for _, p := range pkgs {
		if p.Module == nil || !p.Module.Main || p.Standard {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(stderr, "hyperlint: %s: %s\n", p.ImportPath, p.Error.Err)
			exit = 2
			continue
		}
		names := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, f)
		}
		files, err := loader.ParseFiles(fset, names)
		if err != nil {
			fmt.Fprintf(stderr, "hyperlint: %s: %v\n", p.ImportPath, err)
			exit = 2
			continue
		}
		pkg, info, err := loader.Check(p.ImportPath, fset, files, imp, "")
		if err != nil {
			fmt.Fprintf(stderr, "hyperlint: type-checking %s: %v\n", p.ImportPath, err)
			exit = 2
			continue
		}
		diags, code := runPackage(&unit{fset: fset, files: files, pkg: pkg, info: info}, active, stderr)
		if code > exit {
			exit = code
		}
		byPkg[p.ImportPath] = diags
	}
	if code := emit(stdout, stderr, fset, byPkg, asJSON); code > exit {
		exit = code
	}
	return exit
}
