// Command hyperlint machine-checks the repo's correctness invariants
// with the ten analyzers in internal/analysis (detrand, erris, facade,
// framerelease, lifecycle, lockorder, mutexio, opcodes, vfsonly,
// wiresym).
//
// It runs two ways:
//
//   - As a vet tool: go vet -vettool=$(pwd)/bin/hyperlint ./...
//     The go command hands it one JSON config per package (the
//     unitchecker protocol: a -V=full version probe, a -flags flag
//     enumeration, then per-package invocations with a vet.cfg path),
//     with types for dependencies coming from compiler export data.
//     This is what "make lint" runs, and it covers test files because
//     go vet analyzes test variants too.
//
//   - Standalone: go run ./cmd/hyperlint ./...
//     The driver shells out to "go list -deps -export -json" and
//     analyzes every package of the main module (non-test files).
//
// Flags: -json emits machine-readable diagnostics; -<analyzer>=false
// disables one analyzer (e.g. -erris=false). Exit status: 0 clean,
// 1 findings, 2 tool failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"hypermodel/internal/analysis"
	"hypermodel/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hyperlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	versionFlag := fs.String("V", "", "print version and exit (-V=full: version with build ID, for the go command)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON (for the go command) and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON")
	enabled := make(map[string]*bool)
	all := registry.All()
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: hyperlint [flags] [package pattern ... | vet.cfg]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		return printVersion(stdout, *versionFlag)
	case *flagsFlag:
		return printFlags(stdout, all)
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitchecker(rest[0], active, *jsonFlag, stdout, stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(rest, active, *jsonFlag, stdout, stderr)
}

// printVersion implements the go command's tool version probe. The
// expected shape is "<name> version devel ... buildID=<contentID>";
// hashing the executable makes vet's result cache invalidate when the
// tool changes.
func printVersion(stdout io.Writer, mode string) int {
	if mode != "full" {
		fmt.Fprintln(stdout, "hyperlint version devel")
		return 0
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(stdout, "hyperlint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
	return 0
}

// printFlags describes the tool's flags to the go command so "go vet
// -vettool=hyperlint -erris=false" can validate and forward them.
func printFlags(stdout io.Writer, all []*analysis.Analyzer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"}}
	for _, a := range all {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
	}
	data, _ := json.Marshal(flags)
	stdout.Write(append(data, '\n'))
	return 0
}

// runPackage applies the active analyzers to one loaded package.
func runPackage(unit *unit, active []*analysis.Analyzer, stderr io.Writer) ([]analysis.Diagnostic, int) {
	var diags []analysis.Diagnostic
	exit := 0
	for _, a := range active {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      unit.fset,
			Files:     unit.files,
			Pkg:       unit.pkg,
			TypesInfo: unit.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "hyperlint: %s: internal error: %v\n", a.Name, err)
			exit = 2
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, exit
}

// emit writes diagnostics for one or more packages. JSON output
// mirrors the x/tools vet shape: {pkgpath: {analyzer: [{posn,
// message}]}}.
func emit(stdout, stderr io.Writer, fset *token.FileSet, byPkg map[string][]analysis.Diagnostic, asJSON bool) int {
	total := 0
	if asJSON {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		out := make(map[string]map[string][]jsonDiag)
		for path, diags := range byPkg {
			total += len(diags)
			if len(diags) == 0 {
				continue
			}
			m := make(map[string][]jsonDiag)
			for _, d := range diags {
				m[d.Analyzer] = append(m[d.Analyzer], jsonDiag{
					Posn:    fset.Position(d.Pos).String(),
					Message: d.Message,
				})
			}
			out[path] = m
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
	} else {
		paths := make([]string, 0, len(byPkg))
		for path := range byPkg {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			for _, d := range byPkg[path] {
				fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
				total++
			}
		}
	}
	if total > 0 {
		return 1
	}
	return 0
}
