// Benchmarks regenerating the paper's measurement surfaces, one bench
// per experiment row (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results):
//
//	E1  BenchmarkCreate*            — §5.3 database creation
//	E2  BenchmarkNameLookup*        — O1/O2
//	E3  BenchmarkRangeLookup*       — O3/O4
//	E4  BenchmarkGroupLookup*       — O5A/O5B/O6
//	E5  BenchmarkRefLookup*         — O7A/O7B/O8
//	E6  BenchmarkSeqScan            — O9
//	E7  BenchmarkClosure{1N,MN,MNAtt}, BenchmarkColdClosure* — O10/O14/O15
//	E8  BenchmarkClosure1NAtt*, BenchmarkClosureMNAttLinkSum — O11–O13/O18
//	E9  BenchmarkTextNodeEdit, BenchmarkFormNodeEdit — O16/O17
//	E10 the Cold* variants against their warm counterparts
//	E11 BenchmarkClusterAblation*   — clustering on/off
//	E12 every bench's {oodb,reldb,memdb} sub-benchmarks
//	E13 BenchmarkRemote*            — workstation/server
//	E14 BenchmarkExtension*         — R4/R5/R11 exercises
//	E15 BenchmarkMultiUser          — concurrent optimistic commits
//
// Most benches run against a level-4 database (781 nodes), the paper's
// smallest configuration; cmd/hyperbench runs the same workloads at
// levels 5 and 6.
package hypermodel_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"hypermodel"
	"hypermodel/internal/acl"
	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
	"hypermodel/internal/storage/store"
	"hypermodel/internal/txn"
	"hypermodel/internal/version"
)

const (
	benchLevel = 4
	benchSeed  = 1
)

// shared caches one generated database per backend kind for the whole
// bench run; tearing it down is left to the OS temp cleaner when the
// process exits (b.Cleanup would rebuild per sub-benchmark).
type shared struct {
	once sync.Once
	b    hyper.Backend
	lay  hyper.Layout
	err  error
}

var sharedDBs = map[harness.BackendKind]*shared{
	harness.KindOODB:  {},
	harness.KindRelDB: {},
	harness.KindMemDB: {},
}

func sharedDB(b *testing.B, kind harness.BackendKind) (hyper.Backend, hyper.Layout) {
	b.Helper()
	s := sharedDBs[kind]
	s.once.Do(func() {
		dir, err := os.MkdirTemp("", "hmbench-"+string(kind)+"-*")
		if err != nil {
			s.err = err
			return
		}
		s.b, s.lay, _, s.err = harness.Build(kind, dir, benchLevel, benchSeed)
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.b, s.lay
}

// perBackend runs fn as a sub-benchmark on each backend (E12's axis).
func perBackend(b *testing.B, fn func(b *testing.B, db hyper.Backend, lay hyper.Layout)) {
	for _, kind := range harness.AllBackends {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			db, lay := sharedDB(b, kind)
			fn(b, db, lay)
		})
	}
}

// --- E1: database creation (§5.3) ---

func BenchmarkCreate(b *testing.B) {
	for _, kind := range harness.AllBackends {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db, lay, _, err := harness.Build(kind, b.TempDir(), 3, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				_ = lay
			}
			b.ReportMetric(float64(hypermodel.TotalNodes(3)), "nodes/op")
		})
	}
}

// --- E2: name lookup (O1, O2) ---

func BenchmarkNameLookup(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(2))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNode(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.NameLookup(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkNameOIDLookup(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(3))
		oids := make([]hypermodel.OID, b.N)
		for i := range oids {
			oid, err := db.OIDOf(lay.RandomNode(rng))
			if errors.Is(err, hypermodel.ErrNoOIDs) {
				b.Skip("backend has no object identifiers (O2 not applicable)")
			}
			if err != nil {
				b.Fatal(err)
			}
			oids[i] = oid
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.NameOIDLookup(db, oids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E3: range lookup (O3, O4) ---

func BenchmarkRangeLookupHundred(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(4))
		b.ResetTimer()
		nodes := 0
		for i := 0; i < b.N; i++ {
			ids, err := hypermodel.RangeLookupHundred(db, int32(rng.Intn(91)))
			if err != nil {
				b.Fatal(err)
			}
			nodes += len(ids)
		}
		b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	})
}

func BenchmarkRangeLookupMillion(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(5))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.RangeLookupMillion(db, int32(rng.Intn(990001))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E4: group lookup (O5A, O5B, O6) ---

func BenchmarkGroupLookup1N(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(6))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomInternal(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.GroupLookup1N(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGroupLookupMN(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(7))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomInternal(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.GroupLookupMN(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGroupLookupMNAtt(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(8))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNode(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.GroupLookupMNAtt(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E5: reference lookup (O7A, O7B, O8) ---

func BenchmarkRefLookup1N(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(9))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNonRoot(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.RefLookup1N(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRefLookupMN(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(10))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNonRoot(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.RefLookupMN(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRefLookupMNAtt(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(11))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNode(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.RefLookupMNAtt(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E6: sequential scan (O9) ---

func BenchmarkSeqScan(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := hypermodel.SeqScan(db, 1, hypermodel.NodeID(lay.Total()))
			if err != nil {
				b.Fatal(err)
			}
			if n != lay.Total() {
				b.Fatalf("scan visited %d nodes", n)
			}
		}
		b.ReportMetric(float64(lay.Total()), "nodes/op")
	})
}

// --- E7: closure traversals (O10, O14, O15) ---

func BenchmarkClosure1N(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(12))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.Closure1N(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(hyper.ClosureSize(lay.ClosureStartLevel(), lay.LeafLevel)), "nodes/op")
	})
}

func BenchmarkClosureMN(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(13))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.ClosureMN(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClosureMNAtt(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(14))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.ClosureMNAtt(db, ids[i], 25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// closure1NPerNode is the seed's per-node recursive closure, kept as
// the baseline the frontier-batched Closure1N is measured against.
func closure1NPerNode(db hyper.Backend, start hypermodel.NodeID) ([]hypermodel.NodeID, error) {
	var out []hypermodel.NodeID
	var walk func(id hypermodel.NodeID) error
	walk = func(id hypermodel.NodeID) error {
		out = append(out, id)
		kids, err := db.Children(id)
		if err != nil {
			return err
		}
		for _, k := range kids {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return nil, err
	}
	return out, nil
}

// closureMNPerNode is the seed's per-node M-N closure baseline.
func closureMNPerNode(db hyper.Backend, start hypermodel.NodeID) ([]hypermodel.NodeID, error) {
	seen := map[hypermodel.NodeID]bool{}
	var out []hypermodel.NodeID
	var walk func(id hypermodel.NodeID) error
	walk = func(id hypermodel.NodeID) error {
		if seen[id] {
			return nil
		}
		seen[id] = true
		out = append(out, id)
		parts, err := db.Parts(id)
		if err != nil {
			return err
		}
		for _, p := range parts {
			if err := walk(p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return nil, err
	}
	return out, nil
}

// BenchmarkClosure1NBatch runs the frontier-batched closure over the
// whole test tree; BenchmarkClosure1NPerNode runs the per-node
// baseline on the identical workload. The gap is the batching win.
func BenchmarkClosure1NBatch(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.Closure1N(db, lay.FirstID()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(lay.Total()), "nodes/op")
	})
}

func BenchmarkClosure1NPerNode(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := closure1NPerNode(db, lay.FirstID()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(lay.Total()), "nodes/op")
	})
}

// BenchmarkClosureMNBatch / PerNode: the same pair for the M-N
// closure, whose frontier-batched form BFS-dedups before fetching.
func BenchmarkClosureMNBatch(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.ClosureMN(db, lay.FirstID()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClosureMNPerNode(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := closureMNPerNode(db, lay.FirstID()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColdClosure1N measures the cold path (E10): every iteration
// drops the caches first, so the closure pays disk or image reloads.
func BenchmarkColdClosure1N(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(15))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		if err := db.Commit(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.DropCaches(); err != nil {
				b.Fatal(err)
			}
			if _, err := hypermodel.Closure1N(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E8: other closure operations (O11, O12, O13, O18) ---

func BenchmarkClosure1NAttSum(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(16))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := hypermodel.Closure1NAttSum(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClosure1NAttSet(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(17))
		start := lay.RandomClosureStart(rng)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.Closure1NAttSet(db, start); err != nil {
				b.Fatal(err)
			}
			if err := db.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Leave the attribute restored for other benches.
		if b.N%2 == 1 {
			if _, err := hypermodel.Closure1NAttSet(db, start); err != nil {
				b.Fatal(err)
			}
			if err := db.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClosure1NPred(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(18))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.Closure1NPred(db, ids[i], int32(i%990001)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClosureMNAttLinkSum(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(19))
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.ClosureMNAttLinkSum(db, ids[i], 25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E9: editing (O16, O17) ---

func BenchmarkTextNodeEdit(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(20))
		id := lay.RandomTextNode(rng)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := hypermodel.TextNodeEdit(db, id, i%2 == 0); err != nil {
				b.Fatal(err)
			}
			if err := db.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if b.N%2 == 1 { // restore
			if err := hypermodel.TextNodeEdit(db, id, false); err != nil {
				b.Fatal(err)
			}
			if err := db.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFormNodeEdit(b *testing.B) {
	perBackend(b, func(b *testing.B, db hyper.Backend, lay hyper.Layout) {
		rng := rand.New(rand.NewSource(21))
		id, ok := lay.RandomFormNode(rng)
		if !ok {
			b.Skip("no form nodes at this level")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := hypermodel.Rect{X: i % 50, Y: i % 50, W: 25 + i%26, H: 25 + i%26}
			if err := hypermodel.FormNodeEdit(db, id, r); err != nil {
				b.Fatal(err)
			}
			if err := db.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E11: clustering ablation ---

func BenchmarkClusterAblation(b *testing.B) {
	variants := []struct {
		name       string
		clustering bool
		order      hyper.Order
	}{
		{"clustered", true, hypermodel.OrderDFS},
		{"unclustered", false, hypermodel.OrderBFS},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			dir := b.TempDir()
			db, err := hypermodel.OpenOODBWith(dir+"/db", hypermodel.OODBOptions{Clustering: v.clustering})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			lay, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: benchLevel, Seed: benchSeed, Order: v.order})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(22))
			ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
			if err := db.Commit(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.DropCaches(); err != nil {
					b.Fatal(err)
				}
				if _, err := hypermodel.Closure1N(db, ids[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_, _, reads := db.CacheStats()
			b.ReportMetric(float64(reads)/float64(b.N), "diskreads/op")
		})
	}
}

// --- E13: workstation/server ---

// remoteClientOf unwraps the page-server client under a DB returned by
// DialServer (ok is false for local backends).
func remoteClientOf(db hypermodel.DB) (*remote.Client, bool) {
	odb, ok := db.(*oodb.DB)
	if !ok {
		return nil, false
	}
	client, ok := odb.Store().(*remote.Client)
	return client, ok
}

func BenchmarkRemote(b *testing.B) {
	dir, err := os.MkdirTemp("", "hmbench-remote-*")
	if err != nil {
		b.Fatal(err)
	}
	addr, stop, err := hypermodel.StartServer(dir+"/srv.db", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	db, err := hypermodel.DialServer(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	lay, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: benchLevel, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))

	b.Run("warmNameLookup", func(b *testing.B) {
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNode(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.NameLookup(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coldClosure1N", func(b *testing.B) {
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.DropCaches(); err != nil {
				b.Fatal(err)
			}
			if _, err := hypermodel.Closure1N(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warmClosure1N", func(b *testing.B) {
		ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomClosureStart(rng) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hypermodel.Closure1N(db, ids[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Round-trip accounting for the cold full-tree closure: frames/op
	// is the number of protocol round trips each closure costs, and
	// batchframes/op how many of them were opGetPages (one per BFS
	// frontier with any missing pages). The per-node baseline instead
	// pays roughly one frame per page it touches.
	b.Run("coldClosure1NRoundTrips", func(b *testing.B) {
		client, ok := remoteClientOf(db)
		if !ok {
			b.Skip("store is not a remote client")
		}
		b.ResetTimer()
		startTotal, startBatched := client.FrameStats()
		for i := 0; i < b.N; i++ {
			if err := db.DropCaches(); err != nil {
				b.Fatal(err)
			}
			if _, err := hypermodel.Closure1N(db, lay.FirstID()); err != nil {
				b.Fatal(err)
			}
		}
		total, batched := client.FrameStats()
		b.ReportMetric(float64(total-startTotal)/float64(b.N), "frames/op")
		b.ReportMetric(float64(batched-startBatched)/float64(b.N), "batchframes/op")
	})
	b.Run("coldClosure1NPerNodeRoundTrips", func(b *testing.B) {
		client, ok := remoteClientOf(db)
		if !ok {
			b.Skip("store is not a remote client")
		}
		b.ResetTimer()
		startTotal, _ := client.FrameStats()
		for i := 0; i < b.N; i++ {
			if err := db.DropCaches(); err != nil {
				b.Fatal(err)
			}
			if _, err := closure1NPerNode(db, lay.FirstID()); err != nil {
				b.Fatal(err)
			}
		}
		total, _ := client.FrameStats()
		b.ReportMetric(float64(total-startTotal)/float64(b.N), "frames/op")
	})
}

// --- E14: extensions ---

func BenchmarkExtensionVersionCapture(b *testing.B) {
	db, lay := sharedDB(b, harness.KindOODB)
	vs := version.New(db)
	rng := rand.New(rand.NewSource(24))
	ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNode(rng) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vs.Capture(ids[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionGuardedRead(b *testing.B) {
	db, lay := sharedDB(b, harness.KindOODB)
	if err := acl.SetPolicy(db, 2, acl.Policy{Public: acl.Read}); err != nil {
		b.Fatal(err)
	}
	defer acl.RemovePolicy(db, 2)
	guard := acl.NewGuard(db, "bench")
	rng := rand.New(rand.NewSource(25))
	ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNode(rng) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := guard.Hundred(ids[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionDynamicAttr(b *testing.B) {
	db, lay := sharedDB(b, harness.KindOODB)
	sm := db.(hypermodel.SchemaModifier)
	if _, err := sm.AddClass(fmt.Sprintf("BenchClass%d", b.N)); err != nil {
		b.Skip("class already registered in this process")
	}
	rng := rand.New(rand.NewSource(26))
	ids := drawIDs(b.N, func() hypermodel.NodeID { return lay.RandomNode(rng) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sm.SetAttr(ids[i], "benchattr", int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E15: multi-user ---

func BenchmarkMultiUserDisjoint(b *testing.B) {
	dir, err := os.MkdirTemp("", "hmbench-multi-*")
	if err != nil {
		b.Fatal(err)
	}
	addr, stop, err := hypermodel.StartServer(dir+"/srv.db", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	boot, err := hypermodel.DialServer(addr)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := hypermodel.Generate(boot, hypermodel.GenConfig{LeafLevel: 2, Seed: benchSeed}); err != nil {
		b.Fatal(err)
	}
	if err := boot.Commit(); err != nil {
		b.Fatal(err)
	}
	boot.Close()

	const users = 2
	dbs := make([]hyper.Backend, users)
	for u := range dbs {
		db, err := hypermodel.DialServer(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		dbs[u] = db
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, users)
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				target := hypermodel.NodeID(2 + u) // distinct level-1 nodes
				errs <- txn.RunN(dbs[u], 100, func() error {
					h, err := dbs[u].Hundred(target)
					if err != nil {
						return err
					}
					return dbs[u].SetHundred(target, (h+1)%100)
				})
			}(u)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(users), "txns/op")
}

func drawIDs(n int, draw func() hypermodel.NodeID) []hypermodel.NodeID {
	out := make([]hypermodel.NodeID, n)
	for i := range out {
		out[i] = draw()
	}
	return out
}

// --- E19: group commit ---

// BenchmarkCommit measures ns/commit through the page server's commit
// path as the number of concurrent committers grows. batch=1 is the
// floor — every commit pays its own fsync; at batch=4 and batch=16 the
// group-commit leader absorbs the queue and amortises the fsync, so
// ns/commit should fall while commits/fsync rises toward the batch
// size. Each committer rotates its own TextNode (disjoint pages), so
// the benchmark isolates commit-path cost from validation conflicts.
func BenchmarkCommit(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchCommit(b, batch)
		})
	}
}

func benchCommit(b *testing.B, writers int) {
	dir, err := os.MkdirTemp("", "hmbench-commit-*")
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(dir+"/bench.db", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	boot, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		b.Fatal(err)
	}
	bdb, err := oodb.New(boot, oodb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	const level = 3
	if _, _, err := hyper.Generate(bdb, hyper.GenConfig{LeafLevel: level, Seed: benchSeed}); err != nil {
		b.Fatal(err)
	}
	if err := bdb.Commit(); err != nil {
		b.Fatal(err)
	}
	if err := bdb.Close(); err != nil {
		b.Fatal(err)
	}

	firstLeaf, lastLeaf := hyper.LevelIDs(level)
	leaves := int(lastLeaf - firstLeaf + 1)
	dbs := make([]*oodb.DB, writers)
	targets := make([]hyper.NodeID, writers)
	for u := 0; u < writers; u++ {
		j := u * (leaves / writers)
		if hyper.IsFormLeaf(j) {
			j = (j + 1) % leaves
		}
		targets[u] = firstLeaf + hyper.NodeID(j)
		client, err := remote.Dial(addr.String(), remote.ClientOptions{})
		if err != nil {
			b.Fatal(err)
		}
		dbs[u], err = oodb.New(client, oodb.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		defer dbs[u].Close()
	}

	flushes0, _, _, _, _ := srv.GroupCommitStats()
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for u := 0; u < writers; u++ {
		n := b.N / writers
		if u < b.N%writers {
			n++
		}
		wg.Add(1)
		go func(u, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := txn.RunN(dbs[u], 300, rotateTxn(dbs[u], targets[u])); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(u, n)
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	flushes, _, _, _, _ := srv.GroupCommitStats()
	if df := flushes - flushes0; df > 0 {
		b.ReportMetric(float64(b.N)/float64(df), "commits/fsync")
	}
}
