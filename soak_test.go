package hypermodel_test

import (
	"path/filepath"
	"testing"

	"hypermodel"
	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
	"hypermodel/internal/storage/store"
)

// TestSoakLevel5 is the end-to-end soak: build the paper's mid-size
// database (3 906 nodes), run the complete operation matrix under the
// protocol, then exercise the maintenance surface (GC, backup, crash
// recovery) on the same database and prove the structure survives it
// all intact.
func TestSoakLevel5(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "oodb.db")
	db, err := oodb.Open(path, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lay, tm, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if tm.InternalCount+tm.LeafCount != 3906 {
		t.Fatalf("generated %d nodes", tm.InternalCount+tm.LeafCount)
	}

	// The whole matrix, abbreviated iterations.
	results, err := harness.Run(db, lay, harness.Config{Iterations: 8, Seed: 3, Depth: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("matrix has %d rows", len(results))
	}
	for _, r := range results {
		if r.NA {
			t.Fatalf("%s n/a on oodb: %s", r.ID, r.Note)
		}
	}

	// Maintenance: GC finds nothing to free on a healthy database.
	if freed, err := db.GarbageCollect(); err != nil || freed != 0 {
		t.Fatalf("GC on healthy database freed %d (%v)", freed, err)
	}
	// Online backup while open.
	backup := filepath.Join(dir, "backup.db")
	if err := db.Backup(backup); err != nil {
		t.Fatal(err)
	}
	// Crash and recover.
	if err := db.SetHundred(5, 55); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Store().(*store.Store).CrashForTesting()

	db2, err := oodb.Open(path, oodb.DefaultOptions())
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	if h, err := db2.Hundred(5); err != nil || h != 55 {
		t.Fatalf("committed update lost in crash: %d (%v)", h, err)
	}
	nodes, err := hypermodel.Closure1N(db2, lay.FirstID())
	if err != nil || len(nodes) != lay.Total() {
		t.Fatalf("structure after crash: %d nodes (%v)", len(nodes), err)
	}
	// And the backup is a complete, independent database.
	db3, err := oodb.Open(backup, oodb.DefaultOptions())
	if err != nil {
		t.Fatalf("open backup: %v", err)
	}
	defer db3.Close()
	n, err := hypermodel.SeqScan(db3, lay.FirstID(), lay.LastID())
	if err != nil || n != lay.Total() {
		t.Fatalf("backup scan: %d (%v)", n, err)
	}
}
