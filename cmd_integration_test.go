package hypermodel_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"hypermodel"
)

// buildTool compiles one cmd/ binary into a shared temp dir once per
// test process.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := toolDir(t)
	bin := filepath.Join(dir, name)
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	if _, err := os.Stat(bin); err == nil {
		return bin
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

var sharedToolDir string

func toolDir(t *testing.T) string {
	t.Helper()
	if sharedToolDir == "" {
		dir, err := os.MkdirTemp("", "hm-tools-*")
		if err != nil {
			t.Fatal(err)
		}
		sharedToolDir = dir
	}
	return sharedToolDir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestHypergenTool(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "hypergen")
	dir := t.TempDir()
	out := run(t, bin, "-backend", "oodb", "-dir", dir, "-level", "3", "-seed", "1")
	for _, want := range []string{"generated 156 nodes", "create internal nodes", "create leaf nodes", "final commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hypergen output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "oodb.db")); err != nil {
		t.Fatalf("database file not created: %v", err)
	}
}

func TestHyperqueryTool(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gen := buildTool(t, "hypergen")
	qry := buildTool(t, "hyperquery")
	dir := t.TempDir()
	run(t, gen, "-backend", "oodb", "-dir", dir, "-level", "3")
	out := run(t, qry, "-backend", "oodb", "-dir", dir, "-level", "3",
		"select where hundred between 10 and 19 limit 3")
	if !strings.Contains(out, "plan: index scan (hundred) [10,19]") {
		t.Fatalf("hyperquery plan missing:\n%s", out)
	}
	if !strings.Contains(out, "node(s)") {
		t.Fatalf("hyperquery results missing:\n%s", out)
	}
	out = run(t, qry, "-backend", "oodb", "-dir", dir, "-level", "3", "select count")
	if !strings.Contains(out, "count = 156") {
		t.Fatalf("hyperquery count wrong:\n%s", out)
	}
}

func TestHyperqueryScrub(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gen := buildTool(t, "hypergen")
	qry := buildTool(t, "hyperquery")
	dir := t.TempDir()
	run(t, gen, "-backend", "oodb", "-dir", dir, "-level", "3")
	db := filepath.Join(dir, "oodb.db")

	out := run(t, qry, "scrub", db)
	if !strings.Contains(out, "clean") || strings.Contains(out, "DAMAGED") {
		t.Fatalf("scrub of fresh database not clean:\n%s", out)
	}

	// Flip a payload byte in page 1 (4 KiB pages; offset 100 is past
	// the header) and scrub again: the damage must be pinpointed and
	// the exit status non-zero.
	f, err := os.OpenFile(db, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	if _, err := f.ReadAt(buf, 4096+100); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, 4096+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cmd := exec.Command(qry, "scrub", db)
	outB, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("scrub of damaged database exited 0:\n%s", outB)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("scrub of damaged database: want exit 1, got %v:\n%s", err, outB)
	}
	if !strings.Contains(string(outB), "PAGE 1 DAMAGED") {
		t.Fatalf("scrub did not pinpoint page 1:\n%s", outB)
	}

	// A missing file is an error, not a freshly created empty
	// database.
	cmd = exec.Command(qry, "scrub", filepath.Join(dir, "nope.db"))
	if outB, err = cmd.CombinedOutput(); err == nil {
		t.Fatalf("scrub of missing file succeeded:\n%s", outB)
	}
	if _, err := os.Stat(filepath.Join(dir, "nope.db")); err == nil {
		t.Fatal("scrub created the missing database file")
	}
}

func TestHyperbenchTool(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "hyperbench")
	out := run(t, bin, "-level", "3", "-iters", "3", "-backends", "oodb", "-exp", "ops", "-ops", "O1,O10")
	for _, want := range []string{"E2–E10: operations — oodb", "nameLookup", "closure1N", "ms/node"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hyperbench output missing %q:\n%s", want, out)
		}
	}
	// CSV emission.
	csv := filepath.Join(t.TempDir(), "r.csv")
	run(t, bin, "-level", "2", "-iters", "2", "-backends", "memdb", "-exp", "ops", "-ops", "O1", "-csv", csv)
	data, err := os.ReadFile(csv)
	if err != nil || !strings.Contains(string(data), "memdb,2,O1,nameLookup") {
		t.Fatalf("csv output wrong: %v\n%s", err, data)
	}
}

func TestHyperserverTool(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "hyperserver")
	dir := t.TempDir()
	// Pick a free port first.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-db", filepath.Join(dir, "srv.db"), "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	// Wait for the listener, then drive it through the public client.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not come up")
		}
		time.Sleep(50 * time.Millisecond)
	}
	db, err := hypermodel.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lay, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	n, err := hypermodel.SeqScan(db, lay.FirstID(), lay.LastID())
	if err != nil || n != lay.Total() {
		t.Fatalf("scan through hyperserver: %d (%v)", n, err)
	}
}
