package hypermodel_test

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/fault"
	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
	"hypermodel/internal/storage/store"
)

// chaosOps is the O1–O15 matrix (the retrieval and update operations;
// the editing/extension rows O16–O18 are measured elsewhere).
var chaosOps = []string{
	"O1", "O2", "O3", "O4", "O5A", "O5B", "O6", "O7A", "O7B",
	"O8", "O9", "O10", "O11", "O12", "O13", "O14", "O15",
}

// chaosRun is one complete benchmark pass over the page server, with
// or without a fault proxy in the network path.
type chaosRun struct {
	results    []harness.OpResult
	retry      remote.RetryStats
	commits    uint64
	dupCommits uint64
	faults     fault.Stats
}

func runChaosMatrix(t *testing.T, faulty bool) chaosRun {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "chaos.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dialAddr := addr.String()
	var px *fault.Proxy
	if faulty {
		// ≥1% of transfers dropped, delayed, or cut mid-frame.
		// Corruption stays off: commit frames carry no end-to-end
		// checksum, so flipped bits could be applied undetectably —
		// that failure mode has its own test in internal/fault.
		px, err = fault.NewProxy(dialAddr, fault.Config{
			Seed:        42,
			DropProb:    0.01,
			DelayProb:   0.02,
			MaxDelay:    2 * time.Millisecond,
			PartialProb: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		px.SetEnabled(false) // generation runs fault-free
		dialAddr = px.Addr()
	}

	// The soak runs over the pipelined client: two pooled connections
	// with unbounded in-flight depth, so reconnect draining and request
	// demultiplexing are exercised under the same fault schedule as the
	// commit machinery.
	client, err := remote.Dial(dialAddr, remote.ClientOptions{
		Conns:          2,
		RequestTimeout: 10 * time.Second,
		BackoffBase:    200 * time.Microsecond,
		BackoffMax:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := oodb.New(client, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	if faulty {
		px.SetEnabled(true)
	}
	results, err := harness.Run(db, lay, harness.Config{
		Iterations: 4, Seed: 9, Depth: 25, Ops: chaosOps,
	})
	if err != nil {
		t.Fatalf("matrix under faults: %v", err)
	}

	out := chaosRun{results: results, retry: client.RetryStats()}
	out.commits, _, _ = srv.Stats()
	out.dupCommits, _ = srv.FaultStats()
	if faulty {
		px.SetEnabled(false) // the final Close need not fight the proxy
		out.faults = px.Stats()
	}
	return out
}

// TestChaosRemoteMatrix is the fault-injection soak: the full O1–O15
// matrix runs against the page server twice — once over a clean
// network, once through a proxy dropping, delaying and mid-frame-
// cutting ≥1% of transfers — and must produce identical results, with
// every commit applied exactly once and none abandoned as unknown.
func TestChaosRemoteMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	control := runChaosMatrix(t, false)
	chaos := runChaosMatrix(t, true)

	if chaos.faults.Total() == 0 {
		t.Fatal("proxy injected no faults; the soak exercised nothing")
	}
	t.Logf("faults injected: %+v", chaos.faults)
	t.Logf("client recovery: %+v", chaos.retry)

	// The control run must not have needed the fault machinery.
	if control.retry.Reconnects != 0 || control.retry.Retries != 0 {
		t.Fatalf("clean run used retries: %+v", control.retry)
	}

	// Identical matrix: same rows, same applicability, same node
	// counts cold and warm. Node counts are the benchmark's results —
	// a lost page or a doubled commit would change them.
	if len(chaos.results) != len(control.results) {
		t.Fatalf("row count %d vs %d", len(chaos.results), len(control.results))
	}
	for i, want := range control.results {
		got := chaos.results[i]
		if got.ID != want.ID || got.NA != want.NA {
			t.Fatalf("row %d: %s/NA=%v vs %s/NA=%v", i, got.ID, got.NA, want.ID, want.NA)
		}
		if got.Cold.TotalNodes() != want.Cold.TotalNodes() ||
			got.Warm.TotalNodes() != want.Warm.TotalNodes() {
			t.Fatalf("%s: node counts diverged under faults: cold %d/%d warm %d/%d",
				got.ID, got.Cold.TotalNodes(), want.Cold.TotalNodes(),
				got.Warm.TotalNodes(), want.Warm.TotalNodes())
		}
	}

	// Exactly-once commits: the faulted server applied precisely as
	// many transactions as the clean one — duplicates were absorbed by
	// the token ring, not applied — and the client never blindly
	// resent: every resend was preceded by a verified-not-applied
	// probe, and no commit outcome was left unknown.
	if chaos.commits != control.commits {
		t.Fatalf("faulted run applied %d commits, clean run %d", chaos.commits, control.commits)
	}
	if chaos.retry.CommitUnknowns != 0 {
		t.Fatalf("%d commits left unresolved", chaos.retry.CommitUnknowns)
	}
	if chaos.retry.CommitResends > chaos.retry.CommitChecks {
		t.Fatalf("resends (%d) not covered by verification probes (%d)",
			chaos.retry.CommitResends, chaos.retry.CommitChecks)
	}
}

// chaosWritersRun is one multi-writer soak pass: the final text of
// every writer's target plus the server's commit accounting.
type chaosWritersRun struct {
	texts      []string
	commits    uint64
	dupCommits uint64
	retry      remote.RetryStats
	faults     fault.Stats
}

// runChaosWriters drives 4 concurrent writer clients, each committing
// a fixed number of one-byte text rotations to its own TextNode
// through the server's group-commit path, optionally through the fault
// proxy. Group commit batches whatever lands in the leader's queue, so
// under faults the batches also carry resent transactions whose first
// acknowledgement was lost — the token ring must absorb those inside
// batches exactly as it does alone.
func runChaosWriters(t *testing.T, faulty bool) chaosWritersRun {
	t.Helper()
	const (
		writers   = 4
		perWriter = 15
		level     = 3
	)
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "chaosw.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dialAddr := addr.String()
	var px *fault.Proxy
	if faulty {
		px, err = fault.NewProxy(dialAddr, fault.Config{
			Seed:        43,
			DropProb:    0.01,
			DelayProb:   0.02,
			MaxDelay:    2 * time.Millisecond,
			PartialProb: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		px.SetEnabled(false) // generation runs fault-free
		dialAddr = px.Addr()
	}

	boot, err := remote.Dial(dialAddr, remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bdb, err := oodb.New(boot, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := hyper.Generate(bdb, hyper.GenConfig{LeafLevel: level, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	if err := bdb.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := bdb.Close(); err != nil {
		t.Fatal(err)
	}

	firstLeaf, lastLeaf := hyper.LevelIDs(level)
	leaves := int(lastLeaf - firstLeaf + 1)
	targets := make([]hyper.NodeID, writers)
	for u := range targets {
		j := u * (leaves / writers)
		if hyper.IsFormLeaf(j) {
			j = (j + 1) % leaves
		}
		targets[u] = firstLeaf + hyper.NodeID(j)
	}

	if faulty {
		px.SetEnabled(true)
	}
	commitsBefore, _, _ := srv.Stats()
	var retryMu sync.Mutex
	var retry remote.RetryStats
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for u := 0; u < writers; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			client, err := remote.Dial(dialAddr, remote.ClientOptions{
				RequestTimeout: 10 * time.Second,
				BackoffBase:    200 * time.Microsecond,
				BackoffMax:     5 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			db, err := oodb.New(client, oodb.DefaultOptions())
			if err != nil {
				client.Close()
				errs <- err
				return
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(int64(u) + 17))
			err = commitN(db, targets[u], perWriter, rng)
			r := client.RetryStats()
			retryMu.Lock()
			retry.Reconnects += r.Reconnects
			retry.Retries += r.Retries
			retry.CommitChecks += r.CommitChecks
			retry.CommitResends += r.CommitResends
			retry.CommitUnknowns += r.CommitUnknowns
			retryMu.Unlock()
			errs <- err
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if faulty {
		px.SetEnabled(false)
	}

	out := chaosWritersRun{retry: retry}
	out.commits, _, _ = srv.Stats()
	out.commits -= commitsBefore
	out.dupCommits, _ = srv.FaultStats()
	if faulty {
		out.faults = px.Stats()
	}

	check, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := oodb.New(check, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	for _, id := range targets {
		text, err := cdb.Text(id)
		if err != nil {
			t.Fatal(err)
		}
		out.texts = append(out.texts, text)
	}
	return out
}

// TestChaosWriters is the multi-writer fault-injection soak: four
// concurrent writers commit through group commit twice — once over a
// clean network, once through the dropping/delaying/frame-cutting
// proxy — and the final texts must be byte-for-byte identical, with
// the same number of transactions applied (duplicate resends absorbed
// by the token ring, even when they land inside another leader's
// batch).
func TestChaosWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	control := runChaosWriters(t, false)
	chaos := runChaosWriters(t, true)

	if chaos.faults.Total() == 0 {
		t.Fatal("proxy injected no faults; the soak exercised nothing")
	}
	t.Logf("faults injected: %+v", chaos.faults)
	t.Logf("client recovery: %+v, dup commits absorbed: %d", chaos.retry, chaos.dupCommits)

	if control.retry.Reconnects != 0 || control.retry.Retries != 0 {
		t.Fatalf("clean run used retries: %+v", control.retry)
	}
	for i := range control.texts {
		if control.texts[i] != chaos.texts[i] {
			t.Fatalf("writer %d: final text diverged under faults", i)
		}
	}
	if chaos.commits != control.commits {
		t.Fatalf("faulted run applied %d commits, clean run %d", chaos.commits, control.commits)
	}
	if chaos.retry.CommitUnknowns != 0 {
		t.Fatalf("%d commits left unresolved", chaos.retry.CommitUnknowns)
	}
	if chaos.retry.CommitResends > chaos.retry.CommitChecks {
		t.Fatalf("resends (%d) not covered by verification probes (%d)",
			chaos.retry.CommitResends, chaos.retry.CommitChecks)
	}
}
