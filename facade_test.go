package hypermodel_test

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"hypermodel"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quick start describes: open, generate, operate, benchmark, render.
func TestFacadeEndToEnd(t *testing.T) {
	db, err := hypermodel.OpenOODB(filepath.Join(t.TempDir(), "f.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	lay, tm, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lay.Total() != hypermodel.TotalNodes(3) || tm.Total <= 0 {
		t.Fatalf("layout/timings wrong: %d %v", lay.Total(), tm.Total)
	}

	rng := rand.New(rand.NewSource(1))
	if _, err := hypermodel.NameLookup(db, lay.RandomNode(rng)); err != nil {
		t.Fatal(err)
	}
	ids, err := hypermodel.Closure1N(db, lay.RandomClosureStart(rng))
	if err != nil || len(ids) == 0 {
		t.Fatalf("closure: %v %v", ids, err)
	}
	if err := hypermodel.SaveNodeList(db, "facade", ids); err != nil {
		t.Fatal(err)
	}
	back, err := hypermodel.LoadNodeList(db, "facade")
	if err != nil || len(back) != len(ids) {
		t.Fatalf("list round trip: %v %v", back, err)
	}

	results, err := hypermodel.RunBenchmark(db, lay, hypermodel.BenchConfig{
		Iterations: 3, Ops: []string{"O1", "O10"},
	})
	if err != nil || len(results) != 2 {
		t.Fatalf("benchmark: %v %v", results, err)
	}
	var buf bytes.Buffer
	hypermodel.RenderResults(&buf, "facade", results)
	if !strings.Contains(buf.String(), "closure1N") {
		t.Fatalf("render: %s", buf.String())
	}
}

// TestFacadeServerRoundTrip drives the workstation/server path through
// the public API only.
func TestFacadeServerRoundTrip(t *testing.T) {
	addr, stop, err := hypermodel.StartServer(filepath.Join(t.TempDir(), "srv.db"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	db, err := hypermodel.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lay, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	other, err := hypermodel.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	n, err := hypermodel.SeqScan(other, lay.FirstID(), lay.LastID())
	if err != nil || n != lay.Total() {
		t.Fatalf("scan over server: %d (%v)", n, err)
	}
}

func TestFacadeBackendsAndErrors(t *testing.T) {
	rel, err := hypermodel.OpenRelDB(filepath.Join(t.TempDir(), "r.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer rel.Close()
	if _, err := rel.OIDOf(1); !errors.Is(err, hypermodel.ErrNoOIDs) {
		t.Fatalf("reldb OIDOf: %v", err)
	}
	mem, err := hypermodel.OpenMemDB("")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.Node(1); !errors.Is(err, hypermodel.ErrNotFound) {
		t.Fatalf("memdb missing node: %v", err)
	}
}
