# The HyperModel Benchmark — common tasks.

GO ?= go

.PHONY: all build test test-race bench bench-paper fuzz vet lint fmt examples clean check chaos stress writers externalcheck crash cluster

all: build test

# Pre-merge gate: static checks, the race detector, the concurrency
# stress, the chaos soak, the crash/corruption sweeps, the sharded
# cluster gate, and a short fuzz smoke of the wire-protocol decoder.
check: vet test-race stress chaos writers crash cluster externalcheck
	$(GO) test -fuzz FuzzDecodeCommit -fuzztime 5s ./internal/remote

# Single-writer/multi-reader stress: concurrent readers race a
# committing writer under the race detector, and every answer must
# match single-threaded ground truth (see concurrent_stress_test.go
# and the backendtest ConcurrentReads conformance check).
stress:
	$(GO) test -race -run Concurrent -count=1 -v .

# Fault-injection soak: the full benchmark matrix over the page server
# behind a proxy dropping, delaying and mid-frame-cutting transfers;
# results must match a fault-free run and commits apply exactly once.
chaos:
	$(GO) test -race -run 'TestChaosRemoteMatrix|TestClientThroughFlakyProxy' -count=1 -v . ./internal/remote

# Multi-writer gate for group commit: W concurrent writer clients on
# disjoint and contended pages (exactly-once rotation ground truth),
# the serialized baseline, the group-commit crash-point sweeps, and
# the 4-writer chaos soak — all under the race detector.
writers:
	$(GO) test -race -run 'Writers|GroupCommitCrash' -count=1 -v . ./internal/storage/store

# Power-cut and corruption gate (DESIGN.md §13): the deterministic
# crash-point sweeps over every fsync barrier and mid-write tear
# point, the all-or-nothing group-commit cuts, the corruption
# taxonomy on every read path (pager, views, snapshots, remote), the
# scrub pass, and the crash FS's own settle-model tests — all on the
# in-memory VFS, byte-deterministic across machines.
crash:
	$(GO) test -run 'Crash|PowerCut|Torn|TruncationPoint|Scrub|Corrupt|Settle|Sector|Degrades' -count=1 -v ./internal/storage/... ./internal/remote

# Sharded cluster gate (DESIGN.md §14): the routing edge cases and the
# cross-shard 2PC paths (commit, conflict, in-doubt resolution,
# presumed abort) under the race detector, the store's prepared-state
# durability sweeps, and a short E20 run whose chaos soak kills and
# restarts a shard mid-run under cross-shard traffic and checks
# atomicity, exactly-once bounds, and byte-identical reads.
cluster:
	$(GO) test -race -run Cluster -count=1 -v ./internal/remote
	$(GO) test -run 'Prepare|Decide|TokenKeep' -count=1 ./internal/storage/store
	$(GO) run ./cmd/hyperbench -exp shards -shards 2 -window 250ms -rtt 500us -soak 1s

# The external consumer module: compiles and runs against the exported
# facade only (it cannot import internal packages), so it breaks first
# when the public API leaks internal types or semantics.
externalcheck:
	cd testmod && $(GO) mod tidy -diff && $(GO) test ./...

build:
	$(GO) build ./...

vet: lint
	$(GO) vet ./...

# The repo's own analyzers (internal/analysis, DESIGN.md §9) run as a
# vet tool so test variants are covered too. Exit 1 means findings.
lint:
	$(GO) build -o bin/hyperlint ./cmd/hyperlint
	$(GO) vet -vettool=$(CURDIR)/bin/hyperlint ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The Go benchmark suite (one bench per paper table/figure plus
# storage-layer micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# The paper's full evaluation: all experiments, all backends, level 4.
# Use LEVEL=5 or LEVEL=6 for the larger databases.
LEVEL ?= 4
bench-paper:
	$(GO) run ./cmd/hyperbench -level $(LEVEL)

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzDecodeObject -fuzztime 10s ./internal/backend/oodb
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/query
	$(GO) test -fuzz FuzzDecodeCommit -fuzztime 10s ./internal/remote
	$(GO) test -fuzz FuzzClientDemux -fuzztime 10s ./internal/remote
	$(GO) test -fuzz FuzzServerStream -fuzztime 10s ./internal/remote
	$(GO) test -fuzz FuzzDecodeBitmap -fuzztime 10s ./internal/hyper
	$(GO) test -fuzz FuzzDecodePolicy -fuzztime 10s ./internal/acl

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/archive
	$(GO) run ./examples/linkdistance
	$(GO) run ./examples/multiuser
	$(GO) run ./examples/editor

clean:
	rm -f test_output.txt bench_output.txt
