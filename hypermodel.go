// Package hypermodel is a full reproduction of "The HyperModel
// Benchmark" (Berre, Anderson, Mallison; Tektronix/OGC TR CS/E-88-031,
// EDBT 1990): the generic hypertext schema, the three-size test
// database generator, all twenty benchmark operations, the cold/warm
// measurement protocol, and three complete database backends to run
// them on — an object store with clustering (the GemStone/Vbase
// architecture class), a relational mapping, and an in-memory image —
// plus a TCP page server for the paper's workstation/server
// architecture.
//
// Quick start:
//
//	db, err := hypermodel.OpenOODB("bench.db")
//	...
//	layout, timings, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 4, Seed: 1})
//	results, err := hypermodel.RunBenchmark(db, layout, hypermodel.BenchConfig{})
//	hypermodel.RenderResults(os.Stdout, "level 4, oodb", results)
//
// Every constructor (OpenOODB, OpenRelDB, OpenMemDB, DialServer and
// their ...With variants) returns the DB interface: the twenty-
// operation Backend mapping plus transaction control — Commit, Abort,
// Snapshot and CommitStats. Earlier releases returned concrete
// pointers from internal packages, which downstream code could not
// even name in a variable declaration; code that relied on those
// concrete types compiles unchanged against DB unless it referenced
// the pointer type itself, in which case declaring the variable as
// hypermodel.DB is the whole migration.
//
// The package is a facade over the implementation packages; everything
// here is stable, documented API for downstream users. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the reproduced
// evaluation.
package hypermodel

import (
	"io"
	"os"

	"hypermodel/internal/backend/memdb"
	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/backend/reldb"
	"hypermodel/internal/harness"
	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
	"hypermodel/internal/storage/store"
)

// Core model types (Figure 1 of the paper).
type (
	// NodeID is the uniqueId attribute: dense numbering from 1.
	NodeID = hyper.NodeID
	// Kind is a node's class: Node, TextNode, FormNode or dynamic.
	Kind = hyper.Kind
	// Node carries the per-node attributes.
	Node = hyper.Node
	// Edge is one refTo/refFrom association with offset attributes.
	Edge = hyper.Edge
	// Rect is a bitmap subrectangle (formNodeEdit).
	Rect = hyper.Rect
	// Bitmap is FormNode content.
	Bitmap = hyper.Bitmap
	// OID is a backend object identifier.
	OID = hyper.OID
	// NodeDist pairs a node with its weighted distance (O18).
	NodeDist = hyper.NodeDist
)

// Node kinds.
const (
	KindInternal = hyper.KindInternal
	KindText     = hyper.KindText
	KindForm     = hyper.KindForm
	KindUser     = hyper.KindUser
)

// Backend is the conceptual-schema interface every database mapping
// implements; all benchmark operations run against it.
type Backend = hyper.Backend

// DB is what every constructor returns: the Backend mapping plus the
// transaction control all realizations support — Abort for rollback,
// Snapshot for version-pinned read views, CommitStats for the
// commit/flush counters. Optional capabilities (SchemaModifier,
// StatsReporter, ...) remain discoverable by type assertion.
type DB = hyper.DB

// CommitStats are a database's transaction counters (see DB): commits,
// optimistic-validation conflicts, durable flushes, and the group-
// commit batching evidence — Commits/Flushes is the amortization
// factor.
type CommitStats = hyper.CommitStats

// Optional backend extensions.
type (
	// SchemaModifier adds classes and attributes at runtime (R4).
	SchemaModifier = hyper.SchemaModifier
	// Aborter rolls back uncommitted changes.
	Aborter = hyper.Aborter
	// StatsReporter exposes cache counters (cold/warm evidence).
	StatsReporter = hyper.StatsReporter
)

// Sentinel errors.
var (
	// ErrNotFound reports a missing node, blob or edge.
	ErrNotFound = hyper.ErrNotFound
	// ErrNoOIDs reports a backend without object identifiers (O2 is
	// then "not applicable").
	ErrNoOIDs = hyper.ErrNoOIDs
	// ErrWrongKind reports a content operation on the wrong class.
	ErrWrongKind = hyper.ErrWrongKind
	// ErrConflict reports failed optimistic validation (multi-user).
	ErrConflict = remote.ErrConflict
	// ErrCommitUnknown reports a commit whose outcome could not be
	// re-verified after the connection to the page server died
	// mid-commit (the client never blindly resends a commit).
	ErrCommitUnknown = remote.ErrCommitUnknown
	// ErrNoSnapshots reports a DB.Snapshot call on a backend without
	// version retention (the image backend, or a page-server session).
	ErrNoSnapshots = hyper.ErrNoSnapshots
	// ErrSnapshotTooOld reports a read through a snapshot whose pinned
	// version has aged out of the store's version ring; re-snapshot to
	// continue.
	ErrSnapshotTooOld = store.ErrSnapshotTooOld
)

// Generation (§5.2).
type (
	// GenConfig parameterizes test-database generation.
	GenConfig = hyper.GenConfig
	// GenTimings reports the §5.3 creation measurements.
	GenTimings = hyper.GenTimings
	// Layout lets the benchmark driver draw inputs (random node on
	// level 3, random text node, ...).
	Layout = hyper.Layout
	// Order selects the creation order of the generated tree.
	Order = hyper.Order
)

// Creation orders.
const (
	// OrderDFS creates subtrees depth-first (clustering-friendly).
	OrderDFS = hyper.OrderDFS
	// OrderBFS creates level by level.
	OrderBFS = hyper.OrderBFS
)

// Generate builds the test database on any backend: the fan-out-5 1-N
// tree to cfg.LeafLevel (4, 5 or 6 in the paper), the M-N aggregation,
// the attributed association, TextNode and FormNode contents.
func Generate(b Backend, cfg GenConfig) (Layout, *GenTimings, error) {
	return hyper.Generate(b, cfg)
}

// StorageOptions tune the page store under a disk-backed backend. The
// zero value selects the defaults noted on each field.
type StorageOptions struct {
	// PoolPages is the buffer-pool capacity in pages (default 1024
	// pages = 4 MiB).
	PoolPages int
	// CheckpointBytes triggers an automatic checkpoint when the WAL
	// grows past this size (default 8 MiB; negative disables automatic
	// checkpoints).
	CheckpointBytes int64
	// NoSync makes commits skip the WAL fsync — faster, not crash-safe;
	// for bulk loads that checkpoint at the end.
	NoSync bool
	// VersionRing is how many committed versions stay pinnable for
	// DB.Snapshot (default 8; negative disables retention, so a
	// snapshot goes stale at the first commit after the pin).
	VersionRing int
}

func (o StorageOptions) toStore() store.Options {
	return store.Options{
		PoolPages:       o.PoolPages,
		CheckpointBytes: o.CheckpointBytes,
		NoSync:          o.NoSync,
		VersionRing:     o.VersionRing,
	}
}

// OODBOptions configure the object-database backend.
type OODBOptions struct {
	// Clustering places children next to their parents along the 1-N
	// hierarchy (§5.2). OpenOODB enables it; the E11 ablation opens
	// with it off.
	Clustering bool
	// Scatter deliberately de-clusters object placement (the E11 "no
	// clustering" configuration). Ignored when Clustering is true.
	Scatter bool
	// Storage tunes the underlying page store.
	Storage StorageOptions
}

// RelDBOptions configure the relational backend.
type RelDBOptions struct {
	// Storage tunes the underlying page store.
	Storage StorageOptions
}

// MemDBOptions configure the in-memory image backend.
type MemDBOptions struct {
	// Volatile ignores the path: no snapshot file is read or written,
	// Commit and DropCaches are no-ops, Abort cannot roll back.
	Volatile bool
}

// OpenOODB opens (creating if needed) the object-database mapping: a
// single-file object store with WAL crash recovery, a buffer pool,
// key/attribute B+tree indexes, and clustering along the 1-N
// hierarchy.
func OpenOODB(path string) (DB, error) {
	return OpenOODBWith(path, OODBOptions{Clustering: true})
}

// OpenOODBWith opens the object-database mapping with explicit
// options (e.g. clustering off for the E11 ablation).
func OpenOODBWith(path string, opts OODBOptions) (DB, error) {
	db, err := oodb.Open(path, oodb.Options{
		Clustering: opts.Clustering,
		Scatter:    opts.Scatter,
		Store:      opts.Storage.toStore(),
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// OpenRelDB opens the relational mapping: NODE/CHILD/PART/REF tables
// and attribute indexes over the same storage engine, with content out
// of line and no object identifiers.
func OpenRelDB(path string) (DB, error) {
	return OpenRelDBWith(path, RelDBOptions{})
}

// OpenRelDBWith opens the relational mapping with explicit options.
func OpenRelDBWith(path string, opts RelDBOptions) (DB, error) {
	db, err := reldb.Open(path, reldb.Options{Store: opts.Storage.toStore()})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// OpenMemDB opens the in-memory image mapping with whole-image
// snapshot persistence (an empty path keeps it volatile).
func OpenMemDB(path string) (DB, error) {
	return OpenMemDBWith(path, MemDBOptions{})
}

// OpenMemDBWith opens the image mapping with explicit options.
func OpenMemDBWith(path string, opts MemDBOptions) (DB, error) {
	if opts.Volatile {
		path = ""
	}
	db, err := memdb.Open(path)
	if err != nil {
		return nil, err
	}
	return db, nil
}

// ClientOptions configure the workstation client: cache size, the
// per-request deadline (RequestTimeout), the reconnect/retry policy
// (RetryLimit, BackoffBase, BackoffMax), and the pipelining shape —
// Conns sizes the connection pool and MaxInflight caps concurrent
// in-flight requests (0 = unbounded; Conns=1, MaxInflight=1 restores
// the strict request/response discipline). The zero value uses
// sensible defaults: no deadline, 8 retries, 2ms–250ms backoff, one
// multiplexed connection.
type ClientOptions = remote.ClientOptions

// ClientRetryStats are the workstation client's fault-tolerance
// counters: reconnects, idempotent retries, batch downgrades, and the
// commit-uncertainty resolution counts.
type ClientRetryStats = remote.RetryStats

// ClientInflightStats describe how deeply the workstation client
// pipelined the wire: peak concurrent in-flight requests, cumulative
// wait behind the MaxInflight cap, unknown-ID responses dropped by the
// demultiplexer, and per-opcode round-trip latency histograms.
type ClientInflightStats = remote.InflightStats

// DialServer connects to a hyperserver page server and returns the
// object-database mapping running over the workstation client — the
// paper's R6 architecture. Cold runs fetch pages from the server; the
// warm working set lives in the workstation cache.
func DialServer(addr string) (DB, error) {
	return DialServerWith(addr, ClientOptions{})
}

// DialServerWith is DialServer with explicit client options — request
// deadlines and reconnect backoff for flaky networks.
func DialServerWith(addr string, opts ClientOptions) (DB, error) {
	c, err := remote.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	db, err := oodb.New(c, oodb.DefaultOptions())
	if err != nil {
		c.Close()
		return nil, err
	}
	return db, nil
}

// ClusterOptions configure a shard-cluster client session; the Client
// field applies to every per-shard connection.
type ClusterOptions = remote.ClusterOptions

// ClusterRouteTable maps a shard cluster: Shards[i] is the address of
// shard i, Epoch versions the mapping. Every shard serves its table to
// clients, which adopt only strictly newer epochs.
type ClusterRouteTable = remote.RouteTable

// ClusterStats are a cluster session's routing and commit counters:
// one-shard fast commits, two-phase cross-shard commits and aborts,
// and routing-table refresh activity.
type ClusterStats = remote.ClusterStats

// DialCluster connects to a horizontally sharded page service,
// bootstrapping the routing table from any one reachable shard, and
// returns the object-database mapping over the cluster session.
// Transactions whose footprint stays on one shard commit exactly as
// against a single server; cross-shard transactions run two-phase
// commit transparently.
func DialCluster(seed string) (DB, error) {
	return DialClusterWith(seed, ClusterOptions{})
}

// DialClusterWith is DialCluster with explicit options.
func DialClusterWith(seed string, opts ClusterOptions) (DB, error) {
	cc, err := remote.DialCluster(seed, opts)
	if err != nil {
		return nil, err
	}
	db, err := oodb.New(cc, oodb.DefaultOptions())
	if err != nil {
		cc.Close()
		return nil, err
	}
	return db, nil
}

// DialClusterTable dials every shard of an explicitly supplied routing
// table — for deployments that distribute the table out of band.
func DialClusterTable(table ClusterRouteTable, opts ClusterOptions) (DB, error) {
	cc, err := remote.DialClusterTable(table, opts)
	if err != nil {
		return nil, err
	}
	db, err := oodb.New(cc, oodb.DefaultOptions())
	if err != nil {
		cc.Close()
		return nil, err
	}
	return db, nil
}

// StartServer opens (or creates) the database at path and serves it as
// a page server on addr ("127.0.0.1:0" picks a free port). It returns
// the bound address and a stop function that shuts the server down and
// closes the database.
func StartServer(path, addr string) (boundAddr string, stop func() error, err error) {
	st, err := store.Open(path, nil)
	if err != nil {
		return "", nil, err
	}
	srv := remote.NewServer(st)
	a, err := srv.ListenAndServe(addr)
	if err != nil {
		st.Close()
		return "", nil, err
	}
	return a.String(), func() error {
		if err := srv.Close(); err != nil {
			st.Close()
			return err
		}
		return st.Close()
	}, nil
}

// ScrubReport is the full accounting of a database file's at-rest
// state produced by ScrubDatabase: per-page damage, free-list and meta
// integrity, and the WAL scan.
type ScrubReport = store.ScrubReport

// PageDamage describes one damaged page in a ScrubReport.
type PageDamage = store.PageDamage

// ScrubDatabase opens the database file at path and runs a full scrub
// pass: every page, the free list, the meta page, and the write-ahead
// log are validated, and all damage is reported rather than failing on
// the first bad page. Opening replays any committed WAL tail first, so
// the report reflects the recovered state — exactly what readers would
// see. The path must name an existing database file; unlike the Open
// functions, ScrubDatabase never creates one.
func ScrubDatabase(path string) (*ScrubReport, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	st, err := store.Open(path, nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Scrub(), nil
}

// The twenty benchmark operations (§6). Each takes the backend and the
// operation's input and returns references, never node copies.
var (
	// NameLookup is O1: hundred attribute by uniqueId.
	NameLookup = hyper.NameLookup
	// NameOIDLookup is O2: hundred attribute by object identifier.
	NameOIDLookup = hyper.NameOIDLookup
	// RangeLookupHundred is O3: hundred in [x, x+9] (10%).
	RangeLookupHundred = hyper.RangeLookupHundred
	// RangeLookupMillion is O4: million in [x, x+9999] (1%).
	RangeLookupMillion = hyper.RangeLookupMillion
	// GroupLookup1N is O5A: ordered children.
	GroupLookup1N = hyper.GroupLookup1N
	// GroupLookupMN is O5B: parts.
	GroupLookupMN = hyper.GroupLookupMN
	// GroupLookupMNAtt is O6: referenced node(s).
	GroupLookupMNAtt = hyper.GroupLookupMNAtt
	// RefLookup1N is O7A: parent.
	RefLookup1N = hyper.RefLookup1N
	// RefLookupMN is O7B: wholes.
	RefLookupMN = hyper.RefLookupMN
	// RefLookupMNAtt is O8: referencing nodes.
	RefLookupMNAtt = hyper.RefLookupMNAtt
	// SeqScan is O9: visit every node's ten attribute.
	SeqScan = hyper.SeqScan
	// Closure1N is O10: pre-order 1-N closure.
	Closure1N = hyper.Closure1N
	// Closure1NAttSum is O11: sum hundred over the closure.
	Closure1NAttSum = hyper.Closure1NAttSum
	// Closure1NAttSet is O12: hundred := 99 − hundred over the closure.
	Closure1NAttSet = hyper.Closure1NAttSet
	// Closure1NPred is O13: closure pruned at million ∈ [x, x+9999].
	Closure1NPred = hyper.Closure1NPred
	// ClosureMN is O14: M-N closure.
	ClosureMN = hyper.ClosureMN
	// ClosureMNAtt is O15: attributed closure to a depth (25).
	ClosureMNAtt = hyper.ClosureMNAtt
	// TextNodeEdit is O16: version1 ↔ version-2 substitution.
	TextNodeEdit = hyper.TextNodeEdit
	// FormNodeEdit is O17: invert a bitmap subrectangle.
	FormNodeEdit = hyper.FormNodeEdit
	// ClosureMNAttLinkSum is O18: nodes with offsetTo distances.
	ClosureMNAttLinkSum = hyper.ClosureMNAttLinkSum
	// SaveNodeList stores a closure result in the database (§6.5).
	SaveNodeList = hyper.SaveNodeList
	// LoadNodeList retrieves a stored closure result.
	LoadNodeList = hyper.LoadNodeList
)

// Benchmark harness (§6 protocol: 50 cold, commit, 50 warm, close).
type (
	// BenchConfig parameterizes a run (iterations default to the
	// paper's 50, depth to 25).
	BenchConfig = harness.Config
	// OpResult is one operation's cold/warm measurement.
	OpResult = harness.OpResult
)

// RunBenchmark executes the benchmark operations under the paper's
// protocol and returns the result matrix.
func RunBenchmark(b Backend, lay Layout, cfg BenchConfig) ([]OpResult, error) {
	return harness.Run(b, lay, cfg)
}

// RenderResults writes the result matrix as the paper-style table.
func RenderResults(w io.Writer, title string, results []OpResult) {
	harness.RenderOperations(w, title, results)
}

// Structural constants of the test databases (§5.2).
const (
	// FanOut is the 1-N tree fan-out (5).
	FanOut = hyper.FanOut
)

// TotalNodes returns the node count of a database with leaves on the
// given level: 781, 3 906 and 19 531 for the paper's levels 4–6.
func TotalNodes(leafLevel int) int { return hyper.TotalNodes(leafLevel) }
