module hypermodel

go 1.22
