package harness

import (
	"fmt"
	"io"
	"strings"

	"hypermodel/internal/hyper"
	"hypermodel/internal/stats"
)

// RenderOperations writes the §6 result matrix as a text table: one
// row per operation, cold and warm ms/node, and the cold/warm ratio
// (the cacheing effect the protocol isolates).
func RenderOperations(w io.Writer, title string, results []OpResult) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-5s %-22s %12s %12s %8s %10s %10s  %s\n",
		"op", "name", "cold", "warm", "ratio", "coldreads", "warmreads", "unit")
	for _, r := range results {
		if r.NA {
			fmt.Fprintf(w, "%-5s %-22s %12s %12s %8s %10s %10s  n/a: %s\n",
				r.ID, r.Name, "-", "-", "-", "-", "-", r.Note)
			continue
		}
		unit := "ms/node"
		cold, warm := r.Cold.MsPerNode(), r.Warm.MsPerNode()
		if r.PerOp {
			unit = "ms/op"
			cold, warm = r.Cold.MsPerOp(), r.Warm.MsPerOp()
		}
		ratio := "-"
		if warm > 0 {
			ratio = fmt.Sprintf("%.1fx", cold/warm)
		}
		fmt.Fprintf(w, "%-5s %-22s %12s %12s %8s %10d %10d  %s\n",
			r.ID, r.Name, stats.FormatMs(cold), stats.FormatMs(warm), ratio,
			r.ColdReads, r.WarmReads, unit)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the matrix as CSV for downstream plotting.
func RenderCSV(w io.Writer, backend string, level int, results []OpResult) {
	fmt.Fprintln(w, "backend,level,op,name,unit,cold_ms,warm_ms,cold_samples,warm_samples")
	for _, r := range results {
		if r.NA {
			continue
		}
		unit := "ms/node"
		cold, warm := r.Cold.MsPerNode(), r.Warm.MsPerNode()
		if r.PerOp {
			unit = "ms/op"
			cold, warm = r.Cold.MsPerOp(), r.Warm.MsPerOp()
		}
		fmt.Fprintf(w, "%s,%d,%s,%s,%s,%.6f,%.6f,%d,%d\n",
			backend, level, r.ID, r.Name, unit, cold, warm, r.Cold.N(), r.Warm.N())
	}
}

// RenderCreation writes the §5.3 database-creation table from the
// generator's timings.
func RenderCreation(w io.Writer, title string, tm *hyper.GenTimings) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-28s %10s %10s %14s\n", "phase", "count", "total", "ms/item")
	row := func(name string, count int, d float64) {
		per := 0.0
		if count > 0 {
			per = d / float64(count)
		}
		fmt.Fprintf(w, "%-28s %10d %9.1fms %14s\n", name, count, d, stats.FormatMs(per))
	}
	row("create internal nodes", tm.InternalCount, ms(tm.InternalNodes))
	row("create leaf nodes", tm.LeafCount, ms(tm.LeafNodes))
	row("create 1-N relationships", tm.ChildRelCount, ms(tm.ChildRels))
	row("create M-N relationships", tm.PartRelCount, ms(tm.PartRels))
	row("create M-N att relationships", tm.RefRelCount, ms(tm.RefRels))
	fmt.Fprintf(w, "%-28s %10s %9.1fms\n", "final commit", "", ms(tm.Commit))
	fmt.Fprintf(w, "%-28s %10s %9.1fms\n", "total", "", ms(tm.Total))
	fmt.Fprintln(w)
}

func ms(d interface{ Nanoseconds() int64 }) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
