package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hypermodel/internal/hyper"
)

// smallCfg keeps tests quick: 6 iterations instead of 50.
var smallCfg = Config{Iterations: 6, Seed: 1, Depth: 25}

func TestRunAllOperationsOnEveryBackend(t *testing.T) {
	for _, kind := range AllBackends {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			b, lay, tm, err := Build(kind, t.TempDir(), 3, 7)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if tm.InternalCount+tm.LeafCount != lay.Total() {
				t.Fatalf("creation counted %d nodes, want %d", tm.InternalCount+tm.LeafCount, lay.Total())
			}
			results, err := Run(b, lay, smallCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 20 {
				t.Fatalf("got %d operation rows, want 20", len(results))
			}
			seen := map[string]bool{}
			for _, r := range results {
				seen[r.ID] = true
				if r.NA {
					if kind == KindRelDB && r.ID == "O2" {
						continue // expected: no OIDs in the relational mapping
					}
					if r.ID == "O17" {
						t.Fatalf("O17 n/a on a level-3 database (has one form node)")
					}
					t.Fatalf("%s unexpectedly n/a: %s", r.ID, r.Note)
				}
				if r.Cold.N() != smallCfg.Iterations || r.Warm.N() != smallCfg.Iterations {
					t.Fatalf("%s ran %d/%d iterations", r.ID, r.Cold.N(), r.Warm.N())
				}
				if r.Cold.MsPerNode() < 0 || r.Warm.MsPerNode() < 0 {
					t.Fatalf("%s negative timing", r.ID)
				}
			}
			for _, want := range []string{"O1", "O2", "O3", "O4", "O5A", "O5B", "O6", "O7A", "O7B", "O8", "O9", "O10", "O11", "O12", "O13", "O14", "O15", "O16", "O17", "O18"} {
				if !seen[want] {
					t.Fatalf("operation %s missing from results", want)
				}
			}
		})
	}
}

func TestOpsFilter(t *testing.T) {
	b, lay, _, err := Build(KindMemDB, t.TempDir(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := smallCfg
	cfg.Ops = []string{"O1", "O10"}
	results, err := Run(b, lay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "O1" || results[1].ID != "O10" {
		t.Fatalf("filter returned %v", results)
	}
}

// TestProtocolLeavesDatabaseStable verifies the update operations
// restore state (O12 and O16 run in pairs), so repeated harness runs
// see the same database.
func TestProtocolLeavesDatabaseStable(t *testing.T) {
	b, lay, _, err := Build(KindOODB, t.TempDir(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sumBefore, _, err := hyper.Closure1NAttSum(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg
	cfg.Ops = []string{"O12", "O16"}
	if _, err := Run(b, lay, cfg); err != nil {
		t.Fatal(err)
	}
	sumAfter, _, err := hyper.Closure1NAttSum(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sumBefore != sumAfter {
		t.Fatalf("update operations did not restore state: %d -> %d", sumBefore, sumAfter)
	}
}

// TestColdReadsWarmDoesNot is the E10 sanity check via cache evidence
// (wall time is too noisy at small scale): on the page-store backend
// the cold pass must issue disk reads and the warm rerun of the same
// inputs must not.
func TestColdReadsWarmDoesNot(t *testing.T) {
	b, lay, _, err := Build(KindOODB, t.TempDir(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{Iterations: 10, Seed: 2, Depth: 25, Ops: []string{"O10"}}
	results, err := Run(b, lay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.ColdReads == 0 {
		t.Fatal("cold pass issued no disk reads")
	}
	if r.WarmReads != 0 {
		t.Fatalf("warm pass issued %d disk reads (working set fits the pool)", r.WarmReads)
	}
}

func TestRenderers(t *testing.T) {
	b, lay, tm, err := Build(KindMemDB, t.TempDir(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := smallCfg
	cfg.Ops = []string{"O1", "O16"}
	results, err := Run(b, lay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderOperations(&buf, "test table", results)
	out := buf.String()
	if !strings.Contains(out, "nameLookup") || !strings.Contains(out, "ms/op") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	buf.Reset()
	RenderCSV(&buf, "memdb", 2, results)
	if lines := strings.Count(buf.String(), "\n"); lines != 3 { // header + 2 rows
		t.Fatalf("csv has %d lines:\n%s", lines, buf.String())
	}
	buf.Reset()
	RenderCreation(&buf, "creation", tm)
	if !strings.Contains(buf.String(), "create internal nodes") {
		t.Fatal("creation table missing phases")
	}
}

func TestClusterAblationShape(t *testing.T) {
	results, err := RunClusterAblation(t.TempDir(), 4, 5, Config{Iterations: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d variants", len(results))
	}
	clustered, scattered := results[0], results[1]
	// The headline effect: the clustered cold 1-N closure touches
	// fewer pages than the unclustered one.
	if clustered.Reads1NCold >= scattered.Reads1NCold {
		t.Fatalf("clustering did not reduce cold reads: %d vs %d",
			clustered.Reads1NCold, scattered.Reads1NCold)
	}
	var buf bytes.Buffer
	RenderClusterAblation(&buf, results)
	if !strings.Contains(buf.String(), "clustered") {
		t.Fatal("ablation table empty")
	}
}

func TestExtensions(t *testing.T) {
	results, err := RunExtensions(t.TempDir(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d extension rows, want 6", len(results))
	}
	var buf bytes.Buffer
	RenderExtensions(&buf, results)
	for _, want := range []string{"R4", "R5", "R11"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("extensions table missing %s:\n%s", want, buf.String())
		}
	}
}

func TestMultiUser(t *testing.T) {
	results, err := RunMultiUser(t.TempDir(), 2, 5, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d configurations", len(results))
	}
	coop, contended := results[0], results[1]
	if coop.Conflicting || !contended.Conflicting {
		t.Fatal("configuration order wrong")
	}
	if contended.Aborts == 0 {
		t.Fatal("contended workload produced no optimistic aborts")
	}
	var buf bytes.Buffer
	RenderMultiUser(&buf, results)
	if !strings.Contains(buf.String(), "disjoint subtrees") {
		t.Fatal("multiuser table empty")
	}
}

func TestRemoteExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := RunRemote(t.TempDir(), 3, 6, Config{Iterations: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d settings", len(results))
	}
	var buf bytes.Buffer
	RenderRemote(&buf, results)
	if !strings.Contains(buf.String(), "page server") {
		t.Fatal("remote table empty")
	}
}

func TestCacheSweep(t *testing.T) {
	results, err := RunCacheSweep(t.TempDir(), 3, 8, []int{16, 2048}, Config{Iterations: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d pool configurations", len(results))
	}
	small, big := results[0], results[1]
	if small.PoolPages != 16 || big.PoolPages != 2048 {
		t.Fatalf("pool sizes wrong: %d %d", small.PoolPages, big.PoolPages)
	}
	// A pool big enough for the whole database must have the better
	// hit rate.
	if big.HitRate <= small.HitRate {
		t.Fatalf("hit rates: small pool %.3f, big pool %.3f", small.HitRate, big.HitRate)
	}
	var buf bytes.Buffer
	RenderCacheSweep(&buf, 3, results)
	if !strings.Contains(buf.String(), "pool pages") {
		t.Fatal("cache sweep table empty")
	}
}

func TestConcurrencySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := RunConcurrencySweep(t.TempDir(), 2, 5, []int{4}, 150*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d client counts", len(results))
	}
	r := results[0]
	if r.Clients != 4 {
		t.Fatalf("clients = %d", r.Clients)
	}
	if r.BaselineOps == 0 || r.PipelinedOps == 0 {
		t.Fatalf("a configuration did no work: baseline %d, pipelined %d",
			r.BaselineOps, r.PipelinedOps)
	}
	// Four goroutines over a pooled, multiplexing client must overlap
	// at least two requests at some point during the window.
	if r.MaxDepth < 2 {
		t.Fatalf("pipelined max depth = %d, want ≥2", r.MaxDepth)
	}
	var buf bytes.Buffer
	RenderConcurrencySweep(&buf, 2, results)
	if !strings.Contains(buf.String(), "wire throughput") {
		t.Fatal("concurrency table empty")
	}
}
