package harness

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hypermodel/internal/acl"
	"hypermodel/internal/backend/memdb"
	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/backend/reldb"
	"hypermodel/internal/fault"
	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
	"hypermodel/internal/stats"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
	"hypermodel/internal/txn"
	"hypermodel/internal/version"
)

// BackendKind names one of the three mappings.
type BackendKind string

// The backend axis of experiment E12.
const (
	KindOODB  BackendKind = "oodb"
	KindRelDB BackendKind = "reldb"
	KindMemDB BackendKind = "memdb"
)

// AllBackends lists the E12 comparison axis.
var AllBackends = []BackendKind{KindOODB, KindRelDB, KindMemDB}

// OpenBackend creates an empty backend of the given kind under dir.
func OpenBackend(kind BackendKind, dir string) (hyper.Backend, error) {
	switch kind {
	case KindOODB:
		return oodb.Open(filepath.Join(dir, "oodb.db"), oodb.DefaultOptions())
	case KindRelDB:
		return reldb.Open(filepath.Join(dir, "reldb.db"), reldb.Options{})
	case KindMemDB:
		return memdb.Open(filepath.Join(dir, "memdb.gob"))
	default:
		return nil, fmt.Errorf("harness: unknown backend %q", kind)
	}
}

// Build generates the level-sized test database on a fresh backend of
// the given kind and returns the open backend, its layout and the E1
// creation timings.
func Build(kind BackendKind, dir string, level int, seed int64) (hyper.Backend, hyper.Layout, *hyper.GenTimings, error) {
	b, err := OpenBackend(kind, dir)
	if err != nil {
		return nil, hyper.Layout{}, nil, err
	}
	lay, tm, err := hyper.Generate(b, hyper.GenConfig{LeafLevel: level, Seed: seed})
	if err != nil {
		b.Close()
		return nil, hyper.Layout{}, nil, err
	}
	return b, lay, tm, nil
}

// TimeOpen measures the "database open" operation — the seventh of the
// simple operations the HyperModel incorporates from /RUBE87/ — on an
// already-generated database: open plus the first node access.
func TimeOpen(kind BackendKind, dir string) (time.Duration, error) {
	start := time.Now()
	b, err := OpenBackend(kind, dir)
	if err != nil {
		return 0, err
	}
	if _, err := b.Node(1); err != nil {
		b.Close()
		return 0, err
	}
	elapsed := time.Since(start)
	return elapsed, b.Close()
}

// --- E11: clustering ablation ---

// ClusterResult is one configuration of the clustering ablation.
type ClusterResult struct {
	Config      string // "clustered (DFS + near hints)" etc.
	Closure1N   OpResult
	ClosureMN   OpResult
	Reads1NCold uint64 // disk reads issued by the cold closure1N pass
	ReadsMNCold uint64
}

// RunClusterAblation builds the same database with clustering on and
// off and measures the closure traversals on both — the paper's
// prediction is closure1N ≪ closureMN cold only when clustering
// follows the 1-N hierarchy.
func RunClusterAblation(dir string, level int, seed int64, cfg Config) ([]ClusterResult, error) {
	type variant struct {
		name       string
		clustering bool
		scatter    bool
		order      hyper.Order
	}
	variants := []variant{
		{"clustered (DFS + near hints)", true, false, hyper.OrderDFS},
		{"unclustered (scattered)", false, true, hyper.OrderBFS},
	}
	var out []ClusterResult
	for i, v := range variants {
		db, err := oodb.Open(filepath.Join(dir, fmt.Sprintf("cluster%d.db", i)), oodb.Options{Clustering: v.clustering, Scatter: v.scatter})
		if err != nil {
			return nil, err
		}
		lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: level, Seed: seed, Order: v.order})
		if err != nil {
			db.Close()
			return nil, err
		}
		run := func(opID string) (OpResult, uint64, error) {
			_, _, before := db.CacheStats()
			res, err := Run(db, lay, Config{Iterations: cfg.Iterations, Seed: cfg.Seed, Depth: cfg.Depth, Ops: []string{opID}})
			if err != nil {
				return OpResult{}, 0, err
			}
			_, _, after := db.CacheStats()
			return res[0], after - before, nil
		}
		r1, reads1, err := run("O10")
		if err != nil {
			db.Close()
			return nil, err
		}
		rm, readsM, err := run("O14")
		if err != nil {
			db.Close()
			return nil, err
		}
		out = append(out, ClusterResult{
			Config: v.name, Closure1N: r1, ClosureMN: rm,
			Reads1NCold: reads1, ReadsMNCold: readsM,
		})
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenderClusterAblation writes the E11 table.
func RenderClusterAblation(w io.Writer, results []ClusterResult) {
	title := "E11: clustering along the 1-N hierarchy (oodb)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-30s %14s %14s %10s %10s %10s\n",
		"configuration", "closure1N cold", "closureMN cold", "MN/1N", "1N reads", "MN reads")
	for _, r := range results {
		c1 := r.Closure1N.Cold.MsPerNode()
		cm := r.ClosureMN.Cold.MsPerNode()
		ratio := "-"
		if c1 > 0 {
			ratio = fmt.Sprintf("%.1fx", cm/c1)
		}
		fmt.Fprintf(w, "%-30s %14s %14s %10s %10d %10d\n",
			r.Config, stats.FormatMs(c1), stats.FormatMs(cm), ratio, r.Reads1NCold, r.ReadsMNCold)
	}
	fmt.Fprintln(w)
}

// --- E16: cache-size sensitivity ---

// CacheSweepResult is one buffer pool configuration.
type CacheSweepResult struct {
	PoolPages int
	SeqScan   OpResult // O9: whole-structure working set
	Closure   OpResult // O10: small working set
	HitRate   float64  // pool hits / (hits+misses) across the runs
}

// RunCacheSweep measures how the buffer pool size changes warm-run
// behaviour (the paper's R7 discussion: "parts of the database have to
// be cached/checked-out to main memory in the workstations"). A pool
// smaller than the structure makes even the warm sequential scan
// re-read pages; small traversals stay cached much longer.
func RunCacheSweep(dir string, level int, seed int64, poolSizes []int, cfg Config) ([]CacheSweepResult, error) {
	var out []CacheSweepResult
	for i, pool := range poolSizes {
		db, err := oodb.Open(
			filepath.Join(dir, fmt.Sprintf("cache%d.db", i)),
			oodb.Options{Clustering: true, Store: store.Options{PoolPages: pool}},
		)
		if err != nil {
			return nil, err
		}
		lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: level, Seed: seed})
		if err != nil {
			db.Close()
			return nil, err
		}
		h0, m0, _ := db.CacheStats()
		results, err := Run(db, lay, Config{
			Iterations: cfg.Iterations, Seed: cfg.Seed, Depth: cfg.Depth,
			Ops: []string{"O9", "O10"},
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		h1, m1, _ := db.CacheStats()
		res := CacheSweepResult{PoolPages: pool}
		for _, r := range results {
			switch r.ID {
			case "O9":
				res.SeqScan = r
			case "O10":
				res.Closure = r
			}
		}
		if tot := float64((h1 - h0) + (m1 - m0)); tot > 0 {
			res.HitRate = float64(h1-h0) / tot
		}
		out = append(out, res)
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenderCacheSweep writes the E16 table.
func RenderCacheSweep(w io.Writer, level int, results []CacheSweepResult) {
	title := fmt.Sprintf("E16: buffer pool size vs warm behaviour (oodb, level %d)", level)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-12s %14s %14s %14s %14s %9s\n",
		"pool pages", "seqScan cold", "seqScan warm", "closure cold", "closure warm", "hit rate")
	for _, r := range results {
		fmt.Fprintf(w, "%-12d %14s %14s %14s %14s %8.1f%%\n",
			r.PoolPages,
			stats.FormatMs(r.SeqScan.Cold.MsPerNode()), stats.FormatMs(r.SeqScan.Warm.MsPerNode()),
			stats.FormatMs(r.Closure.Cold.MsPerNode()), stats.FormatMs(r.Closure.Warm.MsPerNode()),
			r.HitRate*100)
	}
	fmt.Fprintln(w)
}

// --- E13: workstation/server ---

// RemoteResult compares the same operations local vs over the page
// server, plus the R7 objects-per-second gate and (for the remote
// setting) the client's transport and fault-tolerance counters.
type RemoteResult struct {
	Setting      string
	Results      []OpResult
	WarmObjsPerS float64
	ColdObjsPerS float64

	// Client counters, remote setting only.
	HasClientStats bool
	Hits, Misses   uint64 // workstation cache
	Fetches        uint64 // pages fetched from the server
	Frames         uint64 // request frames sent (retries included)
	BatchFrames    uint64 // of which batched page fetches
	Retry          remote.RetryStats
	Inflight       remote.InflightStats
}

// RunRemote builds a database behind a page server, runs a traversal-
// heavy subset of the benchmark through a workstation client, and runs
// the identical subset on a local oodb for contrast.
func RunRemote(dir string, level int, seed int64, cfg Config) ([]RemoteResult, error) {
	subset := []string{"O1", "O5A", "O9", "O10", "O14"}

	// Local configuration.
	local, lay, _, err := Build(KindOODB, dir, level, seed)
	if err != nil {
		return nil, err
	}
	defer local.Close()
	localRes, err := Run(local, lay, Config{Iterations: cfg.Iterations, Seed: cfg.Seed, Depth: cfg.Depth, Ops: subset})
	if err != nil {
		return nil, err
	}

	// Server-backed configuration.
	st, err := store.Open(filepath.Join(dir, "remote.db"), nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	client, err := remote.Dial(addr.String(), remote.ClientOptions{
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	rdb, err := oodb.New(client, oodb.DefaultOptions())
	if err != nil {
		return nil, err
	}
	defer rdb.Close()
	rlay, _, err := hyper.Generate(rdb, hyper.GenConfig{LeafLevel: level, Seed: seed})
	if err != nil {
		return nil, err
	}
	remoteRes, err := Run(rdb, rlay, Config{Iterations: cfg.Iterations, Seed: cfg.Seed, Depth: cfg.Depth, Ops: subset})
	if err != nil {
		return nil, err
	}

	remoteRow := RemoteResult{
		Setting: "remote (DBMS on page server)", Results: remoteRes,
		HasClientStats: true, Retry: client.RetryStats(),
		Inflight: client.InflightStats(),
	}
	remoteRow.Hits, remoteRow.Misses, remoteRow.Fetches = client.CacheStats()
	remoteRow.Frames, remoteRow.BatchFrames = client.FrameStats()
	out := []RemoteResult{
		{Setting: "local (DBMS on workstation)", Results: localRes},
		remoteRow,
	}
	for i := range out {
		// R7: objects per second from the closure1N row (one object
		// activation per node).
		for _, r := range out[i].Results {
			if r.ID == "O10" {
				if msgo := r.Warm.MsPerNode(); msgo > 0 {
					out[i].WarmObjsPerS = 1000 / msgo
				}
				if msgo := r.Cold.MsPerNode(); msgo > 0 {
					out[i].ColdObjsPerS = 1000 / msgo
				}
			}
		}
	}
	return out, nil
}

// RenderRemote writes the E13 tables.
func RenderRemote(w io.Writer, results []RemoteResult) {
	for _, r := range results {
		RenderOperations(w, "E13: "+r.Setting, r.Results)
		fmt.Fprintf(w, "R7 gate (100–10,000 objects/s): cold %.0f obj/s, warm %.0f obj/s\n",
			r.ColdObjsPerS, r.WarmObjsPerS)
		if r.HasClientStats {
			fmt.Fprintf(w, "workstation cache: %d hits, %d misses, %d server fetches\n",
				r.Hits, r.Misses, r.Fetches)
			fmt.Fprintf(w, "transport: %d frames (%d batched)\n", r.Frames, r.BatchFrames)
			fmt.Fprintf(w, "fault tolerance: %d reconnects, %d retries, %d downgrades, "+
				"%d commit checks, %d commit resends, %d commit unknowns\n",
				r.Retry.Reconnects, r.Retry.Retries, r.Retry.Downgrades,
				r.Retry.CommitChecks, r.Retry.CommitResends, r.Retry.CommitUnknowns)
			fmt.Fprintf(w, "pipelining: max depth %d, queue wait %s, %d unknown responses\n",
				r.Inflight.MaxDepth, r.Inflight.QueueWait.Round(time.Microsecond),
				r.Inflight.UnknownResponses)
			for _, op := range r.Inflight.Ops {
				fmt.Fprintf(w, "  %-12s %8d round trips, mean %s\n",
					op.Op, op.Count, op.Mean().Round(time.Microsecond))
			}
		}
		fmt.Fprintln(w)
	}
}

// --- E14: extensions (R4, R5, R11) ---

// ExtensionResult is one timed §6.8 extension exercise.
type ExtensionResult struct {
	Name    string
	PerOpMs float64
	Note    string
}

// RunExtensions times the three §6.8 extension exercises on an oodb
// database.
func RunExtensions(dir string, level int, seed int64) ([]ExtensionResult, error) {
	db, lay, _, err := Build(KindOODB, dir, level, seed)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(seed))
	var out []ExtensionResult
	timeIt := func(name, note string, n int, fn func(i int) error) error {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		if err := db.Commit(); err != nil {
			return err
		}
		out = append(out, ExtensionResult{
			Name:    name,
			PerOpMs: float64(time.Since(start).Nanoseconds()) / 1e6 / float64(n),
			Note:    note,
		})
		return nil
	}

	// (1) Schema modification: add DrawNode, an attribute, and values.
	sm := db.(hyper.SchemaModifier)
	kind, err := sm.AddClass("DrawNode")
	if err != nil {
		return nil, err
	}
	if err := sm.AddAttribute(kind, "circles"); err != nil {
		return nil, err
	}
	if err := timeIt("R4: set dynamic attribute", "new attribute on existing nodes", 50, func(i int) error {
		return sm.SetAttr(lay.RandomNode(rng), "circles", int64(i))
	}); err != nil {
		return nil, err
	}

	// (2) Versions: capture, previous, snapshot-at-time.
	vs := version.New(db)
	targets := make([]hyper.NodeID, 50)
	for i := range targets {
		targets[i] = lay.RandomNode(rng)
	}
	if err := timeIt("R5: create new version", "capture node state", 50, func(i int) error {
		_, err := vs.Capture(targets[i])
		return err
	}); err != nil {
		return nil, err
	}
	if err := timeIt("R5: find previous version", "read back the chain head", 50, func(i int) error {
		_, _, err := vs.Previous(targets[i])
		return err
	}); err != nil {
		return nil, err
	}

	// (3) Access control: protect a document, verify enforcement.
	doc := lay.RandomAtLevel(rng, 1)
	if err := timeIt("R11: set document policy", "public read-only subtree", 1, func(int) error {
		return acl.SetPolicy(db, doc, acl.Policy{Public: acl.Read})
	}); err != nil {
		return nil, err
	}
	guard := acl.NewGuard(db, "public")
	kids, err := db.Children(doc)
	if err != nil {
		return nil, err
	}
	if err := timeIt("R11: guarded read", "read inside protected document", 50, func(i int) error {
		_, err := guard.Hundred(kids[i%len(kids)])
		return err
	}); err != nil {
		return nil, err
	}
	denied := 0
	if err := timeIt("R11: guarded write (denied)", "write must be rejected", 50, func(i int) error {
		if err := guard.SetHundred(kids[i%len(kids)], 1); err != nil {
			denied++
			return nil
		}
		return fmt.Errorf("acl: write was not denied")
	}); err != nil {
		return nil, err
	}
	if denied != 50 {
		return nil, fmt.Errorf("harness: expected 50 denials, got %d", denied)
	}
	return out, nil
}

// RenderExtensions writes the E14 table.
func RenderExtensions(w io.Writer, results []ExtensionResult) {
	title := "E14: §6.8 extension operations (oodb)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-32s %10s  %s\n", "exercise", "ms/op", "note")
	for _, r := range results {
		fmt.Fprintf(w, "%-32s %10s  %s\n", r.Name, stats.FormatMs(r.PerOpMs), r.Note)
	}
	fmt.Fprintln(w)
}

// --- E17: single-writer/multi-reader read throughput ---

// ThroughputResult is one reader-count configuration of E17: the same
// reader workload measured against the serialized baseline (one global
// lock around every operation, including the writer's commit — how the
// engine behaved before the concurrent read path) and against the
// concurrent engine (readers over store.ReadView, writer on its own
// writeMu).
type ThroughputResult struct {
	Readers int
	Window  time.Duration

	SerializedOps     uint64
	SerializedCommits uint64
	ConcurrentOps     uint64
	ConcurrentCommits uint64

	SerializedOpsPerS float64
	ConcurrentOpsPerS float64
	Speedup           float64 // concurrent / serialized reader ops/s
}

// RunThroughput measures aggregate read throughput under an active
// writer. One oodb database is generated on a local store; a writer
// goroutine loops SetHundred+Commit (each commit fsyncs the WAL), and N
// reader goroutines — each its own oodb mapping over a read-only
// store.ReadView, all sharing the warm buffer pool — run a mixed
// O1/O5A/O6/O7A lookup workload for a fixed window.
//
// Each reader count is measured twice. The serialized baseline routes
// every reader operation and the writer's whole transaction through one
// global mutex, reproducing the pre-refactor engine where a reader
// could not even begin while a commit held the store lock across its
// fsync. The concurrent configuration is the real engine: readers wrap
// each operation in ReadView.Atomically and never wait for the writer.
// The speedup column is the direct price of that global lock.
func RunThroughput(dir string, level int, seed int64, maxParallel int, window time.Duration) ([]ThroughputResult, error) {
	if maxParallel < 1 {
		maxParallel = 1
	}
	if window <= 0 {
		window = time.Second
	}
	st, err := store.Open(filepath.Join(dir, "throughput.db"), nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	wdb, err := oodb.New(st, oodb.DefaultOptions())
	if err != nil {
		return nil, err
	}
	lay, _, err := hyper.Generate(wdb, hyper.GenConfig{LeafLevel: level, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := wdb.Commit(); err != nil {
		return nil, err
	}

	workload := func(b hyper.Backend, rng *rand.Rand) error {
		var err error
		switch rng.Intn(4) {
		case 0:
			_, err = hyper.NameLookup(b, lay.RandomNode(rng))
		case 1:
			_, err = hyper.GroupLookup1N(b, lay.RandomInternal(rng))
		case 2:
			_, err = hyper.GroupLookupMNAtt(b, lay.RandomNode(rng))
		default:
			_, err = hyper.RefLookup1N(b, lay.RandomNonRoot(rng))
		}
		return err
	}

	// Warm the shared buffer pool so every configuration measures
	// in-memory reads, not its own first-touch disk misses.
	warm, err := oodb.New(st.ReadView(), oodb.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if _, err := hyper.SeqScan(warm, 1, hyper.NodeID(lay.Total())); err != nil {
		return nil, err
	}
	wrng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2000; i++ {
		if err := workload(warm, wrng); err != nil {
			return nil, err
		}
	}

	// The writer flips one node's hundred attribute so every commit has
	// a real dirty set and a real WAL fsync.
	writerTarget := lay.RandomNode(rand.New(rand.NewSource(seed + 99)))

	measure := func(n int, serialized bool) (readerOps, commits uint64, err error) {
		views := make([]*store.ReadView, n)
		readers := make([]hyper.Backend, n)
		for g := range readers {
			views[g] = st.ReadView()
			r, err := oodb.New(views[g], oodb.DefaultOptions())
			if err != nil {
				return 0, 0, err
			}
			readers[g] = r
		}
		var gmu sync.Mutex // the serialized baseline's global lock
		var ops, committed atomic.Uint64
		stop := make(chan struct{})
		errs := make(chan error, n+1)
		var wg sync.WaitGroup

		wg.Add(1)
		go func() { // the writer
			defer wg.Done()
			v := int32(0)
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				commit := func() error {
					if err := wdb.SetHundred(writerTarget, v); err != nil {
						return err
					}
					return wdb.Commit()
				}
				if serialized {
					gmu.Lock()
					err = commit()
					gmu.Unlock()
				} else {
					err = commit()
				}
				if err != nil {
					errs <- fmt.Errorf("writer: %w", err)
					return
				}
				v = (v + 1) % 100
				committed.Add(1)
			}
		}()
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(g)*7919 + 1))
				for {
					select {
					case <-stop:
						errs <- nil
						return
					default:
					}
					var err error
					if serialized {
						gmu.Lock()
						err = workload(readers[g], rng)
						gmu.Unlock()
					} else {
						err = views[g].Atomically(func() error {
							return workload(readers[g], rng)
						})
					}
					if err != nil {
						errs <- fmt.Errorf("reader %d: %w", g, err)
						return
					}
					ops.Add(1)
				}
			}(g)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return 0, 0, err
			}
		}
		return ops.Load(), committed.Load(), nil
	}

	var parallels []int
	for n := 1; n < maxParallel; n *= 2 {
		parallels = append(parallels, n)
	}
	parallels = append(parallels, maxParallel)

	var out []ThroughputResult
	for _, n := range parallels {
		sOps, sCommits, err := measure(n, true)
		if err != nil {
			return nil, err
		}
		cOps, cCommits, err := measure(n, false)
		if err != nil {
			return nil, err
		}
		row := ThroughputResult{
			Readers: n, Window: window,
			SerializedOps: sOps, SerializedCommits: sCommits,
			ConcurrentOps: cOps, ConcurrentCommits: cCommits,
			SerializedOpsPerS: float64(sOps) / window.Seconds(),
			ConcurrentOpsPerS: float64(cOps) / window.Seconds(),
		}
		if sOps > 0 {
			row.Speedup = float64(cOps) / float64(sOps)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderThroughput writes the E17 table.
func RenderThroughput(w io.Writer, level int, results []ThroughputResult) {
	title := fmt.Sprintf("E17: read throughput under an active writer (oodb, level %d)", level)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-9s %16s %16s %9s %12s %12s\n",
		"readers", "serialized op/s", "concurrent op/s", "speedup", "ser. txn/s", "conc. txn/s")
	for _, r := range results {
		secs := r.Window.Seconds()
		fmt.Fprintf(w, "%-9d %16.0f %16.0f %8.1fx %12.0f %12.0f\n",
			r.Readers, r.SerializedOpsPerS, r.ConcurrentOpsPerS, r.Speedup,
			float64(r.SerializedCommits)/secs, float64(r.ConcurrentCommits)/secs)
	}
	fmt.Fprintln(w)
}

// --- E15: multi-user ---

// MultiUserResult is one concurrency configuration.
type MultiUserResult struct {
	Users       int
	Conflicting bool
	Ops         int
	Elapsed     time.Duration
	Aborts      uint64
}

// RunMultiUser runs the §7 future-work experiment: several HyperModel
// applications against one server, first updating disjoint subtrees
// (cooperation, R9), then hammering one node (contention). Optimistic
// validation aborts and retries make both terminate correctly.
func RunMultiUser(dir string, level int, seed int64, users, opsPerUser int) ([]MultiUserResult, error) {
	st, err := store.Open(filepath.Join(dir, "multi.db"), nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	boot, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		return nil, err
	}
	bdb, err := oodb.New(boot, oodb.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if _, _, err := hyper.Generate(bdb, hyper.GenConfig{LeafLevel: level, Seed: seed}); err != nil {
		return nil, err
	}
	if err := bdb.Commit(); err != nil {
		return nil, err
	}
	bdb.Close()

	runConfig := func(conflicting bool) (MultiUserResult, error) {
		_, abortsBefore, _ := srv.Stats()
		var wg sync.WaitGroup
		errs := make(chan error, users)
		start := time.Now()
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				client, err := remote.Dial(addr.String(), remote.ClientOptions{})
				if err != nil {
					errs <- err
					return
				}
				db, err := oodb.New(client, oodb.DefaultOptions())
				if err != nil {
					errs <- err
					return
				}
				defer db.Close()
				rng := rand.New(rand.NewSource(seed + int64(u)))
				for i := 0; i < opsPerUser; i++ {
					var target hyper.NodeID
					if conflicting {
						target = 1 // everyone updates the root
					} else {
						// Disjoint level-1 subtrees per user.
						first, _ := hyper.LevelIDs(1)
						target = first + hyper.NodeID(u%hyper.FanOut)
					}
					err := txn.RunN(db, 300, func() error {
						h, err := db.Hundred(target)
						if err != nil {
							return err
						}
						return db.SetHundred(target, (h+1)%100)
					})
					if err != nil {
						errs <- fmt.Errorf("user %d: %w", u, err)
						return
					}
					_ = rng
				}
				errs <- nil
			}(u)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return MultiUserResult{}, err
			}
		}
		_, abortsAfter, _ := srv.Stats()
		return MultiUserResult{
			Users:       users,
			Conflicting: conflicting,
			Ops:         users * opsPerUser,
			Elapsed:     time.Since(start),
			Aborts:      abortsAfter - abortsBefore,
		}, nil
	}

	coop, err := runConfig(false)
	if err != nil {
		return nil, err
	}
	contended, err := runConfig(true)
	if err != nil {
		return nil, err
	}
	return []MultiUserResult{coop, contended}, nil
}

// RenderMultiUser writes the E15 table.
func RenderMultiUser(w io.Writer, results []MultiUserResult) {
	title := "E15: multi-user (optimistic concurrency over the page server)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-12s %-28s %8s %10s %10s %8s\n",
		"users", "workload", "txns", "elapsed", "txn/s", "aborts")
	for _, r := range results {
		kind := "disjoint subtrees (R9)"
		if r.Conflicting {
			kind = "single hot node (contended)"
		}
		rate := float64(r.Ops) / r.Elapsed.Seconds()
		fmt.Fprintf(w, "%-12d %-28s %8d %9.0fms %10.0f %8d\n",
			r.Users, kind, r.Ops, float64(r.Elapsed.Nanoseconds())/1e6, rate, r.Aborts)
	}
	fmt.Fprintln(w)
}

// --- E18: wire concurrency (pipelined client vs request/response) ---

// ConcurrencyResult is one client-count configuration of E18: the same
// random page-read workload driven by N application goroutines through
// one shared client, measured against the request/response baseline
// (one connection, one request in flight — the pre-multiplexed
// discipline) and against the pipelined client (a small connection
// pool with unbounded per-connection multiplexing).
type ConcurrencyResult struct {
	Clients int
	Window  time.Duration
	RTT     time.Duration // simulated link round trip (0 = raw loopback)

	BaselineOps  uint64
	PipelinedOps uint64

	BaselineOpsPerS  float64
	PipelinedOpsPerS float64
	Speedup          float64 // pipelined / baseline op/s

	// Pipelining stats from the pipelined configuration.
	MaxDepth    uint64        // peak requests in flight at once
	QueueWait   time.Duration // cumulative wait behind the in-flight cap
	GetPageMean time.Duration // mean GetPage round trip under load
}

// RunConcurrencySweep measures raw wire throughput under concurrency
// (E18). A level-`level` database is generated on a local store and
// put behind a page server; N goroutines then hammer Client.ReadPage
// over the store's whole page set for a fixed window — uncached reads,
// so every operation is a real server round trip and the experiment
// isolates the transport. The baseline client is configured back to
// the old request/response discipline (Conns=1, MaxInflight=1: every
// goroutine queues behind one outstanding request); the pipelined
// client spreads unbounded concurrent requests over a 4-connection
// pool. Same server, same pages, same goroutine count — the gap is the
// multiplexed wire protocol.
//
// rtt simulates the workstation/server link the paper's R6
// architecture assumes: the wire runs through a delay-line proxy
// adding rtt/2 of transit latency each way (order-preserving, no
// bandwidth cap — see fault.Config.Latency). On a real network the
// round trip is what a request/response protocol pays per operation
// and what pipelining hides; rtt=0 measures raw loopback, where the
// kernel's ~20µs round trip leaves almost nothing to hide.
func RunConcurrencySweep(dir string, level int, seed int64, clientCounts []int, window, rtt time.Duration) ([]ConcurrencyResult, error) {
	if window <= 0 {
		window = time.Second
	}
	st, err := store.Open(filepath.Join(dir, "concurrency.db"), nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	wdb, err := oodb.New(st, oodb.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if _, _, err := hyper.Generate(wdb, hyper.GenConfig{LeafLevel: level, Seed: seed}); err != nil {
		return nil, err
	}
	if err := wdb.Commit(); err != nil {
		return nil, err
	}
	pages := st.PageCount()
	if pages < 2 {
		return nil, fmt.Errorf("harness: store has %d pages, nothing to read", pages)
	}

	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	dialAddr := addr.String()
	if rtt > 0 {
		px, err := fault.NewProxy(dialAddr, fault.Config{Latency: rtt / 2})
		if err != nil {
			return nil, err
		}
		defer px.Close()
		dialAddr = px.Addr()
	}

	measure := func(n int, opts remote.ClientOptions) (uint64, remote.InflightStats, error) {
		opts.RequestTimeout = 30 * time.Second
		c, err := remote.Dial(dialAddr, opts)
		if err != nil {
			return 0, remote.InflightStats{}, err
		}
		defer c.Close()
		var ops atomic.Uint64
		stop := make(chan struct{})
		errs := make(chan error, n)
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(g)*6151 + 1))
				for {
					select {
					case <-stop:
						errs <- nil
						return
					default:
					}
					// Page 0 is the store's metadata page; data pages
					// start at 1.
					id := 1 + rng.Uint64()%(pages-1)
					if _, _, err := c.ReadPage(page.ID(id)); err != nil {
						errs <- fmt.Errorf("reader %d: %w", g, err)
						return
					}
					ops.Add(1)
				}
			}(g)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return 0, remote.InflightStats{}, err
			}
		}
		return ops.Load(), c.InflightStats(), nil
	}

	var out []ConcurrencyResult
	for _, n := range clientCounts {
		base, _, err := measure(n, remote.ClientOptions{Conns: 1, MaxInflight: 1})
		if err != nil {
			return nil, err
		}
		piped, inflight, err := measure(n, remote.ClientOptions{Conns: 4})
		if err != nil {
			return nil, err
		}
		row := ConcurrencyResult{
			Clients: n, Window: window, RTT: rtt,
			BaselineOps: base, PipelinedOps: piped,
			BaselineOpsPerS:  float64(base) / window.Seconds(),
			PipelinedOpsPerS: float64(piped) / window.Seconds(),
			MaxDepth:         inflight.MaxDepth,
			QueueWait:        inflight.QueueWait,
		}
		if base > 0 {
			row.Speedup = float64(piped) / float64(base)
		}
		for _, op := range inflight.Ops {
			if op.Op == "GetPage" {
				row.GetPageMean = op.Mean()
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderConcurrencySweep writes the E18 table.
func RenderConcurrencySweep(w io.Writer, level int, results []ConcurrencyResult) {
	link := "raw loopback"
	if len(results) > 0 && results[0].RTT > 0 {
		link = fmt.Sprintf("%s RTT link", results[0].RTT)
	}
	title := fmt.Sprintf("E18: wire throughput under concurrency (page server, level %d, %s)", level, link)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-9s %18s %16s %9s %10s %12s\n",
		"clients", "req/resp op/s", "pipelined op/s", "speedup", "max depth", "GetPage mean")
	for _, r := range results {
		fmt.Fprintf(w, "%-9d %18.0f %16.0f %8.1fx %10d %12s\n",
			r.Clients, r.BaselineOpsPerS, r.PipelinedOpsPerS, r.Speedup,
			r.MaxDepth, r.GetPageMean.Round(time.Microsecond))
	}
	fmt.Fprintln(w)
}

// --- E19: multi-writer commit throughput (group commit vs serialized) ---

// histBuckets is the number of power-of-two commit-latency buckets; the
// top bucket is open-ended.
const histBuckets = 16

// WritersResult is one writer-count configuration of E19: the same
// low-conflict update workload committed through the page server twice,
// once with the server's group commit disabled (every commit validates,
// logs and fsyncs alone — the pre-batching discipline) and once with
// commits batched under a leader (one WAL record and one fsync per
// batch).
type WritersResult struct {
	Writers int
	Window  time.Duration

	SerializedCommits uint64
	GroupedCommits    uint64

	SerializedPerS float64
	GroupedPerS    float64
	Speedup        float64 // grouped / serialized commit rate

	SerializedAborts uint64
	GroupedAborts    uint64

	// Group-commit evidence from the grouped configuration.
	Flushes     uint64 // durable WAL flushes that served the commits
	Batches     uint64 // flushes carrying more than one transaction
	GroupedTxns uint64 // transactions that shared a flush
	MaxBatch    uint64 // largest batch
	FastPath    uint64 // validations skipped via snapshot fast path

	// Commit-latency histograms: bucket i counts transactions whose
	// end-to-end commit (including conflict retries) took less than
	// 2^i microseconds; the last bucket is open-ended.
	SerializedHist [histBuckets]uint64
	GroupedHist    [histBuckets]uint64
}

// latBucket maps a commit latency to its power-of-two bucket.
func latBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	b := bits.Len64(uint64(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// RunWriters measures multi-writer commit throughput (E19). A
// level-`level` database is generated on a syncing local store and put
// behind a page server; N writer clients then each run a read-modify-
// write transaction loop against their own TextNode for a fixed
// window. Each transaction reads the node's text and stores a one-byte
// rotation of it — a same-length in-place update, so the only page a
// writer dirties is its own node's data page (an attribute update
// would also rewrite the shared secondary-index page and turn the
// experiment into a conflict benchmark). Targets are spread across the
// leaf level so concurrent transactions never touch the same page: the
// workload is commit-rate bound, not conflict bound, and what it
// measures is the cost of durability per transaction. Serialized mode
// admits one commit at a
// time (each pays its own WAL flush); grouped mode lets the leader
// absorb the queue, validate against the in-batch overlay, and retire
// the whole batch with one combined WAL record and one fsync.
func RunWriters(dir string, level int, seed int64, writerCounts []int, window time.Duration) ([]WritersResult, error) {
	if window <= 0 {
		window = time.Second
	}
	st, err := store.Open(filepath.Join(dir, "writers.db"), nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	boot, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		return nil, err
	}
	bdb, err := oodb.New(boot, oodb.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if _, _, err := hyper.Generate(bdb, hyper.GenConfig{LeafLevel: level, Seed: seed}); err != nil {
		return nil, err
	}
	if err := bdb.Commit(); err != nil {
		return nil, err
	}
	bdb.Close()

	firstLeaf, lastLeaf := hyper.LevelIDs(level)
	leaves := int(lastLeaf - firstLeaf + 1)

	measure := func(n int, grouped bool) (commits, aborts uint64, hist [histBuckets]uint64, err error) {
		srv.SetGroupCommit(grouped)
		_, abortsBefore, _ := srv.Stats()
		var done atomic.Uint64
		var histAt [histBuckets]atomic.Uint64
		stop := make(chan struct{})
		errs := make(chan error, n)
		var wg sync.WaitGroup
		stride := leaves / n
		if stride < 1 {
			stride = 1
		}
		for u := 0; u < n; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				client, derr := remote.Dial(addr.String(), remote.ClientOptions{})
				if derr != nil {
					errs <- derr
					return
				}
				db, derr := oodb.New(client, oodb.DefaultOptions())
				if derr != nil {
					client.Close()
					errs <- derr
					return
				}
				defer db.Close()
				// Every 125th leaf is a FormNode; step past those so the
				// target always answers Text.
				j := (u * stride) % leaves
				if hyper.IsFormLeaf(j) {
					j = (j + 1) % leaves
				}
				target := firstLeaf + hyper.NodeID(j)
				for {
					select {
					case <-stop:
						errs <- nil
						return
					default:
					}
					start := time.Now()
					terr := txn.RunN(db, 300, func() error {
						text, herr := db.Text(target)
						if herr != nil {
							return herr
						}
						rot := make([]byte, len(text))
						copy(rot, text[1:])
						rot[len(rot)-1] = text[0]
						return db.SetText(target, string(rot))
					})
					if terr != nil {
						errs <- fmt.Errorf("writer %d: %w", u, terr)
						return
					}
					histAt[latBucket(time.Since(start))].Add(1)
					done.Add(1)
				}
			}(u)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		close(errs)
		for e := range errs {
			if e != nil {
				return 0, 0, hist, e
			}
		}
		_, abortsAfter, _ := srv.Stats()
		for i := range hist {
			hist[i] = histAt[i].Load()
		}
		return done.Load(), abortsAfter - abortsBefore, hist, nil
	}

	var out []WritersResult
	for _, n := range writerCounts {
		if n < 1 {
			continue
		}
		serCommits, serAborts, serHist, err := measure(n, false)
		if err != nil {
			return nil, err
		}
		fBefore, bBefore, gBefore, _, fpBefore := srv.GroupCommitStats()
		grpCommits, grpAborts, grpHist, err := measure(n, true)
		if err != nil {
			return nil, err
		}
		fAfter, bAfter, gAfter, maxBatch, fpAfter := srv.GroupCommitStats()
		row := WritersResult{
			Writers: n, Window: window,
			SerializedCommits: serCommits, GroupedCommits: grpCommits,
			SerializedPerS:   float64(serCommits) / window.Seconds(),
			GroupedPerS:      float64(grpCommits) / window.Seconds(),
			SerializedAborts: serAborts, GroupedAborts: grpAborts,
			Flushes: fAfter - fBefore, Batches: bAfter - bBefore,
			GroupedTxns: gAfter - gBefore, MaxBatch: maxBatch,
			FastPath:       fpAfter - fpBefore,
			SerializedHist: serHist, GroupedHist: grpHist,
		}
		if serCommits > 0 {
			row.Speedup = float64(grpCommits) / float64(serCommits)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderWriters writes the E19 table and the commit-latency histogram
// of the largest configuration.
func RenderWriters(w io.Writer, level int, results []WritersResult) {
	title := fmt.Sprintf("E19: multi-writer commit throughput (page server, level %d, syncing store)", level)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-9s %17s %14s %9s %9s %9s %10s %10s\n",
		"writers", "serialized txn/s", "grouped txn/s", "speedup", "flushes", "batches", "max batch", "aborts")
	for _, r := range results {
		fmt.Fprintf(w, "%-9d %17.0f %14.0f %8.1fx %9d %9d %10d %10d\n",
			r.Writers, r.SerializedPerS, r.GroupedPerS, r.Speedup,
			r.Flushes, r.Batches, r.MaxBatch, r.GroupedAborts)
	}
	if len(results) == 0 {
		fmt.Fprintln(w)
		return
	}
	last := results[len(results)-1]
	fmt.Fprintf(w, "\ncommit latency, %d writers (count per power-of-two bucket)\n", last.Writers)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "latency <", "serialized", "grouped")
	for i := 0; i < histBuckets; i++ {
		if last.SerializedHist[i] == 0 && last.GroupedHist[i] == 0 {
			continue
		}
		label := fmt.Sprintf("%dµs", uint64(1)<<i)
		if i == histBuckets-1 {
			label = "more"
		}
		fmt.Fprintf(w, "%-12s %12d %12d\n", label, last.SerializedHist[i], last.GroupedHist[i])
	}
	fmt.Fprintln(w)
}
