// Package harness drives the HyperModel benchmark: it executes every
// operation of §6 under the paper's measurement protocol and renders
// the result tables the evaluation reports.
//
// The protocol, §6 steps (a)–(e), for each operation:
//
//	(a) draw the operation's 50 random inputs;
//	(b) drop all caches, then run the operation 50 times — the cold run;
//	(c) commit;
//	(d) run the same 50 inputs again — the warm run;
//	(e) drop the caches so this sequence cannot warm the next one.
//
// Times are normalized to milliseconds per node returned/visited, with
// the editing operations reported per operation, exactly as the paper
// specifies.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hypermodel/internal/hyper"
	"hypermodel/internal/stats"
)

// Config parameterizes a benchmark run.
type Config struct {
	// Iterations per operation; the paper uses 50.
	Iterations int
	// Seed drives input drawing.
	Seed int64
	// Depth is the M-N-attribute closure depth (25 in the paper).
	Depth int
	// Ops filters which operations run (nil = all). Match on the ID
	// prefix, e.g. "O10" or "O5A".
	Ops []string
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
	if c.Depth <= 0 {
		c.Depth = 25
	}
	return c
}

// OpResult is one row of the result matrix: an operation measured cold
// and warm.
type OpResult struct {
	ID    string // paper operation number, e.g. "O5A"
	Name  string // e.g. "groupLookup1N"
	PerOp bool   // normalize per operation (editing ops) not per node
	NA    bool   // not applicable on this backend (e.g. O2 without OIDs)
	Note  string
	Cold  stats.Series
	Warm  stats.Series
	// ColdReads/WarmReads are the disk (or server) reads issued during
	// each pass, when the backend reports cache statistics — the
	// protocol's cacheing evidence: a correct cold run reads, a correct
	// warm run does not.
	ColdReads uint64
	WarmReads uint64
}

// op describes one benchmark operation: how to draw inputs and how to
// run one iteration, returning the node count for normalization.
type op struct {
	id, name string
	perOp    bool
	// prepare draws all inputs up front so cold and warm runs use the
	// same ones. It may return a "not applicable" note.
	prepare func(h *runner) (na string, err error)
	run     func(h *runner, iter int) (nodes int, err error)
}

// runner carries per-operation state.
type runner struct {
	b     hyper.Backend
	lay   hyper.Layout
	cfg   Config
	rng   *rand.Rand
	ids   []hyper.NodeID // generic pre-drawn node inputs
	oids  []hyper.OID
	xs    []int32 // generic pre-drawn numeric inputs
	rects []hyper.Rect
}

// Run executes the configured operations on the backend and returns
// the result matrix.
func Run(b hyper.Backend, lay hyper.Layout, cfg Config) ([]OpResult, error) {
	cfg = cfg.withDefaults()
	var out []OpResult
	for _, o := range operations() {
		if !selected(cfg.Ops, o.id) {
			continue
		}
		res, err := runOne(b, lay, cfg, o)
		if err != nil {
			return nil, fmt.Errorf("harness: %s %s: %w", o.id, o.name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func selected(filter []string, id string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == id {
			return true
		}
	}
	return false
}

func runOne(b hyper.Backend, lay hyper.Layout, cfg Config, o op) (OpResult, error) {
	res := OpResult{ID: o.id, Name: o.name, PerOp: o.perOp}
	h := &runner{b: b, lay: lay, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed ^ int64(hashID(o.id))))}

	// (a) draw inputs.
	if o.prepare != nil {
		na, err := o.prepare(h)
		if err != nil {
			return res, err
		}
		if na != "" {
			res.NA = true
			res.Note = na
			return res, nil
		}
	}

	measure := func(series *stats.Series) error {
		for i := 0; i < cfg.Iterations; i++ {
			start := time.Now()
			nodes, err := o.run(h, i)
			if err != nil {
				return err
			}
			// Stable state between operations: commit participates in
			// the measured time (a no-op for read-only operations).
			if err := h.b.Commit(); err != nil {
				return err
			}
			series.Add(time.Since(start), nodes)
		}
		return nil
	}

	reads := func() uint64 {
		if sr, ok := b.(hyper.StatsReporter); ok {
			_, _, r := sr.CacheStats()
			return r
		}
		return 0
	}

	// (b) cold run from empty caches.
	if err := b.DropCaches(); err != nil {
		return res, err
	}
	r0 := reads()
	if err := measure(&res.Cold); err != nil {
		return res, err
	}
	// (c) commit.
	if err := b.Commit(); err != nil {
		return res, err
	}
	r1 := reads()
	// (d) warm run with the same inputs.
	if err := measure(&res.Warm); err != nil {
		return res, err
	}
	r2 := reads()
	res.ColdReads, res.WarmReads = r1-r0, r2-r1
	// (e) close out: leave no warmth for the next sequence.
	if err := b.DropCaches(); err != nil {
		return res, err
	}
	return res, nil
}

func hashID(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// drawIDs fills h.ids with n draws.
func (h *runner) drawIDs(n int, draw func(*rand.Rand) hyper.NodeID) {
	h.ids = make([]hyper.NodeID, n)
	for i := range h.ids {
		h.ids[i] = draw(h.rng)
	}
}

// operations returns the full §6 operation set.
func operations() []op {
	return []op{
		{
			id: "O1", name: "nameLookup",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomNode)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				_, err := hyper.NameLookup(h.b, h.ids[i])
				return 1, err
			},
		},
		{
			id: "O2", name: "nameOIDLookup",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomNode)
				h.oids = make([]hyper.OID, len(h.ids))
				for i, id := range h.ids {
					oid, err := h.b.OIDOf(id)
					if errors.Is(err, hyper.ErrNoOIDs) {
						return "no object identifiers in this mapping", nil
					}
					if err != nil {
						return "", err
					}
					h.oids[i] = oid
				}
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				_, err := hyper.NameOIDLookup(h.b, h.oids[i])
				return 1, err
			},
		},
		{
			id: "O3", name: "rangeLookupHundred",
			prepare: func(h *runner) (string, error) {
				h.xs = make([]int32, h.cfg.Iterations)
				for i := range h.xs {
					h.xs[i] = int32(h.rng.Intn(hyper.HundredRange - hyper.HundredWindow + 1))
				}
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.RangeLookupHundred(h.b, h.xs[i])
				return len(ids), err
			},
		},
		{
			id: "O4", name: "rangeLookupMillion",
			prepare: func(h *runner) (string, error) {
				h.xs = make([]int32, h.cfg.Iterations)
				for i := range h.xs {
					h.xs[i] = int32(h.rng.Intn(hyper.MillionRange - hyper.MillionWindow + 1))
				}
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.RangeLookupMillion(h.b, h.xs[i])
				return len(ids), err
			},
		},
		{
			id: "O5A", name: "groupLookup1N",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomInternal)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.GroupLookup1N(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O5B", name: "groupLookupMN",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomInternal)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.GroupLookupMN(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O6", name: "groupLookupMNAtt",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomNode)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.GroupLookupMNAtt(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O7A", name: "refLookup1N",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomNonRoot)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.RefLookup1N(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O7B", name: "refLookupMN",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomNonRoot)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.RefLookupMN(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O8", name: "refLookupMNAtt",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomNode)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.RefLookupMNAtt(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O9", name: "seqScan",
			run: func(h *runner, i int) (int, error) {
				return hyper.SeqScan(h.b, 1, hyper.NodeID(h.lay.Total()))
			},
		},
		{
			id: "O10", name: "closure1N",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomClosureStart)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.Closure1N(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O11", name: "closure1NAttSum",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomClosureStart)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				_, visited, err := hyper.Closure1NAttSum(h.b, h.ids[i])
				return visited, err
			},
		},
		{
			id: "O12", name: "closure1NAttSet",
			prepare: func(h *runner) (string, error) {
				// Pairs on the same start node so the attribute is
				// restored after every even iteration (the paper's own
				// self-check).
				h.ids = make([]hyper.NodeID, h.cfg.Iterations)
				for i := 0; i < len(h.ids); i += 2 {
					start := h.lay.RandomClosureStart(h.rng)
					h.ids[i] = start
					if i+1 < len(h.ids) {
						h.ids[i+1] = start
					}
				}
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				return hyper.Closure1NAttSet(h.b, h.ids[i])
			},
		},
		{
			id: "O13", name: "closure1NPred",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomClosureStart)
				h.xs = make([]int32, h.cfg.Iterations)
				for i := range h.xs {
					h.xs[i] = int32(h.rng.Intn(hyper.MillionRange - hyper.MillionWindow + 1))
				}
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.Closure1NPred(h.b, h.ids[i], h.xs[i])
				return len(ids), err
			},
		},
		{
			id: "O14", name: "closureMN",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomClosureStart)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.ClosureMN(h.b, h.ids[i])
				return len(ids), err
			},
		},
		{
			id: "O15", name: "closureMNAtt",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomClosureStart)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				ids, err := hyper.ClosureMNAtt(h.b, h.ids[i], h.cfg.Depth)
				return len(ids), err
			},
		},
		{
			id: "O16", name: "textNodeEdit", perOp: true,
			prepare: func(h *runner) (string, error) {
				// Forward/backward pairs on the same node.
				h.ids = make([]hyper.NodeID, h.cfg.Iterations)
				for i := 0; i < len(h.ids); i += 2 {
					id := h.lay.RandomTextNode(h.rng)
					h.ids[i] = id
					if i+1 < len(h.ids) {
						h.ids[i+1] = id
					}
				}
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				return 1, hyper.TextNodeEdit(h.b, h.ids[i], i%2 == 0)
			},
		},
		{
			id: "O17", name: "formNodeEdit", perOp: true,
			prepare: func(h *runner) (string, error) {
				// The same form node for all fifty repetitions (§6.7).
				id, ok := h.lay.RandomFormNode(h.rng)
				if !ok {
					return "database too small to hold form nodes", nil
				}
				h.ids = []hyper.NodeID{id}
				h.rects = make([]hyper.Rect, h.cfg.Iterations)
				for i := range h.rects {
					w := 25 + h.rng.Intn(26)
					hh := 25 + h.rng.Intn(26)
					h.rects[i] = hyper.Rect{
						X: h.rng.Intn(hyper.BitmapMinSide - 25),
						Y: h.rng.Intn(hyper.BitmapMinSide - 25),
						W: w, H: hh,
					}
				}
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				return 1, hyper.FormNodeEdit(h.b, h.ids[0], h.rects[i])
			},
		},
		{
			id: "O18", name: "closureMNAttLinkSum",
			prepare: func(h *runner) (string, error) {
				h.drawIDs(h.cfg.Iterations, h.lay.RandomClosureStart)
				return "", nil
			},
			run: func(h *runner, i int) (int, error) {
				pairs, err := hyper.ClosureMNAttLinkSum(h.b, h.ids[i], h.cfg.Depth)
				return len(pairs), err
			},
		},
	}
}
