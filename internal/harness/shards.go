// E20: horizontal scaling of the sharded page service, and the chaos
// soak that pins its cross-shard commit guarantees.
//
// The sweep answers the scaling question: with each shard modeled as a
// fixed-capacity process (a global in-flight cap) behind a realistic
// link (a delay-line proxy adding transit latency), does aggregate
// read-closure throughput grow with the shard count? One shard is the
// single-server baseline; the same reader population is then pointed
// at 2, 4, 8 shards holding the same per-shard page population.
//
// The chaos soak answers the correctness question: writers drive
// cross-shard transactions that must stay atomic — each transaction
// increments a counter on two different shards — while one shard is
// killed and restarted mid-run. At the end every counter pair must
// agree (all-or-nothing), every acknowledged commit must be present
// and no attempt applied twice (exactly-once bounds), no transaction
// may remain in doubt once the resolvers settle, and independent
// fresh sessions must read byte-identical page images.
package harness

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hypermodel/internal/fault"
	"hypermodel/internal/remote"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// shardProc is one running shard: its store, server, and (optionally)
// the latency proxy clients dial through.
type shardProc struct {
	dir   string
	st    *store.Store
	srv   *remote.Server
	px    *fault.Proxy
	addr  string // direct server address
	front string // address clients dial (proxy when rtt > 0)
}

// shardFleet manages the lifecycle of an n-shard cluster for one
// experiment configuration.
type shardFleet struct {
	procs   []*shardProc
	rtt     time.Duration
	cap     int           // per-shard global in-flight cap (0 = unlimited)
	service time.Duration // per-request execution-time floor (0 = none)
}

func (f *shardFleet) fronts() []string {
	out := make([]string, len(f.procs))
	for i, p := range f.procs {
		out[i] = p.front
	}
	return out
}

func (f *shardFleet) directs() []string {
	out := make([]string, len(f.procs))
	for i, p := range f.procs {
		out[i] = p.addr
	}
	return out
}

// startShard launches (or relaunches, for the chaos kill) shard i of
// the fleet from its directory, leaving the routing table for the
// caller to publish.
func (f *shardFleet) startShard(i int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st, err := store.Open(filepath.Join(dir, "shard.db"), &store.Options{TokenKeep: 1024})
	if err != nil {
		return err
	}
	srv := remote.NewServer(st)
	srv.SetShardID(i)
	srv.SetResolver(100*time.Millisecond, 500*time.Millisecond)
	if f.cap > 0 {
		srv.SetMaxInflightTotal(f.cap)
	}
	if f.service > 0 {
		srv.SetServiceTime(f.service)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		st.Close()
		return err
	}
	p := &shardProc{dir: dir, st: st, srv: srv, addr: addr.String(), front: addr.String()}
	if f.rtt > 0 {
		px, err := fault.NewProxy(p.addr, fault.Config{Latency: f.rtt / 2})
		if err != nil {
			srv.Close()
			st.Close()
			return err
		}
		p.px = px
		p.front = px.Addr()
	}
	for len(f.procs) <= i {
		f.procs = append(f.procs, nil)
	}
	f.procs[i] = p
	return nil
}

// publish installs the given epoch's table (client-facing addresses)
// on every live shard.
func (f *shardFleet) publish(epoch uint64) {
	addrs := f.fronts()
	for _, p := range f.procs {
		if p != nil {
			p.srv.SetRouteTable(epoch, addrs)
		}
	}
}

// killShard stops shard i's server and store, keeping its directory
// for a restart.
func (f *shardFleet) killShard(i int) string {
	p := f.procs[i]
	if p.px != nil {
		p.px.Close()
	}
	p.srv.Close()
	p.st.Close()
	f.procs[i] = nil
	return p.dir
}

func (f *shardFleet) close() {
	for i, p := range f.procs {
		if p == nil {
			continue
		}
		f.killShard(i)
	}
}

func startShardFleet(dir string, n int, rtt time.Duration, inflightCap int, service time.Duration) (*shardFleet, error) {
	f := &shardFleet{rtt: rtt, cap: inflightCap, service: service}
	for i := 0; i < n; i++ {
		if err := f.startShard(i, filepath.Join(dir, fmt.Sprintf("shard%d", i))); err != nil {
			f.close()
			return nil, err
		}
	}
	f.publish(1)
	return f, nil
}

// --- the scaling sweep ---

// ShardSweepResult is one shard-count configuration of E20.
type ShardSweepResult struct {
	Shards  int
	Window  time.Duration
	RTT     time.Duration
	Readers int

	Ops     uint64
	OpsPerS float64
	Speedup float64 // vs the 1-shard row

	CrossCommits uint64 // 2PC commits during seeding (0 for one shard)
	BadPayloads  uint64 // pages whose bytes did not match their ID
}

// shardSweepPages is how many pages the seeding phase places on each
// shard.
const shardSweepPages = 256

// shardServiceTime is the per-request execution floor the sweep gives
// every shard: with the in-flight cap n, shard capacity is
// n/shardServiceTime requests per second.
const shardServiceTime = time.Millisecond

// RunShardSweep measures aggregate uncached read throughput against 1,
// 2, 4, ... shards (E20). Every shard is capped to `inflightCap`
// concurrently executing requests — a fixed-capacity server process —
// and sits behind an rtt-round-trip link, so a reader population large
// enough to saturate one shard has headroom exactly proportional to
// the shard count. Seeding goes through the cluster allocator (so a
// multi-shard configuration exercises cross-shard 2PC on the way in),
// and every page carries its own cluster-wide ID in its payload, which
// readers verify on every fetch — a byte-level routing check riding
// the throughput measurement.
func RunShardSweep(dir string, shardCounts []int, window, rtt time.Duration, readers, inflightCap int) ([]ShardSweepResult, error) {
	if window <= 0 {
		window = time.Second
	}
	if readers <= 0 {
		readers = 32
	}
	if inflightCap <= 0 {
		inflightCap = 2
	}
	var out []ShardSweepResult
	for _, n := range shardCounts {
		res, err := runShardConfig(filepath.Join(dir, fmt.Sprintf("sweep%d", n)), n, window, rtt, readers, inflightCap)
		if err != nil {
			return nil, fmt.Errorf("harness: %d shards: %w", n, err)
		}
		if len(out) > 0 && out[0].OpsPerS > 0 {
			res.Speedup = res.OpsPerS / out[0].OpsPerS
		} else {
			res.Speedup = 1
		}
		out = append(out, *res)
	}
	return out, nil
}

func runShardConfig(dir string, n int, window, rtt time.Duration, readers, inflightCap int) (*ShardSweepResult, error) {
	fleet, err := startShardFleet(dir, n, rtt, inflightCap, shardServiceTime)
	if err != nil {
		return nil, err
	}
	defer fleet.close()

	// Seed through the cluster allocator on the direct addresses (the
	// proxy latency would only slow the load phase down).
	seeder, err := remote.DialClusterTable(remote.RouteTable{Epoch: 1, Shards: fleet.directs()},
		remote.ClusterOptions{Client: remote.ClientOptions{RequestTimeout: 30 * time.Second}})
	if err != nil {
		return nil, err
	}
	var ids []page.ID
	for len(ids) < n*shardSweepPages {
		id, h, err := seeder.Alloc(page.TypeSlotted)
		if err != nil {
			seeder.Close()
			return nil, err
		}
		binary.LittleEndian.PutUint64(h.Page().Payload(), uint64(id))
		h.MarkDirty()
		h.Release()
		ids = append(ids, id)
		if len(ids)%512 == 0 {
			if err := seeder.Commit(); err != nil {
				seeder.Close()
				return nil, err
			}
		}
	}
	if err := seeder.Commit(); err != nil {
		seeder.Close()
		return nil, err
	}
	crossCommits := seeder.Stats().CrossCommits
	if err := seeder.Close(); err != nil {
		return nil, err
	}

	// The measured population dials through the latency proxies. All
	// sessions are connected before the clock starts, so the window
	// measures reads, not dials.
	table := remote.RouteTable{Epoch: 1, Shards: fleet.fronts()}
	sessions := make([]*remote.ClusterClient, readers)
	for g := range sessions {
		cc, err := remote.DialClusterTable(table,
			remote.ClusterOptions{Client: remote.ClientOptions{RequestTimeout: 30 * time.Second}})
		if err != nil {
			return nil, err
		}
		defer cc.Close()
		sessions[g] = cc
	}
	var ops, bad atomic.Uint64
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc := sessions[g]
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				id := ids[rng.Intn(len(ids))]
				_, p, err := cc.ReadPage(id)
				if err != nil {
					errs <- fmt.Errorf("reader %d: page %#x: %w", g, uint64(id), err)
					return
				}
				if binary.LittleEndian.Uint64(p.Payload()) != uint64(id) {
					bad.Add(1)
				}
				ops.Add(1)
			}
		}(g)
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &ShardSweepResult{
		Shards: n, Window: window, RTT: rtt, Readers: readers,
		Ops: ops.Load(), OpsPerS: float64(ops.Load()) / window.Seconds(),
		CrossCommits: crossCommits, BadPayloads: bad.Load(),
	}, nil
}

// RenderShardSweep writes the E20 scaling table.
func RenderShardSweep(w io.Writer, results []ShardSweepResult) {
	if len(results) == 0 {
		return
	}
	r0 := results[0]
	title := fmt.Sprintf("E20: sharded read throughput (%d readers, %s RTT, per-shard capacity-capped)",
		r0.Readers, r0.RTT)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-8s %14s %9s %14s %12s\n", "shards", "reads/s", "speedup", "2PC commits", "bad payloads")
	for _, r := range results {
		fmt.Fprintf(w, "%-8d %14.0f %8.2fx %14d %12d\n",
			r.Shards, r.OpsPerS, r.Speedup, r.CrossCommits, r.BadPayloads)
	}
	fmt.Fprintln(w)
}

// --- the chaos soak ---

// ShardChaosResult is the outcome of the cross-shard chaos soak: the
// commit accounting, what the recovery machinery had to do, and the
// final-state verdicts.
type ShardChaosResult struct {
	Shards  int
	Soak    time.Duration
	Writers int

	Attempts  uint64 // commit attempts issued
	Acked     uint64 // commits acknowledged to a writer
	Conflicts uint64 // optimistic-validation conflicts retried
	Unknowns  uint64 // commits whose outcome needed after-the-fact reads

	CrossCommits uint64 // server-side 2PC commit decisions (all shards)
	Resolved     uint64 // in-doubt transactions settled by resolvers
	InDoubt      int    // prepared transactions left after settling (want 0)

	PairsEqual    bool // every counter pair agreed (atomicity)
	ExactlyOnce   bool // acked ≤ counter ≤ attempts for every pair
	ByteIdentical bool // two fresh sessions read identical page images
}

// RunShardChaos soaks an n-shard cluster in cross-shard transactions
// while one shard is killed and restarted mid-run. Each writer owns a
// disjoint pair of counter pages on two different shards and
// repeatedly increments both in one transaction, so atomicity and
// exactly-once delivery are directly observable in the final counter
// values. The victim shard's death makes in-flight transactions fail
// or go in doubt; the restarted shard recovers its prepared state from
// the WAL and its resolver settles with the coordinator.
func RunShardChaos(dir string, shards int, soak time.Duration) (*ShardChaosResult, error) {
	if shards < 2 {
		return nil, errors.New("harness: chaos soak needs at least 2 shards")
	}
	if soak <= 0 {
		soak = 2 * time.Second
	}
	const writers = 4
	fleet, err := startShardFleet(dir, shards, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	defer fleet.close()

	// Seed one counter pair per writer: page A on shard 0 (the
	// coordinator for every pair — it is always the lowest dirty
	// shard), page B on one of the others.
	type pair struct{ a, b page.ID }
	pairs := make([]pair, writers)
	seedLocal := func(shard int) (page.ID, error) {
		c, err := remote.Dial(fleet.procs[shard].addr, remote.ClientOptions{})
		if err != nil {
			return 0, err
		}
		defer c.Close()
		local, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(h.Page().Payload(), 0)
		h.MarkDirty()
		h.Release()
		if err := c.Commit(); err != nil {
			return 0, err
		}
		return remote.ClusterPageID(shard, local), nil
	}
	for w := 0; w < writers; w++ {
		if pairs[w].a, err = seedLocal(0); err != nil {
			return nil, err
		}
		if pairs[w].b, err = seedLocal(1 + w%(shards-1)); err != nil {
			return nil, err
		}
	}

	table := remote.RouteTable{Epoch: 1, Shards: fleet.fronts()}
	copts := remote.ClusterOptions{Client: remote.ClientOptions{
		RequestTimeout: 2 * time.Second,
		RetryLimit:     2,
	}}
	var attempts, acked, conflicts, unknowns atomic.Uint64
	deadline := time.Now().Add(soak)
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc, err := remote.DialClusterTable(table, copts)
			if err != nil {
				errs <- fmt.Errorf("writer %d: %w", w, err)
				return
			}
			defer cc.Close()
			pr := pairs[w]
			bump := func(id page.ID) error {
				h, err := cc.Get(id)
				if err != nil {
					return err
				}
				v := binary.LittleEndian.Uint64(h.Page().Payload())
				binary.LittleEndian.PutUint64(h.Page().Payload(), v+1)
				h.MarkDirty()
				h.Release()
				return nil
			}
			for time.Now().Before(deadline) {
				if err := bump(pr.a); err == nil {
					err = bump(pr.b)
					if err == nil {
						attempts.Add(1)
						err = cc.Commit()
					}
					if err == nil {
						acked.Add(1)
						continue
					}
					if errors.Is(err, remote.ErrConflict) {
						conflicts.Add(1)
						continue
					}
				}
				// A read or commit failed outright, or the outcome is
				// unknown: the shard we need may be mid-restart. Refresh
				// the table until it answers, give the resolvers a beat,
				// and re-read the pair — the counters themselves say
				// whether the in-flight transaction landed.
				unknowns.Add(1)
				for time.Now().Before(deadline) {
					cc.Abort()
					if rerr := cc.RefreshTable(); rerr == nil {
						if _, gerr := cc.Get(pr.b); gerr == nil {
							break
						}
					}
					time.Sleep(50 * time.Millisecond)
				}
				cc.Abort()
			}
			errs <- nil
		}(w)
	}

	// Mid-soak chaos: kill the highest shard, restart it from its own
	// directory, and publish the new address at the next epoch.
	time.Sleep(soak / 2)
	victim := shards - 1
	victimDir := fleet.killShard(victim)
	if err := fleet.startShard(victim, victimDir); err != nil {
		return nil, err
	}
	fleet.publish(2)

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Let the resolvers settle everything that went in doubt.
	res := &ShardChaosResult{
		Shards: shards, Soak: soak, Writers: writers,
		Attempts: attempts.Load(), Acked: acked.Load(),
		Conflicts: conflicts.Load(), Unknowns: unknowns.Load(),
	}
	settleBy := time.Now().Add(10 * time.Second)
	for {
		inDoubt := 0
		for _, p := range fleet.procs {
			inDoubt += p.srv.PreparedCount()
		}
		res.InDoubt = inDoubt
		if inDoubt == 0 || time.Now().After(settleBy) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, p := range fleet.procs {
		_, commits, _, resolved := p.srv.CrossCommitStats()
		res.CrossCommits += commits
		res.Resolved += resolved
	}

	// Final-state verification from two independent fresh sessions.
	verify := remote.RouteTable{Epoch: 2, Shards: fleet.fronts()}
	c1, err := remote.DialClusterTable(verify, remote.ClusterOptions{})
	if err != nil {
		return nil, err
	}
	defer c1.Close()
	c2, err := remote.DialClusterTable(verify, remote.ClusterOptions{})
	if err != nil {
		return nil, err
	}
	defer c2.Close()
	res.PairsEqual, res.ExactlyOnce, res.ByteIdentical = true, true, true
	perPairAttempts := attempts.Load() // loose per-pair upper bound
	for w := 0; w < writers; w++ {
		readPage := func(cc *remote.ClusterClient, id page.ID) (*page.Page, error) {
			_, p, err := cc.ReadPage(id)
			return p, err
		}
		pa, err := readPage(c1, pairs[w].a)
		if err != nil {
			return nil, err
		}
		pb, err := readPage(c1, pairs[w].b)
		if err != nil {
			return nil, err
		}
		va := binary.LittleEndian.Uint64(pa.Payload())
		vb := binary.LittleEndian.Uint64(pb.Payload())
		if va != vb {
			res.PairsEqual = false
		}
		if va > perPairAttempts {
			res.ExactlyOnce = false
		}
		pa2, err := readPage(c2, pairs[w].a)
		if err != nil {
			return nil, err
		}
		pb2, err := readPage(c2, pairs[w].b)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(pa.Bytes(), pa2.Bytes()) || !bytes.Equal(pb.Bytes(), pb2.Bytes()) {
			res.ByteIdentical = false
		}
	}
	// Every acknowledged commit must be present: the counters sum to at
	// least the acked total (each acked commit added exactly 1 to one
	// pair), and at most the attempted total (nothing applied twice).
	var sum uint64
	for w := 0; w < writers; w++ {
		_, p, err := c1.ReadPage(pairs[w].a)
		if err != nil {
			return nil, err
		}
		sum += binary.LittleEndian.Uint64(p.Payload())
	}
	if sum < res.Acked || sum > res.Attempts {
		res.ExactlyOnce = false
	}
	return res, nil
}

// RenderShardChaos writes the chaos-soak verdict.
func RenderShardChaos(w io.Writer, r *ShardChaosResult) {
	title := fmt.Sprintf("E20 chaos soak: %d shards, %s, one shard killed and restarted mid-run", r.Shards, r.Soak)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "writers %d: %d attempts, %d acked, %d conflicts, %d outcome probes\n",
		r.Writers, r.Attempts, r.Acked, r.Conflicts, r.Unknowns)
	fmt.Fprintf(w, "servers: %d 2PC commit decisions, %d in-doubt resolved, %d left in doubt\n",
		r.CrossCommits, r.Resolved, r.InDoubt)
	verdict := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Fprintf(w, "atomicity (pairs equal): %s\n", verdict(r.PairsEqual))
	fmt.Fprintf(w, "exactly-once bounds:     %s\n", verdict(r.ExactlyOnce))
	fmt.Fprintf(w, "byte-identical reads:    %s\n", verdict(r.ByteIdentical))
	fmt.Fprintln(w)
}
