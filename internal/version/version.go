// Package version implements requirement R5 and §6.8 extension 2:
// versions and variants of nodes, with snapshot-at-time retrieval.
//
// Versioning is layered over any hyper.Backend through its blob
// facility, so every backend (and the remote configuration) gains it
// uniformly. Each captured version stores the node's attributes and
// content under "ver/<id>/<n>"; a small head record tracks the count.
// Variants are named versions branching from the main line.
package version

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"hypermodel/internal/hyper"
)

// State is a node's captured state: attributes plus content.
type State struct {
	Node hyper.Node
	Text string       // KindText only
	Form hyper.Bitmap // KindForm only
}

// Info describes one stored version.
type Info struct {
	Version int
	Variant string // empty for main-line versions
	At      time.Time
}

// Store captures and restores node versions on a backend.
type Store struct {
	b   hyper.Backend
	now func() time.Time
}

// New returns a version store over the backend.
func New(b hyper.Backend) *Store {
	return &Store{b: b, now: time.Now}
}

// SetClock injects a time source (tests).
func (s *Store) SetClock(now func() time.Time) { s.now = now }

// ErrNoVersions is returned when a node has no captured versions.
var ErrNoVersions = errors.New("version: node has no captured versions")

func headKey(id hyper.NodeID) string { return fmt.Sprintf("ver/%d/head", id) }
func verKey(id hyper.NodeID, n int) string {
	return fmt.Sprintf("ver/%d/%d", id, n)
}

// encodeState: node attrs, timestamp, variant, text, form.
func encodeState(st State, at time.Time, variant string) []byte {
	b := make([]byte, 0, 64+len(st.Text)+len(variant))
	b = append(b, byte(st.Node.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.Node.ID))
	for _, v := range []int32{st.Node.Ten, st.Node.Hundred, st.Node.Thousand, st.Node.Million} {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(at.UnixNano()))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(variant)))
	b = append(b, variant...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.Text)))
	b = append(b, st.Text...)
	if st.Node.Kind == hyper.KindForm {
		form := hyper.EncodeBitmap(st.Form)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(form)))
		b = append(b, form...)
	} else {
		b = binary.LittleEndian.AppendUint32(b, 0)
	}
	return b
}

func decodeState(data []byte) (State, time.Time, string, error) {
	var st State
	if len(data) < 37 {
		return st, time.Time{}, "", errors.New("version: truncated record")
	}
	off := 0
	st.Node.Kind = hyper.Kind(data[off])
	off++
	st.Node.ID = hyper.NodeID(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	vals := make([]int32, 4)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	st.Node.Ten, st.Node.Hundred, st.Node.Thousand, st.Node.Million = vals[0], vals[1], vals[2], vals[3]
	at := time.Unix(0, int64(binary.LittleEndian.Uint64(data[off:])))
	off += 8
	vlen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+vlen+4 > len(data) {
		return st, time.Time{}, "", errors.New("version: truncated variant")
	}
	variant := string(data[off : off+vlen])
	off += vlen
	tlen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+tlen+4 > len(data) {
		return st, time.Time{}, "", errors.New("version: truncated text")
	}
	st.Text = string(data[off : off+tlen])
	off += tlen
	flen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+flen != len(data) {
		return st, time.Time{}, "", errors.New("version: truncated form")
	}
	if flen > 0 {
		bm, err := hyper.DecodeBitmap(data[off : off+flen])
		if err != nil {
			return st, time.Time{}, "", err
		}
		st.Form = bm
	}
	return st, at, variant, nil
}

func (s *Store) currentState(id hyper.NodeID) (State, error) {
	n, err := s.b.Node(id)
	if err != nil {
		return State{}, err
	}
	st := State{Node: n}
	switch n.Kind {
	case hyper.KindText:
		if st.Text, err = s.b.Text(id); err != nil {
			return State{}, err
		}
	case hyper.KindForm:
		if st.Form, err = s.b.Form(id); err != nil {
			return State{}, err
		}
	}
	return st, nil
}

func (s *Store) head(id hyper.NodeID) (int, error) {
	data, err := s.b.GetBlob(headKey(id))
	if errors.Is(err, hyper.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint64(data)), nil
}

func (s *Store) setHead(id hyper.NodeID, n int) error {
	return s.b.PutBlob(headKey(id), binary.LittleEndian.AppendUint64(nil, uint64(n)))
}

// Capture stores the node's current state as its next main-line
// version and returns the version number (1-based).
func (s *Store) Capture(id hyper.NodeID) (int, error) {
	return s.capture(id, "")
}

// CaptureVariant stores the node's current state as a named variant —
// a parallel version (R5).
func (s *Store) CaptureVariant(id hyper.NodeID, variant string) (int, error) {
	if variant == "" {
		return 0, errors.New("version: variant name must not be empty")
	}
	return s.capture(id, variant)
}

func (s *Store) capture(id hyper.NodeID, variant string) (int, error) {
	st, err := s.currentState(id)
	if err != nil {
		return 0, err
	}
	head, err := s.head(id)
	if err != nil {
		return 0, err
	}
	n := head + 1
	if err := s.b.PutBlob(verKey(id, n), encodeState(st, s.now(), variant)); err != nil {
		return 0, err
	}
	if err := s.setHead(id, n); err != nil {
		return 0, err
	}
	return n, nil
}

// Versions lists a node's captured versions in ascending order.
func (s *Store) Versions(id hyper.NodeID) ([]Info, error) {
	head, err := s.head(id)
	if err != nil {
		return nil, err
	}
	out := make([]Info, 0, head)
	for n := 1; n <= head; n++ {
		data, err := s.b.GetBlob(verKey(id, n))
		if err != nil {
			return nil, err
		}
		_, at, variant, err := decodeState(data)
		if err != nil {
			return nil, err
		}
		out = append(out, Info{Version: n, Variant: variant, At: at})
	}
	return out, nil
}

// Get returns a specific captured version's state.
func (s *Store) Get(id hyper.NodeID, version int) (State, error) {
	data, err := s.b.GetBlob(verKey(id, version))
	if errors.Is(err, hyper.ErrNotFound) {
		return State{}, fmt.Errorf("%w: node %d version %d", ErrNoVersions, id, version)
	}
	if err != nil {
		return State{}, err
	}
	st, _, _, err := decodeState(data)
	return st, err
}

// Previous returns the most recently captured version — "retrieve the
// previous version of a node" (§3.1 R5).
func (s *Store) Previous(id hyper.NodeID) (State, Info, error) {
	head, err := s.head(id)
	if err != nil {
		return State{}, Info{}, err
	}
	if head == 0 {
		return State{}, Info{}, fmt.Errorf("%w: node %d", ErrNoVersions, id)
	}
	data, err := s.b.GetBlob(verKey(id, head))
	if err != nil {
		return State{}, Info{}, err
	}
	st, at, variant, err := decodeState(data)
	return st, Info{Version: head, Variant: variant, At: at}, err
}

// At returns the node's state as of the given time point: the newest
// main-line version captured at or before t ("a snapshot can be
// created for any time-point", R5).
func (s *Store) At(id hyper.NodeID, t time.Time) (State, Info, error) {
	head, err := s.head(id)
	if err != nil {
		return State{}, Info{}, err
	}
	for n := head; n >= 1; n-- {
		data, err := s.b.GetBlob(verKey(id, n))
		if err != nil {
			return State{}, Info{}, err
		}
		st, at, variant, err := decodeState(data)
		if err != nil {
			return State{}, Info{}, err
		}
		if variant == "" && !at.After(t) {
			return st, Info{Version: n, Variant: variant, At: at}, nil
		}
	}
	return State{}, Info{}, fmt.Errorf("%w: node %d before %v", ErrNoVersions, id, t)
}

// Restore writes a captured version's attributes and content back into
// the live database.
func (s *Store) Restore(id hyper.NodeID, versionNum int) error {
	st, err := s.Get(id, versionNum)
	if err != nil {
		return err
	}
	if err := s.b.SetHundred(id, st.Node.Hundred); err != nil {
		return err
	}
	switch st.Node.Kind {
	case hyper.KindText:
		if err := s.b.SetText(id, st.Text); err != nil {
			return err
		}
	case hyper.KindForm:
		if err := s.b.SetForm(id, st.Form); err != nil {
			return err
		}
	}
	return nil
}

// SubtreeAt materializes the 1-N structure below start as it was at
// time t: the list of reachable nodes with their snapshot states where
// versions exist (current state otherwise). This is the R5 exercise
// "retrieve ... a node-structure as it was at a specific time-point".
func (s *Store) SubtreeAt(start hyper.NodeID, t time.Time) ([]State, error) {
	ids, err := hyper.Closure1N(s.b, start)
	if err != nil {
		return nil, err
	}
	out := make([]State, 0, len(ids))
	for _, id := range ids {
		if st, _, err := s.At(id, t); err == nil {
			out = append(out, st)
			continue
		} else if !errors.Is(err, ErrNoVersions) {
			return nil, err
		}
		st, err := s.currentState(id)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
