package version

import (
	"errors"
	"testing"
	"time"

	"hypermodel/internal/backend/memdb"
	"hypermodel/internal/hyper"
)

func setup(t *testing.T) (*memdb.DB, *Store, func() time.Time) {
	t.Helper()
	db, err := memdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	vs := New(db)
	clock := time.Unix(1000, 0)
	vs.SetClock(func() time.Time {
		clock = clock.Add(time.Second)
		return clock
	})
	if _, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return db, vs, func() time.Time { return clock }
}

func TestCaptureAndPrevious(t *testing.T) {
	db, vs, _ := setup(t)
	id := hyper.NodeID(3)
	orig, _ := db.Hundred(id)

	n, err := vs.Capture(id)
	if err != nil || n != 1 {
		t.Fatalf("capture = %d %v", n, err)
	}
	if err := db.SetHundred(id, 77); err != nil {
		t.Fatal(err)
	}
	st, info, err := vs.Previous(id)
	if err != nil || info.Version != 1 {
		t.Fatalf("previous = %+v %v", info, err)
	}
	if st.Node.Hundred != orig {
		t.Fatalf("previous hundred = %d, want %d", st.Node.Hundred, orig)
	}
}

func TestNoVersions(t *testing.T) {
	_, vs, _ := setup(t)
	if _, _, err := vs.Previous(5); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("previous of unversioned = %v", err)
	}
	if _, err := vs.Get(5, 1); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("get of unversioned = %v", err)
	}
}

func TestSnapshotAtTime(t *testing.T) {
	db, vs, now := setup(t)
	id := hyper.NodeID(4)

	if err := db.SetHundred(id, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Capture(id); err != nil { // v1 at t+1s
		t.Fatal(err)
	}
	t1 := now()
	if err := db.SetHundred(id, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Capture(id); err != nil { // v2 at t+2s
		t.Fatal(err)
	}
	t2 := now()

	st, info, err := vs.At(id, t1)
	if err != nil || info.Version != 1 || st.Node.Hundred != 10 {
		t.Fatalf("at t1: v%d hundred=%d (%v)", info.Version, st.Node.Hundred, err)
	}
	st, info, err = vs.At(id, t2)
	if err != nil || info.Version != 2 || st.Node.Hundred != 20 {
		t.Fatalf("at t2: v%d hundred=%d (%v)", info.Version, st.Node.Hundred, err)
	}
	if _, _, err := vs.At(id, t1.Add(-time.Hour)); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("at prehistoric time = %v", err)
	}
}

func TestVariants(t *testing.T) {
	db, vs, _ := setup(t)
	id := hyper.NodeID(6)
	if _, err := vs.Capture(id); err != nil {
		t.Fatal(err)
	}
	if err := db.SetHundred(id, 55); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.CaptureVariant(id, "draft-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.CaptureVariant(id, ""); err == nil {
		t.Fatal("empty variant name accepted")
	}
	infos, err := vs.Versions(id)
	if err != nil || len(infos) != 2 {
		t.Fatalf("versions = %v (%v)", infos, err)
	}
	if infos[0].Variant != "" || infos[1].Variant != "draft-b" {
		t.Fatalf("variants = %q %q", infos[0].Variant, infos[1].Variant)
	}
	// At() skips variants: it follows the main line only.
	st, info, err := vs.At(id, infos[1].At)
	if err != nil || info.Version != 1 {
		t.Fatalf("At over variant = v%d (%v)", info.Version, err)
	}
	_ = st
}

func TestRestore(t *testing.T) {
	db, vs, _ := setup(t)
	lay := hyper.Layout{LeafLevel: 2, Seed: 1}
	first, _ := hyper.LevelIDs(lay.LeafLevel)
	tid := first // leaf 0 is a text node (level-2 database has no form leaves)

	origText, err := db.Text(tid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Capture(tid); err != nil {
		t.Fatal(err)
	}
	if err := hyper.TextNodeEdit(db, tid, true); err != nil {
		t.Fatal(err)
	}
	if err := vs.Restore(tid, 1); err != nil {
		t.Fatal(err)
	}
	got, err := db.Text(tid)
	if err != nil || got != origText {
		t.Fatalf("restore did not bring back the text (%v)", err)
	}
}

func TestFormVersioning(t *testing.T) {
	db, err := memdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	vs := New(db)
	n := hyper.Node{ID: 1, Kind: hyper.KindForm}
	if err := db.CreateFormNode(n, hyper.NewBitmap(100, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Capture(1); err != nil {
		t.Fatal(err)
	}
	if err := hyper.FormNodeEdit(db, 1, hyper.Rect{X: 0, Y: 0, W: 30, H: 30}); err != nil {
		t.Fatal(err)
	}
	st, _, err := vs.Previous(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Form.CountBlack() != 0 {
		t.Fatal("captured bitmap not white")
	}
	if err := vs.Restore(1, 1); err != nil {
		t.Fatal(err)
	}
	bm, err := db.Form(1)
	if err != nil || bm.CountBlack() != 0 {
		t.Fatalf("restore did not bring back the white bitmap (%v)", err)
	}
}

func TestSubtreeAt(t *testing.T) {
	db, vs, now := setup(t)
	start := hyper.NodeID(2) // level-1 node in a level-2 database
	ids, err := hyper.Closure1N(db, start)
	if err != nil {
		t.Fatal(err)
	}
	// Capture every node, then mutate everything.
	orig := map[hyper.NodeID]int32{}
	for _, id := range ids {
		h, _ := db.Hundred(id)
		orig[id] = h
		if _, err := vs.Capture(id); err != nil {
			t.Fatal(err)
		}
	}
	snapTime := now()
	for _, id := range ids {
		if err := db.SetHundred(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	states, err := vs.SubtreeAt(start, snapTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != len(ids) {
		t.Fatalf("subtree snapshot has %d nodes, want %d", len(states), len(ids))
	}
	for _, st := range states {
		if st.Node.Hundred != orig[st.Node.ID] {
			t.Fatalf("node %d snapshot hundred = %d, want %d", st.Node.ID, st.Node.Hundred, orig[st.Node.ID])
		}
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	st := State{Node: hyper.Node{ID: 1, Kind: hyper.KindText}, Text: "hello"}
	enc := encodeState(st, time.Unix(5, 0), "var")
	for _, cut := range []int{1, 10, len(enc) - 1} {
		if _, _, _, err := decodeState(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	got, at, variant, err := decodeState(enc)
	if err != nil || got.Text != "hello" || variant != "var" || !at.Equal(time.Unix(5, 0)) {
		t.Fatalf("round trip: %+v %v %q %v", got, at, variant, err)
	}
}
