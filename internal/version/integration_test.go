package version

import (
	"path/filepath"
	"testing"
	"time"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/backend/reldb"
	"hypermodel/internal/hyper"
)

// TestVersioningOverPersistentBackends runs the R5 flows over the
// disk-backed mappings (the unit tests use the image backend), and
// verifies version chains survive a database reopen.
func TestVersioningOverPersistentBackends(t *testing.T) {
	cases := []struct {
		name string
		open func(path string) (hyper.Backend, error)
	}{
		{"oodb", func(p string) (hyper.Backend, error) { return oodb.Open(p, oodb.DefaultOptions()) }},
		{"reldb", func(p string) (hyper.Backend, error) { return reldb.Open(p, reldb.Options{}) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db")
			b, err := tc.open(path)
			if err != nil {
				t.Fatal(err)
			}
			lay, _, err := hyper.Generate(b, hyper.GenConfig{LeafLevel: 2, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			vs := New(b)
			clock := time.Unix(5000, 0)
			vs.SetClock(func() time.Time {
				clock = clock.Add(time.Minute)
				return clock
			})

			first, _ := lay.LevelIDs(lay.LeafLevel)
			tid := first
			origText, err := b.Text(tid)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := vs.Capture(tid); err != nil {
				t.Fatal(err)
			}
			snapTime := clock
			if err := hyper.TextNodeEdit(b, tid, true); err != nil {
				t.Fatal(err)
			}
			if _, err := vs.Capture(tid); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}

			// Version history must be durable.
			b2, err := tc.open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer b2.Close()
			vs2 := New(b2)
			infos, err := vs2.Versions(tid)
			if err != nil || len(infos) != 2 {
				t.Fatalf("versions after reopen: %v (%v)", infos, err)
			}
			st, info, err := vs2.At(tid, snapTime)
			if err != nil || info.Version != 1 {
				t.Fatalf("At(snapTime) = v%d (%v)", info.Version, err)
			}
			if st.Text != origText {
				t.Fatal("snapshot text diverged after reopen")
			}
			if err := vs2.Restore(tid, 1); err != nil {
				t.Fatal(err)
			}
			got, err := b2.Text(tid)
			if err != nil || got != origText {
				t.Fatalf("restore after reopen failed (%v)", err)
			}
		})
	}
}
