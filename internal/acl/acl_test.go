package acl

import (
	"errors"
	"testing"
	"testing/quick"

	"hypermodel/internal/backend/memdb"
	"hypermodel/internal/hyper"
)

// setup generates a level-3 database (documents are the level-1
// nodes: 2..6) on a volatile memdb.
func setup(t *testing.T) *memdb.DB {
	t.Helper()
	db, err := memdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 3, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPolicyCodec(t *testing.T) {
	f := func(pub uint8, ua, ub uint8) bool {
		p := Policy{
			Public: Access(pub & 3),
			Users:  map[string]Access{"alice": Access(ua & 3), "bob": Access(ub & 3)},
		}
		got, err := decodePolicy(encodePolicy(p))
		if err != nil {
			return false
		}
		return got.Public == p.Public && got.Users["alice"] == p.Users["alice"] && got.Users["bob"] == p.Users["bob"]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := decodePolicy([]byte{1}); err == nil {
		t.Fatal("truncated policy accepted")
	}
}

func TestDefaultIsAllow(t *testing.T) {
	db := setup(t)
	g := NewGuard(db, "anyone")
	if _, err := g.Hundred(10); err != nil {
		t.Fatalf("unprotected read denied: %v", err)
	}
	if err := g.SetHundred(10, 5); err != nil {
		t.Fatalf("unprotected write denied: %v", err)
	}
}

func TestPaperScenario(t *testing.T) {
	// §3.1 R11: public read-access on one document-structure, public
	// write-access on another, links between them still possible.
	db := setup(t)
	docA, docB := hyper.NodeID(2), hyper.NodeID(3)
	if err := SetPolicy(db, docA, Policy{Public: Read}); err != nil {
		t.Fatal(err)
	}
	if err := SetPolicy(db, docB, Policy{Public: Read | Write}); err != nil {
		t.Fatal(err)
	}
	g := NewGuard(db, "carol")

	// Nodes inside docA: readable, not writable. Node 7 is docA's
	// first child (level-major numbering).
	if _, err := g.Hundred(7); err != nil {
		t.Fatalf("read in read-only document denied: %v", err)
	}
	if err := g.SetHundred(7, 1); !errors.Is(err, ErrDenied) {
		t.Fatalf("write in read-only document allowed: %v", err)
	}
	// Nodes inside docB: writable. Node 12 is docB's first child.
	if err := g.SetHundred(12, 1); err != nil {
		t.Fatalf("write in writable document denied: %v", err)
	}
	// Link from docB (writable) into docA (readable): allowed.
	if err := g.AddRef(hyper.Edge{From: 12, To: 7}); err != nil {
		t.Fatalf("cross-document link denied: %v", err)
	}
	// Link from docA (read-only): denied, the refTo collection of a
	// protected node would change.
	if err := g.AddRef(hyper.Edge{From: 7, To: 12}); !errors.Is(err, ErrDenied) {
		t.Fatalf("link out of read-only document allowed: %v", err)
	}
}

func TestPerUserOverride(t *testing.T) {
	db := setup(t)
	doc := hyper.NodeID(2)
	if err := SetPolicy(db, doc, Policy{Public: Read, Users: map[string]Access{"owner": Read | Write}}); err != nil {
		t.Fatal(err)
	}
	owner := NewGuard(db, "owner")
	stranger := NewGuard(db, "stranger")
	if err := owner.SetHundred(7, 2); err != nil {
		t.Fatalf("owner write denied: %v", err)
	}
	if err := stranger.SetHundred(7, 3); !errors.Is(err, ErrDenied) {
		t.Fatalf("stranger write allowed: %v", err)
	}
}

func TestNearestAncestorWins(t *testing.T) {
	db := setup(t)
	// Document root read-only, but one section inside is writable.
	if err := SetPolicy(db, 2, Policy{Public: Read}); err != nil {
		t.Fatal(err)
	}
	section := hyper.NodeID(7) // child of 2
	if err := SetPolicy(db, section, Policy{Public: Read | Write}); err != nil {
		t.Fatal(err)
	}
	g := NewGuard(db, "u")
	// Inside the writable section (its first child is 32).
	if err := g.SetHundred(32, 1); err != nil {
		t.Fatalf("write under nearer writable policy denied: %v", err)
	}
	// Sibling section still read-only.
	if err := g.SetHundred(33+4, 1); err == nil {
		// 37 is a child of node 8, still under doc 2's policy.
		t.Fatal("write under read-only ancestor allowed")
	}
}

func TestRemovePolicy(t *testing.T) {
	db := setup(t)
	if err := SetPolicy(db, 2, Policy{}); err != nil { // deny everything
		t.Fatal(err)
	}
	g := NewGuard(db, "u")
	if _, err := g.Hundred(7); !errors.Is(err, ErrDenied) {
		t.Fatalf("read under empty policy allowed: %v", err)
	}
	if err := RemovePolicy(db, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Hundred(7); err != nil {
		t.Fatalf("read after policy removal denied: %v", err)
	}
}

func TestContentGuards(t *testing.T) {
	db := setup(t)
	first, _ := hyper.LevelIDs(3)
	textID := first // leaf 0 is a text node
	// Find the document (level-1 ancestor) of textID and lock it down.
	doc := textID
	for {
		p, ok, err := db.Parent(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || p == 1 {
			break
		}
		doc = p
	}
	if err := SetPolicy(db, doc, Policy{Public: 0}); err != nil {
		t.Fatal(err)
	}
	g := NewGuard(db, "u")
	if _, err := g.Text(textID); !errors.Is(err, ErrDenied) {
		t.Fatalf("text read allowed: %v", err)
	}
	if err := g.SetText(textID, "x"); !errors.Is(err, ErrDenied) {
		t.Fatalf("text write allowed: %v", err)
	}
	if err := g.AddChild(doc, 9999); !errors.Is(err, ErrDenied) {
		t.Fatalf("addChild allowed: %v", err)
	}
	// Operations still work through the raw backend (enforcement is
	// the guard's job, storage stays shared).
	if _, err := db.Text(textID); err != nil {
		t.Fatalf("raw backend read failed: %v", err)
	}
}

func TestSetPolicyOnMissingNode(t *testing.T) {
	db := setup(t)
	if err := SetPolicy(db, 99999, Policy{}); err == nil {
		t.Fatal("policy on missing node accepted")
	}
}
