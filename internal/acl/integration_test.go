package acl

import (
	"errors"
	"path/filepath"
	"testing"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/backend/reldb"
	"hypermodel/internal/hyper"
)

// TestACLOverPersistentBackends verifies policies are durable and
// enforced identically on the disk-backed mappings.
func TestACLOverPersistentBackends(t *testing.T) {
	cases := []struct {
		name string
		open func(path string) (hyper.Backend, error)
	}{
		{"oodb", func(p string) (hyper.Backend, error) { return oodb.Open(p, oodb.DefaultOptions()) }},
		{"reldb", func(p string) (hyper.Backend, error) { return reldb.Open(p, reldb.Options{}) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db")
			b, err := tc.open(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := hyper.Generate(b, hyper.GenConfig{LeafLevel: 2, Seed: 4}); err != nil {
				t.Fatal(err)
			}
			doc := hyper.NodeID(2)
			if err := SetPolicy(b, doc, Policy{Public: Read, Users: map[string]Access{"owner": Read | Write}}); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}

			b2, err := tc.open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer b2.Close()
			kids, err := b2.Children(doc)
			if err != nil {
				t.Fatal(err)
			}
			stranger := NewGuard(b2, "stranger")
			if _, err := stranger.Hundred(kids[0]); err != nil {
				t.Fatalf("public read denied after reopen: %v", err)
			}
			if err := stranger.SetHundred(kids[0], 1); !errors.Is(err, ErrDenied) {
				t.Fatalf("stranger write allowed after reopen: %v", err)
			}
			owner := NewGuard(b2, "owner")
			if err := owner.SetHundred(kids[0], 1); err != nil {
				t.Fatalf("owner write denied after reopen: %v", err)
			}
		})
	}
}
