package acl

import "testing"

// FuzzDecodePolicy: stored policies may be corrupted on disk; the
// decoder must reject or accept without panicking, and accepted
// policies must round-trip canonically.
func FuzzDecodePolicy(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePolicy(Policy{Public: Read}))
	f.Add(encodePolicy(Policy{Public: Read | Write, Users: map[string]Access{"a": Write, "bb": Read}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodePolicy(data)
		if err != nil {
			return
		}
		re := encodePolicy(p)
		p2, err := decodePolicy(re)
		if err != nil {
			t.Fatalf("re-encoded policy does not decode: %v", err)
		}
		if p2.Public != p.Public || len(p2.Users) != len(p.Users) {
			t.Fatal("policy round trip diverged")
		}
	})
}
