// Package acl implements requirement R11 and §6.8 extension 3: access
// control over document structures.
//
// Policies attach to any node and govern the whole 1-N subtree below
// it (the "document-structure"). The effective policy for a node is
// the one attached to its nearest ancestor (including itself); with no
// ancestor policy, access is allowed. Per-user grants override the
// public flags.
//
// The paper's example works directly: set public read-access on one
// document, public write-access on another, and hypertext links
// between the two still work because links only require write access
// on the side whose refTo collection changes.
//
// Policies are stored as backend blobs ("acl/<nodeId>"), so every
// backend enforces them identically through the Guard wrapper.
package acl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"hypermodel/internal/hyper"
)

// Access is a permission bit set.
type Access uint8

// Permission bits.
const (
	Read Access = 1 << iota
	Write
)

// ErrDenied is returned when the guard blocks an operation.
var ErrDenied = errors.New("acl: access denied")

// Policy is the access rule attached to one document root.
type Policy struct {
	Public Access            // access granted to everyone
	Users  map[string]Access // per-user overrides (union with Public)
}

// Allows reports whether the policy grants the user the access bits.
func (p Policy) Allows(user string, want Access) bool {
	eff := p.Public | p.Users[user]
	return eff&want == want
}

func encodePolicy(p Policy) []byte {
	users := make([]string, 0, len(p.Users))
	for u := range p.Users {
		users = append(users, u)
	}
	sort.Strings(users)
	b := []byte{byte(p.Public)}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(users)))
	for _, u := range users {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(u)))
		b = append(b, u...)
		b = append(b, byte(p.Users[u]))
	}
	return b
}

func decodePolicy(data []byte) (Policy, error) {
	if len(data) < 5 {
		return Policy{}, errors.New("acl: truncated policy")
	}
	p := Policy{Public: Access(data[0]), Users: map[string]Access{}}
	n := int(binary.LittleEndian.Uint32(data[1:]))
	off := 5
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return Policy{}, errors.New("acl: truncated policy user")
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+l+1 > len(data) {
			return Policy{}, errors.New("acl: truncated policy user")
		}
		p.Users[string(data[off:off+l])] = Access(data[off+l])
		off += l + 1
	}
	return p, nil
}

func policyKey(id hyper.NodeID) string { return fmt.Sprintf("acl/%d", id) }

// SetPolicy attaches (or replaces) the policy on a document root.
func SetPolicy(b hyper.Backend, root hyper.NodeID, p Policy) error {
	if _, err := b.Node(root); err != nil {
		return err
	}
	return b.PutBlob(policyKey(root), encodePolicy(p))
}

// GetPolicy reads the policy attached to a node, if any.
func GetPolicy(b hyper.Backend, root hyper.NodeID) (Policy, bool, error) {
	data, err := b.GetBlob(policyKey(root))
	if errors.Is(err, hyper.ErrNotFound) {
		return Policy{}, false, nil
	}
	if err != nil {
		return Policy{}, false, err
	}
	p, err := decodePolicy(data)
	return p, err == nil, err
}

// RemovePolicy detaches the policy from a node.
func RemovePolicy(b hyper.Backend, root hyper.NodeID) error {
	return b.DeleteBlob(policyKey(root))
}

// Guard wraps a backend with enforcement for one authenticated user.
// Read operations require Read on the target's document; mutations
// require Write. Only the operations the benchmark's editor issues are
// wrapped; Guard embeds the backend, so everything else passes through
// (the zero-trust variant would wrap every method).
type Guard struct {
	hyper.Backend
	User string
}

// NewGuard returns an enforcement wrapper for user.
func NewGuard(b hyper.Backend, user string) *Guard {
	return &Guard{Backend: b, User: user}
}

// effective finds the nearest ancestor policy of id.
func (g *Guard) effective(id hyper.NodeID) (Policy, bool, error) {
	cur := id
	for {
		p, ok, err := GetPolicy(g.Backend, cur)
		if err != nil {
			return Policy{}, false, err
		}
		if ok {
			return p, true, nil
		}
		parent, hasParent, err := g.Backend.Parent(cur)
		if err != nil {
			return Policy{}, false, err
		}
		if !hasParent {
			return Policy{}, false, nil
		}
		cur = parent
	}
}

// Check reports whether the user has the wanted access on id's
// document.
func (g *Guard) Check(id hyper.NodeID, want Access) error {
	p, ok, err := g.effective(id)
	if err != nil {
		return err
	}
	if !ok || p.Allows(g.User, want) {
		return nil
	}
	return fmt.Errorf("%w: user %q needs %s on node %d", ErrDenied, g.User, accessName(want), id)
}

func accessName(a Access) string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Read | Write:
		return "read+write"
	default:
		return fmt.Sprintf("access(%d)", a)
	}
}

// Text checks Read before delegating.
func (g *Guard) Text(id hyper.NodeID) (string, error) {
	if err := g.Check(id, Read); err != nil {
		return "", err
	}
	return g.Backend.Text(id)
}

// SetText checks Write before delegating.
func (g *Guard) SetText(id hyper.NodeID, text string) error {
	if err := g.Check(id, Write); err != nil {
		return err
	}
	return g.Backend.SetText(id, text)
}

// Form checks Read before delegating.
func (g *Guard) Form(id hyper.NodeID) (hyper.Bitmap, error) {
	if err := g.Check(id, Read); err != nil {
		return hyper.Bitmap{}, err
	}
	return g.Backend.Form(id)
}

// SetForm checks Write before delegating.
func (g *Guard) SetForm(id hyper.NodeID, bm hyper.Bitmap) error {
	if err := g.Check(id, Write); err != nil {
		return err
	}
	return g.Backend.SetForm(id, bm)
}

// SetHundred checks Write before delegating.
func (g *Guard) SetHundred(id hyper.NodeID, v int32) error {
	if err := g.Check(id, Write); err != nil {
		return err
	}
	return g.Backend.SetHundred(id, v)
}

// Node checks Read before delegating.
func (g *Guard) Node(id hyper.NodeID) (hyper.Node, error) {
	if err := g.Check(id, Read); err != nil {
		return hyper.Node{}, err
	}
	return g.Backend.Node(id)
}

// Hundred checks Read before delegating.
func (g *Guard) Hundred(id hyper.NodeID) (int32, error) {
	if err := g.Check(id, Read); err != nil {
		return 0, err
	}
	return g.Backend.Hundred(id)
}

// AddRef checks Write on the referencing document and Read on the
// referenced one: links across differently-protected documents remain
// possible, exactly the paper's R11 scenario.
func (g *Guard) AddRef(e hyper.Edge) error {
	if err := g.Check(e.From, Write); err != nil {
		return err
	}
	if err := g.Check(e.To, Read); err != nil {
		return err
	}
	return g.Backend.AddRef(e)
}

// AddChild checks Write on the parent's document.
func (g *Guard) AddChild(parent, child hyper.NodeID) error {
	if err := g.Check(parent, Write); err != nil {
		return err
	}
	return g.Backend.AddChild(parent, child)
}
