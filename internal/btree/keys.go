package btree

import "encoding/binary"

// Key construction helpers. Integer components are encoded big-endian
// so that bytes.Compare order equals numeric order (for unsigned
// values, which is all the HyperModel schema needs: uniqueIds, OIDs and
// attribute values are non-negative).

// U64Key encodes a uint64 as an 8-byte big-endian key.
func U64Key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// U64FromKey decodes an 8-byte big-endian key.
func U64FromKey(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// U32U64Key encodes a composite (uint32, uint64) key, e.g. a secondary
// index entry (attributeValue, uniqueId). Ordering is attribute-major.
func U32U64Key(a uint32, b uint64) []byte {
	var k [12]byte
	binary.BigEndian.PutUint32(k[:4], a)
	binary.BigEndian.PutUint64(k[4:], b)
	return k[:]
}

// U32U64FromKey decodes a key built by U32U64Key.
func U32U64FromKey(k []byte) (uint32, uint64) {
	return binary.BigEndian.Uint32(k[:4]), binary.BigEndian.Uint64(k[4:12])
}

// U64U64Key encodes a composite (uint64, uint64) key, e.g. a
// relationship edge (fromId, toId).
func U64U64Key(a, b uint64) []byte {
	var k [16]byte
	binary.BigEndian.PutUint64(k[:8], a)
	binary.BigEndian.PutUint64(k[8:], b)
	return k[:]
}

// U64U64FromKey decodes a key built by U64U64Key.
func U64U64FromKey(k []byte) (uint64, uint64) {
	return binary.BigEndian.Uint64(k[:8]), binary.BigEndian.Uint64(k[8:16])
}

// U64U32Key encodes a composite (uint64, uint32) key, e.g. an ordered
// relationship entry (ownerId, sequence).
func U64U32Key(a uint64, b uint32) []byte {
	var k [12]byte
	binary.BigEndian.PutUint64(k[:8], a)
	binary.BigEndian.PutUint32(k[8:], b)
	return k[:]
}

// U64U32FromKey decodes a key built by U64U32Key.
func U64U32FromKey(k []byte) (uint64, uint32) {
	return binary.BigEndian.Uint64(k[:8]), binary.BigEndian.Uint32(k[8:12])
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix, for use as a Scan upper bound. It returns nil if no
// such key exists (prefix is all 0xFF).
func PrefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
