// Package btree implements a disk-resident B+tree over a page store.
//
// Keys and values are byte strings ordered by bytes.Compare; integer
// keys are encoded big-endian by callers to preserve order. All indexes
// in the repository (uniqueId, hundred, million, object table,
// relational tables) are instances of this tree.
//
// Design notes:
//   - Leaf pages are chained left-to-right for range scans.
//   - Duplicates are not stored; secondary indexes append the primary
//     key to the index key to make entries unique (see keys.go).
//   - Deletion is lazy: keys are removed in place, but empty pages are
//     left in the tree and reused by later inserts. Real systems
//     (e.g. PostgreSQL nbtree) make the same trade.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// Limits chosen so that several cells always fit in a page, which keeps
// splits meaningful. Larger payloads belong in slotted record pages.
const (
	MaxKey   = 256 // maximum key length in bytes
	MaxValue = 512 // maximum value length in bytes
)

// In-payload node layout.
const (
	offFlags    = 0  // 1 byte: 1 = leaf
	offNKeys    = 1  // uint16
	offNext     = 3  // uint64: next leaf (leaves only)
	offLeftmost = 11 // uint64: leftmost child (interior only)
	offSlots    = 19 // nkeys × uint16 cell offsets, ascending key order
)

const payloadSize = page.Size - page.HeaderSize

// ErrTooLarge is returned when a key or value exceeds the fixed limits.
var ErrTooLarge = errors.New("btree: key or value too large")

// Tree is a B+tree rooted at a named store root slot.
type Tree struct {
	sp       store.Space
	rootSlot int
	root     page.ID
}

// Open returns the tree stored in the given root slot, creating an
// empty tree (and claiming the slot) if it is unset.
func Open(sp store.Space, rootSlot int) (*Tree, error) {
	t := &Tree{sp: sp, rootSlot: rootSlot, root: sp.Root(rootSlot)}
	if t.root == page.Invalid {
		id, h, err := sp.Alloc(page.TypeBTree)
		if err != nil {
			return nil, fmt.Errorf("btree: create root: %w", err)
		}
		n := node{h.Page().Payload()}
		n.init(true)
		h.Release()
		t.root = id
		sp.SetRoot(rootSlot, id)
	}
	return t, nil
}

// startRoot returns the root page a traversal must begin at. The slot
// is re-resolved on every operation rather than trusting the cached
// root: a long-lived Tree over a concurrently-committed space (a
// store.ReadView, say) would otherwise keep descending from a
// pre-split root and silently miss every key that moved to the new
// right sibling. Read-only operations must not mutate the Tree — one
// instance may serve many reader goroutines — so the refreshed root
// stays a local.
func (t *Tree) startRoot() page.ID {
	if id := t.sp.Root(t.rootSlot); id != page.Invalid {
		return id
	}
	return t.root
}

// node wraps a page payload with B+tree accessors.
type node struct{ p []byte }

func (n node) init(leaf bool) {
	n.p[offFlags] = 0
	if leaf {
		n.p[offFlags] = 1
	}
	n.setNKeys(0)
	n.setNext(page.Invalid)
	n.setLeftmost(page.Invalid)
}

func (n node) leaf() bool         { return n.p[offFlags] == 1 }
func (n node) nkeys() int         { return int(binary.LittleEndian.Uint16(n.p[offNKeys:])) }
func (n node) setNKeys(k int)     { binary.LittleEndian.PutUint16(n.p[offNKeys:], uint16(k)) }
func (n node) next() page.ID      { return page.ID(binary.LittleEndian.Uint64(n.p[offNext:])) }
func (n node) setNext(id page.ID) { binary.LittleEndian.PutUint64(n.p[offNext:], uint64(id)) }
func (n node) leftmost() page.ID  { return page.ID(binary.LittleEndian.Uint64(n.p[offLeftmost:])) }
func (n node) setLeftmost(i page.ID) {
	binary.LittleEndian.PutUint64(n.p[offLeftmost:], uint64(i))
}

func (n node) cellOff(i int) int {
	return int(binary.LittleEndian.Uint16(n.p[offSlots+2*i:]))
}

func (n node) setCellOff(i, off int) {
	binary.LittleEndian.PutUint16(n.p[offSlots+2*i:], uint16(off))
}

// Leaf cell: klen u16 | vlen u16 | key | value.
func (n node) leafCell(i int) (key, val []byte) {
	off := n.cellOff(i)
	klen := int(binary.LittleEndian.Uint16(n.p[off:]))
	vlen := int(binary.LittleEndian.Uint16(n.p[off+2:]))
	key = n.p[off+4 : off+4+klen]
	val = n.p[off+4+klen : off+4+klen+vlen]
	return key, val
}

// Interior cell: klen u16 | child u64 | key. The child holds keys >=
// this cell's key; keys below the first cell go to leftmost.
func (n node) intCell(i int) (key []byte, child page.ID) {
	off := n.cellOff(i)
	klen := int(binary.LittleEndian.Uint16(n.p[off:]))
	child = page.ID(binary.LittleEndian.Uint64(n.p[off+2:]))
	key = n.p[off+10 : off+10+klen]
	return key, child
}

// lowWater is the end of the slot array; cells live above minCellOff.
func (n node) lowWater() int { return offSlots + 2*n.nkeys() }

func (n node) minCellOff() int {
	min := payloadSize
	for i := 0; i < n.nkeys(); i++ {
		if off := n.cellOff(i); off < min {
			min = off
		}
	}
	return min
}

func (n node) freeContiguous() int { return n.minCellOff() - n.lowWater() }

// search returns the index of the first key >= key, and whether it is
// an exact match.
func (n node) search(key []byte) (int, bool) {
	lo, hi := 0, n.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		var k []byte
		if n.leaf() {
			k, _ = n.leafCell(mid)
		} else {
			k, _ = n.intCell(mid)
		}
		switch bytes.Compare(k, key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childFor returns the child page to descend into for key.
func (n node) childFor(key []byte) page.ID {
	i, found := n.search(key)
	if found {
		_, c := n.intCell(i)
		return c
	}
	if i == 0 {
		return n.leftmost()
	}
	_, c := n.intCell(i - 1)
	return c
}

// removeCell deletes slot i (cell bytes become garbage until compaction).
func (n node) removeCell(i int) {
	k := n.nkeys()
	copy(n.p[offSlots+2*i:], n.p[offSlots+2*(i+1):offSlots+2*k])
	n.setNKeys(k - 1)
}

// insertRaw places a prebuilt cell at slot index i, compacting first if
// contiguous space is short. Returns false if the node must split.
func (n node) insertRaw(i int, cell []byte) bool {
	need := len(cell) + 2
	if n.freeContiguous() < need {
		n.compact()
		if n.freeContiguous() < need {
			return false
		}
	}
	off := n.minCellOff() - len(cell)
	copy(n.p[off:], cell)
	k := n.nkeys()
	copy(n.p[offSlots+2*(i+1):offSlots+2*(k+1)], n.p[offSlots+2*i:offSlots+2*k])
	n.setNKeys(k + 1)
	n.setCellOff(i, off)
	return true
}

// compact rewrites all cells tightly against the end of the payload.
func (n node) compact() {
	k := n.nkeys()
	cells := make([][]byte, k)
	for i := 0; i < k; i++ {
		off := n.cellOff(i)
		var size int
		klen := int(binary.LittleEndian.Uint16(n.p[off:]))
		if n.leaf() {
			vlen := int(binary.LittleEndian.Uint16(n.p[off+2:]))
			size = 4 + klen + vlen
		} else {
			size = 10 + klen
		}
		cells[i] = append([]byte(nil), n.p[off:off+size]...)
	}
	top := payloadSize
	for i := k - 1; i >= 0; i-- {
		top -= len(cells[i])
		copy(n.p[top:], cells[i])
		n.setCellOff(i, top)
	}
}

func buildLeafCell(key, val []byte) []byte {
	c := make([]byte, 4+len(key)+len(val))
	binary.LittleEndian.PutUint16(c, uint16(len(key)))
	binary.LittleEndian.PutUint16(c[2:], uint16(len(val)))
	copy(c[4:], key)
	copy(c[4+len(key):], val)
	return c
}

func buildIntCell(key []byte, child page.ID) []byte {
	c := make([]byte, 10+len(key))
	binary.LittleEndian.PutUint16(c, uint16(len(key)))
	binary.LittleEndian.PutUint64(c[2:], uint64(child))
	copy(c[10:], key)
	return c
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (val []byte, found bool, err error) {
	id := t.startRoot()
	for {
		h, err := t.sp.Get(id)
		if err != nil {
			return nil, false, err
		}
		n := node{h.Page().Payload()}
		if n.leaf() {
			i, ok := n.search(key)
			if !ok {
				h.Release()
				return nil, false, nil
			}
			_, v := n.leafCell(i)
			out := append([]byte(nil), v...)
			h.Release()
			return out, true, nil
		}
		next := n.childFor(key)
		h.Release()
		id = next
	}
}

// Put inserts or replaces the value under key.
func (t *Tree) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > MaxKey || len(val) > MaxValue {
		return ErrTooLarge
	}
	t.root = t.startRoot() // Put is writer-exclusive; refresh the cache
	sep, right, err := t.put(t.root, key, val)
	if err != nil {
		return err
	}
	if right == page.Invalid {
		return nil
	}
	// Root split: make a new root with the old root as leftmost child.
	newID, h, err := t.sp.Alloc(page.TypeBTree)
	if err != nil {
		return err
	}
	n := node{h.Page().Payload()}
	n.init(false)
	n.setLeftmost(t.root)
	n.insertRaw(0, buildIntCell(sep, right))
	h.Release()
	t.root = newID
	t.sp.SetRoot(t.rootSlot, newID)
	return nil
}

// put inserts into the subtree rooted at id. If the node split, it
// returns the separator key and the new right sibling's page ID.
func (t *Tree) put(id page.ID, key, val []byte) (sep []byte, right page.ID, err error) {
	h, err := t.sp.Get(id)
	if err != nil {
		return nil, page.Invalid, err
	}
	defer h.Release()
	n := node{h.Page().Payload()}

	if n.leaf() {
		i, found := n.search(key)
		if found {
			n.removeCell(i)
		}
		h.MarkDirty()
		if n.insertRaw(i, buildLeafCell(key, val)) {
			return nil, page.Invalid, nil
		}
		return t.splitLeaf(h, n, i, key, val)
	}

	childSep, childRight, err := t.put(n.childFor(key), key, val)
	if err != nil {
		return nil, page.Invalid, err
	}
	if childRight == page.Invalid {
		return nil, page.Invalid, nil
	}
	i, _ := n.search(childSep)
	h.MarkDirty()
	if n.insertRaw(i, buildIntCell(childSep, childRight)) {
		return nil, page.Invalid, nil
	}
	return t.splitInterior(h, n, i, childSep, childRight)
}

// splitLeaf splits a full leaf while inserting (key,val) at index i.
func (t *Tree) splitLeaf(h store.Handle, n node, i int, key, val []byte) ([]byte, page.ID, error) {
	k := n.nkeys()
	keys := make([][]byte, 0, k+1)
	vals := make([][]byte, 0, k+1)
	for j := 0; j < k; j++ {
		ck, cv := n.leafCell(j)
		keys = append(keys, append([]byte(nil), ck...))
		vals = append(vals, append([]byte(nil), cv...))
	}
	keys = append(keys[:i], append([][]byte{append([]byte(nil), key...)}, keys[i:]...)...)
	vals = append(vals[:i], append([][]byte{append([]byte(nil), val...)}, vals[i:]...)...)

	mid := (len(keys) + 1) / 2
	rightID, rh, err := t.sp.Alloc(page.TypeBTree)
	if err != nil {
		return nil, page.Invalid, err
	}
	defer rh.Release()
	rn := node{rh.Page().Payload()}
	rn.init(true)
	rn.setNext(n.next())

	n.init(true)
	n.setNext(rightID)
	for j := 0; j < mid; j++ {
		if !(node{n.p}).insertRaw(j, buildLeafCell(keys[j], vals[j])) {
			return nil, page.Invalid, errors.New("btree: leaf split left overflow")
		}
	}
	for j := mid; j < len(keys); j++ {
		if !rn.insertRaw(j-mid, buildLeafCell(keys[j], vals[j])) {
			return nil, page.Invalid, errors.New("btree: leaf split right overflow")
		}
	}
	h.MarkDirty()
	return append([]byte(nil), keys[mid]...), rightID, nil
}

// splitInterior splits a full interior node while inserting (key,child)
// at index i. The middle separator is promoted: it does not remain in
// either half, and its child becomes the right half's leftmost pointer.
func (t *Tree) splitInterior(h store.Handle, n node, i int, key []byte, child page.ID) ([]byte, page.ID, error) {
	k := n.nkeys()
	keys := make([][]byte, 0, k+1)
	children := make([]page.ID, 0, k+1)
	for j := 0; j < k; j++ {
		ck, cc := n.intCell(j)
		keys = append(keys, append([]byte(nil), ck...))
		children = append(children, cc)
	}
	keys = append(keys[:i], append([][]byte{append([]byte(nil), key...)}, keys[i:]...)...)
	children = append(children[:i], append([]page.ID{child}, children[i:]...)...)

	mid := len(keys) / 2
	promoted := keys[mid]
	leftmostRight := children[mid]

	rightID, rh, err := t.sp.Alloc(page.TypeBTree)
	if err != nil {
		return nil, page.Invalid, err
	}
	defer rh.Release()
	rn := node{rh.Page().Payload()}
	rn.init(false)
	rn.setLeftmost(leftmostRight)

	oldLeftmost := n.leftmost()
	n.init(false)
	n.setLeftmost(oldLeftmost)
	for j := 0; j < mid; j++ {
		if !(node{n.p}).insertRaw(j, buildIntCell(keys[j], children[j])) {
			return nil, page.Invalid, errors.New("btree: interior split left overflow")
		}
	}
	for j := mid + 1; j < len(keys); j++ {
		if !rn.insertRaw(j-mid-1, buildIntCell(keys[j], children[j])) {
			return nil, page.Invalid, errors.New("btree: interior split right overflow")
		}
	}
	h.MarkDirty()
	return promoted, rightID, nil
}

// Delete removes key from the tree, reporting whether it was present.
// Pages are not merged or freed (lazy deletion).
func (t *Tree) Delete(key []byte) (bool, error) {
	id := t.startRoot()
	for {
		h, err := t.sp.Get(id)
		if err != nil {
			return false, err
		}
		n := node{h.Page().Payload()}
		if n.leaf() {
			i, ok := n.search(key)
			if ok {
				n.removeCell(i)
				h.MarkDirty()
			}
			h.Release()
			return ok, nil
		}
		next := n.childFor(key)
		h.Release()
		id = next
	}
}

// Scan visits every entry with from <= key < to in ascending key order.
// A nil from starts at the smallest key; a nil to runs to the end. The
// callback returns false to stop early. The key and value slices passed
// to fn alias page memory and must not be retained.
func (t *Tree) Scan(from, to []byte, fn func(key, val []byte) (bool, error)) error {
	id := t.startRoot()
	// Descend to the leaf that would contain from.
	for {
		h, err := t.sp.Get(id)
		if err != nil {
			return err
		}
		n := node{h.Page().Payload()}
		if n.leaf() {
			h.Release()
			break
		}
		var next page.ID
		if from == nil {
			next = n.leftmost()
		} else {
			next = n.childFor(from)
		}
		h.Release()
		id = next
	}
	for id != page.Invalid {
		h, err := t.sp.Get(id)
		if err != nil {
			return err
		}
		n := node{h.Page().Payload()}
		start := 0
		if from != nil {
			start, _ = n.search(from)
		}
		for i := start; i < n.nkeys(); i++ {
			k, v := n.leafCell(i)
			if to != nil && bytes.Compare(k, to) >= 0 {
				h.Release()
				return nil
			}
			cont, err := fn(k, v)
			if err != nil || !cont {
				h.Release()
				return err
			}
		}
		from = nil
		next := n.next()
		h.Release()
		id = next
	}
	return nil
}

// Count returns the number of entries (a full scan; used by tests and
// tools, not by hot paths).
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Scan(nil, nil, func(_, _ []byte) (bool, error) { n++; return true, nil })
	return n, err
}

// Root returns the tree's current root page (diagnostics).
func (t *Tree) Root() page.ID { return t.root }
