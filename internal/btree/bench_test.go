package btree

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/store"
)

func benchTree(b *testing.B) (*Tree, *store.Store) {
	b.Helper()
	s, err := store.Open(filepath.Join(b.TempDir(), "db"), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	tr, err := Open(s, 0)
	if err != nil {
		b.Fatal(err)
	}
	return tr, s
}

func BenchmarkPutSequential(b *testing.B) {
	tr, _ := benchTree(b)
	val := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(U64Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutRandom(b *testing.B) {
	tr, _ := benchTree(b)
	rng := rand.New(rand.NewSource(1))
	val := make([]byte, 16)
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = U64Key(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(keys[i], val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	tr, _ := benchTree(b)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Put(U64Key(uint64(i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tr.Get(U64Key(uint64(rng.Intn(n)))); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	tr, _ := benchTree(b)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Put(U64Key(uint64(i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := tr.Scan(nil, nil, func(_, _ []byte) (bool, error) {
			count++
			return true, nil
		}); err != nil || count != n {
			b.Fatalf("scan %d (%v)", count, err)
		}
	}
	b.ReportMetric(float64(n), "entries/op")
}
