package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"hypermodel/internal/storage/store"
)

func openTree(t *testing.T) (*Tree, *store.Store) {
	t.Helper()
	s, err := store.Open(filepath.Join(t.TempDir(), "db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	tr, err := Open(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func TestPutGetSingle(t *testing.T) {
	tr, _ := openTree(t)
	if err := tr.Put([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("key"))
	if err != nil || !ok || string(v) != "value" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	_, ok, err = tr.Get([]byte("missing"))
	if err != nil || ok {
		t.Fatalf("missing key found")
	}
}

func TestPutReplacesValue(t *testing.T) {
	tr, _ := openTree(t)
	if err := tr.Put([]byte("k"), []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k"), []byte("second, and longer")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Get([]byte("k"))
	if !ok || string(v) != "second, and longer" {
		t.Fatalf("got %q", v)
	}
	if n, _ := tr.Count(); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestManyInsertsSplitAndOrder(t *testing.T) {
	tr, _ := openTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Put(U64Key(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Every key retrievable.
	for i := 0; i < n; i += 97 {
		v, ok, err := tr.Get(U64Key(uint64(i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: %q %v %v", i, v, ok, err)
		}
	}
	// Full scan is sorted and complete.
	var prev []byte
	count := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order at %x", k)
		}
		prev = append(prev[:0], k...)
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr, _ := openTree(t)
	for i := 0; i < 100; i++ {
		if err := tr.Put(U64Key(uint64(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tr.Scan(U64Key(10), U64Key(20), func(k, v []byte) (bool, error) {
		got = append(got, U64FromKey(k))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan got %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _ := openTree(t)
	for i := 0; i < 50; i++ {
		if err := tr.Put(U64Key(uint64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		n++
		return n < 7, nil
	})
	if err != nil || n != 7 {
		t.Fatalf("early stop visited %d (%v)", n, err)
	}
}

func TestDelete(t *testing.T) {
	tr, _ := openTree(t)
	for i := 0; i < 1000; i++ {
		if err := tr.Put(U64Key(uint64(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 2 {
		ok, err := tr.Delete(U64Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	ok, err := tr.Delete(U64Key(0))
	if err != nil || ok {
		t.Fatal("second delete of same key reported success")
	}
	for i := 0; i < 1000; i++ {
		_, found, err := tr.Get(U64Key(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 1; found != want {
			t.Fatalf("key %d: found=%v want=%v", i, found, want)
		}
	}
	if n, _ := tr.Count(); n != 500 {
		t.Fatalf("count = %d", n)
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	tr, _ := openTree(t)
	for i := 0; i < 800; i++ {
		if err := tr.Put(U64Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 800; i++ {
		if ok, err := tr.Delete(U64Key(uint64(i))); err != nil || !ok {
			t.Fatal(err)
		}
	}
	if n, _ := tr.Count(); n != 0 {
		t.Fatalf("count after delete-all = %d", n)
	}
	for i := 0; i < 800; i++ {
		if err := tr.Put(U64Key(uint64(i)), []byte("again")); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := tr.Count(); n != 800 {
		t.Fatalf("count after reinsert = %d", n)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	s, err := store.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put(U64Key(uint64(i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tr2, err := Open(s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i += 111 {
		v, ok, err := tr2.Get(U64Key(uint64(i)))
		if err != nil || !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("key %d after reopen: %q %v %v", i, v, ok, err)
		}
	}
}

func TestTooLargeRejected(t *testing.T) {
	tr, _ := openTree(t)
	if err := tr.Put(make([]byte, MaxKey+1), nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized key: %v", err)
	}
	if err := tr.Put([]byte("k"), make([]byte, MaxValue+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if err := tr.Put(nil, []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	// Exactly at the limits is fine.
	if err := tr.Put(make([]byte, MaxKey), make([]byte, MaxValue)); err != nil {
		t.Fatal(err)
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr, _ := openTree(t)
	rng := rand.New(rand.NewSource(7))
	ref := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := make([]byte, 1+rng.Intn(40))
		for j := range k {
			k[j] = byte('a' + rng.Intn(26))
		}
		v := fmt.Sprintf("val-%d", i)
		ref[string(k)] = v
		if err := tr.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range ref {
		v, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("key %q: %q %v %v", k, v, ok, err)
		}
	}
	if n, _ := tr.Count(); n != len(ref) {
		t.Fatalf("count = %d, want %d", n, len(ref))
	}
	// Scan order must match sorted reference keys.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if string(k) != keys[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, k, keys[i])
		}
		i++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleTreesShareStore(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, err := Open(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := a.Put(U64Key(uint64(i)), []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(U64Key(uint64(i)), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	va, _, _ := a.Get(U64Key(42))
	vb, _, _ := b.Get(U64Key(42))
	if string(va) != "a" || string(vb) != "b" {
		t.Fatalf("trees interfere: %q %q", va, vb)
	}
}
