package btree

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"hypermodel/internal/storage/store"
)

// TestQuickModelEquivalence drives the tree with a random operation
// sequence and checks it against a map+sorted-slice model: the classic
// model-based property test.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		s, err := store.Open(filepath.Join(t.TempDir(), "db"), nil)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		tr, err := Open(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[string][]byte{}
		const keySpace = 200
		for step := 0; step < 1200; step++ {
			k := U64Key(uint64(rng.Intn(keySpace)))
			switch rng.Intn(10) {
			case 0, 1: // delete
				ok, err := tr.Delete(k)
				if err != nil {
					t.Fatal(err)
				}
				_, want := model[string(k)]
				if ok != want {
					t.Errorf("seed %d step %d: delete ok=%v want=%v", seed, step, ok, want)
					return false
				}
				delete(model, string(k))
			case 2: // lookup
				v, ok, err := tr.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				want, wantOK := model[string(k)]
				if ok != wantOK || (ok && !bytes.Equal(v, want)) {
					t.Errorf("seed %d step %d: get mismatch", seed, step)
					return false
				}
			default: // insert/update
				v := make([]byte, rng.Intn(60))
				rng.Read(v)
				if err := tr.Put(k, v); err != nil {
					t.Fatal(err)
				}
				model[string(k)] = v
			}
		}
		// Final full comparison via scan.
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		err = tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
			if i >= len(keys) || string(k) != keys[i] || !bytes.Equal(v, model[keys[i]]) {
				t.Errorf("seed %d: final scan diverges at %d", seed, i)
				return false, nil
			}
			i++
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeScanMatchesModel checks arbitrary [from,to) scans
// against the model.
func TestQuickRangeScanMatchesModel(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr, err := Open(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	present := map[uint64]bool{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(5000))
		present[k] = true
		if err := tr.Put(U64Key(k), nil); err != nil {
			t.Fatal(err)
		}
	}
	f := func(a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for k := range present {
			if k >= lo && k < hi {
				want++
			}
		}
		got := 0
		err := tr.Scan(U64Key(lo), U64Key(hi), func(k, v []byte) (bool, error) {
			x := U64FromKey(k)
			if x < lo || x >= hi {
				t.Errorf("scan [%d,%d) returned %d", lo, hi, x)
			}
			got++
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrefixEnd verifies that PrefixEnd is a correct exclusive
// upper bound for prefix scans.
func TestQuickPrefixEnd(t *testing.T) {
	f := func(prefix, suffix []byte) bool {
		if len(prefix) == 0 {
			return true
		}
		end := PrefixEnd(prefix)
		withPrefix := append(append([]byte(nil), prefix...), suffix...)
		if end == nil {
			// All-0xFF prefix: every extension is "below infinity".
			for _, c := range prefix {
				if c != 0xFF {
					return false
				}
			}
			return true
		}
		// Every key starting with prefix must be < end, and end itself
		// must not start with prefix.
		return bytes.Compare(withPrefix, end) < 0 && !bytes.HasPrefix(end, prefix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKeyCodecs round-trips the composite key encoders and checks
// that byte order equals numeric order.
func TestQuickKeyCodecs(t *testing.T) {
	roundtrip := func(a uint32, b, c, d uint64) bool {
		ga, gb := U32U64FromKey(U32U64Key(a, b))
		gc, gd := U64U64FromKey(U64U64Key(c, d))
		return ga == a && gb == b && gc == c && gd == d && U64FromKey(U64Key(b)) == b
	}
	if err := quick.Check(roundtrip, nil); err != nil {
		t.Fatal(err)
	}
	ordered := func(a, b uint64) bool {
		cmp := bytes.Compare(U64Key(a), U64Key(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(ordered, nil); err != nil {
		t.Fatal(err)
	}
	compositeOrdered := func(a1, a2 uint32, b1, b2 uint64) bool {
		cmp := bytes.Compare(U32U64Key(a1, b1), U32U64Key(a2, b2))
		switch {
		case a1 != a2:
			return (cmp < 0) == (a1 < a2)
		default:
			switch {
			case b1 < b2:
				return cmp < 0
			case b1 > b2:
				return cmp > 0
			default:
				return cmp == 0
			}
		}
	}
	if err := quick.Check(compositeOrdered, nil); err != nil {
		t.Fatal(err)
	}
}
