package txn

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
	"hypermodel/internal/storage/store"
)

// startStack brings up a server over a generated database and returns
// its address.
func startStack(t *testing.T) (string, hyper.Layout) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "srv.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	c, err := remote.Dial(addr.String(), remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := oodb.New(c, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	return addr.String(), lay
}

func connect(t *testing.T, addr string) *oodb.DB {
	t.Helper()
	c, err := remote.Dial(addr, remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := oodb.New(c, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestRunCommits(t *testing.T) {
	addr, _ := startStack(t)
	db := connect(t, addr)
	if err := Run(db, func() error { return db.SetHundred(5, 42) }); err != nil {
		t.Fatal(err)
	}
	check := connect(t, addr)
	if h, err := check.Hundred(5); err != nil || h != 42 {
		t.Fatalf("hundred = %d %v", h, err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	addr, _ := startStack(t)
	db := connect(t, addr)
	boom := errors.New("boom")
	if err := Run(db, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

// TestConcurrentIncrementsAllSurvive hammers one node from several
// workers; Run's retry loop must serialize the increments so none are
// lost (the classic optimistic-CC correctness test).
func TestConcurrentIncrementsAllSurvive(t *testing.T) {
	addr, _ := startStack(t)
	base := connect(t, addr)
	if err := Run(base, func() error { return base.SetHundred(7, 0) }); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := remote.Dial(addr, remote.ClientOptions{})
			if err != nil {
				errs <- err
				return
			}
			db, err := oodb.New(c, oodb.DefaultOptions())
			if err != nil {
				errs <- err
				return
			}
			defer db.Close()
			for i := 0; i < perWorker; i++ {
				err := RunN(db, 200, func() error {
					h, err := db.Hundred(7)
					if err != nil {
						return err
					}
					return db.SetHundred(7, h+1)
				})
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	check := connect(t, addr)
	h, err := check.Hundred(7)
	if err != nil {
		t.Fatal(err)
	}
	if h != workers*perWorker {
		t.Fatalf("lost updates: hundred = %d, want %d", h, workers*perWorker)
	}
}

// TestWorkspaceIsolationAndPublish is the R9 scenario: a user's edits
// stay private until Publish, then become visible to others.
func TestWorkspaceIsolationAndPublish(t *testing.T) {
	addr, lay := startStack(t)
	alice := NewWorkspace(connect(t, addr), "alice")
	bob := connect(t, addr)

	first, _ := hyper.LevelIDs(lay.LeafLevel)
	tid := first // text node
	origText, err := bob.Text(tid)
	if err != nil {
		t.Fatal(err)
	}
	// Alice edits privately.
	if err := hyper.TextNodeEdit(alice.Backend(), tid, true); err != nil {
		t.Fatal(err)
	}
	// Bob still sees the original (fresh read).
	if err := bob.DropCaches(); err != nil {
		t.Fatal(err)
	}
	got, err := bob.Text(tid)
	if err != nil || got != origText {
		t.Fatalf("private edit leaked: %v", err)
	}
	// Alice publishes; Bob's next cold read sees it.
	if err := alice.Publish(); err != nil {
		t.Fatal(err)
	}
	if alice.Published() != 1 {
		t.Fatal("publish count wrong")
	}
	if err := bob.DropCaches(); err != nil {
		t.Fatal(err)
	}
	got, err = bob.Text(tid)
	if err != nil || got == origText {
		t.Fatalf("published edit not visible: %v", err)
	}
}

func TestWorkspaceDiscard(t *testing.T) {
	addr, _ := startStack(t)
	ws := NewWorkspace(connect(t, addr), "carol")
	b := ws.Backend()
	orig, err := b.Hundred(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetHundred(9, orig+1); err != nil {
		t.Fatal(err)
	}
	if err := ws.Discard(); err != nil {
		t.Fatal(err)
	}
	got, err := b.Hundred(9)
	if err != nil || got != orig {
		t.Fatalf("discard did not roll back: %d %v (want %d)", got, err, orig)
	}
}
