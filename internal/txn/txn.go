// Package txn provides the application-level transaction idioms on top
// of the backends' commit semantics:
//
//   - Run: execute a mutation and commit it, retrying automatically
//     when optimistic validation fails (R8). This is the loop every
//     multi-user HyperModel application runs. Validation is against a
//     version, not a global lock: the commit ships the transaction's
//     read set and the snapshot it was based on, and the server (or
//     store) checks both against the newest committed version — many
//     such commits validate and flush together under group commit.
//   - View: execute a read-only closure over a snapshot pinned to the
//     newest committed version, so a long traversal sees a stable
//     state while commits proceed, retrying when the pinned version
//     ages out of the store's version ring.
//   - Workspace: the R9 cooperation model — a user works privately
//     (uncommitted changes visible only through their own backend
//     connection) and makes the work shareable by publishing it.
//
// Against a shard cluster these idioms apply unchanged: the cluster
// session partitions the read and write sets per shard under the
// covers, and a cross-shard transaction's ErrConflict — raised when
// any touched shard's prepare-time validation fails — resets every
// shard session before it surfaces, so Run's retry re-reads current
// state exactly as with one server. The one cluster-specific outcome
// is ErrCommitUnknown: the commit decision could not be confirmed
// (the coordinator became unreachable mid-decide) and the shard-side
// resolvers will settle it either way after the fact. Run deliberately
// does NOT retry it — re-running the mutation could apply it twice —
// and lets it surface for the application to reconcile.
package txn

import (
	"errors"
	"fmt"

	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
	"hypermodel/internal/storage/store"
)

// DefaultRetries bounds Run's retry loop.
const DefaultRetries = 10

// ErrTooManyConflicts is returned when a transaction keeps failing
// optimistic validation.
var ErrTooManyConflicts = errors.New("txn: too many optimistic conflicts")

// Run executes fn and commits the backend, retrying the whole
// transaction when the commit fails optimistic validation. fn must be
// idempotent from the database's point of view: after a conflict the
// backend's caches have been refreshed and fn re-reads current state.
func Run(b hyper.Backend, fn func() error) error {
	return RunN(b, DefaultRetries, fn)
}

// RunN is Run with an explicit retry bound.
func RunN(b hyper.Backend, retries int, fn func() error) error {
	for attempt := 0; attempt <= retries; attempt++ {
		if err := fn(); err != nil {
			if errors.Is(err, remote.ErrConflict) {
				continue // stale read surfaced mid-transaction
			}
			return err
		}
		err := b.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, remote.ErrConflict) {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts", ErrTooManyConflicts, retries+1)
}

// View runs a read-only closure over a snapshot pinned to the newest
// committed version, so the closure's reads are stable while commits
// proceed on the live database. A backend without snapshot support
// (the image backend, or a page-server session — whose workstation
// cache plus optimistic validation already provides a consistent view)
// runs the closure against the live backend instead. When the pinned
// version ages out of the store's version ring mid-closure, the
// closure is re-run on a fresh snapshot, up to the retry bound.
func View(b hyper.Backend, fn func(hyper.Backend) error) error {
	db, ok := b.(hyper.DB)
	if !ok {
		return fn(b)
	}
	var err error
	for attempt := 0; attempt <= DefaultRetries; attempt++ {
		var snap hyper.DB
		snap, err = db.Snapshot()
		if errors.Is(err, hyper.ErrNoSnapshots) {
			return fn(b)
		}
		if err != nil {
			return err
		}
		err = fn(snap)
		// Drop the pin before deciding: an open snapshot holds its
		// version in the store's ring for as long as it lives.
		cerr := snap.Close()
		if !errors.Is(err, store.ErrSnapshotTooOld) {
			if err == nil {
				err = cerr
			}
			return err
		}
		// The version ring moved past our snapshot: pin a fresh one.
	}
	return fmt.Errorf("%w after %d attempts: %v", ErrTooManyConflicts, DefaultRetries+1, err)
}

// Workspace is a private working context for one user (R9): changes
// stay invisible to other users until Publish. With the page-server
// architecture each workspace is simply its own client connection —
// uncommitted pages live in the workstation cache.
type Workspace struct {
	b         hyper.Backend
	user      string
	published int
}

// NewWorkspace wraps a backend connection as a user's private
// workspace.
func NewWorkspace(b hyper.Backend, user string) *Workspace {
	return &Workspace{b: b, user: user}
}

// Backend exposes the workspace's private view for editing.
func (w *Workspace) Backend() hyper.Backend { return w.b }

// User returns the workspace owner.
func (w *Workspace) User() string { return w.user }

// Publish makes the workspace's accumulated changes shareable: they
// commit to the database, where other users' next cold access sees
// them. Conflicting concurrent publishes surface as ErrConflict.
func (w *Workspace) Publish() error {
	if err := w.b.Commit(); err != nil {
		return err
	}
	w.published++
	return nil
}

// Discard abandons the private changes, rolling the workspace back to
// the shared database state.
func (w *Workspace) Discard() error {
	if a, ok := w.b.(hyper.Aborter); ok {
		return a.Abort()
	}
	return w.b.DropCaches()
}

// Published reports how many times the workspace has published.
func (w *Workspace) Published() int { return w.published }
