// Package txn provides the application-level transaction idioms on top
// of the backends' commit semantics:
//
//   - Run: execute a mutation and commit it, retrying automatically
//     when optimistic validation fails (R8). This is the loop every
//     multi-user HyperModel application runs.
//   - Workspace: the R9 cooperation model — a user works privately
//     (uncommitted changes visible only through their own backend
//     connection) and makes the work shareable by publishing it.
package txn

import (
	"errors"
	"fmt"

	"hypermodel/internal/hyper"
	"hypermodel/internal/remote"
)

// DefaultRetries bounds Run's retry loop.
const DefaultRetries = 10

// ErrTooManyConflicts is returned when a transaction keeps failing
// optimistic validation.
var ErrTooManyConflicts = errors.New("txn: too many optimistic conflicts")

// Run executes fn and commits the backend, retrying the whole
// transaction when the commit fails optimistic validation. fn must be
// idempotent from the database's point of view: after a conflict the
// backend's caches have been refreshed and fn re-reads current state.
func Run(b hyper.Backend, fn func() error) error {
	return RunN(b, DefaultRetries, fn)
}

// RunN is Run with an explicit retry bound.
func RunN(b hyper.Backend, retries int, fn func() error) error {
	for attempt := 0; attempt <= retries; attempt++ {
		if err := fn(); err != nil {
			if errors.Is(err, remote.ErrConflict) {
				continue // stale read surfaced mid-transaction
			}
			return err
		}
		err := b.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, remote.ErrConflict) {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts", ErrTooManyConflicts, retries+1)
}

// Workspace is a private working context for one user (R9): changes
// stay invisible to other users until Publish. With the page-server
// architecture each workspace is simply its own client connection —
// uncommitted pages live in the workstation cache.
type Workspace struct {
	b         hyper.Backend
	user      string
	published int
}

// NewWorkspace wraps a backend connection as a user's private
// workspace.
func NewWorkspace(b hyper.Backend, user string) *Workspace {
	return &Workspace{b: b, user: user}
}

// Backend exposes the workspace's private view for editing.
func (w *Workspace) Backend() hyper.Backend { return w.b }

// User returns the workspace owner.
func (w *Workspace) User() string { return w.user }

// Publish makes the workspace's accumulated changes shareable: they
// commit to the database, where other users' next cold access sees
// them. Conflicting concurrent publishes surface as ErrConflict.
func (w *Workspace) Publish() error {
	if err := w.b.Commit(); err != nil {
		return err
	}
	w.published++
	return nil
}

// Discard abandons the private changes, rolling the workspace back to
// the shared database state.
func (w *Workspace) Discard() error {
	if a, ok := w.b.(hyper.Aborter); ok {
		return a.Abort()
	}
	return w.b.DropCaches()
}

// Published reports how many times the workspace has published.
func (w *Workspace) Published() int { return w.published }
