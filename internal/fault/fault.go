// Package fault provides deterministic, seedable fault injection for
// the remote tier. Every failure mode a flaky network or a sick server
// exhibits — dropped connections, added latency, writes cut off in the
// middle of a frame, flipped bytes, backing-store errors and panics —
// can be reproduced exactly from a seed, so the fault-tolerance paths
// in internal/remote are tested deterministically instead of by luck.
//
// Three layers are wrapped:
//
//   - Conn/Listener inject faults directly on a net.Conn, for unit
//     tests that want a faulty transport under one endpoint.
//   - Proxy is a TCP middlebox: clients dial the proxy, the proxy
//     forwards to the real server and injects faults on the byte
//     stream in both directions. This is what the chaos soak uses —
//     neither endpoint is modified, exactly like a bad network.
//   - Space wraps a store.Space with scheduled errors and panics, for
//     testing the server's handler isolation.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config sets the per-transfer fault probabilities. A "transfer" is
// one Read or Write on a wrapped connection, or one forwarded chunk in
// a Proxy. All probabilities default to zero (no faults); the zero
// Config is a transparent wrapper.
type Config struct {
	// Seed makes the fault schedule reproducible. Zero selects seed 1.
	Seed int64
	// DropProb closes the connection instead of transferring.
	DropProb float64
	// DelayProb sleeps a uniform duration in (0, MaxDelay] before the
	// transfer. Delays compose with the other faults.
	DelayProb float64
	// MaxDelay bounds injected delays (default 5ms).
	MaxDelay time.Duration
	// PartialProb transfers a strict prefix of the chunk and then
	// closes the connection: a mid-frame close.
	PartialProb float64
	// CorruptProb flips one byte of the chunk in flight.
	CorruptProb float64
	// Latency adds a fixed transit delay to every chunk a Proxy
	// forwards, in each direction (a round trip costs 2×Latency).
	// Unlike DelayProb — an inline stall that also throttles the
	// direction's bandwidth — Latency is a delay line: chunks stay in
	// flight concurrently and arrive in order, modeling propagation
	// delay on a real link. It is a property of the link, not a
	// fault: it applies even when injection is disabled, is not
	// counted in Stats, and is honored only by Proxy.
	Latency time.Duration
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Millisecond
	}
	return c
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Transfers   uint64 // chunks examined
	Drops       uint64 // connections closed outright
	Delays      uint64 // transfers delayed
	Partials    uint64 // mid-frame closes
	Corruptions uint64 // bytes flipped
}

// Total reports how many faults (of any kind) were injected.
func (s Stats) Total() uint64 { return s.Drops + s.Delays + s.Partials + s.Corruptions }

// ErrInjected is the error returned from a wrapped connection when a
// fault, rather than the real network, terminated the transfer.
var ErrInjected = errors.New("fault: injected failure")

// Injector draws the fault schedule. One injector may be shared by
// many connections (a Listener shares one across everything it
// accepts), in which case the schedule interleaves across them.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// NewInjector returns a deterministic injector for the configuration.
func NewInjector(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// action is the verdict for one transfer. truncate < 0 means forward
// everything; corruptAt < 0 means corrupt nothing.
type action struct {
	delay     time.Duration
	drop      bool
	truncate  int
	corruptAt int
}

// decide draws the verdict for a transfer of n bytes. Rolls are drawn
// in a fixed order so a seed always yields the same schedule.
func (in *Injector) decide(n int) action {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Transfers++
	act := action{truncate: -1, corruptAt: -1}
	if in.cfg.DelayProb > 0 && in.rng.Float64() < in.cfg.DelayProb {
		act.delay = time.Duration(1 + in.rng.Int63n(int64(in.cfg.MaxDelay)))
		in.stats.Delays++
	}
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		act.drop = true
		in.stats.Drops++
		return act
	}
	if in.cfg.PartialProb > 0 && n > 1 && in.rng.Float64() < in.cfg.PartialProb {
		act.truncate = 1 + in.rng.Intn(n-1)
		in.stats.Partials++
		return act
	}
	if in.cfg.CorruptProb > 0 && n > 0 && in.rng.Float64() < in.cfg.CorruptProb {
		act.corruptAt = in.rng.Intn(n)
		in.stats.Corruptions++
	}
	return act
}

// Conn injects faults into one net.Conn. Reads and writes share the
// injector's schedule.
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn wraps conn with the injector's fault schedule.
func WrapConn(conn net.Conn, inj *Injector) *Conn {
	return &Conn{Conn: conn, inj: inj}
}

// Write delivers p, or a fault instead: the connection may be closed
// before anything is sent (drop), after a strict prefix (mid-frame
// close), or the data may be delayed or have one byte flipped.
func (c *Conn) Write(p []byte) (int, error) {
	act := c.inj.decide(len(p))
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.drop {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: dropped write", ErrInjected)
	}
	if act.truncate >= 0 {
		n, _ := c.Conn.Write(p[:act.truncate])
		c.Conn.Close()
		return n, fmt.Errorf("%w: mid-frame close after %d/%d bytes", ErrInjected, act.truncate, len(p))
	}
	if act.corruptAt >= 0 {
		tmp := make([]byte, len(p))
		copy(tmp, p)
		tmp[act.corruptAt] ^= 0x80
		return c.Conn.Write(tmp)
	}
	return c.Conn.Write(p)
}

// Read receives data, subject to the same schedule: the delivery may
// be delayed, cut short (connection closed after a prefix), dropped
// entirely, or corrupted by one flipped byte.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil || n == 0 {
		return n, err
	}
	act := c.inj.decide(n)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.drop {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: dropped read", ErrInjected)
	}
	if act.truncate >= 0 {
		c.Conn.Close()
		return act.truncate, fmt.Errorf("%w: mid-frame close after %d/%d bytes", ErrInjected, act.truncate, n)
	}
	if act.corruptAt >= 0 {
		p[act.corruptAt] ^= 0x80
	}
	return n, nil
}

// Listener wraps every accepted connection with a shared injector.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener returns a listener whose accepted connections share one
// fault schedule drawn from cfg.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, inj: NewInjector(cfg)}
}

// Stats snapshots the shared injector's counters.
func (l *Listener) Stats() Stats { return l.inj.Stats() }

// Accept wraps the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, l.inj), nil
}

// LimitConn writes at most limit bytes to the underlying connection
// and then closes it — the deterministic mid-frame close used by the
// table-driven truncation tests, which cut a response at every byte
// offset. Reads pass through untouched.
type LimitConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
}

// NewLimitConn wraps conn so that writes stop (and the connection
// closes) after limit bytes.
func NewLimitConn(conn net.Conn, limit int) *LimitConn {
	return &LimitConn{Conn: conn, remaining: limit}
}

// Write forwards up to the remaining byte budget, closing the
// connection at the boundary.
func (c *LimitConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: write budget exhausted", ErrInjected)
	}
	if len(p) <= c.remaining {
		n, err := c.Conn.Write(p)
		c.remaining -= n
		return n, err
	}
	n, _ := c.Conn.Write(p[:c.remaining])
	c.remaining = 0
	c.Conn.Close()
	return n, fmt.Errorf("%w: truncated write at byte budget", ErrInjected)
}
