package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestInjectorDeterminism: the same seed must yield the same fault
// schedule — the whole point of seedable injection.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, DropProb: 0.1, DelayProb: 0.1, PartialProb: 0.1, CorruptProb: 0.1, MaxDelay: time.Microsecond}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 1000; i++ {
		va, vb := a.decide(100), b.decide(100)
		if va != vb {
			t.Fatalf("schedule diverged at step %d: %+v vs %+v", i, va, vb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("schedule injected nothing at 10% rates over 1000 transfers")
	}
}

// pipePair returns two ends of an in-process TCP connection.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			ch <- c
		}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b := <-ch
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestConnDropAndCorrupt: a wrapped connection with certain faults
// must close on drops and flip exactly one byte on corruption.
func TestConnDropAndCorrupt(t *testing.T) {
	a, b := pipePair(t)
	wrapped := WrapConn(a, NewInjector(Config{Seed: 3, CorruptProb: 1}))
	msg := []byte("the quick brown fox")
	if _, err := wrapped.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		if msg[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want 1", diff)
	}

	dropped := WrapConn(a, NewInjector(Config{Seed: 3, DropProb: 1}))
	if _, err := dropped.Write(msg); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop returned %v, want ErrInjected", err)
	}
	if _, err := io.ReadAll(b); err != nil && !errors.Is(err, net.ErrClosed) {
		// the peer observes a clean close, not a protocol error
		t.Fatalf("peer read after drop: %v", err)
	}
}

// TestConnPartialWrite: a mid-frame close delivers a strict prefix.
func TestConnPartialWrite(t *testing.T) {
	a, b := pipePair(t)
	wrapped := WrapConn(a, NewInjector(Config{Seed: 5, PartialProb: 1}))
	msg := bytes.Repeat([]byte{0xAB}, 256)
	n, err := wrapped.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write returned %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write passed %d of %d bytes, want strict prefix", n, len(msg))
	}
	got, _ := io.ReadAll(b)
	if len(got) != n {
		t.Fatalf("peer received %d bytes, writer claims %d", len(got), n)
	}
}

// TestProxyTransparentWhenDisabled: a disabled proxy must forward
// bytes unmodified in both directions.
func TestProxyTransparentWhenDisabled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c) // echo
		c.Close()
	}()

	px, err := NewProxy(ln.Addr().String(), Config{Seed: 9, DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SetEnabled(false)

	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("echo through the middlebox")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if px.Stats().Total() != 0 {
		t.Fatalf("disabled proxy injected faults: %+v", px.Stats())
	}
	if px.Accepted() != 1 {
		t.Fatalf("accepted = %d connections, want 1", px.Accepted())
	}
}

// TestProxyDropSeversConnection: with injection enabled, a certain
// drop kills the forwarded connection and the client sees EOF.
func TestProxyDropSeversConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { io.Copy(c, c); c.Close() }(c)
		}
	}()

	px, err := NewProxy(ln.Addr().String(), Config{Seed: 2, DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("doomed"))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 16)); err == nil {
		t.Fatal("read succeeded through a certain-drop proxy")
	}
	if px.Stats().Drops == 0 {
		t.Fatal("proxy counted no drops")
	}
}

// TestLimitConn: the byte budget cuts a write at an exact offset.
func TestLimitConn(t *testing.T) {
	for _, limit := range []int{0, 1, 5, 9, 10} {
		a, b := pipePair(t)
		lc := NewLimitConn(a, limit)
		msg := []byte("0123456789")
		n, err := lc.Write(msg)
		if limit >= len(msg) {
			if err != nil || n != len(msg) {
				t.Fatalf("limit %d: full write got n=%d err=%v", limit, n, err)
			}
			a.Close()
		} else {
			if !errors.Is(err, ErrInjected) || n != limit {
				t.Fatalf("limit %d: got n=%d err=%v", limit, n, err)
			}
		}
		got, _ := io.ReadAll(b)
		want := limit
		if want > len(msg) {
			want = len(msg)
		}
		if len(got) != want {
			t.Fatalf("limit %d: peer received %d bytes", limit, len(got))
		}
	}
}

// TestProxyLatencyIsDelayLineNotThrottle: a configured Latency must
// behave like wire propagation delay — each round trip pays it, but
// chunks overlap in flight, so N pipelined round trips cost far less
// than N serialized ones.
func TestProxyLatencyIsDelayLineNotThrottle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c) // echo
		c.Close()
	}()

	const lat = 20 * time.Millisecond
	px, err := NewProxy(ln.Addr().String(), Config{Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One serialized round trip pays the full 2×Latency.
	start := time.Now()
	if _, err := conn.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(conn, one); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 2*lat {
		t.Fatalf("round trip %v, want ≥ %v", rtt, 2*lat)
	}

	// Eight pipelined round trips overlap on the wire: writes go out
	// back to back, and all echoes arrive roughly one RTT later. An
	// inline-sleep throttle would serialize them to ≥ 8×2×Latency.
	const n = 8
	start = time.Now()
	if _, err := conn.Write(bytes.Repeat([]byte{2}, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, n)); err != nil {
		t.Fatal(err)
	}
	if total := time.Since(start); total >= n*2*lat/2 {
		t.Fatalf("%d pipelined round trips took %v — latency is throttling bandwidth", n, total)
	}

	// Latency is a link property, not a fault.
	if got := px.Stats().Total(); got != 0 {
		t.Fatalf("latency counted as %d faults", got)
	}
}
