package fault

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting TCP middlebox: clients dial the proxy's
// address, the proxy dials the upstream server, and bytes are pumped
// in both directions through one shared fault schedule. Disabling the
// proxy (SetEnabled(false)) makes it a transparent forwarder, so a
// test can build its database fault-free and then turn the weather bad
// for the measured run.
type Proxy struct {
	upstream string
	ln       net.Listener
	inj      *Injector
	enabled  atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted uint64 // client connections accepted (atomic)
}

// NewProxy starts a proxy in front of the upstream address, listening
// on a fresh loopback port. Fault injection starts enabled.
func NewProxy(upstream string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		inj:      NewInjector(cfg),
		conns:    make(map[net.Conn]struct{}),
	}
	p.enabled.Store(true)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the upstream server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetEnabled turns fault injection on or off; the proxy keeps
// forwarding either way.
func (p *Proxy) SetEnabled(on bool) { p.enabled.Store(on) }

// Stats snapshots the injector's fault counters.
func (p *Proxy) Stats() Stats { return p.inj.Stats() }

// Accepted reports how many client connections the proxy has seen —
// reconnects after injected drops show up here.
func (p *Proxy) Accepted() uint64 { return atomic.LoadUint64(&p.accepted) }

// Close stops the listener, severs active connections and waits for
// the pumps to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		atomic.AddUint64(&p.accepted, 1)
		up, err := net.Dial("tcp", p.upstream)
		if err != nil {
			down.Close()
			continue
		}
		if !p.track(down) || !p.track(up) {
			down.Close()
			up.Close()
			return
		}
		p.wg.Add(2)
		go p.pump(up, down)
		go p.pump(down, up)
	}
}

// pump copies src to dst until a fault or a real error severs the
// pair. A drop or mid-frame close kills both directions: TCP has no
// half-broken connections at the frame protocol's level of concern.
func (p *Proxy) pump(dst, src net.Conn) {
	defer p.wg.Done()
	send, flush := p.sender(dst)
	defer func() {
		flush()
		dst.Close()
		src.Close()
		p.untrack(dst)
		p.untrack(src)
	}()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			data := buf[:n]
			if p.enabled.Load() {
				act := p.inj.decide(n)
				if act.delay > 0 {
					time.Sleep(act.delay)
				}
				if act.drop {
					return
				}
				if act.truncate >= 0 {
					send(data[:act.truncate])
					return
				}
				if act.corruptAt >= 0 {
					data[act.corruptAt] ^= 0x80
				}
			}
			if !send(data) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// sender builds the write path for one pump direction. Without a
// configured Latency it writes straight through. With one it is a
// delay line: chunks are timestamped on entry and written upstream
// Latency later by a delivery goroutine, so many chunks are "on the
// wire" at once and order is preserved — propagation delay without a
// bandwidth cap. flush delivers whatever is still in flight (a
// graceful close must not eat the tail of the stream) and stops the
// delivery goroutine.
func (p *Proxy) sender(dst net.Conn) (send func([]byte) bool, flush func()) {
	lat := p.inj.cfg.Latency
	if lat <= 0 {
		return func(b []byte) bool {
			_, err := dst.Write(b)
			return err == nil
		}, func() {}
	}
	type parcel struct {
		at   time.Time
		data []byte
	}
	line := make(chan parcel, 4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for pc := range line {
			if wait := time.Until(pc.at); wait > 0 { //hyperlint:allow detrand -- latency shaping delivers parcels on a wall-clock schedule by design
				time.Sleep(wait)
			}
			dst.Write(pc.data)
		}
	}()
	send = func(b []byte) bool {
		data := make([]byte, len(b)) // pump reuses its read buffer
		copy(data, b)
		select {
		case line <- parcel{at: time.Now().Add(lat), data: data}: //hyperlint:allow detrand -- transit-delay stamp; latency is wall-clock by nature
			return true
		case <-done:
			return false
		}
	}
	flush = func() {
		close(line)
		<-done
	}
	return send, flush
}
