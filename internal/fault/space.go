package fault

import (
	"fmt"
	"sync"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// Space wraps a store.Space with a deterministic failure schedule:
// every ErrEvery-th operation returns an injected error, and every
// PanicEvery-th operation panics. Counting-based scheduling (rather
// than probabilities) lets a test say "the third Get fails" exactly.
// The zero intervals disable the corresponding fault.
type Space struct {
	Inner store.Space

	mu         sync.Mutex
	errEvery   int
	panicEvery int
	ops        int
	injected   uint64
	panics     uint64
}

// NewSpace wraps inner; errEvery and panicEvery schedule the faults
// (0 disables).
func NewSpace(inner store.Space, errEvery, panicEvery int) *Space {
	return &Space{Inner: inner, errEvery: errEvery, panicEvery: panicEvery}
}

// Injected reports how many errors and panics were delivered.
func (s *Space) Injected() (errs, panics uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected, s.panics
}

// step advances the operation counter and delivers a scheduled fault.
func (s *Space) step(op string) error {
	s.mu.Lock()
	s.ops++
	ops := s.ops
	doPanic := s.panicEvery > 0 && ops%s.panicEvery == 0
	doErr := !doPanic && s.errEvery > 0 && ops%s.errEvery == 0
	if doPanic {
		s.panics++
	}
	if doErr {
		s.injected++
	}
	s.mu.Unlock()
	if doPanic {
		panic(fmt.Sprintf("fault: injected panic in %s (op %d)", op, ops))
	}
	if doErr {
		return fmt.Errorf("%w: %s (op %d)", ErrInjected, op, ops)
	}
	return nil
}

// Get pins a page, or fails on schedule.
func (s *Space) Get(id page.ID) (store.Handle, error) {
	if err := s.step("Get"); err != nil {
		return nil, err
	}
	return s.Inner.Get(id)
}

// Alloc allocates a page, or fails on schedule.
func (s *Space) Alloc(t page.Type) (page.ID, store.Handle, error) {
	if err := s.step("Alloc"); err != nil {
		return page.Invalid, nil, err
	}
	return s.Inner.Alloc(t)
}

// Free releases a page, or fails on schedule.
func (s *Space) Free(id page.ID) error {
	if err := s.step("Free"); err != nil {
		return err
	}
	return s.Inner.Free(id)
}

// Root reads a root slot (never scheduled to fail: it cannot return an
// error).
func (s *Space) Root(slot int) page.ID { return s.Inner.Root(slot) }

// SetRoot updates a root slot.
func (s *Space) SetRoot(slot int, id page.ID) { s.Inner.SetRoot(slot, id) }

// Commit commits, or fails on schedule.
func (s *Space) Commit() error {
	if err := s.step("Commit"); err != nil {
		return err
	}
	return s.Inner.Commit()
}

var _ store.Space = (*Space)(nil)
