package stats

import (
	"math"
	"testing"
	"time"
)

func TestMsPerNode(t *testing.T) {
	var s Series
	s.Add(10*time.Millisecond, 5)
	s.Add(20*time.Millisecond, 10)
	// 30ms over 15 nodes = 2 ms/node.
	if got := s.MsPerNode(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("MsPerNode = %v", got)
	}
	if got := s.MsPerOp(); math.Abs(got-15.0) > 1e-9 {
		t.Fatalf("MsPerOp = %v", got)
	}
	if s.N() != 2 || s.TotalNodes() != 15 || s.TotalTime() != 30*time.Millisecond {
		t.Fatalf("aggregates wrong: %d %d %v", s.N(), s.TotalNodes(), s.TotalTime())
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if !math.IsNaN(s.MsPerNode()) || !math.IsNaN(s.MsPerOp()) || !math.IsNaN(s.Median()) {
		t.Fatal("empty series must report NaN")
	}
}

func TestZeroNodesClampedToOne(t *testing.T) {
	var s Series
	s.Add(4*time.Millisecond, 0) // e.g. an empty refLookupMNAtt result
	if got := s.MsPerNode(); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("MsPerNode with zero nodes = %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i)*time.Millisecond, 1)
	}
	if got := s.Median(); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Percentile(0); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); math.Abs(got-100.0) > 0.01 {
		t.Fatalf("p100 = %v", got)
	}
	if p95 := s.Percentile(95); p95 < 95 || p95 > 96.1 {
		t.Fatalf("p95 = %v", p95)
	}
}

func TestFormatMs(t *testing.T) {
	cases := map[float64]string{
		250:    "250",
		12.345: "12.35", // mid range: two decimals
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := FormatMs(in); got != want {
			t.Fatalf("FormatMs(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatMs(math.NaN()); got != "n/a" {
		t.Fatalf("FormatMs(NaN) = %q", got)
	}
}
