// Package stats aggregates the benchmark's timing samples and
// normalizes them the way §6 prescribes: milliseconds per node
// returned/visited, reported separately for the cold and the warm run.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is one timed execution of an operation: its wall time and the
// number of nodes the operation returned or visited (the normalization
// divisor; 1 for per-operation metrics like the editing operations).
type Sample struct {
	Elapsed time.Duration
	Nodes   int
}

// Series accumulates samples for one (operation, level, temperature)
// cell of the result matrix.
type Series struct {
	samples []Sample
}

// Add records one sample.
func (s *Series) Add(elapsed time.Duration, nodes int) {
	if nodes < 1 {
		nodes = 1
	}
	s.samples = append(s.samples, Sample{elapsed, nodes})
}

// N reports the number of samples.
func (s *Series) N() int { return len(s.samples) }

// TotalNodes reports the total normalization divisor across samples.
func (s *Series) TotalNodes() int {
	n := 0
	for _, x := range s.samples {
		n += x.Nodes
	}
	return n
}

// TotalTime reports the summed wall time.
func (s *Series) TotalTime() time.Duration {
	var d time.Duration
	for _, x := range s.samples {
		d += x.Elapsed
	}
	return d
}

// MsPerNode is the paper's reported metric: total time divided by
// total nodes, in milliseconds.
func (s *Series) MsPerNode() float64 {
	nodes := s.TotalNodes()
	if nodes == 0 {
		return math.NaN()
	}
	return float64(s.TotalTime().Nanoseconds()) / 1e6 / float64(nodes)
}

// MsPerOp is the mean per-execution time in milliseconds (used for the
// editing operations, reported per operation rather than per node).
func (s *Series) MsPerOp() float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	return float64(s.TotalTime().Nanoseconds()) / 1e6 / float64(len(s.samples))
}

// perNode returns each sample's ns/node, sorted.
func (s *Series) perNode() []float64 {
	out := make([]float64, len(s.samples))
	for i, x := range s.samples {
		out[i] = float64(x.Elapsed.Nanoseconds()) / float64(x.Nodes)
	}
	sort.Float64s(out)
	return out
}

// Percentile returns the p-th percentile (0–100) of per-node times, in
// milliseconds.
func (s *Series) Percentile(p float64) float64 {
	v := s.perNode()
	if len(v) == 0 {
		return math.NaN()
	}
	rank := p / 100 * float64(len(v)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return v[lo] / 1e6
	}
	frac := rank - float64(lo)
	return (v[lo]*(1-frac) + v[hi]*frac) / 1e6
}

// Median is the 50th percentile of per-node times in milliseconds.
func (s *Series) Median() float64 { return s.Percentile(50) }

// FormatMs renders a millisecond value with a sensible precision for
// tables: three significant-ish decimal ranges.
func FormatMs(ms float64) string {
	switch {
	case math.IsNaN(ms):
		return "n/a"
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 1:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.4f", ms)
	}
}
