// Interprocedural function summaries with fixpoint iteration.
package analysis

import "go/types"

// summaryRounds bounds the rounds of summary recomputation. Monotone
// Compute functions over the small lattices in this package converge
// in a few rounds even through recursive cycles; the cap only guards
// against non-monotone Compute bugs.
const summaryRounds = 64

// A Summarizer computes one summary of type S per declared function in
// a call graph, iterating to a fixpoint so that summaries are correct
// through recursive call cycles.
//
// Compute derives a function's summary, consulting callee summaries
// through get: get returns the callee's current summary and true when
// the callee is declared in the analyzed package, or the zero S and
// false for external functions. The zero value of S must therefore be
// the lattice bottom ("no effects known yet"): on the first round a
// recursive callee reports zero, and rounds repeat until every summary
// is stable. Compute must be monotone — growing callee summaries must
// not shrink the result — for the iteration to terminate.
type Summarizer[S any] struct {
	Graph *CallGraph
	// Equal reports whether two summaries carry the same facts; it
	// decides convergence.
	Equal   func(a, b S) bool
	Compute func(fn *FuncInfo, get func(*types.Func) (S, bool)) S
}

// Run computes the summary map. Function literals are not summarized:
// they are analysis roots, not callees resolvable by name.
func (s *Summarizer[S]) Run() map[*types.Func]S {
	summaries := make(map[*types.Func]S)
	var order []*FuncInfo
	for _, fi := range s.Graph.Funcs() {
		if fi.Obj != nil {
			order = append(order, fi)
		}
	}
	get := func(obj *types.Func) (S, bool) {
		if s.Graph.FuncOf(obj) == nil {
			var zero S
			return zero, false
		}
		return summaries[obj], true
	}
	for round := 0; round < summaryRounds; round++ {
		changed := false
		for _, fi := range order {
			next := s.Compute(fi, get)
			if !s.Equal(summaries[fi.Obj], next) {
				changed = true
			}
			// Store unconditionally: every summarized function must
			// have an entry, so consumers can treat absence from the
			// result map as "not declared in this package" even when a
			// function's fixpoint equals the zero summary.
			summaries[fi.Obj] = next
		}
		if !changed {
			break
		}
	}
	return summaries
}
