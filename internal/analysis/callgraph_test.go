package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"sort"
	"strings"
	"testing"

	"hypermodel/internal/analysis"
	"hypermodel/internal/analysis/loader"
)

func findCall(t *testing.T, file *ast.File, fnName, selName string) *ast.CallExpr {
	t.Helper()
	var found *ast.CallExpr
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == selName {
				found = call
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == selName {
				found = call
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no call to %s in %s", selName, fnName)
	}
	return found
}

func calleeNames(fns []*types.Func) []string {
	var names []string
	for _, fn := range fns {
		name := fn.Name()
		if recv := analysis.ReceiverNamed(fn); recv != nil {
			name = recv.Obj().Name() + "." + name
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func TestCallGraphStaticAndInterface(t *testing.T) {
	_, file, pkg, info := parseAndCheck(t, `package p

type Closer interface{ Close() error }

type A struct{}

func (A) Close() error { return nil }

type B struct{}

func (*B) Close() error { return nil }

type NotCloser struct{}

func (NotCloser) Shut() {}

func helper() {}

func static() { helper() }

func shut(c Closer) { _ = c.Close() }
`)
	g := analysis.NewCallGraph(pkg, info, []*ast.File{file})

	// Static call resolves to exactly the named function.
	call := findCall(t, file, "static", "helper")
	got := calleeNames(g.Callees(call))
	if len(got) != 1 || got[0] != "helper" {
		t.Errorf("static call resolves to %v, want [helper]", got)
	}

	// Interface call resolves to every implementing concrete method,
	// through both value and pointer receivers, and nothing else.
	call = findCall(t, file, "shut", "Close")
	got = calleeNames(g.Callees(call))
	want := []string{"A.Close", "B.Close"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("interface call resolves to %v, want %v", got, want)
	}

	// FuncOf finds declared bodies and not externals.
	for _, fi := range g.Funcs() {
		if fi.Obj != nil && g.FuncOf(fi.Obj) != fi {
			t.Errorf("FuncOf(%s) does not round-trip", fi.Name())
		}
	}
}

func TestSummarizerRecursiveCycle(t *testing.T) {
	_, file, pkg, info := parseAndCheck(t, `package p

type T struct{}

func (t T) even(n int) bool {
	if n == 0 {
		return true
	}
	return t.odd(n - 1)
}

func (t T) odd(n int) bool {
	if n == 0 {
		return false
	}
	return t.even(n - 1)
}

func standalone(n int) {
	if n > 0 {
		standalone(n - 1)
	}
}
`)
	g := analysis.NewCallGraph(pkg, info, []*ast.File{file})

	// Summary: the set of package functions transitively reachable
	// from each function. The even/odd pair is a two-function cycle and
	// standalone a self-cycle; the fixpoint must terminate with the
	// full transitive closure.
	type calls = map[string]bool
	s := analysis.Summarizer[calls]{
		Graph: g,
		Equal: setEqual,
		Compute: func(fn *analysis.FuncInfo, get func(*types.Func) (calls, bool)) calls {
			out := calls{}
			ast.Inspect(fn.Body(), func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, callee := range g.Callees(call) {
					out[callee.Name()] = true
					if sub, ok := get(callee); ok {
						for k := range sub {
							out[k] = true
						}
					}
				}
				return true
			})
			return out
		},
	}
	summaries := s.Run()

	byName := map[string]calls{}
	for obj, sum := range summaries {
		byName[obj.Name()] = sum
	}
	wantSet(t, "summary(even)", byName["even"], "even", "odd")
	wantSet(t, "summary(odd)", byName["odd"], "even", "odd")
	wantSet(t, "summary(standalone)", byName["standalone"], "standalone")
}

// TestCallGraphRepoInterfaces resolves interface calls through the
// repo's own hyper.Backend and vfs.FS, loading real export data via
// the go command, and checks that the concrete backend and filesystem
// implementations are found.
func TestCallGraphRepoInterfaces(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go command unavailable: %v", err)
	}
	deps := []string{
		"hypermodel/internal/hyper",
		"hypermodel/internal/storage/vfs",
		"hypermodel/internal/backend/oodb",
		"hypermodel/internal/backend/memdb",
	}
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, deps...)...)
	cmd.Dir = "../.." // module root
	out, err := cmd.Output()
	if err != nil {
		var stderr []byte
		if ee, ok := err.(*exec.ExitError); ok {
			stderr = ee.Stderr
		}
		t.Fatalf("go list -export: %v\n%s", err, stderr)
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("decode go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	src := `package q

import (
	"hypermodel/internal/backend/memdb"
	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/hyper"
	"hypermodel/internal/storage/vfs"
)

var _ *oodb.DB
var _ *memdb.DB

func use(b hyper.Backend, fs vfs.FS, id hyper.NodeID) {
	_, _ = b.Node(id)
	_, _ = fs.Open("x")
}
`
	file, err := parser.ParseFile(fset, "q.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	imp := loader.NewExportImporter(fset, nil, exports)
	pkg, info, err := loader.Check("q", fset, []*ast.File{file}, imp, "")
	if err != nil {
		t.Fatalf("typecheck against export data: %v", err)
	}

	g := analysis.NewCallGraph(pkg, info, []*ast.File{file})

	got := calleeNames(g.Callees(findCall(t, file, "use", "Node")))
	for _, want := range []string{"DB.Node"} {
		if !containsStr(got, want) {
			t.Errorf("Backend.Node resolves to %v, want it to include %s (backend impls)", got, want)
		}
	}
	if len(got) < 2 {
		t.Errorf("Backend.Node resolves to %v, want at least the oodb and memdb implementations", got)
	}

	// The unexported osFS is invisible here: gc export data only
	// carries unexported types reachable from the exported API, a
	// documented soundness bound on cross-package interface resolution.
	got = calleeNames(g.Callees(findCall(t, file, "use", "Open")))
	for _, want := range []string{"MemFS.Open", "CrashFS.Open"} {
		if !containsStr(got, want) {
			t.Errorf("vfs.FS.Open resolves to %v, want it to include %s", got, want)
		}
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
