package opcodes_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/opcodes"
)

func TestOpcodes(t *testing.T) {
	analysistest.Run(t, opcodes.Analyzer, "hypermodel/internal/remote")
}
