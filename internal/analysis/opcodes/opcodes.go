// Package opcodes checks that the remote wire protocol stays closed
// under its opcode set: every op* constant in
// hypermodel/internal/remote has exactly one server dispatch case and
// exactly one client encoding site.
//
// Invariant: the protocol is defined three times — the constant, the
// server's dispatch switch, and the client request builder — and
// nothing but convention keeps them in sync. An opcode with no
// dispatch case turns every client using it into a statusBadRequest
// loop; one with two cases means a copy-paste dispatch error; one
// with no encoder is dead wire surface. The analyzer makes protocol
// drift a vet failure instead of a runtime surprise.
//
// Classification: a use of an op constant inside a case clause of a
// *Server method is a dispatch site; a use outside case clauses and
// outside *Server methods (an append argument, a []byte literal
// element) is an encoding site. Case clauses outside the Server —
// e.g. the client's idempotentOp classification switch — are neither,
// since they route behavior, not frames. Test files are skipped:
// tests craft raw frames deliberately, including malformed ones.
//
// A reserved opcode (wire number held but intentionally unimplemented)
// carries an explicit "//hyperlint:allow opcodes" directive.
//
// The multiplexed framing has the same drift hazard one level down:
// every frame opens with a request ID that the client writes and the
// server reads (requests), and the server writes and the client reads
// (responses). The analyzer therefore also pins the framing helpers —
// frameID and appendFrameID — to exactly one call site inside a
// *Server method and exactly one outside (the client's demux core), so
// a stray hand-rolled header, or a second decode path that could
// disagree about byte order, fails vet the same way a duplicated
// dispatch case does.
package opcodes

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"hypermodel/internal/analysis"
)

// remotePath is the only package this analyzer applies to.
const remotePath = "hypermodel/internal/remote"

var Analyzer = &analysis.Analyzer{
	Name: "opcodes",
	Doc: "every op* protocol constant must have exactly one server dispatch " +
		"case and one client encoder (protocol drift caught at vet time)",
	Run: run,
}

type opUse struct {
	dispatch int
	encode   int
}

// frameHelpers are the mux framing helpers pinned to one server-side
// and one client-side call each.
var frameHelpers = map[string]bool{"frameID": true, "appendFrameID": true}

type helperUse struct {
	server int
	client int
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != remotePath {
		return nil
	}

	// Collect the op* constants declared at package level.
	consts := make(map[*types.Const]*ast.Ident)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "op") {
						continue
					}
					if c, ok := pass.TypesInfo.Defs[name].(*types.Const); ok {
						consts[c] = name
					}
				}
			}
		}
	}
	// Collect the framing helper functions declared at package level.
	helpers := make(map[*types.Func]*ast.Ident)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !frameHelpers[fd.Name.Name] {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				helpers[fn] = fd.Name
			}
		}
	}
	if len(consts) == 0 && len(helpers) == 0 {
		return nil
	}

	uses := make(map[*types.Const]*opUse)
	for c := range consts {
		uses[c] = &opUse{}
	}
	helperUses := make(map[*types.Func]*helperUse)
	for fn := range helpers {
		helperUses[fn] = &helperUse{}
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inServer := isServerMethod(pass, fd)
			analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				switch obj := pass.TypesInfo.Uses[id].(type) {
				case *types.Const:
					u, tracked := uses[obj]
					if !tracked {
						return true
					}
					switch {
					case inCaseClause(stack, id) && inServer:
						u.dispatch++
					case !inCaseClause(stack, id) && !inServer:
						u.encode++
					}
				case *types.Func:
					if hu, tracked := helperUses[obj]; tracked {
						if inServer {
							hu.server++
						} else {
							hu.client++
						}
					}
				}
				return true
			})
		}
	}

	// Report in declaration order for stable output.
	ordered := make([]*types.Const, 0, len(consts))
	for c := range consts {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, c := range ordered {
		id, u := consts[c], uses[c]
		if u.dispatch != 1 {
			pass.Reportf(id.Pos(),
				"opcode %s has %d server dispatch cases, want exactly 1", id.Name, u.dispatch)
		}
		if u.encode != 1 {
			pass.Reportf(id.Pos(),
				"opcode %s has %d client encoding sites, want exactly 1", id.Name, u.encode)
		}
	}
	orderedFns := make([]*types.Func, 0, len(helpers))
	for fn := range helpers {
		orderedFns = append(orderedFns, fn)
	}
	sort.Slice(orderedFns, func(i, j int) bool { return orderedFns[i].Pos() < orderedFns[j].Pos() })
	for _, fn := range orderedFns {
		id, hu := helpers[fn], helperUses[fn]
		if hu.server != 1 {
			pass.Reportf(id.Pos(),
				"framing helper %s has %d server call sites, want exactly 1", id.Name, hu.server)
		}
		if hu.client != 1 {
			pass.Reportf(id.Pos(),
				"framing helper %s has %d client call sites, want exactly 1", id.Name, hu.client)
		}
	}
	return nil
}

// isServerMethod reports whether fd is a method on Server/*Server.
func isServerMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	named := analysis.ReceiverNamed(fn)
	return named != nil && named.Obj().Name() == "Server"
}

// inCaseClause reports whether the identifier appears in the
// expression list of a switch case.
func inCaseClause(stack []ast.Node, id *ast.Ident) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.CaseClause:
			// In the List (case exprs), not the clause body: the body
			// appears as a []ast.Stmt, whose elements are on the
			// stack between the clause and the identifier.
			for _, e := range parent.List {
				if e == id || containsNode(e, id) {
					return true
				}
			}
			return false
		case ast.Stmt:
			return false
		}
	}
	return false
}

func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
