// Fixture for the opcodes analyzer: a miniature protocol package with
// one well-wired opcode, one orphan, one double-dispatched, and one
// reserved via directive — plus the mux framing helpers, one correctly
// pinned to a single server and a single client call, one called twice
// on the client side and never on the server side.
package remote

type Server struct{}

const (
	opPing     = 1
	opGhost    = 2 // want "opcode opGhost has 0 server dispatch cases, want exactly 1" "opcode opGhost has 0 client encoding sites, want exactly 1"
	opDouble   = 3 // want "opcode opDouble has 2 server dispatch cases, want exactly 1"
	opReserved = 4 //hyperlint:allow opcodes -- reserved for a future extension
	opToken    = 5
)

func (s *Server) dispatch(op byte) int {
	switch op {
	case opPing:
		return 1
	case opDouble:
		return 3
	}
	switch op {
	case opDouble:
		return 33
	}
	return 0
}

func (s *Server) dispatchToken(op byte) int {
	switch op {
	case opToken:
		return 5
	}
	return 0
}

func encodePing(buf []byte) []byte {
	return append(buf, opPing)
}

func encodeToken(buf []byte) []byte {
	return append(buf, opToken)
}

// idempotent is a client-side opcode classifier: its case clauses live
// outside any Server method, so they count as neither dispatch sites
// nor encoding sites — opToken and opPing must stay well-wired.
func idempotent(op byte) bool {
	switch op {
	case opToken, opPing:
		return false
	}
	return true
}

func encodeDouble(buf []byte) []byte {
	return append(buf, opDouble)
}

// frameID is well-pinned: one server call, one client call.
func frameID(frame []byte) uint64 {
	return uint64(frame[0])
}

// appendFrameID has drifted: two client calls, no server call.
func appendFrameID(b []byte, id uint64) []byte { // want "framing helper appendFrameID has 0 server call sites, want exactly 1" "framing helper appendFrameID has 2 client call sites, want exactly 1"
	return append(b, byte(id))
}

func (s *Server) readHeader(frame []byte) uint64 {
	return frameID(frame)
}

func clientDecode(frame []byte) uint64 {
	return frameID(frame)
}

func clientEncode(b []byte) []byte {
	b = appendFrameID(b, 1)
	return appendFrameID(b, 2)
}
