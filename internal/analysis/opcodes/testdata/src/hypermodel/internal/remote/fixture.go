// Fixture for the opcodes analyzer: a miniature protocol package with
// one well-wired opcode, one orphan, one double-dispatched, and one
// reserved via directive.
package remote

type Server struct{}

const (
	opPing     = 1
	opGhost    = 2 // want "opcode opGhost has 0 server dispatch cases, want exactly 1" "opcode opGhost has 0 client encoding sites, want exactly 1"
	opDouble   = 3 // want "opcode opDouble has 2 server dispatch cases, want exactly 1"
	opReserved = 4 //hyperlint:allow opcodes -- reserved for a future extension
)

func (s *Server) dispatch(op byte) int {
	switch op {
	case opPing:
		return 1
	case opDouble:
		return 3
	}
	switch op {
	case opDouble:
		return 33
	}
	return 0
}

func encodePing(buf []byte) []byte {
	return append(buf, opPing)
}

func encodeDouble(buf []byte) []byte {
	return append(buf, opDouble)
}
