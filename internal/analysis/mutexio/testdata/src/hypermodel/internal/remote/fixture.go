// Fixture for the mutexio analyzer: blocking conn I/O inside lock
// windows that must be flagged, and the lock-free or non-blocking
// patterns that must not be.
package remote

import (
	"net"
	"sync"
)

type client struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
}

func writeFrame(conn net.Conn, b []byte) error {
	_, err := conn.Write(b)
	return err
}

func (c *client) badDirect(b []byte) {
	c.mu.Lock()
	c.conn.Write(b) // want `\(net.Conn\).Write while holding c.mu`
	c.mu.Unlock()
}

func (c *client) badDeferred(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeFrame(c.conn, b) // want "writeFrame with a net.Conn argument while holding c.mu"
}

func (c *client) badRead(b []byte) {
	c.rw.RLock()
	c.conn.Read(b) // want `\(net.Conn\).Read while holding c.rw \(read\)`
	c.rw.RUnlock()
}

func (c *client) badRLocker(b []byte) {
	c.rw.RLocker().Lock()
	c.conn.Write(b) // want `\(net.Conn\).Write while holding c.rw \(read\)`
	c.rw.RLocker().Unlock()
}

func (c *client) badMismatchedUnlock(b []byte) {
	c.rw.RLock()
	c.rw.Unlock()  // wrong half: does not end the read window
	c.conn.Read(b) // want `\(net.Conn\).Read while holding c.rw \(read\)`
	c.rw.RUnlock()
}

func (c *client) goodReadSnapshot(b []byte) {
	c.rw.RLock()
	conn := c.conn
	c.rw.RUnlock()
	conn.Read(b) // read lock released before the I/O
}

func (c *client) goodSnapshot(b []byte) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	conn.Write(b) // lock released before the I/O
}

func (c *client) goodClose() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close() // Close does not block on the network
}

func (c *client) goodGoroutine(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.conn.Write(b) // separate scope: the goroutine holds nothing
	}()
}

func (c *client) allowed(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.Write(b) //hyperlint:allow mutexio -- fixture exercises the suppression path
}
