package mutexio_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/mutexio"
)

func TestMutexio(t *testing.T) {
	analysistest.Run(t, mutexio.Analyzer, "hypermodel/internal/remote")
}
