// Package mutexio checks that no mutex is held across blocking
// net.Conn I/O in the remote tier.
//
// Invariant: the remote package's close-race and idle-timeout
// behavior (PR 2) depends on its mutexes being held only for
// in-memory state transitions. Client.Close takes connMu to
// interrupt an in-flight request; if any code path performed a
// conn.Read or conn.Write while holding such a mutex, Close (and
// every other method) would wait behind a network round trip that
// may never complete — exactly the hang the fault-tolerant tier
// exists to prevent. The big session mutex (c.mu) stays off this
// analyzer's radar because request I/O happens in helpers that the
// lock holder calls, never lexically inside a Lock/Unlock window;
// the analyzer is intraprocedural by design and encodes the local
// rule: never write blocking conn I/O directly inside a lock window.
//
// Blocking calls are (a) Read/Write-family methods on values
// implementing net.Conn and (b) any call taking a net.Conn argument
// (writeFrame(conn, …), io.ReadFull(conn, …), a dialer). Close,
// deadline setters and address accessors are non-blocking and
// exempt. Function literals are separate scopes (a deferred cleanup
// or spawned goroutine does not inherit the lexical lock window).
// Test files are skipped.
//
// RWMutex read locks are tracked as their own windows, labelled
// "(read)" in diagnostics, and rw.RLocker().Lock() is recognized as
// an RLock. The single-writer/multi-reader engine runs the whole
// remote read path under read locks, so a reader blocking on the
// network while holding one would stall the next writer — and with a
// writer queued, every later reader — exactly the convoy the
// concurrent read path exists to remove.
package mutexio

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hypermodel/internal/analysis"
)

// remotePrefix gates the analyzer to the remote tier, the only place
// the repo does network I/O under locks' reach. A mutex serializing
// writes to a shared conn is a legitimate pattern elsewhere; here it
// would break the close-race contract.
const remotePrefix = "hypermodel/internal/remote"

var Analyzer = &analysis.Analyzer{
	Name: "mutexio",
	Doc: "no sync.Mutex/RWMutex may be held across blocking net.Conn I/O " +
		"in the remote tier (Close must never wait behind a network round trip)",
	Run: run,
}

// blockingConnMethods are the net.Conn methods that block on the
// network.
var blockingConnMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
}

func run(pass *analysis.Pass) error {
	if p := pass.Pkg.Path(); p != remotePrefix && !strings.HasPrefix(p, remotePrefix+"/") {
		return nil
	}
	netPkg := analysis.FindImport(pass.Pkg, "net")
	if netPkg == nil {
		return nil // no net in the import graph: nothing to hold a lock across
	}
	connObj := netPkg.Scope().Lookup("Conn")
	if connObj == nil {
		return nil
	}
	connIface, ok := connObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}

	s := &scanner{pass: pass, conn: connIface}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		// Every function body — declarations and literals — is its own
		// lock scope.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					s.block(n.Body.List, lockSet{})
				}
			case *ast.FuncLit:
				s.block(n.Body.List, lockSet{})
			}
			return true
		})
	}
	return nil
}

type scanner struct {
	pass *analysis.Pass
	conn *types.Interface
}

// lockSet maps a mutex expression (rendered as source, e.g.
// "c.connMu") to the position of its Lock call.
type lockSet map[string]token.Pos

func (ls lockSet) clone() lockSet {
	c := make(lockSet, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func (ls lockSet) names() string {
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func union(states []lockSet) lockSet {
	out := lockSet{}
	for _, st := range states {
		for k, v := range st {
			out[k] = v
		}
	}
	return out
}

// block scans a statement list in order, threading the held-lock
// state through it. It returns the exit state and whether the block
// always terminates (return / panic / branch).
func (s *scanner) block(stmts []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, stmt := range stmts {
		var term bool
		held, term = s.stmt(stmt, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *scanner) stmt(stmt ast.Stmt, held lockSet) (lockSet, bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if key, op, ok := s.mutexOp(st.X); ok {
			switch op {
			case opLock:
				held = held.clone()
				held[key] = st.Pos()
			case opUnlock:
				held = held.clone()
				delete(held, key)
			}
			return held, false
		}
		if isPanic(st.X) {
			s.checkExpr(st.X, held)
			return held, true
		}
		s.checkExpr(st.X, held)
		return held, false

	case *ast.DeferStmt:
		// "defer x.Unlock()" pins the lock for the rest of the
		// function: held until exit, so the window extends to every
		// following statement. Other deferred calls run outside the
		// statement order; their argument expressions are still
		// evaluated here.
		if _, op, ok := s.mutexOp(st.Call); ok && op == opUnlock {
			return held, false
		}
		for _, arg := range st.Call.Args {
			s.checkExpr(arg, held)
		}
		return held, false

	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			s.checkExpr(arg, held)
		}
		return held, false

	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.checkExpr(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		return held, true

	case *ast.BlockStmt:
		return s.block(st.List, held.clone())

	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)

	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		s.checkExpr(st.Cond, held)
		var exits []lockSet
		bodyExit, bodyTerm := s.block(st.Body.List, held.clone())
		if !bodyTerm {
			exits = append(exits, bodyExit)
		}
		if st.Else != nil {
			elseExit, elseTerm := s.stmt(st.Else, held.clone())
			if !elseTerm {
				exits = append(exits, elseExit)
			}
		} else {
			exits = append(exits, held)
		}
		if len(exits) == 0 {
			return held, true
		}
		return union(exits), false

	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkExpr(st.Cond, held)
		}
		bodyExit, _ := s.block(st.Body.List, held.clone())
		return union([]lockSet{held, bodyExit}), false

	case *ast.RangeStmt:
		s.checkExpr(st.X, held)
		bodyExit, _ := s.block(st.Body.List, held.clone())
		return union([]lockSet{held, bodyExit}), false

	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.checkExpr(st.Tag, held)
		}
		return s.clauses(st.Body.List, held)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		return s.clauses(st.Body.List, held)

	case *ast.SelectStmt:
		return s.clauses(st.Body.List, held)

	default:
		// Assignments, declarations, sends, inc/dec: scan contained
		// expressions.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				s.checkCall(e, held)
			}
			return true
		})
		return held, false
	}
}

// clauses scans switch/select clause bodies, each from a copy of the
// entry state, and unions the non-terminating exits.
func (s *scanner) clauses(list []ast.Stmt, held lockSet) (lockSet, bool) {
	var exits []lockSet
	sawDefault := false
	for _, clause := range list {
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				sawDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				sawDefault = true
			} else {
				held2 := held.clone()
				held2, _ = s.stmt(c.Comm, held2)
				exit, term := s.block(c.Body, held2)
				if !term {
					exits = append(exits, exit)
				}
				continue
			}
			body = c.Body
		}
		exit, term := s.block(body, held.clone())
		if !term {
			exits = append(exits, exit)
		}
	}
	if !sawDefault {
		exits = append(exits, held) // no clause taken
	}
	if len(exits) == 0 {
		return held, true
	}
	return union(exits), false
}

// checkExpr reports blocking calls anywhere inside e (function
// literals excluded) while locks are held.
func (s *scanner) checkExpr(e ast.Expr, held lockSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			s.checkCall(expr, held)
		}
		return true
	})
}

// checkCall reports e if it is a blocking conn call made while locks
// are held.
func (s *scanner) checkCall(e ast.Expr, held lockSet) {
	if len(held) == 0 {
		return
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if desc, ok := s.blockingDesc(call); ok {
		s.pass.Reportf(call.Pos(),
			"%s while holding %s: blocking conn I/O under a mutex stalls Close and every contender",
			desc, held.names())
	}
}

// blockingDesc classifies a call as blocking conn I/O.
func (s *scanner) blockingDesc(call *ast.CallExpr) (string, bool) {
	// Read/Write-family method on a net.Conn.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if blockingConnMethods[sel.Sel.Name] {
			if tv, ok := s.pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil && s.implementsConn(tv.Type) {
				return "(net.Conn)." + sel.Sel.Name, true
			}
		}
	}
	// Builtins (delete(conns, conn)) and type conversions do no I/O.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := s.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return "", false
		}
	}
	if tv, ok := s.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return "", false
	}
	// Any call handed a net.Conn does I/O on the caller's time
	// (writeFrame, io.ReadFull, a dialer resolving and connecting).
	for _, arg := range call.Args {
		if tv, ok := s.pass.TypesInfo.Types[arg]; ok && tv.Type != nil && s.implementsConn(tv.Type) {
			name := "call"
			if fn := analysis.Callee(s.pass.TypesInfo, call); fn != nil {
				name = fn.Name()
			}
			return name + " with a net.Conn argument", true
		}
	}
	return "", false
}

func (s *scanner) implementsConn(t types.Type) bool {
	if types.Implements(t, s.conn) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		return types.Implements(ptr.Elem(), s.conn) || types.Implements(ptr, s.conn)
	}
	return false
}

type lockOp int

const (
	opLock lockOp = iota
	opUnlock
)

// mutexOp recognizes x.Lock() / x.RLock() / x.Unlock() / x.RUnlock()
// on sync.Mutex or sync.RWMutex values, plus Lock/Unlock through
// x.RLocker(), and returns the mutex expression rendered as source.
// Read-side acquisitions get a distinct " (read)" key: an RLock and a
// Lock on the same RWMutex are different windows (mismatched pairs
// must not cancel each other), and the diagnostic should say which
// side was held — a read lock across conn I/O stalls writers and
// Close just as effectively as a full lock.
func (s *scanner) mutexOp(e ast.Expr) (key string, op lockOp, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op, read = opLock, true
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op, read = opUnlock, true
	default:
		return "", 0, false
	}
	recv := sel.X
	// rw.RLocker().Lock() takes the read half of rw; unwrap to the
	// RWMutex so the window keys match direct RLock/RUnlock calls.
	if inner, isLocker := s.rlockerRecv(recv); isLocker {
		if read {
			return "", 0, false // no RLock/RUnlock on a sync.Locker
		}
		recv, read = inner, true
	} else {
		tv, okT := s.pass.TypesInfo.Types[recv]
		if !okT || tv.Type == nil || !isSyncMutex(tv.Type) {
			return "", 0, false
		}
		if read && !isSyncRWMutex(tv.Type) {
			return "", 0, false
		}
	}
	key = types.ExprString(recv)
	if read {
		key += " (read)"
	}
	return key, op, true
}

// rlockerRecv matches an expression of the form rw.RLocker() where rw
// is a sync.RWMutex, returning the rw operand.
func (s *scanner) rlockerRecv(e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "RLocker" {
		return nil, false
	}
	tv, ok := s.pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncRWMutex(tv.Type) {
		return nil, false
	}
	return sel.X, true
}

func isSyncMutex(t types.Type) bool {
	return isSyncNamed(t, "Mutex") || isSyncNamed(t, "RWMutex")
}

func isSyncRWMutex(t types.Type) bool {
	return isSyncNamed(t, "RWMutex")
}

func isSyncNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
