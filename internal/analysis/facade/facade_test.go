package facade_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/facade"
)

func TestFacade(t *testing.T) {
	analysistest.Run(t, facade.Analyzer, "hypermodel")
}
