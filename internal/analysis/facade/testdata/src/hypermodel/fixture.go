// Fixture for the facade analyzer: a miniature public package that
// aliases one internal type correctly, leaks others through a
// constructor, a var, a struct field and an interface method, and
// holds one sanctioned leak behind a directive.
package hypermodel

import "hypermodel/internal/engine"

// DB is the sanctioned alias: engine.Handle is now spellable by
// callers, so mentioning it anywhere in the API is fine.
type DB = engine.Handle

// Open returns the aliased type — no leak.
func Open(path string) (DB, error) {
	return engine.Open(path, engine.Options{})
}

// OpenRaw takes the un-aliased options type by pointer.
func OpenRaw(path string, opts *engine.Options) (DB, error) { // want `exported OpenRaw mentions internal type hypermodel/internal/engine\.Options in its signature \(declare an exported alias\)`
	return engine.Open(path, *opts)
}

// DefaultStats leaks through a package var.
var DefaultStats engine.Stats // want `exported DefaultStats mentions internal type hypermodel/internal/engine\.Stats in its signature`

// Config leaks through an exported struct field; the unexported field
// is not API and stays quiet.
type Config struct { // want `exported Config mentions internal type hypermodel/internal/engine\.Options in its signature`
	Engine engine.Options
	hidden engine.Stats
}

// Session leaks through an interface method result.
type Session interface { // want `exported Session mentions internal type hypermodel/internal/engine\.Stats in its signature`
	Stats() engine.Stats
}

// EngineID re-homes the scalar, so the typed const below is fine.
type EngineID = engine.ID

const FirstID EngineID = 1

// root is unexported: internal types in its signature are not API.
func root(o engine.Options) engine.Stats { return engine.Stats{} }

// Handles mentions engine.Handle only through composite structure
// (slice of aliased type) — fine.
var Handles []DB

// RawOpen is a sanctioned escape hatch.
//
//hyperlint:allow facade -- debug-only accessor, documented as unstable
func RawOpen(path string) (engine.Handle, engine.Stats, error) {
	h, err := engine.Open(path, engine.Options{})
	return h, engine.Stats{}, err
}
