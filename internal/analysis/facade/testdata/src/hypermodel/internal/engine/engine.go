// Stub internal package for the facade fixture: the types the public
// package might leak.
package engine

// Handle is the engine's database handle.
type Handle interface {
	Commit() error
}

// Options tunes an engine.
type Options struct {
	Pages int
}

// Stats are engine counters.
type Stats struct {
	Commits uint64
}

// ID is a scalar engine type.
type ID uint64

// Open is referenced by the facade's constructors.
func Open(path string, o Options) (Handle, error) { return nil, nil }
