// Package facade checks that the public hypermodel package is a real
// facade: no exported symbol may mention an internal/... named type in
// its signature unless the package declares an exported alias for that
// type.
//
// Invariant: downstream code imports only "hypermodel"; internal
// packages are invisible to it (the Go toolchain refuses the import).
// An exported constructor returning *internal/backend/oodb.DB, or a
// var whose type lives under internal/, is therefore surface the
// caller can hold but never name — it cannot declare a variable of the
// type, write the type in its own signatures, or construct the zero
// value. The facade stays usable only if every internal type that
// crosses the boundary does so under an exported alias (type DB =
// hyper.DB), which re-homes the name in the public package. The
// analyzer makes a leak a vet failure instead of an API regression
// discovered by the first external importer.
//
// Classification: the checked surface is every exported package-level
// symbol of package hypermodel — functions (parameters and results),
// methods on exported types, vars, typed consts, and the exported
// fields and interface methods of exported defined types. Aliases
// themselves are exempt (they are the sanctioned mechanism), and a
// mention of an internal named type that has an exported alias in the
// package is allowed anywhere, since callers can spell it. Unexported
// symbols and test files are not API and are skipped.
package facade

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hypermodel/internal/analysis"
)

// facadePath is the only package this analyzer applies to.
const facadePath = "hypermodel"

var Analyzer = &analysis.Analyzer{
	Name: "facade",
	Doc: "exported hypermodel symbols must not mention internal/... types " +
		"without an exported alias (API leaks caught at vet time)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != facadePath {
		return nil
	}

	// First pass: exported aliases sanction the internal types they
	// re-home.
	allowed := make(map[*types.Named]bool)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Assign.IsValid() || !ts.Name.IsExported() {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if named, ok := types.Unalias(obj.Type()).(*types.Named); ok {
					allowed[named] = true
				}
			}
		}
	}

	// Second pass: walk every exported symbol's type for internal
	// named types outside the allowed set.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(pass, d) {
					continue
				}
				if fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
					report(pass, d.Name, allowed, fn.Type())
				}
			case *ast.GenDecl:
				switch d.Tok {
				case token.VAR, token.CONST:
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							if !name.IsExported() {
								continue
							}
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								report(pass, name, allowed, obj.Type())
							}
						}
					}
				case token.TYPE:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						// Aliases are the sanctioned leak; defined types
						// expose their structure.
						if !ok || ts.Assign.IsValid() || !ts.Name.IsExported() {
							continue
						}
						obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
						if !ok {
							continue
						}
						report(pass, ts.Name, allowed, exposedStructure(obj.Type())...)
					}
				}
			}
		}
	}
	return nil
}

// exportedReceiver reports whether fd is a package-level function or a
// method on an exported named type (methods on unexported types are
// not reachable API even when their own name is exported).
func exportedReceiver(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return true
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	named := analysis.ReceiverNamed(fn)
	return named != nil && named.Obj().Exported()
}

// exposedStructure returns the types a defined type's declaration
// exposes to callers: exported struct fields and all interface method
// signatures plus embeddings. The underlying of other kinds (slice,
// map, func) is exposed wholesale.
func exposedStructure(t types.Type) []types.Type {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		var out []types.Type
		for i := 0; i < u.NumFields(); i++ {
			if f := u.Field(i); f.Exported() {
				out = append(out, f.Type())
			}
		}
		return out
	case *types.Interface:
		var out []types.Type
		for i := 0; i < u.NumExplicitMethods(); i++ {
			out = append(out, u.ExplicitMethod(i).Type())
		}
		for i := 0; i < u.NumEmbeddeds(); i++ {
			out = append(out, u.EmbeddedType(i))
		}
		return out
	case *types.Basic:
		return nil
	default:
		return []types.Type{u}
	}
}

// report walks the given types and reports each distinct offending
// internal named type once, in a stable order.
func report(pass *analysis.Pass, id *ast.Ident, allowed map[*types.Named]bool, roots ...types.Type) {
	leaks := make(map[*types.Named]bool)
	seen := make(map[types.Type]bool)
	for _, t := range roots {
		walk(t, allowed, leaks, seen)
	}
	if len(leaks) == 0 {
		return
	}
	names := make([]string, 0, len(leaks))
	for n := range leaks {
		names = append(names, n.Obj().Pkg().Path()+"."+n.Obj().Name())
	}
	sort.Strings(names)
	for _, n := range names {
		pass.Reportf(id.Pos(),
			"exported %s mentions internal type %s in its signature (declare an exported alias)",
			id.Name, n)
	}
}

// walk descends through composite type structure collecting internal
// named types that lack an exported alias. Named types are boundaries:
// an allowed (or non-internal) name is the caller's handle, and what
// it hides inside is its own package's business.
func walk(t types.Type, allowed map[*types.Named]bool, leaks map[*types.Named]bool, seen map[types.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Alias:
		walk(types.Unalias(u), allowed, leaks, seen)
	case *types.Named:
		if isInternal(u) && !allowed[u] {
			leaks[u] = true
		}
		if args := u.TypeArgs(); args != nil {
			for i := 0; i < args.Len(); i++ {
				walk(args.At(i), allowed, leaks, seen)
			}
		}
	case *types.Pointer:
		walk(u.Elem(), allowed, leaks, seen)
	case *types.Slice:
		walk(u.Elem(), allowed, leaks, seen)
	case *types.Array:
		walk(u.Elem(), allowed, leaks, seen)
	case *types.Chan:
		walk(u.Elem(), allowed, leaks, seen)
	case *types.Map:
		walk(u.Key(), allowed, leaks, seen)
		walk(u.Elem(), allowed, leaks, seen)
	case *types.Signature:
		walk(u.Params(), allowed, leaks, seen)
		walk(u.Results(), allowed, leaks, seen)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			walk(u.At(i).Type(), allowed, leaks, seen)
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			walk(u.Field(i).Type(), allowed, leaks, seen)
		}
	case *types.Interface:
		for i := 0; i < u.NumExplicitMethods(); i++ {
			walk(u.ExplicitMethod(i).Type(), allowed, leaks, seen)
		}
		for i := 0; i < u.NumEmbeddeds(); i++ {
			walk(u.EmbeddedType(i), allowed, leaks, seen)
		}
	}
}

// isInternal reports whether the named type's package sits under an
// internal/ path element.
func isInternal(n *types.Named) bool {
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false // error, comparable: universe scope
	}
	path := pkg.Path()
	return strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/") ||
		strings.HasSuffix(path, "/internal")
}
