// Fixture for lockorder's order and self-deadlock checks, which run
// in every package (the blocking check is exercised by the remote
// fixture). Each scenario uses its own lock fields so order edges
// never bleed between scenarios.
package lockorder

import "sync"

// --- inconsistent acquisition order, lexical ---

type ab struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *ab) forward() {
	p.a.Lock()
	p.b.Lock() // want `acquiring ab.b while holding ab.a creates a lock-order cycle among \{ab.a, ab.b\}`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *ab) reverse() {
	p.b.Lock()
	p.a.Lock() // want `acquiring ab.a while holding ab.b creates a lock-order cycle among \{ab.a, ab.b\}`
	p.a.Unlock()
	p.b.Unlock()
}

// --- inconsistent order through a helper (interprocedural) ---

type cd struct {
	c sync.Mutex
	d sync.Mutex
}

func (p *cd) lockD() {
	p.d.Lock()
}

func (p *cd) viaHelper() {
	p.c.Lock()
	p.lockD() // want `acquiring cd.d while holding cd.c creates a lock-order cycle among \{cd.c, cd.d\}`
	p.d.Unlock()
	p.c.Unlock()
}

func (p *cd) reverseOrder() {
	p.d.Lock()
	p.c.Lock() // want `acquiring cd.c while holding cd.d creates a lock-order cycle among \{cd.c, cd.d\}`
	p.c.Unlock()
	p.d.Unlock()
}

// --- self-deadlock, lexical and through a helper ---

type m struct {
	mu sync.Mutex
}

func (x *m) relock() {
	x.mu.Lock()
	x.mu.Lock() // want `m.mu acquired while already held`
	x.mu.Unlock()
	x.mu.Unlock()
}

func (x *m) lockIt() {
	x.mu.Lock()
}

func (x *m) relockViaHelper() {
	x.mu.Lock()
	x.lockIt() // want `call to lockIt acquires m.mu, which is already held`
	x.mu.Unlock()
}

// --- consistent order everywhere: no diagnostics ---

type ef struct {
	e sync.Mutex
	f sync.Mutex
}

func (p *ef) lockF() {
	p.f.Lock()
}

func (p *ef) one() {
	p.e.Lock()
	p.f.Lock()
	p.f.Unlock()
	p.e.Unlock()
}

func (p *ef) two() {
	p.e.Lock()
	p.lockF()
	p.f.Unlock()
	p.e.Unlock()
}

// branchRelease releases on one arm and returns on the other: the
// dataflow must not think the lock is held after the if/else join.
func (p *ef) branchRelease(cond bool) {
	p.e.Lock()
	if cond {
		p.e.Unlock()
	} else {
		p.e.Unlock()
	}
	p.f.Lock() // no e held here: no edge, no diagnostic
	p.f.Unlock()
}

// leaderLoop is the group-commit leader shape from the page server:
// the lock is dropped before each batch call and re-taken at the loop
// bottom, so the re-acquisition must not be mistaken for a re-lock of
// a held mutex.
type leader struct {
	gcMu   sync.Mutex
	active bool
	queue  []int
}

func (l *leader) process([]int) {}

func (l *leader) leaderLoop() {
	l.gcMu.Lock()
	if l.active {
		l.gcMu.Unlock()
		return
	}
	l.active = true
	for {
		batch := l.queue
		l.queue = nil
		if len(batch) == 0 {
			l.active = false
			l.gcMu.Unlock()
			break
		}
		l.gcMu.Unlock()
		l.process(batch)
		l.gcMu.Lock()
	}
}

// --- suppression, including a directive inside a multi-line statement ---

type sup struct {
	x sync.Mutex
	y sync.Mutex
}

func (q *sup) lockX(a, b int) {
	_ = a + b
	q.x.Lock()
}

// suppressedEdge takes y then x through a multi-line call. The allow
// directive sits on an argument line, not the line the diagnostic
// anchors to (the call's first line): the statement-span rule must
// cover it. No want comment here — that is the regression assertion.
func (q *sup) suppressedEdge() {
	q.y.Lock()
	q.lockX(
		1, //hyperlint:allow lockorder -- quarantined reverse acquisition; pairs with reverseForSup below
		2,
	)
	q.x.Unlock()
	q.y.Unlock()
}

func (q *sup) reverseForSup() {
	q.x.Lock()
	q.y.Lock() // want `acquiring sup.y while holding sup.x creates a lock-order cycle among \{sup.x, sup.y\}`
	q.y.Unlock()
	q.x.Unlock()
}
