// Fixture for lockorder's blocking check, which is gated to the
// remote tier: no lock may be held across channel operations, selects
// without a default, time.Sleep, or net.Conn I/O — directly or
// through any depth of calls.
package remote

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	ch   chan int
	done chan struct{}
	conn net.Conn
}

// --- direct blocking operations under a lock ---

func (s *server) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding server.mu`
	s.mu.Unlock()
}

func (s *server) badRecv() {
	s.mu.Lock()
	<-s.ch // want `channel receive while holding server.mu`
	s.mu.Unlock()
}

func (s *server) badSelect() {
	s.mu.Lock()
	select { // want `select with no default while holding server.mu`
	case <-s.ch:
	case <-s.done:
	}
	s.mu.Unlock()
}

func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding server.mu`
	s.mu.Unlock()
}

func (s *server) badConnWrite(b []byte) {
	s.mu.Lock()
	s.conn.Write(b) // want `\(net.Conn\).Write while holding server.mu`
	s.mu.Unlock()
}

// --- blocking reached through helpers (the mutexio blind spot) ---

func (s *server) wait() {
	<-s.done
}

func (s *server) deep() {
	s.wait()
}

func (s *server) badInterproc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wait() // want `call to wait \(blocks: channel receive\) while holding server.mu`
}

func (s *server) badTwoLevels() {
	s.mu.Lock()
	s.deep() // want `call to deep \(blocks: channel receive\) while holding server.mu`
	s.mu.Unlock()
}

// --- non-flagging shapes ---

// goodSelectDefault never parks: a select with a default is a poll.
func (s *server) goodSelectDefault() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

// goodUnlockFirst drops the lock before blocking.
func (s *server) goodUnlockFirst() {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

// goodSpawn holds the lock only while *spawning*; the goroutine
// blocks on its own time.
func (s *server) goodSpawn() {
	s.mu.Lock()
	go func() {
		<-s.done
	}()
	s.mu.Unlock()
}

// goodLeader is the group-commit leader shape: every blocking send and
// receive happens in the unlocked window of the loop.
func (s *server) goodLeader(jobs []chan int) {
	s.mu.Lock()
	for {
		batch := jobs
		jobs = nil
		if len(batch) == 0 {
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		for _, j := range batch {
			j <- 1
		}
		s.mu.Lock()
	}
	<-s.done
}

// goodClose: closing a channel never blocks.
func (s *server) goodClose() {
	s.mu.Lock()
	close(s.done)
	s.mu.Unlock()
}

// --- suppressed ---

func (s *server) suppressed() {
	s.mu.Lock()
	s.ch <- 2 //hyperlint:allow lockorder -- the channel is buffered with capacity reserved per job; the send cannot park
	s.mu.Unlock()
}
