// Package lockorder checks lock acquisition discipline
// interprocedurally: every function's held-lock set is computed over
// its control-flow graph, function summaries propagate acquire /
// release / blocking effects across calls, and three invariants are
// enforced.
//
//  1. No lock is acquired while already held (self-deadlock on Go's
//     non-reentrant mutexes), whether the second acquisition is
//     lexical or buried in a callee.
//  2. Lock acquisition order is globally consistent: if one code path
//     acquires A before B, no path may acquire B before A. Edges are
//     collected per package across all functions (including through
//     callee summaries) and any edge on a cycle in the resulting
//     order graph is reported.
//  3. In the remote tier only, no lock may be held across a blocking
//     operation: channel sends and receives, selects without a
//     default, time.Sleep, net.Conn Read/Write-family calls, or any
//     call whose summary (transitively) blocks. This upgrades the
//     lexical mutexio analyzer: mutexio catches conn I/O written
//     directly inside a Lock/Unlock window, lockorder follows the
//     held set through helpers like Client.Commit → doOnce →
//     muxConn.do, where the blocking select is three frames down.
//
// Lock identity is canonical by type, not by expression: c.mu on a
// *Client receiver and cl.mu on another *Client variable are the same
// lock "Client.mu", and p.shards[i].mu is "shard.mu" for every index
// — what matters for ordering is the lock's role, not which instance
// a particular function happens to touch. Package-level mutexes keep
// their variable name; mutexes local to a function are prefixed with
// the function name so they never unify across functions.
//
// Known bounds, by design: function literals are separate analysis
// roots with an empty entry set (a goroutine does not inherit its
// spawner's locks — holding a lock while *spawning* is fine, the
// goroutine runs on its own time); deferred calls other than Unlock
// are ignored; operations inside a select's communication clauses are
// part of the atomic select; go statements do not propagate callee
// effects. Test files are skipped.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hypermodel/internal/analysis"
)

// remotePrefix gates the blocking-operation check (invariant 3) to the
// remote tier: the store intentionally holds writeMu across disk
// fsyncs, but the remote close contract forbids waiting on the network
// or on channels while holding a session lock.
const remotePrefix = "hypermodel/internal/remote"

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "interprocedural lock discipline: no re-acquisition of a held lock, " +
		"globally consistent acquisition order, and (in the remote tier) no " +
		"blocking operation — channel, select, sleep, conn I/O — while a lock is held",
	Run: run,
}

// blockingConnMethods are the net.Conn methods that block on the
// network; Close and the deadline setters are exempt.
var blockingConnMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
}

func run(pass *analysis.Pass) error {
	gated := pass.Pkg.Path() == remotePrefix || strings.HasPrefix(pass.Pkg.Path(), remotePrefix+"/")
	if analysis.FindImport(pass.Pkg, "sync") == nil {
		return nil // nothing to lock
	}

	var files []*ast.File
	for _, f := range pass.Files {
		if !pass.IsTestFile(f.Pos()) {
			files = append(files, f)
		}
	}
	a := &analyzer{
		pass:  pass,
		graph: analysis.NewCallGraph(pass.Pkg, pass.TypesInfo, files),
		cfgs:  make(map[*analysis.FuncInfo]*analysis.CFG),
		gated: gated,
		edges: make(map[string]map[string]token.Pos),
	}
	if netPkg := analysis.FindImport(pass.Pkg, "net"); netPkg != nil {
		if obj := netPkg.Scope().Lookup("Conn"); obj != nil {
			a.conn, _ = obj.Type().Underlying().(*types.Interface)
		}
	}

	// Phase 1: function summaries to a fixpoint (handles recursion).
	s := analysis.Summarizer[lockSummary]{
		Graph: a.graph,
		Equal: summaryEqual,
		Compute: func(fi *analysis.FuncInfo, get func(*types.Func) (lockSummary, bool)) lockSummary {
			return a.summarize(fi, get)
		},
	}
	a.summaries = s.Run()

	// Phase 2: re-run the dataflow per function against the final
	// summaries and report, visiting each reachable block exactly once.
	final := func(obj *types.Func) (lockSummary, bool) {
		sum, ok := a.summaries[obj]
		return sum, ok && a.graph.FuncOf(obj) != nil
	}
	for _, fi := range a.graph.Funcs() {
		cfg := a.cfgFor(fi)
		in, err := analysis.Forward(cfg, a.flow(fi, nil, final))
		if err != nil {
			return err
		}
		for _, blk := range cfg.Blocks {
			st, ok := in[blk]
			if !ok {
				continue // unreachable
			}
			st = st.clone()
			for _, n := range blk.Nodes {
				a.node(fi, n, st, nil, final, true)
			}
		}
	}

	a.reportCycles()
	return nil
}

// lockState maps canonical lock name → position of the acquisition
// currently holding it.
type lockState map[string]token.Pos

func (st lockState) clone() lockState {
	c := make(lockState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

func (st lockState) names() string {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// lockSummary is a function's interprocedural effect. The zero value
// is the lattice bottom.
type lockSummary struct {
	acquires  map[string]bool // locks (transitively) acquired inside, even if released again
	releases  map[string]bool // locks released that were not acquired locally (caller-release helpers)
	held      map[string]bool // locks still held when the function returns
	blocks    bool            // performs (transitively) a blocking operation
	blockDesc string          // first blocking reason, for diagnostics
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func summaryEqual(a, b lockSummary) bool {
	return a.blocks == b.blocks &&
		setsEqual(a.acquires, b.acquires) &&
		setsEqual(a.releases, b.releases) &&
		setsEqual(a.held, b.held)
}

// effects accumulates a summary during one Compute pass.
type effects struct {
	acquires  map[string]bool
	releases  map[string]bool
	blocks    bool
	blockDesc string
}

type analyzer struct {
	pass      *analysis.Pass
	graph     *analysis.CallGraph
	cfgs      map[*analysis.FuncInfo]*analysis.CFG
	summaries map[*types.Func]lockSummary
	conn      *types.Interface // net.Conn, when net is in the import graph
	gated     bool             // blocking checks enabled

	// edges is the package-wide acquisition-order graph: edges[a][b]
	// is the first position where b was acquired while a was held.
	edges map[string]map[string]token.Pos
}

func (a *analyzer) cfgFor(fi *analysis.FuncInfo) *analysis.CFG {
	cfg, ok := a.cfgs[fi]
	if !ok {
		cfg = analysis.NewCFG(fi.Body())
		a.cfgs[fi] = cfg
	}
	return cfg
}

// flow builds the forward dataflow problem for one function. acc is
// non-nil during summary computation; lookup resolves callee
// summaries.
func (a *analyzer) flow(fi *analysis.FuncInfo, acc *effects, lookup func(*types.Func) (lockSummary, bool)) analysis.Flow[lockState] {
	return analysis.Flow[lockState]{
		Entry: func() lockState { return lockState{} },
		Join: func(x, y lockState) lockState {
			u := x.clone()
			for k, v := range y {
				if _, ok := u[k]; !ok {
					u[k] = v
				}
			}
			return u
		},
		Equal: func(x, y lockState) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if _, ok := y[k]; !ok {
					return false
				}
			}
			return true
		},
		Transfer: func(b *analysis.Block, in lockState) lockState {
			st := in.clone()
			for _, n := range b.Nodes {
				a.node(fi, n, st, acc, lookup, false)
			}
			return st
		},
	}
}

// summarize computes one function's summary by running its dataflow
// with the current callee summaries.
func (a *analyzer) summarize(fi *analysis.FuncInfo, get func(*types.Func) (lockSummary, bool)) lockSummary {
	cfg := a.cfgFor(fi)
	acc := &effects{acquires: map[string]bool{}, releases: map[string]bool{}}
	in, err := analysis.Forward(cfg, a.flow(fi, acc, get))
	if err != nil {
		// Non-convergence is an engine bug; fail open with what we have.
		return lockSummary{}
	}

	deferred := map[string]bool{}
	for _, d := range cfg.Defers {
		if key, op, ok := a.mutexOp(fi, d.Call); ok && op == opUnlock {
			deferred[key] = true
		}
	}
	// A deferred unlock of a lock never acquired here releases the
	// caller's lock at return.
	for k := range deferred {
		if !acc.acquires[k] {
			acc.releases[k] = true
		}
	}

	sum := lockSummary{
		acquires:  acc.acquires,
		releases:  acc.releases,
		held:      map[string]bool{},
		blocks:    acc.blocks,
		blockDesc: acc.blockDesc,
	}
	if exit, ok := in[cfg.Exit]; ok {
		for k := range exit {
			if !deferred[k] {
				sum.held[k] = true
			}
		}
	}
	return sum
}

// node applies one CFG node to the state. During summary computation
// (acc non-nil) it accumulates effects; during the report pass (rep
// true) it emits diagnostics and records order edges.
func (a *analyzer) node(fi *analysis.FuncInfo, n ast.Node, st lockState, acc *effects, lookup func(*types.Func) (lockSummary, bool), rep bool) {
	analysis.WalkNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred calls run at exit (only their Unlocks matter,
			// handled via cfg.Defers); go statements run concurrently
			// and do not extend this function's path.
			_ = m
			return false

		case *ast.SelectStmt:
			if !hasDefaultClause(m) {
				a.blocked(m.Pos(), "select with no default", "select with no default", st, acc, rep)
			}
			return false // comm clauses are part of the atomic select

		case *ast.SendStmt:
			a.blocked(m.Pos(), "channel send", "channel send", st, acc, rep)
			return true // the value expression may contain calls

		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				a.blocked(m.Pos(), "channel receive", "channel receive", st, acc, rep)
			}
			return true

		case *ast.CallExpr:
			return a.call(fi, m, st, acc, lookup, rep)
		}
		return true
	})
}

// call applies one call expression to the state and reports issues at
// it. Returns whether WalkNode should descend into the call's
// children.
func (a *analyzer) call(fi *analysis.FuncInfo, call *ast.CallExpr, st lockState, acc *effects, lookup func(*types.Func) (lockSummary, bool), rep bool) bool {
	if key, op, ok := a.mutexOp(fi, call); ok {
		switch op {
		case opLock:
			if _, already := st[key]; already && rep {
				a.pass.Reportf(call.Pos(),
					"%s acquired while already held: Go mutexes are not reentrant, this path self-deadlocks", key)
			}
			a.acquire(key, call.Pos(), st, acc, rep)
		case opUnlock:
			a.release(key, st, acc)
		}
		return false
	}

	// Builtins (close, len) and conversions have no lock effects;
	// still walk the arguments.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if tv, ok := a.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}

	// Summaries propagate across *static* calls only. The call graph
	// can resolve dynamic dispatch (class-hierarchy analysis), but
	// wrapper types that delegate through the very interface they
	// implement — CrashFS over vfs.FS, a fault proxy over net.Conn, a
	// remote Client behind hyper.Backend — would make every delegation
	// look like re-entry into the wrapper itself. Without points-to
	// information those reports are noise, so dynamic calls fall back
	// to the external-call heuristics below.
	fn := analysis.Callee(a.pass.TypesInfo, call)
	merged := lockSummary{}
	anyDeclared, anyExternal := false, true
	name := "function value"
	if fn != nil {
		name = fn.Name()
		if !isInterfaceMethod(fn) {
			anyExternal = false
			if sum, ok := lookup(fn); ok {
				anyDeclared = true
				merged = sum
			} else {
				anyExternal = true
			}
		}
	}

	if anyDeclared {
		for k := range merged.releases {
			a.release(k, st, acc)
		}
		if merged.blocks {
			root := merged.blockDesc
			if root == "" {
				root = "blocking operation"
			}
			a.blocked(call.Pos(), fmt.Sprintf("call to %s (blocks: %s)", name, root), root, st, acc, rep)
		}
		for k := range merged.acquires {
			if _, already := st[k]; already && rep {
				a.pass.Reportf(call.Pos(),
					"call to %s acquires %s, which is already held: this path self-deadlocks", name, k)
			}
			a.acquireEdges(k, call.Pos(), st, rep)
			if acc != nil {
				acc.acquires[k] = true
			}
		}
		for k := range merged.held {
			if _, ok := st[k]; !ok {
				st[k] = call.Pos()
			}
		}
	}
	if anyExternal {
		if desc, ok := a.externalBlocking(call, name); ok {
			a.blocked(call.Pos(), desc, desc, st, acc, rep)
		}
	}
	return true
}

// acquire records a direct lock acquisition.
func (a *analyzer) acquire(key string, pos token.Pos, st lockState, acc *effects, rep bool) {
	a.acquireEdges(key, pos, st, rep)
	if acc != nil {
		acc.acquires[key] = true
	}
	if _, ok := st[key]; !ok {
		st[key] = pos
	}
}

// acquireEdges records order-graph edges held → key, anchored at the
// acquisition site (report pass only, so each site contributes once).
func (a *analyzer) acquireEdges(key string, pos token.Pos, st lockState, rep bool) {
	if !rep {
		return
	}
	for h := range st {
		if h == key {
			continue
		}
		m := a.edges[h]
		if m == nil {
			m = make(map[string]token.Pos)
			a.edges[h] = m
		}
		if _, ok := m[key]; !ok {
			m[key] = pos
		}
	}
}

func (a *analyzer) release(key string, st lockState, acc *effects) {
	if _, ok := st[key]; ok {
		delete(st, key)
		return
	}
	if acc != nil {
		acc.releases[key] = true
	}
}

// blocked handles one blocking operation: accumulates the summary fact
// (rootDesc names the underlying primitive, kept stable through call
// chains) and, in the remote tier, reports it if any lock is held.
func (a *analyzer) blocked(pos token.Pos, desc, rootDesc string, st lockState, acc *effects, rep bool) {
	if acc != nil {
		acc.blocks = true
		if acc.blockDesc == "" {
			acc.blockDesc = rootDesc
		}
	}
	if rep && a.gated && len(st) > 0 {
		a.pass.Reportf(pos,
			"%s while holding %s: a blocked lock holder stalls Close and every contender in the remote tier",
			desc, st.names())
	}
}

// externalBlocking classifies calls to functions outside the package:
// time.Sleep, blocking net.Conn methods, and any call handed a
// net.Conn value (it does I/O on the caller's time).
func (a *analyzer) externalBlocking(call *ast.CallExpr, name string) (string, bool) {
	if analysis.IsPkgFunc(a.pass.TypesInfo, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	if a.conn == nil {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && blockingConnMethods[sel.Sel.Name] {
		if tv, ok := a.pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil && a.implementsConn(tv.Type) {
			return "(net.Conn)." + sel.Sel.Name, true
		}
	}
	for _, arg := range call.Args {
		if tv, ok := a.pass.TypesInfo.Types[arg]; ok && tv.Type != nil && a.implementsConn(tv.Type) {
			return name + " with a net.Conn argument", true
		}
	}
	return "", false
}

func (a *analyzer) implementsConn(t types.Type) bool {
	if types.Implements(t, a.conn) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		return types.Implements(ptr.Elem(), a.conn) || types.Implements(ptr, a.conn)
	}
	return false
}

// reportCycles finds strongly connected components in the package's
// acquisition-order graph and reports every edge inside one.
func (a *analyzer) reportCycles() {
	// Deterministic node order.
	var nodes []string
	seen := map[string]bool{}
	for from, tos := range a.edges {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	comp := sccs(nodes, a.edges)
	for _, from := range nodes {
		tos := make([]string, 0, len(a.edges[from]))
		for to := range a.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if comp[from] != comp[to] {
				continue // edge not on any cycle
			}
			members := make([]string, 0, 2)
			for _, n := range nodes {
				if comp[n] == comp[from] {
					members = append(members, n)
				}
			}
			a.pass.Reportf(a.edges[from][to],
				"acquiring %s while holding %s creates a lock-order cycle among {%s}: another path acquires them in the reverse order",
				to, from, strings.Join(members, ", "))
		}
	}
}

// sccs computes strongly connected components (iterative Tarjan) and
// returns a component id per node; nodes in the same component are on
// a common cycle.
func sccs(nodes []string, edges map[string]map[string]token.Pos) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return comp
}

// isInterfaceMethod reports whether fn is declared on an interface
// (i.e. a call through it is dynamic dispatch).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

type lockOp int

const (
	opLock lockOp = iota
	opUnlock
)

// mutexOp recognizes Lock/RLock/TryLock/Unlock/RUnlock calls on
// sync.Mutex / sync.RWMutex values and returns the canonical lock
// name. TryLock counts as an acquisition (may-analysis). Read-side
// operations get a distinct " (read)" key so mismatched pairs never
// cancel.
func (a *analyzer) mutexOp(fi *analysis.FuncInfo, e ast.Expr) (key string, op lockOp, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	var read bool
	switch sel.Sel.Name {
	case "Lock", "TryLock":
		op = opLock
	case "RLock", "TryRLock":
		op, read = opLock, true
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op, read = opUnlock, true
	default:
		return "", 0, false
	}
	tv, okT := a.pass.TypesInfo.Types[sel.X]
	if !okT || tv.Type == nil || !isSyncMutex(tv.Type) {
		return "", 0, false
	}
	if read && !isSyncRWMutex(tv.Type) {
		return "", 0, false
	}
	key = a.lockName(fi, sel.X)
	if read {
		key += " (read)"
	}
	return key, op, true
}

// lockName renders a canonical, instance-independent lock identity.
//
//	c.mu        (c *Client)      → "Client.mu"
//	s.shards[i].mu               → "shard.mu"   (via the element type)
//	poolMu      (package var)    → "poolMu"
//	mu          (local)          → "<func>.mu"
//	c.Lock()    (embedded Mutex) → "Client"
func (a *analyzer) lockName(fi *analysis.FuncInfo, e ast.Expr) string {
	e = ast.Unparen(e)
	// Peel the selector chain down to its base.
	var fields []string
	base := e
	for {
		if sel, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
			fields = append([]string{sel.Sel.Name}, fields...)
			base = sel.X
			continue
		}
		break
	}
	join := func(root string) string {
		if len(fields) == 0 {
			return root
		}
		return root + "." + strings.Join(fields, ".")
	}

	// Package-level variable: its name is already canonical.
	if id, ok := ast.Unparen(base).(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.ObjectOf(id); obj != nil && obj.Parent() == a.pass.Pkg.Scope() {
			return join(obj.Name())
		}
	}
	// Named base type (receiver, local of struct type, call/index
	// result): root at the type name.
	if tv, ok := a.pass.TypesInfo.Types[base]; ok && tv.Type != nil {
		t := tv.Type
		if ptr, okP := t.(*types.Pointer); okP {
			t = ptr.Elem()
		}
		if named, okN := t.(*types.Named); okN {
			if obj := named.Obj(); obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
				return join(obj.Name())
			}
		}
	}
	// Bare sync.Mutex local: qualify with the owning function so two
	// functions' unrelated "mu" locals never unify through summaries.
	// (Locals cannot be held across the function boundary anyway.)
	owner := "literal"
	if fi != nil && fi.Obj != nil {
		owner = fi.Obj.Name()
	}
	return owner + "." + join(types.ExprString(base))
}

func isSyncMutex(t types.Type) bool {
	return isSyncNamed(t, "Mutex") || isSyncNamed(t, "RWMutex")
}

func isSyncRWMutex(t types.Type) bool {
	return isSyncNamed(t, "RWMutex")
}

func isSyncNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}
