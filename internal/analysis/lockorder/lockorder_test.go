package lockorder_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockorder", "hypermodel/internal/remote")
}
