package vfsonly_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/vfsonly"
)

func TestVfsonly(t *testing.T) {
	analysistest.Run(t, vfsonly.Analyzer,
		"hypermodel/internal/storage/pager",
		"hypermodel/internal/storage/vfs",
		"offpath")
}
