// Package vfsonly checks that the storage engine reaches the
// filesystem only through the VFS seam: no direct os file operations
// anywhere under internal/storage except inside the vfs package
// itself, whose osfs implementation is the one sanctioned boundary.
//
// Invariant: the crash sweeps and corruption tests are only as honest
// as the indirection is complete. A single os.OpenFile smuggled into
// the pager or WAL would give that code a side channel the power-cut
// injector cannot see — its writes would survive every simulated
// crash, and the sweep would certify recovery behavior the real
// engine does not have. Holding every byte of durable state behind
// vfs.FS keeps the fault injector's view of the world exhaustive.
//
// Sentinel errors (os.ErrClosed, os.ErrNotExist) are not filesystem
// access and stay usable everywhere. Test files are exempt: tests may
// stage real files when they mean to.
package vfsonly

import (
	"go/ast"
	"strings"

	"hypermodel/internal/analysis"
)

// storagePrefix gates the check to the storage engine.
const storagePrefix = "hypermodel/internal/storage/"

// vfsPackage is the one package allowed to touch the os filesystem:
// it is the boundary the rest of the engine goes through.
const vfsPackage = "hypermodel/internal/storage/vfs"

var Analyzer = &analysis.Analyzer{
	Name: "vfsonly",
	Doc: "internal/storage must reach the filesystem only through vfs.FS; " +
		"direct os file operations hide durable state from the crash injector",
	Run: run,
}

// fsFuncs are the os package-level functions that touch the
// filesystem. Anything here appearing outside the vfs package is a
// bypass of the injection seam.
var fsFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Truncate": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "ReadDir": true, "Link": true,
	"Symlink": true, "Chmod": true, "Chtimes": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, storagePrefix) || path == vfsPackage {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "os" && analysis.ReceiverNamed(fn) == nil && fsFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"os.%s in internal/storage bypasses the VFS seam; route file access through vfs.FS",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
