// Fixture at the vfs package's own import path: this is the
// sanctioned boundary, so direct os file operations are fine here.
package vfs

import "os"

func OsfsOpen(name string) (*os.File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
}

func OsfsStat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
