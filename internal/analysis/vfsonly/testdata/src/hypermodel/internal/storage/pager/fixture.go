// Fixture for the vfsonly analyzer, placed inside the storage tree so
// the gate applies: direct os file operations are bypasses of the VFS
// seam.
package pager

import (
	"errors"
	"os"
)

func badOpen(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // want "os.OpenFile in internal/storage bypasses the VFS seam"
}

func badCreate(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create in internal/storage bypasses the VFS seam"
}

func badReadFile(path string) ([]byte, error) {
	return os.ReadFile(path) // want "os.ReadFile in internal/storage bypasses the VFS seam"
}

func badRemove(path string) error {
	return os.Remove(path) // want "os.Remove in internal/storage bypasses the VFS seam"
}

func goodSentinel(err error) bool {
	return errors.Is(err, os.ErrClosed) // sentinel errors are not filesystem access
}

func goodAllowed(path string) error {
	return os.Truncate(path, 0) //hyperlint:allow vfsonly -- fixture: justified escape hatch
}
