// Fixture at an import path outside internal/storage: the seam does
// not apply, so nothing here may be flagged.
package offpath

import "os"

func Fine(path string) ([]byte, error) {
	return os.ReadFile(path)
}
