package framerelease_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/framerelease"
)

func TestFramerelease(t *testing.T) {
	analysistest.Run(t, framerelease.Analyzer, "framerelease")
}
