// Fixture for the framerelease analyzer: pin leaks that must be
// flagged, and releases/handoffs that must not be.
package framerelease

import "hypermodel/internal/storage/buffer"

type handle struct {
	p *buffer.Pool
	f *buffer.Frame
}

func leakRead(p *buffer.Pool) uint64 {
	f := p.Get(1) // want "frame f from Pool.Get is never released or handed off"
	return f.ID   // field read is not a release
}

func leakDiscard(p *buffer.Pool) {
	p.Insert(2, nil) // want "result of Pool.Insert is discarded"
}

func leakBlank(p *buffer.Pool) {
	_ = p.Get(3) // want "frame from Pool.Get is assigned to _ and never released"
}

func goodRelease(p *buffer.Pool) {
	f := p.Get(4)
	if f != nil {
		p.Release(f)
	}
}

func goodInsertRelease(p *buffer.Pool) {
	f := p.Insert(5, nil)
	p.MarkDirty(f)
}

func goodEscape(p *buffer.Pool) *handle {
	f := p.Get(6)
	return &handle{p: p, f: f} // ownership moves with the frame
}

func goodArg(p *buffer.Pool) error {
	return consume(p.Get(7)) // direct handoff to a call
}

func consume(f *buffer.Frame) error { return nil }

func allowed(p *buffer.Pool) uint64 {
	f := p.Get(8) //hyperlint:allow framerelease -- fixture exercises the suppression path
	return f.ID
}
