// Package framerelease checks that every pinned buffer frame obtained
// from buffer.Pool.Get or Pool.Insert is released or handed off.
//
// Invariant: Get and Insert return the frame pinned. A pin that is
// never dropped makes the frame ineligible for eviction forever,
// silently shrinking the pool's usable capacity — which skews exactly
// the cold/warm hit-rate distinction the benchmark measures, without
// failing any functional test.
//
// The check is intraprocedural and flags the omission pattern: a
// frame-producing call whose result is discarded, assigned to the
// blank identifier, or bound to a variable that is only ever read
// (field access, nil comparison). A frame that escapes the function —
// returned, stored in a composite literal or another variable, or
// passed to any call (Pool.Release, but also constructors that take
// over the pin) — is treated as handed off to an owner responsible
// for the release. That keeps the analyzer free of false positives at
// the cost of not tracking the handoff; the escape target's own
// callers are checked the same way.
package framerelease

import (
	"go/ast"
	"go/types"

	"hypermodel/internal/analysis"
)

// poolPath is the package whose Get/Insert methods pin frames.
const poolPath = "hypermodel/internal/storage/buffer"

var Analyzer = &analysis.Analyzer{
	Name: "framerelease",
	Doc: "every buffer.Pool.Get/Insert frame must be released or handed off " +
		"(a leaked pin silently shrinks the pool and skews warm-run timings)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The pool's own package (and its tests) deliberately holds pins
	// to exercise eviction and pin accounting; the invariant is about
	// the pool's clients.
	if pass.Pkg.Path() == poolPath {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc inspects one function body (nested function literals
// included: a frame captured by a closure still has its uses found by
// the scan, which covers the whole body).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isFrameSource(pass, call) {
			return true
		}
		method := ast.Unparen(call.Fun).(*ast.SelectorExpr).Sel.Name
		switch ctx := parentContext(stack, call); ctx.kind {
		case ctxDiscarded:
			pass.Reportf(call.Pos(),
				"result of Pool.%s is discarded: the returned frame stays pinned forever", method)
		case ctxAssigned:
			if ctx.lhs == nil {
				// Assigned to the blank identifier.
				pass.Reportf(call.Pos(),
					"frame from Pool.%s is assigned to _ and never released", method)
				return true
			}
			obj := pass.TypesInfo.Defs[ctx.lhs]
			if obj == nil {
				obj = pass.TypesInfo.Uses[ctx.lhs]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return true
			}
			if !releasedOrEscapes(pass, body, v, ctx.lhs) {
				pass.Reportf(call.Pos(),
					"frame %s from Pool.%s is never released or handed off (leaked pin)", v.Name(), method)
			}
		case ctxEscapes:
			// Call argument, return value, composite literal, …:
			// ownership moves with the frame.
		}
		return true
	})
}

// isFrameSource reports whether call is (*buffer.Pool).Get or Insert.
func isFrameSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Get" && fn.Name() != "Insert") {
		return false
	}
	named := analysis.ReceiverNamed(fn)
	return named != nil && named.Obj().Name() == "Pool" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == poolPath
}

type ctxKind int

const (
	ctxDiscarded ctxKind = iota // expression statement: result dropped
	ctxAssigned                 // bound to a variable (lhs) or blank
	ctxEscapes                  // flows into a call/return/literal/field
)

type callContext struct {
	kind ctxKind
	lhs  *ast.Ident // for ctxAssigned; nil when blank
}

// parentContext classifies how the frame-producing call's result is
// consumed, from the innermost enclosing node outward.
func parentContext(stack []ast.Node, call *ast.CallExpr) callContext {
	// Walk outward through value-transparent wrappers.
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.ExprStmt:
			return callContext{kind: ctxDiscarded}
		case *ast.AssignStmt:
			// Find which lhs the call feeds. Get/Insert return one
			// value, so positions align 1:1 (a, b := p.Get(x), y).
			// The child of the assignment on the path to the call is
			// the call itself when the assignment is its direct
			// parent.
			child := stackTop(stack, i)
			if child == nil {
				child = call
			}
			idx := 0
			if len(parent.Rhs) == len(parent.Lhs) {
				for j, rhs := range parent.Rhs {
					if containsNode(rhs, child) {
						idx = j
						break
					}
				}
			}
			if idx < len(parent.Lhs) {
				if id, ok := parent.Lhs[idx].(*ast.Ident); ok {
					if id.Name == "_" {
						return callContext{kind: ctxAssigned}
					}
					return callContext{kind: ctxAssigned, lhs: id}
				}
			}
			// Assigned into a field/index: escapes.
			return callContext{kind: ctxEscapes}
		default:
			// Call argument, return, composite literal, binary expr,
			// and anything else that consumes the value.
			return callContext{kind: ctxEscapes}
		}
	}
	return callContext{kind: ctxEscapes}
}

// stackTop returns the node just inside stack[i], i.e. the child of
// stack[i] on the path to the call (or nil at the innermost level).
func stackTop(stack []ast.Node, i int) ast.Node {
	if i+1 < len(stack) {
		return stack[i+1]
	}
	return nil
}

func containsNode(root ast.Node, target ast.Node) bool {
	if root == nil || target == nil {
		return root == target
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// releasedOrEscapes scans body for a use of v that releases the frame
// or hands it off. Reads (selectors like v.Page, comparisons, blank
// assignment) do not count.
func releasedOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var, def *ast.Ident) bool {
	ok := false
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || id == def || pass.TypesInfo.Uses[id] != v {
			return true
		}
		if useConsumes(stack, id) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// useConsumes classifies one use of the frame variable: does it
// release the pin or transfer ownership?
func useConsumes(stack []ast.Node, id *ast.Ident) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			if parent.X != id {
				return false // the use IS the selector's field name
			}
			// v.M(...): releasing if the method is Release; plain
			// field reads (v.Page, v.ID) are not a handoff.
			if i >= 1 {
				if call, isCall := stack[i-1].(*ast.CallExpr); isCall && call.Fun == parent {
					return parent.Sel.Name == "Release"
				}
			}
			return false
		case *ast.CallExpr:
			// v passed as an argument (pool.Release(v), append, any
			// constructor): ownership moves.
			return true
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr,
			*ast.IndexExpr, *ast.SendStmt:
			return true
		case *ast.AssignStmt:
			// v on the right-hand side of a real assignment escapes
			// into the target; "_ = v" keeps nothing alive.
			for _, rhs := range parent.Rhs {
				if containsNode(rhs, id) {
					for _, lhs := range parent.Lhs {
						if l, isId := lhs.(*ast.Ident); !isId || l.Name != "_" {
							return true
						}
					}
					return false
				}
			}
			return false
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt:
			return false // comparisons and conditions are reads
		case ast.Stmt:
			return false
		}
	}
	return false
}
