// Package analysistest runs an analyzer over fixture packages laid
// out GOPATH-style under testdata/src/<importpath>/ and compares its
// diagnostics against expectations written in the fixtures:
//
//	if err == ErrBoom { // want "compared with =="
//
// Each "want" comment carries one or more quoted regular expressions;
// every diagnostic on that line must match one expectation and every
// expectation must be consumed. A fixture line with no want comment
// asserts the absence of diagnostics, which is how the non-flagging
// cases are encoded.
//
// Fixture imports resolve in two layers: paths present under
// testdata/src are type-checked from source (recursively, so fixtures
// can model the repo's own package paths such as
// hypermodel/internal/storage/buffer with small stubs), everything
// else is satisfied from the real toolchain's export data via
// "go list -export" (cached per process).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hypermodel/internal/analysis"
	"hypermodel/internal/analysis/loader"
)

// Run applies the analyzer to each fixture package and reports
// mismatches as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ld := newFixtureLoader(testdata)
	for _, path := range pkgpaths {
		runOne(t, ld, a, path)
	}
}

func runOne(t *testing.T, ld *fixtureLoader, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     pkg.files,
		Pkg:       pkg.pkg,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: running on %s: %v", a.Name, pkgpath, err)
	}

	wants := collectWants(t, ld.fset, pkg.files)
	for _, d := range diags {
		posn := ld.fset.Position(d.Pos)
		key := lineKey{posn.Filename, posn.Line}
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, posn, d.Message)
		}
	}
	for key, res := range wants {
		for _, w := range res {
			if w != nil {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, key.file, key.line, w)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants extracts want expectations. The comment's own line
// anchors the expectation.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := lineKey{posn.Filename, posn.Line}
				for _, q := range splitQuoted(t, posn, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, q, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of quoted strings: "a" "b c" `d\.e`.
// Backquoted expectations avoid double escaping in regexps.
func splitQuoted(t *testing.T, posn token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] == '`' {
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want regexp: %s", posn, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
			continue
		}
		if s[0] != '"' {
			t.Fatalf("%s: malformed want expectation (need quoted regexps): %s", posn, s)
		}
		end := 1
		for end < len(s) && s[end] != '"' {
			if s[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want regexp: %s", posn, s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want quoting %s: %v", posn, s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureLoader resolves fixture imports: testdata/src first, then
// toolchain export data.
type fixtureLoader struct {
	fset   *token.FileSet
	srcDir string
	pkgs   map[string]*fixturePkg
	exp    *loader.ExportImporter
}

func newFixtureLoader(testdata string) *fixtureLoader {
	ld := &fixtureLoader{
		fset:   token.NewFileSet(),
		srcDir: filepath.Join(testdata, "src"),
		pkgs:   make(map[string]*fixturePkg),
	}
	ld.exp = loader.NewExportImporter(ld.fset, nil, stdExportFiles())
	ld.exp.Fallback = importerFunc(func(path string) (*types.Package, error) {
		return nil, fmt.Errorf("analysistest: no fixture or export data for %q", path)
	})
	return ld
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Import lets the loader serve as the importer for fixture packages.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.srcDir, filepath.FromSlash(path))) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.exp.Import(path)
}

func (ld *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	files, err := loader.ParseDir(ld.fset, dir)
	if err != nil {
		return nil, err
	}
	pkg, info, err := loader.Check(path, ld.fset, files, ld, "")
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &fixturePkg{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = p
	return p, nil
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// stdExport maps stdlib import paths to export data files, populated
// once per process by asking the go command for the transitive export
// set of the packages fixtures use. "go list -export" compiles into
// the build cache, so this works offline.
var (
	stdExportOnce sync.Once
	stdExport     map[string]string
)

// stdRoots are the stdlib roots fixtures may import; -deps pulls in
// everything they reference.
var stdRoots = []string{
	"errors", "fmt", "io", "net", "os", "sync", "time", "math/rand",
	"encoding/binary", "bytes", "strings",
}

func stdExportFiles() map[string]string {
	stdExportOnce.Do(func() {
		stdExport = make(map[string]string)
		args := append([]string{"list", "-export", "-deps",
			"-f", "{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}"}, stdRoots...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			// Leave the map empty; imports will fail with a clear
			// "no export data" error naming the missing package.
			return
		}
		for _, line := range strings.Split(string(out), "\n") {
			if path, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
				stdExport[path] = file
			}
		}
	})
	return stdExport
}
