// Package wiresym checks encoder/decoder symmetry for a length-prefixed
// binary wire protocol: for every opcode, the request body the client
// encodes must be the request body the server decodes, field for field.
//
// Invariant: a wire format is defined twice — once where the request is
// built (appends onto a []byte starting with the opcode) and once where
// the dispatch switch routes the body to a handler that reads it back.
// Nothing but convention keeps the two field sequences aligned; a
// missing count prefix or a u32 read against a u64 write silently
// desynchronizes every later field. The opcodes analyzer pins the
// *existence* of both sides; this analyzer pins their *shape*.
//
// The analyzer recovers a field script — a sequence of u8/u16/u32/u64/
// bytes tokens, with loop{...} groups for repeated records — from each
// side and compares them per opcode:
//
//   - Encoder scripts are anchored at an opcode constant entering a
//     byte slice (`[]byte{opX, ...}` or `append(b, opX)`) and read off
//     the binary.LittleEndian.AppendUintN calls, single-byte appends
//     and `append(b, p...)` spreads that follow, with for/range loops
//     becoming loop groups.
//   - Decoder scripts start at the dispatch switch — a switch over one
//     byte of a []byte whose cases are opcode constants — and walk the
//     handler the body is passed to, collecting
//     binary.LittleEndian.UintN reads, body indexing (u8) and body
//     reslicing (bytes). Static in-package calls that receive the body
//     are inlined (decodeCommit behind a handler), as are local
//     `u32 := func() ...` cursor closures, so decoders written against
//     an offset cursor read the same way as flat ones.
//
// Byte-classification switches over an already-extracted byte (the
// client's idempotentOp) and response-status switches (decodeStatus)
// are not dispatch switches: the former's tag is not an index
// expression, the latter's cases are not opcode constants.
//
// Reported, per opcode: a script mismatch (at the encoder), an encoder
// with no dispatch case, a dispatch case with no encoder, and a dead
// opcode with neither (reserved wire numbers carry an explicit
// "//hyperlint:allow wiresym" directive). Any use of binary.BigEndian
// in a wire package is also flagged — the protocol is little-endian,
// and one big-endian read is exactly the kind of asymmetry the script
// comparison exists to catch.
//
// The analyzer activates only for packages that look like a wire codec:
// op-prefixed package-level integer constants, at least one encoder
// anchor and at least one dispatch switch. Requests only; responses
// have no opcode to anchor on. Test files are skipped — tests craft
// raw and deliberately malformed frames.
package wiresym

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"

	"hypermodel/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc: "per-opcode request encoders and decoders must read and write " +
		"the same field script (wire desync caught at vet time)",
	Run: run,
}

// maxInline bounds how many static-call levels a decoder walk descends
// through below the dispatch handler: the handler's decode helper,
// plus one more for a helper split in two.
const maxInline = 2

// A tok is one field in a wire script. kind is "u8", "u16", "u32",
// "u64" or "bytes"; a "loop" token carries the per-iteration sub-script
// of a repeated record group.
type tok struct {
	kind string
	sub  []tok
}

func (t tok) String() string {
	if t.kind != "loop" {
		return t.kind
	}
	return "loop{" + renderScript(t.sub) + "}"
}

func renderScript(s []tok) string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

func sameScript(a, b []tok) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind || !sameScript(a[i].sub, b[i].sub) {
			return false
		}
	}
	return true
}

// An ev is one event met during a walk, in source order: either an
// encoder anchor (an opcode constant entering a byte slice) or a field
// token.
type ev struct {
	pos    token.Pos
	anchor *types.Const
	t      tok
}

func evToks(evs []ev) []tok {
	var out []tok
	for _, e := range evs {
		if e.anchor == nil {
			out = append(out, e.t)
		}
	}
	return out
}

// encSite is one encoder: the opcode anchored at pos, followed by the
// field script written after it.
type encSite struct {
	op     *types.Const
	pos    token.Pos
	script []tok
}

// decSite is one dispatch case: the opcode routed at pos to a handler
// whose reads form script. known is false when the handler could not
// be resolved to a declaration in this package.
type decSite struct {
	op     *types.Const
	pos    token.Pos
	script []tok
	known  bool
}

type analyzer struct {
	pass  *analysis.Pass
	ops   map[*types.Const]token.Pos
	decls map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	a := &analyzer{
		pass:  pass,
		ops:   opConsts(pass),
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
	if len(a.ops) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					a.decls[fn] = fd
				}
			}
		}
	}
	var encs []encSite
	var decs []decSite
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				encs = append(encs, a.encodersIn(fd)...)
			}
		}
		decs = append(decs, a.dispatchesIn(file)...)
	}
	// Only a package holding both halves of a codec can be checked for
	// symmetry. This keeps the analyzer quiet in packages that merely
	// name constants with an op prefix (state-machine ops, lock ops).
	if len(encs) == 0 || len(decs) == 0 {
		return nil
	}

	type report struct {
		pos token.Pos
		msg string
	}
	var reports []report
	add := func(pos token.Pos, msg string) {
		reports = append(reports, report{pos, msg})
	}

	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "BigEndian" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
					pn.Imported().Path() == "encoding/binary" {
					add(sel.Pos(), "binary.BigEndian in a little-endian wire package")
					return false
				}
			}
			return true
		})
	}

	encByOp := make(map[*types.Const][]encSite)
	for _, e := range encs {
		encByOp[e.op] = append(encByOp[e.op], e)
	}
	decByOp := make(map[*types.Const][]decSite)
	for _, d := range decs {
		decByOp[d.op] = append(decByOp[d.op], d)
	}
	var order []*types.Const
	for c := range a.ops {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Name() < order[j].Name() })
	for _, op := range order {
		oe, od := encByOp[op], decByOp[op]
		switch {
		case len(oe) == 0 && len(od) == 0:
			add(a.ops[op], "opcode "+op.Name()+" is neither encoded nor dispatched: dead wire surface")
		case len(od) == 0:
			for _, e := range oe {
				add(e.pos, op.Name()+" is encoded here but the request dispatch has no case for it")
			}
		case len(oe) == 0:
			for _, d := range od {
				add(d.pos, op.Name()+" has a dispatch case but no encoder builds its request")
			}
		default:
			for _, e := range oe {
				for _, d := range od {
					if d.known && !sameScript(e.script, d.script) {
						add(e.pos, "request "+op.Name()+": encoder writes ["+
							renderScript(e.script)+"] but decoder reads ["+renderScript(d.script)+"]")
					}
				}
			}
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].pos < reports[j].pos })
	for _, r := range reports {
		pass.Reportf(r.pos, "%s", r.msg)
	}
	return nil
}

// opConsts collects the package-level op[A-Z]* integer constants — the
// protocol's opcode namespace.
func opConsts(pass *analysis.Pass) map[*types.Const]token.Pos {
	ops := make(map[*types.Const]token.Pos)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					rest, ok := strings.CutPrefix(name.Name, "op")
					if !ok || rest == "" || !unicode.IsUpper(rune(rest[0])) {
						continue
					}
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					if b, ok := c.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						ops[c] = name.Pos()
					}
				}
			}
		}
	}
	return ops
}

// opConstOf resolves e to an opcode constant, or nil.
func (a *analyzer) opConstOf(e ast.Expr) *types.Const {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	c, ok := a.pass.TypesInfo.Uses[id].(*types.Const)
	if !ok {
		return nil
	}
	if _, ok := a.ops[c]; !ok {
		return nil
	}
	return c
}

// ---- encoder side ----

// encodersIn extracts every encoder in one function: each anchor opens
// a script that runs to the next anchor or the end of the function.
func (a *analyzer) encodersIn(fd *ast.FuncDecl) []encSite {
	evs := a.writeEvs(fd.Body)
	var out []encSite
	for i, e := range evs {
		if e.anchor == nil {
			continue
		}
		var script []tok
		for _, f := range evs[i+1:] {
			if f.anchor != nil {
				break
			}
			script = append(script, f.t)
		}
		out = append(out, encSite{op: e.anchor, pos: e.pos, script: script})
	}
	return out
}

// writeEvs collects buffer-write events in source order: opcode
// anchors, AppendUintN/PutUintN calls, single-byte appends, byte-slice
// spreads, and loops of any of those. Which buffer a write targets is
// not tracked: an encoder function builds one request.
func (a *analyzer) writeEvs(root ast.Node) []ev {
	var out []ev
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			out = append(out, loopGroup(a.writeEvs(n.Body), n.Pos())...)
			return false
		case *ast.RangeStmt:
			out = append(out, loopGroup(a.writeEvs(n.Body), n.Pos())...)
			return false
		case *ast.CallExpr:
			evs, handled := a.writeCall(n)
			if handled {
				out = append(out, evs...)
				return false
			}
			return true
		case *ast.CompositeLit:
			if evs, ok := a.byteLitEvs(n); ok {
				out = append(out, evs...)
				return false
			}
			return true
		}
		return true
	})
	return out
}

// loopGroup wraps a loop body's events into one loop token. A loop
// containing an anchor is a retry loop rebuilding the request from
// scratch each attempt, not a record group: its events stay serial.
func loopGroup(sub []ev, pos token.Pos) []ev {
	if len(sub) == 0 {
		return nil
	}
	for _, e := range sub {
		if e.anchor != nil {
			return sub
		}
	}
	return []ev{{pos: pos, t: tok{kind: "loop", sub: evToks(sub)}}}
}

func (a *analyzer) writeCall(call *ast.CallExpr) ([]ev, bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, ok := a.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || len(call.Args) < 2 {
			return nil, false
		}
		if call.Ellipsis.IsValid() {
			if len(call.Args) == 2 {
				return []ev{{pos: call.Pos(), t: tok{kind: "bytes"}}}, true
			}
			return nil, false
		}
		var out []ev
		for _, arg := range call.Args[1:] {
			if c := a.opConstOf(arg); c != nil {
				out = append(out, ev{pos: arg.Pos(), anchor: c})
			} else {
				out = append(out, ev{pos: arg.Pos(), t: tok{kind: "u8"}})
			}
		}
		return out, true
	}
	name, little, ok := endianCall(a.pass.TypesInfo, call)
	if !ok || !little {
		return nil, false
	}
	var k string
	switch name {
	case "AppendUint16", "PutUint16":
		k = "u16"
	case "AppendUint32", "PutUint32":
		k = "u32"
	case "AppendUint64", "PutUint64":
		k = "u64"
	default:
		return nil, false
	}
	return []ev{{pos: call.Pos(), t: tok{kind: k}}}, true
}

// byteLitEvs matches a []byte literal opening with an opcode constant:
// the anchor, with any further elements as u8 fields.
func (a *analyzer) byteLitEvs(lit *ast.CompositeLit) ([]ev, bool) {
	if len(lit.Elts) == 0 {
		return nil, false
	}
	c := a.opConstOf(lit.Elts[0])
	if c == nil {
		return nil, false
	}
	if tv, ok := a.pass.TypesInfo.Types[lit]; !ok || !isByteSlice(tv.Type) {
		return nil, false
	}
	out := []ev{{pos: lit.Elts[0].Pos(), anchor: c}}
	for _, e := range lit.Elts[1:] {
		out = append(out, ev{pos: e.Pos(), t: tok{kind: "u8"}})
	}
	return out, true
}

// ---- decoder side ----

// dispatchesIn finds request dispatch switches: a switch over one byte
// of a []byte whose cases name opcode constants. Each matching case
// yields one decSite per opcode it routes.
func (a *analyzer) dispatchesIn(file *ast.File) []decSite {
	var out []decSite
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		idx, ok := sw.Tag.(*ast.IndexExpr)
		if !ok {
			return true
		}
		tagID, ok := idx.X.(*ast.Ident)
		if !ok {
			return true
		}
		tagObj := a.pass.TypesInfo.Uses[tagID]
		if tagObj == nil || !isByteSlice(tagObj.Type()) {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil {
				continue
			}
			var ops []*types.Const
			for _, e := range cc.List {
				if c := a.opConstOf(e); c != nil {
					ops = append(ops, c)
				}
			}
			if len(ops) == 0 {
				continue
			}
			script, known := a.caseScript(cc, tagObj)
			for _, op := range ops {
				out = append(out, decSite{op: op, pos: cc.Pos(), script: script, known: known})
			}
		}
		return true
	})
	return out
}

// caseScript walks the handler a dispatch case passes the request body
// to. A case that never hands the body anywhere (opPing) decodes the
// empty script.
func (a *analyzer) caseScript(cc *ast.CaseClause, tagObj types.Object) (script []tok, known bool) {
	tracked := map[types.Object]bool{tagObj: true}
	known = true
	found := false
	for _, s := range cc.Body {
		if found {
			break
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var idxs []int
			for i, arg := range call.Args {
				if bodyArg(a.pass.TypesInfo, arg, tracked) {
					idxs = append(idxs, i)
				}
			}
			if len(idxs) == 0 {
				return true
			}
			found = true
			fn := analysis.Callee(a.pass.TypesInfo, call)
			fd := a.decls[fn]
			if fn == nil || fd == nil {
				known = false
				return false
			}
			next := paramObjs(a.pass.TypesInfo, fd, idxs)
			evs := a.readEvs(fd.Body, next, make(map[types.Object][]tok),
				map[*types.Func]bool{fn: true}, 0)
			script = evToks(evs)
			return false
		})
	}
	return script, known
}

// readEvs collects request-body reads in source order: little-endian
// UintN decodes of the body, body indexing (u8), body reslicing
// (bytes), loops of those, calls of local cursor closures, and static
// in-package calls the body is passed on to (inlined up to maxInline
// levels deep).
func (a *analyzer) readEvs(root ast.Node, tracked map[types.Object]bool,
	closures map[types.Object][]tok, visited map[*types.Func]bool, depth int) []ev {
	var out []ev
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// A cursor closure: u64 := func() ... reading body[off:].
			// Its script replays at every call site.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if fl, ok := n.Rhs[0].(*ast.FuncLit); ok {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
							closures[obj] = evToks(a.readEvs(fl.Body, tracked, closures, visited, depth))
						}
					}
					return false
				}
			}
			return true
		case *ast.ForStmt:
			out = append(out, loopGroup(a.readEvs(n.Body, tracked, closures, visited, depth), n.Pos())...)
			return false
		case *ast.RangeStmt:
			out = append(out, loopGroup(a.readEvs(n.Body, tracked, closures, visited, depth), n.Pos())...)
			return false
		case *ast.CallExpr:
			evs, handled := a.readCall(n, tracked, closures, visited, depth)
			if handled {
				out = append(out, evs...)
				return false
			}
			return true
		case *ast.IndexExpr:
			if trackedIdent(a.pass.TypesInfo, n.X, tracked) {
				out = append(out, ev{pos: n.Pos(), t: tok{kind: "u8"}})
				return false
			}
			return true
		case *ast.SliceExpr:
			if trackedIdent(a.pass.TypesInfo, n.X, tracked) {
				out = append(out, ev{pos: n.Pos(), t: tok{kind: "bytes"}})
				return false
			}
			return true
		}
		return true
	})
	return out
}

func (a *analyzer) readCall(call *ast.CallExpr, tracked map[types.Object]bool,
	closures map[types.Object][]tok, visited map[*types.Func]bool, depth int) ([]ev, bool) {
	if name, little, ok := endianCall(a.pass.TypesInfo, call); ok && little {
		var k string
		switch name {
		case "Uint16":
			k = "u16"
		case "Uint32":
			k = "u32"
		case "Uint64":
			k = "u64"
		}
		if k != "" {
			if len(call.Args) == 1 && mentionsTracked(a.pass.TypesInfo, call.Args[0], tracked) {
				return []ev{{pos: call.Pos(), t: tok{kind: k}}}, true
			}
			// A decode of some other buffer is not a request field,
			// and its argument slice must not count as one either.
			return nil, true
		}
		return nil, false
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			if ts, ok := closures[obj]; ok {
				var out []ev
				for _, t := range ts {
					out = append(out, ev{pos: call.Pos(), t: t})
				}
				return out, true
			}
		}
	}
	var idxs []int
	for i, arg := range call.Args {
		if bodyArg(a.pass.TypesInfo, arg, tracked) {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return nil, false
	}
	fn := analysis.Callee(a.pass.TypesInfo, call)
	if fn == nil || visited[fn] || depth >= maxInline {
		return nil, false
	}
	fd := a.decls[fn]
	if fd == nil {
		return nil, false
	}
	visited[fn] = true
	next := paramObjs(a.pass.TypesInfo, fd, idxs)
	return a.readEvs(fd.Body, next, make(map[types.Object][]tok), visited, depth+1), true
}

// ---- shared helpers ----

// endianCall matches binary.LittleEndian.F(...) / binary.BigEndian.F(...)
// and reports the method name and which byte order it uses.
func endianCall(info *types.Info, call *ast.CallExpr) (name string, little, ok bool) {
	sel, k := call.Fun.(*ast.SelectorExpr)
	if !k {
		return "", false, false
	}
	inner, k := sel.X.(*ast.SelectorExpr)
	if !k {
		return "", false, false
	}
	pkgID, k := inner.X.(*ast.Ident)
	if !k {
		return "", false, false
	}
	pn, k := info.Uses[pkgID].(*types.PkgName)
	if !k || pn.Imported().Path() != "encoding/binary" {
		return "", false, false
	}
	switch inner.Sel.Name {
	case "LittleEndian":
		return sel.Sel.Name, true, true
	case "BigEndian":
		return sel.Sel.Name, false, true
	}
	return "", false, false
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// bodyArg reports whether arg hands the request body (or a reslice of
// it) to a callee.
func bodyArg(info *types.Info, arg ast.Expr, tracked map[types.Object]bool) bool {
	switch arg := arg.(type) {
	case *ast.Ident:
		return trackedIdent(info, arg, tracked)
	case *ast.SliceExpr:
		return trackedIdent(info, arg.X, tracked)
	}
	return false
}

// trackedIdent reports whether e is an identifier for a tracked body
// variable.
func trackedIdent(info *types.Info, e ast.Expr, tracked map[types.Object]bool) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && tracked[obj]
}

// mentionsTracked reports whether any identifier inside e resolves to
// a tracked body variable.
func mentionsTracked(info *types.Info, e ast.Expr, tracked map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && tracked[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// paramObjs maps argument positions to the callee's parameter objects.
func paramObjs(info *types.Info, fd *ast.FuncDecl, idxs []int) map[types.Object]bool {
	var names []*ast.Ident
	for _, f := range fd.Type.Params.List {
		names = append(names, f.Names...)
	}
	out := make(map[types.Object]bool)
	for _, i := range idxs {
		if i < len(names) {
			if obj := info.Defs[names[i]]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}
