// Fixture for the wiresym analyzer: per-opcode request scripts
// recovered from encoders (opcode anchors plus appends) and from the
// dispatch switch's handlers (reads, cursor closures, inlined decode
// helpers), then compared.
package wiresym

import "encoding/binary"

const (
	opPut    = 1  // matched: u64 id + page bytes
	opGet    = 2  // matched: u64, decoder behind one inlined helper
	opList   = 3  // mismatched loop element width
	opSet    = 4  // matched: single u8
	opSwap   = 5  // mismatched scalar width
	opPing   = 6  // matched: empty body on both sides
	opOrphan = 7  // encoded, never dispatched
	opGhost  = 8  // dispatched, never encoded
	opDrop   = 9  // want `opcode opDrop is neither encoded nor dispatched: dead wire surface`
	opHeld   = 10 //hyperlint:allow wiresym -- reserved wire number, intentionally unwired
	opStore  = 11 // matched: u64, shares its decoder with opStage
	opStage  = 12 // matched: u64, same handler as opStore
	opFlag   = 13 // matched: u64 token + u8 flag from a byte variable
)

const (
	statusOK  = 0
	statusBad = 1
)

// --- encoders ---

func encodePut(id uint64, img []byte) []byte {
	b := []byte{opPut}
	b = binary.LittleEndian.AppendUint64(b, id)
	b = append(b, img...)
	return b
}

// encodeGet rebuilds its request each retry attempt: the anchor inside
// the loop keeps the script serial instead of loop-grouped.
func encodeGet(id uint64) []byte {
	var b []byte
	for attempt := 0; attempt < 3; attempt++ {
		b = b[:0]
		b = append(b, opGet)
		b = binary.LittleEndian.AppendUint64(b, id)
		if len(b) > 0 {
			break
		}
	}
	return b
}

func encodeList(ids []uint64) []byte {
	b := []byte{opList} // want `request opList: encoder writes \[u32 loop\{u64\}\] but decoder reads \[u32 loop\{u32\}\]`
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = binary.LittleEndian.AppendUint64(b, id)
	}
	return b
}

func encodeSet(k byte) []byte {
	return []byte{opSet, k}
}

func encodeSwap(slot uint32) []byte {
	b := []byte{opSwap} // want `request opSwap: encoder writes \[u32\] but decoder reads \[u64\]`
	b = binary.LittleEndian.AppendUint32(b, slot)
	return b
}

func encodePing() []byte {
	return []byte{opPing}
}

func encodeOrphan() []byte {
	return []byte{opOrphan} // want `opOrphan is encoded here but the request dispatch has no case for it`
}

// encodeStore and encodeStage build byte-identical bodies; the dispatch
// routes both to one handler, so each encoder is checked against the
// same decoder script (the prepare/decide token shape).
func encodeStore(tok uint64) []byte {
	b := []byte{opStore}
	b = binary.LittleEndian.AppendUint64(b, tok)
	return b
}

func encodeStage(tok uint64) []byte {
	b := []byte{opStage}
	b = binary.LittleEndian.AppendUint64(b, tok)
	return b
}

// encodeFlag appends a computed flag byte after the token: the u8 write
// must be recognized from a byte-typed variable, not only a literal.
func encodeFlag(tok uint64, commit bool) []byte {
	flag := byte(0)
	if commit {
		flag = 1
	}
	b := []byte{opFlag}
	b = binary.LittleEndian.AppendUint64(b, tok)
	b = append(b, flag)
	return b
}

// --- dispatch ---

func serve(req []byte) []byte {
	if len(req) == 0 {
		return nil
	}
	switch req[0] {
	case opPut:
		return handlePut(req[1:])
	case opGet:
		return handleGet(req[1:])
	case opList:
		return handleList(req[1:])
	case opSet:
		return handleSet(req[1:])
	case opSwap:
		return handleSwap(req[1:])
	case opPing:
		return nil
	case opGhost: // want `opGhost has a dispatch case but no encoder builds its request`
		return handleGhost(req[1:])
	case opStore:
		return handleStore(req[1:])
	case opStage:
		return handleStore(req[1:])
	case opFlag:
		return handleFlag(req[1:])
	}
	return nil
}

// --- handlers ---

// handlePut reads through cursor closures, like decodeCommit.
func handlePut(body []byte) []byte {
	off := 0
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	id := u64()
	img := body[off:]
	_, _ = id, img
	return nil
}

// handleGet hands the body to a decode helper: one-level inlining.
func handleGet(body []byte) []byte {
	id := parseGet(body)
	_ = id
	return nil
}

func parseGet(body []byte) uint64 {
	if len(body) != 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(body)
}

// handleList reads u32 elements against the encoder's u64s.
func handleList(body []byte) []byte {
	n := int(binary.LittleEndian.Uint32(body))
	for i := 0; i < n; i++ {
		_ = binary.LittleEndian.Uint32(body[4+4*i:])
	}
	return nil
}

func handleSet(body []byte) []byte {
	if len(body) != 1 {
		return nil
	}
	k := body[0]
	_ = k
	return nil
}

func handleSwap(body []byte) []byte {
	_ = binary.LittleEndian.Uint64(body)
	return nil
}

func handleGhost(body []byte) []byte {
	_ = binary.LittleEndian.Uint64(body)
	return nil
}

// handleStore serves two opcodes whose requests share one shape.
func handleStore(body []byte) []byte {
	_ = binary.LittleEndian.Uint64(body)
	return nil
}

func handleFlag(body []byte) []byte {
	tok := binary.LittleEndian.Uint64(body)
	commit := body[8] == 1
	_, _ = tok, commit
	return nil
}

// --- shapes that must not confuse the analyzer ---

// retryable classifies an already-extracted opcode byte; its switch has
// an identifier tag, not a frame index, so it is not a dispatch switch
// (and must not make opGet look double-dispatched).
func retryable(op byte) bool {
	switch op {
	case opGet, opList:
		return true
	}
	return false
}

// readStatus switches over a response frame's first byte, but its
// cases are status constants: a response classifier, not a request
// dispatch.
func readStatus(body []byte) []byte {
	switch body[0] {
	case statusOK:
		return body[1:]
	case statusBad:
		return nil
	}
	return nil
}

// buildResponse writes with PutUintN but never anchors an opcode:
// responses are outside the request symmetry check.
func buildResponse(ver uint64, img []byte) []byte {
	resp := make([]byte, 8)
	binary.LittleEndian.PutUint64(resp, ver)
	return append(resp, img...)
}
