package wiresym_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/wiresym"
)

func TestWiresym(t *testing.T) {
	analysistest.Run(t, wiresym.Analyzer, "wiresym")
}
