// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer runs over one
// type-checked package and reports position-anchored diagnostics.
//
// The repo vendors its own copy (rather than depending on x/tools)
// because the build environment is hermetic — the module has no
// external dependencies — and because the hyperlint analyzers need
// only a small slice of the framework: no facts, no modular result
// passing, no suggested fixes. What is kept mirrors the upstream
// shape closely enough that migrating to x/tools later is a
// mechanical change. The package also houses the dataflow engine the
// interprocedural analyzers build on: per-function CFGs (cfg.go), a
// generic forward fixpoint (dataflow.go), a package call graph
// (callgraph.go) and summary caching (summary.go).
//
// Suppression: a diagnostic is suppressed by an explicit directive
// comment on the flagged line, the line directly above it, or — when
// the flagged position sits inside a statement spanning several
// lines — any line of that statement:
//
//	//hyperlint:allow detrand -- wall-clock timing metric
//
// The text after "--" is a mandatory-by-convention justification.
// Directives name one or more analyzers (comma separated); the
// wildcard "all" suppresses every analyzer. Suppressions are
// greppable, so the allowlist of exceptions is always visible in the
// tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, driver flags
	// (-<name>=false disables it) and allow directives.
	Name string

	// Doc is the one-paragraph description shown by the driver.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // name of the reporting analyzer
}

// A Pass holds one type-checked package being analyzed and collects
// the diagnostics reported against it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)

	// allow maps file name → line → analyzer names allowed there.
	allow map[string]map[int]map[string]bool
}

// Reportf reports a diagnostic at pos unless an allow directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(p.Analyzer.Name, pos) {
		return
	}
	p.Report(Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Allowed reports whether an "//hyperlint:allow name" directive
// suppresses the named analyzer at pos. A directive covers its own
// line, the line directly below it, and — when the diagnostic sits
// inside a statement spanning several lines — every line of the
// innermost enclosing statement, so annotating the first line of a
// multi-line call suppresses diagnostics anchored to any of its
// continuation lines.
func (p *Pass) Allowed(name string, pos token.Pos) bool {
	if p.allow == nil {
		p.allow = buildAllowMap(p.Fset, p.Files)
	}
	posn := p.Fset.Position(pos)
	lines := p.allow[posn.Filename]
	if len(lines) == 0 {
		return false
	}
	allowedAt := func(ln int) bool {
		names := lines[ln]
		return names != nil && (names[name] || names["all"])
	}
	if allowedAt(posn.Line) || allowedAt(posn.Line-1) {
		return true
	}
	if start, end, ok := p.stmtSpan(pos); ok && end > start {
		for ln := start - 1; ln <= end; ln++ {
			if allowedAt(ln) {
				return true
			}
		}
	}
	return false
}

// stmtSpan returns the line span of the innermost statement enclosing
// pos. The innermost statement — not an outer one — bounds suppression,
// so a directive inside a long function literal only covers the small
// statement it annotates.
func (p *Pass) stmtSpan(pos token.Pos) (startLine, endLine int, ok bool) {
	for _, f := range p.Files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		var best ast.Stmt
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if pos < n.Pos() || pos >= n.End() {
				return false
			}
			if s, isStmt := n.(ast.Stmt); isStmt {
				best = s // deeper statements visit later
			}
			return true
		})
		if best != nil {
			return p.Fset.Position(best.Pos()).Line, p.Fset.Position(best.End()).Line, true
		}
	}
	return 0, 0, false
}

const directivePrefix = "//hyperlint:allow"

// buildAllowMap scans every comment for allow directives.
func buildAllowMap(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	m := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Strip the justification after "--".
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				names := make(map[string]bool)
				for _, n := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					names[n] = true
				}
				if len(names) == 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				lines := m[posn.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					m[posn.Filename] = lines
				}
				if prev := lines[posn.Line]; prev != nil {
					for n := range names {
						prev[n] = true
					}
				} else {
					lines[posn.Line] = names
				}
			}
		}
	}
	return m
}

// IsTestFile reports whether the file enclosing pos is a _test.go
// file. Several analyzers encode invariants about production code only
// (tests may use wall clocks and craft raw protocol frames).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// WalkStack traverses root like ast.Inspect but hands fn the stack of
// enclosing nodes (outermost first, root excluded its own entry: the
// stack holds the ancestors of n). Returning false skips n's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// FindImport locates an imported package by path anywhere in the
// import graph visible from pkg (breadth-first over Imports).
func FindImport(pkg *types.Package, path string) *types.Package {
	seen := map[*types.Package]bool{pkg: true}
	queue := []*types.Package{pkg}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	return nil
}

// IsErrorType reports whether t is the built-in error interface type
// (the static type of every sentinel error variable).
func IsErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

var errorType = types.Universe.Lookup("error").Type()

// Callee resolves the called function or method of a call expression,
// or nil for builtins, type conversions and indirect calls through
// function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether the call invokes the package-level
// function pkgPath.name (e.g. time.Now).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// ReceiverNamed returns the named type of a method's receiver (through
// one pointer indirection), or nil.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
