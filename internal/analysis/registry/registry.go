// Package registry enumerates the hyperlint analyzers. It lives
// apart from package analysis so the framework does not import its
// own analyzers.
package registry

import (
	"hypermodel/internal/analysis"
	"hypermodel/internal/analysis/detrand"
	"hypermodel/internal/analysis/erris"
	"hypermodel/internal/analysis/facade"
	"hypermodel/internal/analysis/framerelease"
	"hypermodel/internal/analysis/mutexio"
	"hypermodel/internal/analysis/opcodes"
	"hypermodel/internal/analysis/vfsonly"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		erris.Analyzer,
		facade.Analyzer,
		framerelease.Analyzer,
		mutexio.Analyzer,
		opcodes.Analyzer,
		vfsonly.Analyzer,
	}
}
