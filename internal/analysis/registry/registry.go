// Package registry enumerates the hyperlint analyzers. It lives
// apart from package analysis so the framework does not import its
// own analyzers.
package registry

import (
	"hypermodel/internal/analysis"
	"hypermodel/internal/analysis/detrand"
	"hypermodel/internal/analysis/erris"
	"hypermodel/internal/analysis/facade"
	"hypermodel/internal/analysis/framerelease"
	"hypermodel/internal/analysis/lifecycle"
	"hypermodel/internal/analysis/lockorder"
	"hypermodel/internal/analysis/mutexio"
	"hypermodel/internal/analysis/opcodes"
	"hypermodel/internal/analysis/vfsonly"
	"hypermodel/internal/analysis/wiresym"
)

// All returns every analyzer in the suite, in stable order. The
// lexical checks (mutexio, framerelease, opcodes) coexist with their
// interprocedural upgrades (lockorder, lifecycle, wiresym): the
// lexical rules are stricter where they apply and their diagnostics
// are cheaper to localize.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		erris.Analyzer,
		facade.Analyzer,
		framerelease.Analyzer,
		lifecycle.Analyzer,
		lockorder.Analyzer,
		mutexio.Analyzer,
		opcodes.Analyzer,
		vfsonly.Analyzer,
		wiresym.Analyzer,
	}
}
