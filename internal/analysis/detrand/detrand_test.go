package detrand_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "hypermodel/internal/hyper", "offpath")
}
