// Package detrand checks that packages on the deterministic path
// draw no entropy from ambient sources: no global math/rand
// top-level functions and no time.Now, time.Since or time.Until
// outside explicitly allowlisted timing sites.
//
// Invariant: the benchmark's credibility rests on reproducibility — a
// fanout-5 tree generated from seed S must be byte-identical across
// runs, machines and backends, because the agreement tests compare
// backends against each other and the published numbers are only
// comparable if every run traverses the same database. All randomness
// must therefore flow through injected *rand.Rand values seeded from
// configuration. The global math/rand source is process-wide state
// any import can perturb; time.Now is nondeterministic by definition
// (and rand.New(rand.NewSource(time.Now().UnixNano())) is caught
// through its time.Now call). time.Since and time.Until read the same
// wall clock through a one-call veneer, so they are flagged alike.
//
// Wall-clock timing sites that are genuinely about measuring (the
// generator's phase timings) carry "//hyperlint:allow detrand"
// directives with justifications, so the complete allowlist is
// greppable. Test files are exempt: tests seed explicitly or measure
// wall time on purpose.
package detrand

import (
	"go/ast"
	"strings"

	"hypermodel/internal/analysis"
)

// deterministic lists the package paths (exact, or prefix for the
// backend tree) whose behavior must be a pure function of their
// seeds.
var deterministic = struct {
	exact    []string
	prefixes []string
}{
	exact:    []string{"hypermodel/internal/hyper", "hypermodel/internal/fault"},
	prefixes: []string{"hypermodel/internal/backend/"},
}

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "deterministic-path packages must not use global math/rand or " +
		"time.Now/Since/Until; randomness flows through injected seeded *rand.Rand values",
	Run: run,
}

// globalRandFuncs are the math/rand package-level functions that
// consume the shared global source. Constructors (New, NewSource,
// NewZipf) are fine: they feed injected generators.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

func run(pass *analysis.Pass) error {
	if !onDeterministicPath(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if analysis.ReceiverNamed(fn) == nil && globalRandFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global math/rand.%s on the deterministic path; use an injected seeded *rand.Rand",
						fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					if analysis.ReceiverNamed(fn) == nil {
						pass.Reportf(call.Pos(),
							"time.%s on the deterministic path; inject a clock or annotate a timing site with //hyperlint:allow detrand",
							fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

func onDeterministicPath(path string) bool {
	for _, p := range deterministic.exact {
		if path == p {
			return true
		}
	}
	for _, p := range deterministic.prefixes {
		if strings.HasPrefix(path, p) || path == strings.TrimSuffix(p, "/") {
			return true
		}
	}
	return false
}
