// Fixture for the detrand analyzer, placed at a deterministic-path
// import path so the gate admits it.
package hyper

import (
	"math/rand"
	"time"
)

func badGlobalRand() int64 {
	return rand.Int63() // want "global math/rand.Int63 on the deterministic path; use an injected seeded"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle on the deterministic path"
}

func badClock() time.Time {
	return time.Now() // want "time.Now on the deterministic path"
}

func goodInjected(rng *rand.Rand) int64 {
	return rng.Int63() // method on an injected generator
}

func goodConstructor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors feed injected generators
}

func goodTimingSite() time.Duration {
	start := time.Now() //hyperlint:allow detrand -- fixture timing site
	return time.Since(start)
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since on the deterministic path"
}

func badUntil(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time.Until on the deterministic path"
}

func goodAnnotatedSince() time.Duration {
	start := time.Now()      //hyperlint:allow detrand -- fixture timing site
	return time.Since(start) //hyperlint:allow detrand -- fixture timing site
}

// goodMultiLineAllow: the directive on the first line of a multi-line
// statement suppresses diagnostics anchored to its continuation lines.
func goodMultiLineAllow() int64 {
	return combine( //hyperlint:allow detrand -- fixture: one directive covers the whole statement
		rand.Int63(),
		time.Now().UnixNano(),
	)
}

func combine(a, b int64) int64 { return a ^ b }
