// Fixture at an import path outside the deterministic gate: nothing
// here may be flagged.
package offpath

import (
	"math/rand"
	"time"
)

func Fine() (int64, time.Time) {
	return rand.Int63(), time.Now()
}
