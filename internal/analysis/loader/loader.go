// Package loader type-checks packages for the hyperlint analyzers
// without golang.org/x/tools: target packages are checked from parsed
// source, dependencies are satisfied from compiler export data (the
// same .a files the go command hands to vet in its unitchecker
// config, or the ones "go list -export" reports from the build
// cache).
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Check type-checks one package from its parsed files. The returned
// Info has every map analyzers rely on populated.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
		GoVersion: normalizeGoVersion(goVersion),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	return pkg, info, err
}

// goVersionRE matches the "go1.N[.M]" prefix types.Config accepts;
// vet configs may carry toolchain suffixes it would reject.
var goVersionRE = regexp.MustCompile(`^go[0-9]+\.[0-9]+(\.[0-9]+)?`)

func normalizeGoVersion(v string) string {
	return goVersionRE.FindString(v)
}

// ParseFiles parses the named files (comments retained: the allow
// directives and test expectations live there).
func ParseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ParseDir parses every non-test .go file in dir, sorted by name.
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, filepath.Join(dir, n))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return ParseFiles(fset, names)
}

// ExportImporter satisfies imports from compiler export data.
// importMap translates import paths as written in source to canonical
// package paths (nil means identity), packageFile maps canonical
// paths to export data files. Both maps may keep growing between
// Import calls (the test harness adds stdlib entries lazily).
type ExportImporter struct {
	importMap   map[string]string
	packageFile map[string]string
	gc          types.ImporterFrom

	// Fallback consulted for paths without export data (the test
	// harness chains a source-tree importer here). May be nil.
	Fallback types.Importer
}

// NewExportImporter builds an importer over the given maps.
func NewExportImporter(fset *token.FileSet, importMap, packageFile map[string]string) *ExportImporter {
	e := &ExportImporter{importMap: importMap, packageFile: packageFile}
	lookup := func(path string) (io.ReadCloser, error) {
		canonical := path
		if p, ok := e.importMap[path]; ok {
			canonical = p
		}
		file, ok := e.packageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", canonical)
		}
		return os.Open(file)
	}
	e.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return e
}

func (e *ExportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *ExportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	canonical := path
	if p, ok := e.importMap[path]; ok {
		canonical = p
	}
	if _, ok := e.packageFile[canonical]; !ok && e.Fallback != nil {
		return e.Fallback.Import(path)
	}
	return e.gc.ImportFrom(path, dir, 0)
}

// Has reports whether export data is on hand for the (canonical)
// import path.
func (e *ExportImporter) Has(path string) bool {
	_, ok := e.packageFile[path]
	return ok
}

// Add registers export data for a canonical import path.
func (e *ExportImporter) Add(path, file string) {
	e.packageFile[path] = file
}
