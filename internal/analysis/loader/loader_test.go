package loader_test

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"hypermodel/internal/analysis/loader"
)

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exportFile asks the toolchain for one stdlib package's export data
// (compiled into the build cache, so this works offline).
func exportFile(t *testing.T, pkg string) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", pkg).Output()
	if err != nil {
		t.Skipf("go list -export %s: %v", pkg, err)
	}
	file := strings.TrimSpace(string(out))
	if file == "" {
		t.Skipf("go list -export %s: no export file", pkg)
	}
	return file
}

// TestImportMapTranslatesVendoredPath covers the vendored-path
// mismatch: the import is written as a vendor path in source, the
// export data is registered under the canonical path, and the
// importMap bridges the two without touching the fallback.
func TestImportMapTranslatesVendoredPath(t *testing.T) {
	fset := token.NewFileSet()
	exp := loader.NewExportImporter(fset,
		map[string]string{"example.com/app/vendor/errors": "errors"},
		map[string]string{"errors": exportFile(t, "errors")})
	fallbackHit := false
	exp.Fallback = importerFunc(func(path string) (*types.Package, error) {
		fallbackHit = true
		return nil, fmt.Errorf("unexpected fallback for %q", path)
	})
	pkg, err := exp.Import("example.com/app/vendor/errors")
	if err != nil {
		t.Fatalf("Import(vendored path): %v", err)
	}
	if pkg.Path() != "errors" {
		t.Errorf("imported package path = %q, want %q", pkg.Path(), "errors")
	}
	if fallbackHit {
		t.Error("fallback consulted although export data covers the canonical path")
	}
}

func TestHasAndAdd(t *testing.T) {
	fset := token.NewFileSet()
	exp := loader.NewExportImporter(fset, nil, map[string]string{})
	if exp.Has("errors") {
		t.Error("Has reported export data before Add")
	}
	exp.Add("errors", exportFile(t, "errors"))
	if !exp.Has("errors") {
		t.Error("Has missed export data after Add")
	}
	pkg, err := exp.Import("errors")
	if err != nil {
		t.Fatalf("Import after Add: %v", err)
	}
	if pkg.Path() != "errors" {
		t.Errorf("imported package path = %q, want %q", pkg.Path(), "errors")
	}
}

func TestFallbackWhenExportDataMissing(t *testing.T) {
	fset := token.NewFileSet()
	exp := loader.NewExportImporter(fset, nil, map[string]string{})
	want := types.NewPackage("example.com/sourcepkg", "sourcepkg")
	var asked string
	exp.Fallback = importerFunc(func(path string) (*types.Package, error) {
		asked = path
		return want, nil
	})
	pkg, err := exp.Import("example.com/sourcepkg")
	if err != nil {
		t.Fatalf("Import with fallback: %v", err)
	}
	if pkg != want {
		t.Error("fallback package not returned")
	}
	if asked != "example.com/sourcepkg" {
		t.Errorf("fallback asked for %q, want the path as written", asked)
	}

	exp.Fallback = nil
	if _, err := exp.Import("example.com/nowhere"); err == nil {
		t.Error("Import without export data or fallback succeeded")
	}
}

// TestCheckSourceFallback type-checks a package whose dependency has
// no export data: the fallback parses and checks the dependency from
// source, the way the fixture harness resolves testdata imports.
func TestCheckSourceFallback(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("b/b.go", "package b\n\nfunc Answer() int { return 42 }\n")
	write("a/a.go", "package a\n\nimport \"example.com/b\"\n\nvar X = b.Answer()\n")

	fset := token.NewFileSet()
	exp := loader.NewExportImporter(fset, nil, map[string]string{})
	exp.Fallback = importerFunc(func(path string) (*types.Package, error) {
		rel, ok := strings.CutPrefix(path, "example.com/")
		if !ok {
			return nil, fmt.Errorf("unexpected import %q", path)
		}
		files, err := loader.ParseDir(fset, filepath.Join(root, rel))
		if err != nil {
			return nil, err
		}
		pkg, _, err := loader.Check(path, fset, files, exp, "")
		return pkg, err
	})

	files, err := loader.ParseDir(fset, filepath.Join(root, "a"))
	if err != nil {
		t.Fatal(err)
	}
	// The toolchain-suffixed version string exercises normalization:
	// types.Config would reject it verbatim.
	pkg, info, err := loader.Check("example.com/a", fset, files, exp, "go1.22.0 X:nocoverageredesign")
	if err != nil {
		t.Fatalf("Check with source fallback: %v", err)
	}
	if pkg.Name() != "a" {
		t.Errorf("checked package name = %q, want %q", pkg.Name(), "a")
	}
	if len(info.Uses) == 0 || len(info.Defs) == 0 {
		t.Error("type info not populated")
	}
}

// TestParseDirExcludesTestFiles covers a package that only compiles
// with its test files excluded: the in-package test references a
// symbol the production files never declare.
func TestParseDirExcludesTestFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("p.go", "package p\n\nconst OK = 1\n")
	write("p_test.go", "package p\n\nvar broken = helperDefinedNowhere()\n")
	write("notes.txt", "not a Go file\n")
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o777); err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	files, err := loader.ParseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("ParseDir returned %d files, want 1 (tests and non-Go files excluded)", len(files))
	}
	if _, _, err := loader.Check("example.com/p", fset, files, nil, ""); err != nil {
		t.Errorf("Check failed although the broken file is a test file: %v", err)
	}

	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "q_test.go"), []byte("package q\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.ParseDir(fset, empty); err == nil {
		t.Error("ParseDir succeeded on a directory holding only test files")
	}
}
