// Package-level call graph with interface resolution.
package analysis

import (
	"go/ast"
	"go/types"
)

// A FuncInfo pairs one function that has a body in the analyzed
// package with its syntax: either a declared function/method (Obj and
// Decl set) or a function literal (Lit set, Obj nil).
type FuncInfo struct {
	Obj  *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
}

// Body returns the function's body, which is never nil for a FuncInfo
// produced by NewCallGraph.
func (f *FuncInfo) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Name returns a human-readable name for diagnostics: the declared
// name, or "func literal".
func (f *FuncInfo) Name() string {
	if f.Obj != nil {
		return f.Obj.Name()
	}
	return "func literal"
}

// A CallGraph indexes the analyzed package's functions and resolves
// call expressions to the functions they may invoke — through static
// calls directly, and through interface method calls by scanning every
// named type visible in the package and its import graph for concrete
// implementations.
type CallGraph struct {
	pkg  *types.Package
	info *types.Info

	funcs map[*types.Func]*FuncInfo // declared functions with bodies
	all   []*FuncInfo               // decls then literals, source order

	candidates []types.Type                  // named types considered as interface implementations
	implCache  map[*types.Func][]*types.Func // interface method → concrete methods
}

// NewCallGraph indexes every function declaration and function literal
// in files.
func NewCallGraph(pkg *types.Package, info *types.Info, files []*ast.File) *CallGraph {
	g := &CallGraph{
		pkg:       pkg,
		info:      info,
		funcs:     make(map[*types.Func]*FuncInfo),
		implCache: make(map[*types.Func][]*types.Func),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Obj: obj, Decl: fd}
			g.funcs[obj] = fi
			g.all = append(g.all, fi)
		}
	}
	// Function literals are separate analysis roots: they run on their
	// own goroutine or at an unknown time, so their facts must not leak
	// into the enclosing function's straight-line state. Literals nested
	// inside other literals are covered by the outer visit.
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					g.all = append(g.all, &FuncInfo{Lit: lit})
				}
				return true
			})
		}
	}
	return g
}

// Funcs returns every function with a body in the package: declared
// functions first, then function literals, in source order.
func (g *CallGraph) Funcs() []*FuncInfo { return g.all }

// FuncOf returns the FuncInfo for a declared function, or nil if obj
// has no body in the analyzed package (external functions, interface
// methods).
func (g *CallGraph) FuncOf(obj *types.Func) *FuncInfo { return g.funcs[obj] }

// Callees resolves a call expression to the set of functions it may
// invoke. Static calls resolve to one function. Calls through an
// interface method resolve to that method on every visible concrete
// type implementing the interface (over-approximating the dynamic
// dispatch). Builtins, conversions and calls through function values
// resolve to nil.
func (g *CallGraph) Callees(call *ast.CallExpr) []*types.Func {
	fn := Callee(g.info, call)
	if fn == nil {
		return nil
	}
	if recv := recvType(fn); recv != nil {
		if iface, ok := recv.Underlying().(*types.Interface); ok {
			return g.resolveInterface(fn, iface)
		}
	}
	return []*types.Func{fn}
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// resolveInterface finds the concrete methods an interface method call
// may dispatch to, caching per interface method.
func (g *CallGraph) resolveInterface(m *types.Func, iface *types.Interface) []*types.Func {
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	var impls []*types.Func
	for _, t := range g.candidateTypes() {
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if cm, ok := obj.(*types.Func); ok {
			impls = append(impls, cm)
		}
	}
	g.implCache[m] = impls
	return impls
}

// candidateTypes lists every named non-interface type declared in the
// analyzed package or anywhere in its import graph, the universe an
// interface call may dispatch into.
func (g *CallGraph) candidateTypes() []types.Type {
	if g.candidates != nil {
		return g.candidates
	}
	seen := map[*types.Package]bool{g.pkg: true}
	queue := []*types.Package{g.pkg}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.candidates = append(g.candidates, named)
			}
		}
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	if g.candidates == nil {
		g.candidates = []types.Type{}
	}
	return g.candidates
}
