package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"hypermodel/internal/analysis"
)

// parseAndCheck type-checks one import-free source string. Engine unit
// tests stay import-free because the test binary has no compiled
// export data for the standard library on hand; analyzer fixtures get
// stdlib imports through the analysistest harness instead.
func parseAndCheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, pkg, info
}

func funcBody(t *testing.T, file *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// callNames collects the names of functions called inside a CFG node,
// skipping deferred statements (exit-time effects) and the builtin
// panic; WalkNode keeps it out of function literals and out of bodies
// the CFG broke into separate blocks.
func callNames(n ast.Node, into map[string]bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	analysis.WalkNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name != "panic" {
				into[id.Name] = true
			}
		}
		return true
	})
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func setEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// mayCalls runs a may-execute union analysis over the CFG and returns
// the set of function names that can have been called on some path to
// the exit, plus whether the exit is reachable at all.
func mayCalls(t *testing.T, g *analysis.CFG) (map[string]bool, bool) {
	t.Helper()
	flow := analysis.Flow[map[string]bool]{
		Entry: func() map[string]bool { return map[string]bool{} },
		Join: func(a, b map[string]bool) map[string]bool {
			u := cloneSet(a)
			for k := range b {
				u[k] = true
			}
			return u
		},
		Equal: setEqual,
		Transfer: func(b *analysis.Block, in map[string]bool) map[string]bool {
			out := cloneSet(in)
			for _, n := range b.Nodes {
				callNames(n, out)
			}
			return out
		},
	}
	in, err := analysis.Forward(g, flow)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	st, ok := analysis.ExitState(g, flow, in)
	return st, ok
}

// mustFlow is the dual must-execute intersection analysis: names
// called on every path reaching a point.
func mustFlow() analysis.Flow[map[string]bool] {
	return analysis.Flow[map[string]bool]{
		Entry: func() map[string]bool { return map[string]bool{} },
		Join: func(a, b map[string]bool) map[string]bool {
			u := map[string]bool{}
			for k := range a {
				if b[k] {
					u[k] = true
				}
			}
			return u
		},
		Equal: setEqual,
		Transfer: func(b *analysis.Block, in map[string]bool) map[string]bool {
			out := cloneSet(in)
			for _, n := range b.Nodes {
				callNames(n, out)
			}
			return out
		},
	}
}

// mustCalls returns the must-execute set at the function exit.
func mustCalls(t *testing.T, g *analysis.CFG) (map[string]bool, bool) {
	t.Helper()
	flow := mustFlow()
	in, err := analysis.Forward(g, flow)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	st, ok := analysis.ExitState(g, flow, in)
	return st, ok
}

// mustAtCall returns the must-execute set on entry to the block
// containing a call of the named function.
func mustAtCall(t *testing.T, g *analysis.CFG, name string) map[string]bool {
	t.Helper()
	in, err := analysis.Forward(g, mustFlow())
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for blk, st := range in {
		calls := map[string]bool{}
		for _, n := range blk.Nodes {
			callNames(n, calls)
		}
		if calls[name] {
			return st
		}
	}
	t.Fatalf("no reachable block calls %s", name)
	return nil
}

func wantSet(t *testing.T, what string, got map[string]bool, want ...string) {
	t.Helper()
	w := map[string]bool{}
	for _, n := range want {
		w[n] = true
	}
	if !setEqual(got, w) {
		var g []string
		for k := range got {
			g = append(g, k)
		}
		sort.Strings(g)
		t.Errorf("%s = {%s}, want {%s}", what, strings.Join(g, " "), strings.Join(want, " "))
	}
}

const cfgStubs = `
func a()             {}
func b()             {}
func d()             {}
func body()          {}
func after()         {}
func inner()         {}
func done()          {}
func zero()          {}
func one()           {}
func def()           {}
func other()         {}
func recv(int)       {}
func pre()           {}
func post()          {}
func work()          {}
func cleanup()       {}
func first()         {}
func dead()          {}
func ok()            {}
func cond() bool     { return false }
`

func TestCFGIfElse(t *testing.T) {
	_, file, _, _ := parseAndCheck(t, `package p
func f(c bool) {
	a()
	if c {
		b()
		return
	}
	d()
}
`+cfgStubs)
	g := analysis.NewCFG(funcBody(t, file, "f"))
	may, ok := mayCalls(t, g)
	if !ok {
		t.Fatal("exit unreachable")
	}
	wantSet(t, "may", may, "a", "b", "d")
	must, _ := mustCalls(t, g)
	wantSet(t, "must", must, "a")

	// The branch head carries the condition with the then-edge first.
	var head *analysis.Block
	for _, blk := range g.Blocks {
		if blk.Cond != nil {
			head = blk
		}
	}
	if head == nil {
		t.Fatal("no block carries the if condition")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("branch head has %d successors, want 2", len(head.Succs))
	}
	thenCalls := map[string]bool{}
	for _, n := range head.Succs[0].Nodes {
		callNames(n, thenCalls)
	}
	if !thenCalls["b"] {
		t.Errorf("Succs[0] (true edge) does not contain the then-branch call b(): %v", thenCalls)
	}
}

func TestCFGForLoop(t *testing.T) {
	_, file, _, _ := parseAndCheck(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		body()
	}
	after()
}
`+cfgStubs)
	g := analysis.NewCFG(funcBody(t, file, "f"))
	may, ok := mayCalls(t, g)
	if !ok {
		t.Fatal("exit unreachable")
	}
	wantSet(t, "may", may, "body", "after")
	must, _ := mustCalls(t, g)
	wantSet(t, "must", must, "after") // zero iterations possible
}

func TestCFGLabeledBreakContinueGoto(t *testing.T) {
	_, file, _, _ := parseAndCheck(t, `package p
func f(xs []int) {
outer:
	for _, x := range xs {
		for {
			if x == 0 {
				continue outer
			}
			if x == 1 {
				break outer
			}
			inner()
		}
	}
	done()
}

func g(n int) {
	i := 0
loop:
	if i < n {
		work()
		i++
		goto loop
	}
	done()
}
`+cfgStubs)

	cg := analysis.NewCFG(funcBody(t, file, "f"))
	may, ok := mayCalls(t, cg)
	if !ok {
		t.Fatal("f: exit unreachable")
	}
	wantSet(t, "f may", may, "inner", "done")
	must, _ := mustCalls(t, cg)
	wantSet(t, "f must", must, "done")

	gg := analysis.NewCFG(funcBody(t, file, "g"))
	may, ok = mayCalls(t, gg)
	if !ok {
		t.Fatal("g: exit unreachable")
	}
	wantSet(t, "g may", may, "work", "done")
	must, _ = mustCalls(t, gg)
	wantSet(t, "g must", must, "done")
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, file, _, _ := parseAndCheck(t, `package p
func f(x int) {
	switch x {
	case 0:
		zero()
		fallthrough
	case 1:
		one()
	default:
		def()
	}
	after()
}

func g(x int) {
	switch x {
	case 0:
		return
	default:
		other()
	}
	after()
}
`+cfgStubs)

	fg := analysis.NewCFG(funcBody(t, file, "f"))
	may, ok := mayCalls(t, fg)
	if !ok {
		t.Fatal("f: exit unreachable")
	}
	wantSet(t, "f may", may, "zero", "one", "def", "after")
	must, _ := mustCalls(t, fg)
	wantSet(t, "f must", must, "after")

	// With a default present and the only other arm returning, every
	// path to after() runs other(): there must be no head→join edge.
	gg := analysis.NewCFG(funcBody(t, file, "g"))
	wantSet(t, "g must at after()", mustAtCall(t, gg, "after"), "other")
}

func TestCFGSelect(t *testing.T) {
	_, file, _, _ := parseAndCheck(t, `package p
func f(ch chan int) {
	select {
	case v := <-ch:
		recv(v)
	default:
		def()
	}
	after()
}

func g() {
	pre()
	select {}
	post()
}
`+cfgStubs)

	fg := analysis.NewCFG(funcBody(t, file, "f"))
	may, ok := mayCalls(t, fg)
	if !ok {
		t.Fatal("f: exit unreachable")
	}
	wantSet(t, "f may", may, "recv", "def", "after")
	must, _ := mustCalls(t, fg)
	wantSet(t, "f must", must, "after")

	// select{} blocks forever: nothing after it runs, and the exit is
	// unreachable.
	gg := analysis.NewCFG(funcBody(t, file, "g"))
	if _, ok := mayCalls(t, gg); ok {
		t.Error("g: exit reachable past select{}")
	}
}

func TestCFGDeferAndUnreachable(t *testing.T) {
	_, file, _, _ := parseAndCheck(t, `package p
func f() {
	defer cleanup()
	if cond() {
		return
	}
	work()
}

func g() {
	first()
	return
	dead()
}

func h(c bool) {
	if c {
		panic("x")
	}
	ok()
}
`+cfgStubs)

	fg := analysis.NewCFG(funcBody(t, file, "f"))
	if len(fg.Defers) != 1 {
		t.Fatalf("f: %d defers recorded, want 1", len(fg.Defers))
	}
	may, _ := mayCalls(t, fg)
	wantSet(t, "f may", may, "cond", "work")

	// Statements after return are never visited.
	gg := analysis.NewCFG(funcBody(t, file, "g"))
	may, ok := mayCalls(t, gg)
	if !ok {
		t.Fatal("g: exit unreachable")
	}
	wantSet(t, "g may", may, "first")

	// panic terminates its path: ok() is not on it, so the must-set at
	// exit is empty while the may-set still sees ok().
	hg := analysis.NewCFG(funcBody(t, file, "h"))
	may, _ = mayCalls(t, hg)
	wantSet(t, "h may", may, "ok")
	must, _ := mustCalls(t, hg)
	wantSet(t, "h must", must)
}
