// Fixture for the erris analyzer: sentinel comparisons that must be
// flagged, and the equivalents that must not be.
package erris

import "errors"

var ErrBoom = errors.New("boom")

func badEqual(err error) bool {
	return err == ErrBoom // want "sentinel error ErrBoom compared with ==; use errors.Is"
}

func badNotEqual(err error) bool {
	if err != ErrBoom { // want "sentinel error ErrBoom compared with !=; use errors.Is"
		return false
	}
	return true
}

func badReversed(err error) bool {
	return ErrBoom == err // want "sentinel error ErrBoom compared with ==; use errors.Is"
}

func badSwitch(err error) int {
	switch err {
	case ErrBoom: // want "sentinel error ErrBoom matched by switch case .identity comparison.; use errors.Is"
		return 1
	}
	return 0
}

func goodIs(err error) bool {
	return errors.Is(err, ErrBoom)
}

func goodNil(err error) bool {
	return err == nil // nil check is not a sentinel comparison
}

func goodLocal(err error) bool {
	local := errors.New("local")
	return err == local // function-scoped error, not a sentinel
}

func allowed(err error) bool {
	//hyperlint:allow erris -- fixture exercises the suppression path
	return err == ErrBoom
}
