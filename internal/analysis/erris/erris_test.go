package erris_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/erris"
)

func TestErris(t *testing.T) {
	analysistest.Run(t, erris.Analyzer, "erris")
}
