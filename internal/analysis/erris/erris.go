// Package erris checks that sentinel errors are matched with
// errors.Is, never == or !=.
//
// Invariant: the remote tier's retry taxonomy (transient vs definite
// outcomes) and the harness's not-applicable detection depend on
// recognizing sentinels through wrapping — Client.Commit returns
// "%w"-wrapped ErrCommitUnknown, fault injection wraps store errors,
// and fmt.Errorf chains are pervasive. An identity comparison against
// a package-level error variable silently stops matching the moment
// anyone adds a wrap, so every such comparison is a latent bug even
// when it happens to work today.
package erris

import (
	"go/ast"
	"go/token"
	"go/types"

	"hypermodel/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "erris",
	Doc: "sentinel errors must be compared with errors.Is, not == or != " +
		"(wrapped errors stop matching under identity comparison)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				checkComparison(pass, n.OpPos, n.Op, n.X, n.Y)
			case *ast.SwitchStmt:
				// switch err { case ErrFoo: } is == in disguise.
				if n.Tag == nil || !isErrorExpr(pass, n.Tag) {
					return true
				}
				for _, clause := range n.Body.List {
					cc := clause.(*ast.CaseClause)
					for _, e := range cc.List {
						if name, ok := sentinelRef(pass, e); ok {
							pass.Reportf(e.Pos(),
								"sentinel error %s matched by switch case (identity comparison); use errors.Is", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *analysis.Pass, pos token.Pos, op token.Token, x, y ast.Expr) {
	// Both operands must be errors (rules out comparing non-error
	// values that happen to share a name shape).
	if !isErrorExpr(pass, x) || !isErrorExpr(pass, y) {
		return
	}
	for _, operand := range [...]ast.Expr{x, y} {
		if name, ok := sentinelRef(pass, operand); ok {
			pass.Reportf(pos, "sentinel error %s compared with %s; use errors.Is", name, op)
			return
		}
	}
}

// isErrorExpr reports whether e's static type is the error interface.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && analysis.IsErrorType(tv.Type)
}

// sentinelRef reports whether e is a reference to a package-level
// variable of type error — the sentinel pattern "var ErrX =
// errors.New(...)" — and returns its printable name.
func sentinelRef(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !analysis.IsErrorType(v.Type()) {
		return "", false
	}
	// Package level: the variable's parent scope is its package scope.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if v.Pkg() == pass.Pkg {
		return v.Name(), true
	}
	return v.Pkg().Name() + "." + v.Name(), true
}
