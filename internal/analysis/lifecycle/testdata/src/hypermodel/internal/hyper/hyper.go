// Stub of the real hyper package for the lifecycle fixtures.
package hyper

import "errors"

var ErrNoSnapshots = errors.New("no snapshots")

type DB interface {
	Snapshot() (DB, error)
	Root(slot int) uint64
	Close() error
}
