// Stub of the real fault package for the lifecycle fixtures.
package fault

type Config struct {
	Latency int
}

type Proxy struct{}

func NewProxy(upstream string, cfg Config) (*Proxy, error) { return &Proxy{}, nil }

func (p *Proxy) Addr() string { return "" }
func (p *Proxy) Close() error { return nil }
