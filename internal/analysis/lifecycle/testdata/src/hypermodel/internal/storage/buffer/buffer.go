// Stub of the real buffer package: just enough surface for the
// lifecycle fixtures to type-check against the tracked producers.
package buffer

type Frame struct {
	ID   uint64
	Page []byte
}

type Pool struct{}

func (p *Pool) Get(id uint64) *Frame                             { return nil }
func (p *Pool) Insert(id uint64, img []byte) *Frame              { return &Frame{ID: id, Page: img} }
func (p *Pool) GetOrInsert(id uint64, img []byte) (*Frame, bool) { return &Frame{ID: id}, false }
func (p *Pool) Release(f *Frame)                                 {}
func (p *Pool) MarkDirty(f *Frame)                               {}
