// Stub of the real vfs package for the lifecycle fixtures.
package vfs

type FS interface {
	Open(name string) (File, error)
	Remove(name string) error
}

type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Close() error
}
