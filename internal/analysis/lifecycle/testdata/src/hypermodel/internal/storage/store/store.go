// Stub of the real store package for the lifecycle fixtures.
package store

import "errors"

var ErrSnapshotTooOld = errors.New("snapshot too old")

type Store struct{}

func (s *Store) Snapshot() (*SnapshotView, error) { return &SnapshotView{}, nil }
func (s *Store) ReadView() *ReadView              { return &ReadView{} }

type SnapshotView struct{}

func (v *SnapshotView) Get(id uint64) ([]byte, error) { return nil, nil }
func (v *SnapshotView) Close() error                  { return nil }

type ReadView struct{}

func (v *ReadView) Close() error { return nil }
