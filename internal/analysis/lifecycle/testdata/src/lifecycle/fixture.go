// Fixture for the lifecycle analyzer: must-release tracking for
// frames, files, snapshots and proxies across branches, error paths
// and helper calls.
package lifecycle

import (
	"errors"

	"hypermodel/internal/fault"
	"hypermodel/internal/hyper"
	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/store"
	"hypermodel/internal/storage/vfs"
)

// --- flagging: a path to return leaks the obligation ---

func badFileEarlyReturn(fs vfs.FS, skip bool) error {
	f, err := fs.Open("data") // want `file opened here is not released via Close on every path to return`
	if err != nil {
		return err
	}
	if skip {
		return nil // leaks f
	}
	return f.Close()
}

func badFrameNoRelease(p *buffer.Pool) {
	f := p.Get(7) // want `frame pinned here is not released via Pool.Release on every path to return`
	if f == nil {
		return
	}
	f.Page[0] = 1
}

// badSnapshotBorrow lends the snapshot to a reader but never closes
// it: lending is not releasing.
func badSnapshotBorrow(st *store.Store) error {
	snap, err := st.Snapshot() // want `snapshot pinned here is not released via Close on every path to return`
	if err != nil {
		return err
	}
	return readAll(snap)
}

// badSnapshotRetryLoop is the txn.View shape: each iteration pins a
// fresh snapshot and the previous one is abandoned.
func badSnapshotRetryLoop(db hyper.DB) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var snap hyper.DB
		snap, err = db.Snapshot() // want `snapshot pinned here is not released via Close on every path to return`
		if err != nil {
			return err
		}
		err = use(snap)
		if !errors.Is(err, store.ErrSnapshotTooOld) {
			return err
		}
	}
	return err
}

func badProxyLeak(addr string) (string, error) {
	px, err := fault.NewProxy(addr, fault.Config{}) // want `proxy started here is not released via Close on every path to return`
	if err != nil {
		return "", err
	}
	return px.Addr(), nil
}

func badDiscard(p *buffer.Pool) {
	p.Insert(3, nil) // want `result of Insert discarded: the frame it returns can never be released via Pool.Release`
}

func badBlank(st *store.Store) {
	_, _ = st.Snapshot() // want `result of Snapshot discarded: the snapshot it returns can never be released via Close`
}

// --- non-flagging shapes ---

func goodDeferClose(fs vfs.FS) error {
	f, err := fs.Open("data")
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.ReadAt(nil, 0)
	return err
}

func goodReleaseBothArms(p *buffer.Pool, dirty bool) {
	f := p.Get(1)
	if f == nil {
		return
	}
	if dirty {
		p.MarkDirty(f)
	} else {
		p.Release(f)
	}
}

// goodNilCheckMiss: Pool.Get returns nil on a miss; the nil arm owes
// nothing.
func goodNilCheckMiss(p *buffer.Pool) {
	f := p.Get(2)
	if f != nil {
		p.Release(f)
	}
}

func goodErrPath(st *store.Store) error {
	snap, err := st.Snapshot()
	if err != nil {
		return err // snap was never produced
	}
	return snap.Close()
}

// goodErrorsIsGuard: the errors.Is arm implies a non-nil error, so no
// snapshot exists there.
func goodErrorsIsGuard(db hyper.DB) error {
	snap, err := db.Snapshot()
	if errors.Is(err, hyper.ErrNoSnapshots) {
		return nil
	}
	if err != nil {
		return err
	}
	defer snap.Close()
	_ = snap.Root(0)
	return nil
}

// goodReturned: the caller receives the obligation with the value.
func goodReturned(fs vfs.FS) (vfs.File, error) {
	return fs.Open("handoff")
}

func goodReturnedVar(p *buffer.Pool) *buffer.Frame {
	f := p.Insert(9, nil)
	return f
}

type holder struct {
	f    *buffer.Frame
	file vfs.File
}

// goodFieldStore: storing into a structure transfers ownership.
func goodFieldStore(h *holder, p *buffer.Pool) {
	h.f = p.Insert(4, nil)
}

// goodCompositeEscape: the frame leaves inside a returned literal.
func goodCompositeEscape(p *buffer.Pool) *holder {
	f := p.Insert(5, nil)
	return &holder{f: f}
}

// goodWrapReturn: the resource leaves with a constructor's result.
func goodWrapReturn(st *store.Store) (*reader, error) {
	snap, err := st.Snapshot()
	if err != nil {
		return nil, err
	}
	return newReader(snap), nil
}

// goodErasedWrap: the constructor's parameter erases the resource kind
// behind a local interface, which means it wraps or stores the value —
// ownership moves with the call (the oodb/reldb Snapshot shape).
type space interface{ Close() error }

type wrapped struct{ st space }

func newWrapped(st space, n int) (*wrapped, error) { return &wrapped{st: st}, nil }

func goodErasedWrap(st *store.Store) (*wrapped, error) {
	view, err := st.Snapshot()
	if err != nil {
		return nil, err
	}
	return newWrapped(view, 0)
}

// goodHelperConsumes: stash stores its argument (fixpoint summary says
// param 0 is consumed), so the caller's obligation is discharged.
func goodHelperConsumes(h *holder, fs vfs.FS) error {
	f, err := fs.Open("kept")
	if err != nil {
		return err
	}
	stash(h, f)
	return nil
}

// goodHelperChain: consumption is visible through two helper levels.
func goodHelperChain(h *holder, fs vfs.FS) error {
	f, err := fs.Open("chained")
	if err != nil {
		return err
	}
	stashVia(h, f)
	return nil
}

// goodSnapshotLentThenClosed: lending a snapshot to a reader does not
// discharge it; the close afterwards does.
func goodSnapshotLentThenClosed(st *store.Store) error {
	snap, err := st.Snapshot()
	if err != nil {
		return err
	}
	rerr := readAll(snap)
	cerr := snap.Close()
	if rerr != nil {
		return rerr
	}
	return cerr
}

// goodGoroutineHandoff: the goroutine inherits the frame.
func goodGoroutineHandoff(p *buffer.Pool) {
	f := p.Insert(6, nil)
	go func() {
		p.Release(f)
	}()
}

// goodFrameHandoffUnknown: an unresolved callee (function value) takes
// frame ownership.
var sink func(*buffer.Frame)

func goodFrameHandoffUnknown(p *buffer.Pool) {
	f := p.Insert(8, nil)
	sink(f)
}

// --- helpers the fixtures call ---

// readAll only borrows the snapshot: it neither closes nor stores it.
func readAll(v *store.SnapshotView) error {
	_, err := v.Get(0)
	return err
}

func use(snap hyper.DB) error {
	_ = snap.Root(1)
	return nil
}

type reader struct {
	v *store.SnapshotView
}

func newReader(v *store.SnapshotView) *reader { return &reader{v: v} }

func stash(h *holder, f vfs.File) {
	h.file = f
}

func stashVia(h *holder, f vfs.File) {
	stash(h, f)
}

// --- suppressed ---

func suppressedLeak(fs vfs.FS) error {
	f, err := fs.Open("pidfile") //hyperlint:allow lifecycle -- held open for the process lifetime as an advisory lock
	if err != nil {
		return err
	}
	_ = f
	return nil
}
