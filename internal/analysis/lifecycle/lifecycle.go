// Package lifecycle checks must-release protocols over the dataflow
// engine: a resource acquired on some path must, on every path out of
// the function, be released, returned, stored, or handed to something
// that takes ownership.
//
// Tracked resources, recognized by the type a call returns:
//
//   - *buffer.Frame — pinned by (*Pool).Get / Insert / GetOrInsert,
//     released by (*Pool).Release. Upgrades the lexical framerelease
//     analyzer: the held frame is followed through branches, loops and
//     helper calls instead of a single lexical window.
//   - vfs.File — opened through vfs.FS, released by Close.
//   - *store.SnapshotView, *store.ReadView, and hyper.DB values
//     returned by a method named Snapshot — released by Close. An open
//     snapshot pins its version in the store's ring.
//   - *fault.Proxy — started by fault.NewProxy, released by Close.
//
// Ownership transfers the analyzer understands: returning the
// resource, storing it into a field, element or composite literal,
// capturing it in a function literal, go statement or deferred call,
// and passing it to a callee. For calls resolved statically within the
// package, a per-parameter fixpoint summary decides whether the callee
// consumes (releases or stores) the argument; unknown callees are
// assumed to take ownership of frames, files and proxies, but only to
// *borrow* snapshots — the snapshot protocol is acquire, lend to a
// closure, close, so the caller keeps the release obligation.
//
// Error results are branch-sensitive: after res, err := acquire(), the
// err != nil arm carries no resource, and a nil-check of the resource
// itself (Pool.Get misses return nil) clears the obligation on the nil
// arm.
//
// The producer packages (buffer, store, vfs, fault) are exempt: they
// juggle their resources' representations, not the protocol. Test
// files are skipped.
package lifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hypermodel/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lifecycle",
	Doc: "interprocedural must-release tracking for buffer frames, vfs files, " +
		"store snapshots and fault proxies: every acquisition must be released, " +
		"returned or handed off on every path",
	Run: run,
}

// Producer package paths (the fixture stubs use the same paths).
const (
	bufferPath = "hypermodel/internal/storage/buffer"
	storePath  = "hypermodel/internal/storage/store"
	vfsPath    = "hypermodel/internal/storage/vfs"
	hyperPath  = "hypermodel/internal/hyper"
	faultPath  = "hypermodel/internal/fault"
)

type kind int

const (
	kindFrame kind = iota
	kindFile
	kindSnapshot
	kindProxy
)

func (k kind) String() string {
	switch k {
	case kindFrame:
		return "frame"
	case kindFile:
		return "file"
	case kindSnapshot:
		return "snapshot"
	default:
		return "proxy"
	}
}

// verb describes the acquisition in diagnostics.
func (k kind) verb() string {
	switch k {
	case kindFile:
		return "opened"
	case kindProxy:
		return "started"
	default:
		return "pinned"
	}
}

// releaseName names the releasing operation in diagnostics.
func (k kind) releaseName() string {
	if k == kindFrame {
		return "Pool.Release"
	}
	return "Close"
}

// consequence explains why the leak matters, per kind.
func (k kind) consequence() string {
	switch k {
	case kindFrame:
		return "an unreleased pin occupies a buffer slot until restart"
	case kindFile:
		return "the handle leaks against the VFS"
	case kindSnapshot:
		return "an open snapshot pins its version in the ring and blocks reclamation"
	default:
		return "its listener and relay goroutines leak"
	}
}

// borrowOnUnknownCall reports whether passing the resource to an
// unresolvable callee keeps the release obligation with the caller.
func (k kind) borrowOnUnknownCall() bool { return k == kindSnapshot }

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	for _, p := range []string{bufferPath, storePath, vfsPath, faultPath} {
		if path == p {
			return nil // producer package: exempt
		}
	}
	imported := false
	for _, p := range []string{bufferPath, storePath, vfsPath, hyperPath, faultPath} {
		if analysis.FindImport(pass.Pkg, p) != nil {
			imported = true
			break
		}
	}
	if !imported {
		return nil
	}

	var files []*ast.File
	for _, f := range pass.Files {
		if !pass.IsTestFile(f.Pos()) {
			files = append(files, f)
		}
	}
	a := &analyzer{
		pass:  pass,
		graph: analysis.NewCallGraph(pass.Pkg, pass.TypesInfo, files),
		cfgs:  make(map[*analysis.FuncInfo]*analysis.CFG),
	}

	// Phase 1: which parameters does each in-package function consume?
	s := analysis.Summarizer[lifeSummary]{
		Graph: a.graph,
		Equal: summaryEqual,
		Compute: func(fi *analysis.FuncInfo, get func(*types.Func) (lifeSummary, bool)) lifeSummary {
			return a.summarize(fi, get)
		},
	}
	a.summaries = s.Run()

	// Phase 2: per-function leak detection against the final summaries.
	final := func(obj *types.Func) (lifeSummary, bool) {
		sum, ok := a.summaries[obj]
		return sum, ok && a.graph.FuncOf(obj) != nil
	}
	for _, fi := range a.graph.Funcs() {
		cfg := a.cfgFor(fi)
		in, err := analysis.Forward(cfg, a.flow(fi, nil, final))
		if err != nil {
			return err
		}
		// Discard reports (path-insensitive), one visit per reachable block.
		for _, blk := range cfg.Blocks {
			st, ok := in[blk]
			if !ok {
				continue
			}
			st = st.clone()
			for _, n := range blk.Nodes {
				a.node(n, st, nil, final, true)
			}
		}
		// Leak reports: obligations still live when the function returns.
		exit, ok := in[cfg.Exit]
		if !ok {
			continue // no path reaches the exit
		}
		var leaks []resource
		for _, r := range exit {
			if r.param >= 0 {
				continue // caller-owned parameter, not ours to release
			}
			leaks = append(leaks, r)
		}
		sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
		for _, r := range leaks {
			a.pass.Reportf(r.pos,
				"%s %s here is not released via %s on every path to return: %s",
				r.kind, r.kind.verb(), r.kind.releaseName(), r.kind.consequence())
		}
	}
	return nil
}

// resource is one live release obligation.
type resource struct {
	kind kind
	pos  token.Pos  // acquisition site, where leaks are reported
	errV *types.Var // paired error result, for branch refinement
	// param is the parameter index during summarization, -1 for an
	// obligation acquired locally.
	param int
}

// lifeState maps a local variable to the obligation it holds.
type lifeState map[*types.Var]resource

func (st lifeState) clone() lifeState {
	c := make(lifeState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// lifeSummary records, per parameter index, whether the function
// consumes the argument (releases it or takes ownership). The zero
// value is the lattice bottom.
type lifeSummary struct {
	consumes map[int]bool
}

func summaryEqual(a, b lifeSummary) bool {
	if len(a.consumes) != len(b.consumes) {
		return false
	}
	for k := range a.consumes {
		if !b.consumes[k] {
			return false
		}
	}
	return true
}

// consumed accumulates parameter consumption during one summary pass.
type consumed struct {
	params map[int]bool
}

type analyzer struct {
	pass      *analysis.Pass
	graph     *analysis.CallGraph
	cfgs      map[*analysis.FuncInfo]*analysis.CFG
	summaries map[*types.Func]lifeSummary
}

func (a *analyzer) cfgFor(fi *analysis.FuncInfo) *analysis.CFG {
	cfg, ok := a.cfgs[fi]
	if !ok {
		cfg = analysis.NewCFG(fi.Body())
		a.cfgs[fi] = cfg
	}
	return cfg
}

// summarize seeds the dataflow with the function's trackable
// parameters and records which of them are consumed on some path.
func (a *analyzer) summarize(fi *analysis.FuncInfo, get func(*types.Func) (lifeSummary, bool)) lifeSummary {
	acc := &consumed{params: map[int]bool{}}
	if _, err := analysis.Forward(a.cfgFor(fi), a.flow(fi, acc, get)); err != nil {
		return lifeSummary{}
	}
	return lifeSummary{consumes: acc.params}
}

// entryState binds trackable parameters during summarization; the
// report pass starts empty (parameters are the caller's obligation).
func (a *analyzer) entryState(fi *analysis.FuncInfo, summarizing bool) lifeState {
	st := lifeState{}
	if !summarizing || fi.Obj == nil {
		return st
	}
	sig := fi.Obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if k, ok := kindOfType(p.Type()); ok {
			st[p] = resource{kind: k, pos: p.Pos(), param: i}
		}
	}
	return st
}

func (a *analyzer) flow(fi *analysis.FuncInfo, acc *consumed, lookup func(*types.Func) (lifeSummary, bool)) analysis.Flow[lifeState] {
	return analysis.Flow[lifeState]{
		Entry: func() lifeState { return a.entryState(fi, acc != nil) },
		Join: func(x, y lifeState) lifeState {
			u := x.clone()
			for k, v := range y {
				if _, ok := u[k]; !ok {
					u[k] = v
				}
			}
			return u
		},
		Equal: func(x, y lifeState) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if _, ok := y[k]; !ok {
					return false
				}
			}
			return true
		},
		Transfer: func(b *analysis.Block, in lifeState) lifeState {
			st := in.clone()
			for _, n := range b.Nodes {
				a.node(n, st, acc, lookup, false)
			}
			return st
		},
		Edge: a.edge,
	}
}

// edge refines the state across a branch on x == nil / x != nil: a nil
// resource carries no obligation, and a non-nil error means the paired
// resource was never produced.
func (a *analyzer) edge(from, to *analysis.Block, out lifeState) lifeState {
	// errors.Is(err, X) as the branch condition: the true arm implies
	// err is non-nil, so paired resources were never produced there.
	if call, ok := ast.Unparen(from.Cond).(*ast.CallExpr); ok {
		if analysis.IsPkgFunc(a.pass.TypesInfo, call, "errors", "Is") &&
			len(call.Args) == 2 && to == from.Succs[0] {
			if v, ok := localVar(a.pass.TypesInfo, call.Args[0]); ok {
				out = a.killPairedWith(v, out)
			}
		}
		return out
	}
	bin, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	x := bin.X
	if isNilIdent(a.pass.TypesInfo, x) {
		x = bin.Y
	} else if !isNilIdent(a.pass.TypesInfo, bin.Y) {
		return out
	}
	v, ok := localVar(a.pass.TypesInfo, x)
	if !ok {
		return out
	}
	onTrue := to == from.Succs[0]
	xIsNil := (bin.Op == token.EQL) == onTrue
	if xIsNil {
		// The resource itself is nil on this arm: nothing was acquired.
		if _, live := out[v]; live {
			out = out.clone()
			delete(out, v)
		}
		return out
	}
	// x is non-nil. If x is an error paired with an acquisition, this
	// is the failure arm: the resource was never produced.
	return a.killPairedWith(v, out)
}

// killPairedWith removes every obligation whose paired error variable
// is v (the branch in hand has established v is a non-nil error).
func (a *analyzer) killPairedWith(v *types.Var, out lifeState) lifeState {
	var dead []*types.Var
	for rv, r := range out {
		if r.errV == v {
			dead = append(dead, rv)
		}
	}
	if len(dead) > 0 {
		out = out.clone()
		for _, rv := range dead {
			delete(out, rv)
		}
	}
	return out
}

// node applies one CFG node to the state; rep enables discard reports.
func (a *analyzer) node(n ast.Node, st lifeState, acc *consumed, lookup func(*types.Func) (lifeSummary, bool), rep bool) {
	analysis.WalkNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			// defer pool.Release(f) / defer snap.Close() discharges the
			// obligation on every path to return; anything else a
			// deferred call references is treated as taken over by it.
			for _, v := range a.releaseTargets(m.Call) {
				a.consume(v, st, acc)
			}
			a.consumeIdentsIn(m.Call, st, acc)
			return false

		case *ast.GoStmt:
			// The goroutine inherits every resource it references.
			a.consumeIdentsIn(m.Call, st, acc)
			return false

		case *ast.FuncLit:
			// Captured resources become the closure's responsibility.
			a.consumeIdentsIn(m.Body, st, acc)
			return false

		case *ast.ReturnStmt:
			for _, res := range m.Results {
				a.escapeResult(res, st, acc)
			}
			return true

		case *ast.CompositeLit:
			// Stored into a structure: ownership moves with the value.
			for _, el := range m.Elts {
				a.consumeIdentsIn(el, st, acc)
			}
			return true

		case *ast.UnaryExpr:
			if m.Op == token.AND {
				a.consumeIdentsIn(m.X, st, acc)
			}
			return true

		case *ast.AssignStmt:
			a.assign(m, st, acc, rep)
			return true

		case *ast.DeclStmt:
			if gd, ok := m.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						a.valueSpec(vs, st)
					}
				}
			}
			return true

		case *ast.ExprStmt:
			if call, ok := ast.Unparen(m.X).(*ast.CallExpr); ok && rep {
				if k, ok := a.acquisition(call); ok {
					a.reportDiscard(call, k)
				}
			}
			return true

		case *ast.CallExpr:
			a.call(m, st, acc, lookup)
			return true
		}
		return true
	})
}

func (a *analyzer) reportDiscard(call *ast.CallExpr, k kind) {
	a.pass.Reportf(call.Pos(),
		"result of %s discarded: the %s it returns can never be released via %s",
		callName(call), k, k.releaseName())
}

// assign handles resource binding and escape through assignment.
func (a *analyzer) assign(as *ast.AssignStmt, st lifeState, acc *consumed, rep bool) {
	if len(as.Rhs) == 1 {
		// Producer call on the right: bind the result variable.
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if k, ok := a.acquisition(call); ok {
				a.bind(as.Lhs, k, call, st, rep)
				return
			}
		}
		// Plain copy f2 := f moves the obligation to the new name.
		if len(as.Lhs) == 1 {
			if src, ok := a.trackedIdent(as.Rhs[0], st); ok {
				r := st[src]
				delete(st, src)
				if dst, ok := localVar(a.pass.TypesInfo, as.Lhs[0]); ok {
					st[dst] = r
				} else {
					// Stored through a selector, index or deref.
					if acc != nil && r.param >= 0 {
						acc.params[r.param] = true
					}
				}
				return
			}
		}
	}
	// Any tracked value assigned through a selector, index or deref
	// escapes into the target structure.
	escapes := false
	for _, lhs := range as.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
			escapes = true
		}
	}
	if escapes {
		for _, rhs := range as.Rhs {
			a.consumeIdentsIn(rhs, st, acc)
		}
	}
}

func (a *analyzer) valueSpec(vs *ast.ValueSpec, st lifeState) {
	if len(vs.Values) != 1 {
		return
	}
	call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	if k, ok := a.acquisition(call); ok {
		lhs := make([]ast.Expr, len(vs.Names))
		for i, n := range vs.Names {
			lhs[i] = n
		}
		a.bind(lhs, k, call, st, false)
	}
}

// bind attaches a fresh obligation to the assignment's first target
// and pairs it with a trailing error variable when present.
func (a *analyzer) bind(lhs []ast.Expr, k kind, call *ast.CallExpr, st lifeState, rep bool) {
	if len(lhs) == 0 {
		return
	}
	v, ok := localVar(a.pass.TypesInfo, lhs[0])
	if !ok {
		// A store into a field or element is an ownership transfer; an
		// explicit blank is a discard.
		if id, isIdent := ast.Unparen(lhs[0]).(*ast.Ident); isIdent && id.Name == "_" && rep {
			a.reportDiscard(call, k)
		}
		return
	}
	// Rebinding a name silently replaces any prior obligation: loops
	// re-acquire into the same variable after releasing.
	r := resource{kind: k, pos: call.Pos(), param: -1}
	if len(lhs) >= 2 {
		if last, ok := localVar(a.pass.TypesInfo, lhs[len(lhs)-1]); ok && analysis.IsErrorType(last.Type()) {
			r.errV = last
		}
	}
	st[v] = r
}

// call applies release and ownership-transfer semantics of one call.
func (a *analyzer) call(call *ast.CallExpr, st lifeState, acc *consumed, lookup func(*types.Func) (lifeSummary, bool)) {
	for _, v := range a.releaseTargets(call) {
		a.consume(v, st, acc)
	}
	fn := analysis.Callee(a.pass.TypesInfo, call)
	if fn != nil && !isInterfaceMethod(fn) {
		if sum, ok := lookup(fn); ok {
			// In-package callee. A parameter that keeps the resource's
			// type was tracked by the summary: it tells consumed from
			// borrowed. A parameter that erases the kind (a local
			// interface, as in constructors wrapping a view) means the
			// callee stores or wraps the value: ownership moves.
			sig := fn.Type().(*types.Signature)
			for i, arg := range call.Args {
				v, ok := a.trackedIdent(arg, st)
				if !ok {
					continue
				}
				pi := i
				if n := sig.Params().Len(); pi >= n {
					pi = n - 1 // variadic tail
				}
				if pi < 0 {
					continue
				}
				if _, tracked := kindOfType(sig.Params().At(pi).Type()); tracked {
					if sum.consumes[pi] {
						a.consume(v, st, acc)
					}
				} else {
					a.consume(v, st, acc)
				}
			}
			return
		}
	}
	// Unknown callee: frames, files and proxies are handed off;
	// snapshots are lent and stay the caller's obligation.
	for _, arg := range call.Args {
		if v, ok := a.trackedIdent(arg, st); ok && !st[v].kind.borrowOnUnknownCall() {
			a.consume(v, st, acc)
		}
	}
}

// escapeResult kills obligations that flow out through one return
// expression: the ident itself, or idents inside composite literals
// and address-of expressions. Arguments of calls inside the result are
// left to call semantics (a borrowed snapshot is still a leak).
func (a *analyzer) escapeResult(e ast.Expr, st lifeState, acc *consumed) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := a.trackedIdent(e, st); ok {
			a.consume(v, st, acc)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			a.consumeIdentsIn(e.X, st, acc)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			a.consumeIdentsIn(el, st, acc)
		}
	}
}

// consume discharges v's obligation, crediting the parameter summary
// when v is a tracked parameter.
func (a *analyzer) consume(v *types.Var, st lifeState, acc *consumed) {
	r, ok := st[v]
	if !ok {
		return
	}
	delete(st, v)
	if acc != nil && r.param >= 0 {
		acc.params[r.param] = true
	}
}

// consumeIdentsIn discharges every tracked variable referenced under n.
func (a *analyzer) consumeIdentsIn(n ast.Node, st lifeState, acc *consumed) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
				a.consume(v, st, acc)
			}
		}
		return true
	})
}

// trackedIdent resolves e to a variable currently holding an
// obligation.
func (a *analyzer) trackedIdent(e ast.Expr, st lifeState) (*types.Var, bool) {
	v, ok := localVar(a.pass.TypesInfo, e)
	if !ok {
		return nil, false
	}
	_, live := st[v]
	return v, live
}

// releaseTargets returns the variables whose obligation this call
// discharges: pool.Release(f) for frames, x.Close() — or x.Abort(),
// which also drops a view's pin — for everything else.
func (a *analyzer) releaseTargets(call *ast.CallExpr) []*types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Release":
		if len(call.Args) != 1 {
			return nil
		}
		if v, ok := localVar(a.pass.TypesInfo, call.Args[0]); ok {
			return []*types.Var{v}
		}
	case "Close", "Abort":
		if v, ok := localVar(a.pass.TypesInfo, sel.X); ok {
			return []*types.Var{v}
		}
	}
	return nil
}

// acquisition reports whether the call produces a tracked resource as
// its first result.
func (a *analyzer) acquisition(call *ast.CallExpr) (kind, bool) {
	fn := analysis.Callee(a.pass.TypesInfo, call)
	if fn == nil {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return 0, false
	}
	t := sig.Results().At(0).Type()
	k, ok := kindOfType(t)
	if !ok {
		return 0, false
	}
	// hyper.DB values count only from methods named Snapshot: every
	// other DB-returning function is a constructor handing over a
	// database, not a pin.
	if k == kindSnapshot && isHyperDB(t) && fn.Name() != "Snapshot" {
		return 0, false
	}
	return k, true
}

// kindOfType maps a type to the resource kind it represents.
func kindOfType(t types.Type) (kind, bool) {
	if p, ok := t.(*types.Pointer); ok {
		n, ok := p.Elem().(*types.Named)
		if !ok {
			return 0, false
		}
		switch {
		case namedIn(n, "Frame", bufferPath):
			return kindFrame, true
		case namedIn(n, "SnapshotView", storePath), namedIn(n, "ReadView", storePath):
			return kindSnapshot, true
		case namedIn(n, "Proxy", faultPath):
			return kindProxy, true
		}
		return 0, false
	}
	if n, ok := t.(*types.Named); ok {
		switch {
		case namedIn(n, "File", vfsPath):
			return kindFile, true
		case namedIn(n, "DB", hyperPath):
			return kindSnapshot, true
		}
	}
	return 0, false
}

func isHyperDB(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && namedIn(n, "DB", hyperPath)
}

// namedIn matches a named type by name and package path. Fixture
// stubs live under the same import paths, so exact match suffices.
func namedIn(n *types.Named, name, path string) bool {
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

func localVar(info *types.Info, e ast.Expr) (*types.Var, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, false
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	return v, ok
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "call"
}
