package lifecycle_test

import (
	"testing"

	"hypermodel/internal/analysis/analysistest"
	"hypermodel/internal/analysis/lifecycle"
)

func TestLifecycle(t *testing.T) {
	analysistest.Run(t, lifecycle.Analyzer, "lifecycle")
}
