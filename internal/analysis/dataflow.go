// Generic forward dataflow fixpoint over a CFG.
package analysis

import "fmt"

// Flow defines one forward dataflow problem over a CFG. The state type
// T forms a join-semilattice: Join must be commutative, associative,
// and monotone, and Transfer must be monotone in its input, or the
// fixpoint is not guaranteed to terminate (Forward still stops at a
// safety cap and reports the overrun via the error return).
type Flow[T any] struct {
	// Entry produces the state on entry to the function.
	Entry func() T
	// Join merges the states of two predecessors. It must not mutate
	// either argument.
	Join func(a, b T) T
	// Equal reports whether two states carry the same facts.
	Equal func(a, b T) bool
	// Transfer applies a block's nodes to the incoming state and
	// returns the outgoing state. It must not mutate in.
	Transfer func(b *Block, in T) T
	// Edge optionally refines the outgoing state along a specific
	// successor edge (for branch-sensitive facts such as err-nil
	// checks). from.Cond is the branch condition; to is from.Succs[0]
	// on the true edge and from.Succs[1] on the false edge. Nil means
	// no refinement.
	Edge func(from, to *Block, out T) T
}

// forwardCap bounds worklist processing: each block may be revisited at
// most this many times before Forward gives up. Real lattices in this
// package (small named-resource sets) converge in a handful of rounds;
// the cap only guards against a non-monotone Transfer.
const forwardCap = 256

// Forward runs the worklist algorithm and returns the incoming state
// of every reachable block. Unreachable blocks have no entry in the
// result, so reporting passes that iterate it never diagnose dead
// code. The error is non-nil only if the cap was hit (a bug in the
// Flow), in which case the partial result is still safe to read as an
// over-approximation.
func Forward[T any](g *CFG, f Flow[T]) (map[*Block]T, error) {
	in := make(map[*Block]T)
	seen := make(map[*Block]bool)
	visits := make(map[*Block]int)

	in[g.Entry] = f.Entry()
	seen[g.Entry] = true
	work := []*Block{g.Entry}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if visits[b]++; visits[b] > forwardCap {
			return in, fmt.Errorf("analysis: dataflow did not converge at block %d", b.Index)
		}
		out := f.Transfer(b, in[b])
		for _, succ := range b.Succs {
			e := out
			if f.Edge != nil {
				e = f.Edge(b, succ, out)
			}
			if !seen[succ] {
				seen[succ] = true
				in[succ] = e
				work = append(work, succ)
				continue
			}
			merged := f.Join(in[succ], e)
			if !f.Equal(merged, in[succ]) {
				in[succ] = merged
				work = append(work, succ)
			}
		}
	}
	return in, nil
}

// ExitState joins the incoming states of the synthetic exit block's
// predecessors as recorded in the fixpoint result, i.e. the state that
// holds when the function returns on any path. The second return is
// false when no path reaches the exit (e.g. the body ends in an
// infinite loop).
func ExitState[T any](g *CFG, f Flow[T], in map[*Block]T) (T, bool) {
	st, ok := in[g.Exit]
	return st, ok
}
