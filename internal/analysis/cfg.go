// Control-flow graphs for the dataflow engine.
//
// NewCFG builds an intraprocedural CFG from a function body: basic
// blocks of statements (and the control expressions evaluated on the
// way into a branch) connected by edges that follow Go's control
// statements — if/else, for, range, switch (with fallthrough), type
// switch, select, labeled break/continue, goto, return and panic.
// The graph is deliberately statement-granular: analyzers walk the
// expressions inside each node themselves, so the builder does not
// have to linearize expression evaluation order.
//
// Conventions analyzers rely on:
//
//   - A block that ends at a two-way branch stores the condition in
//     Cond; Succs[0] is the true edge and Succs[1] the false edge, so
//     edge-sensitive analyses (Flow.Edge) can refine facts on err-nil
//     checks and the like.
//   - A select statement appears as a single node (the *ast.SelectStmt
//     itself) in the block where it executes; its clause bodies are
//     separate blocks. Analyzers treat the select node as one atomic
//     channel operation.
//   - A range statement likewise appears as its own node in the loop
//     head block, so the range expression's calls are visible there.
//   - Deferred statements stay in their block as nodes and are also
//     collected in Defers: they run at function exit, so analyses
//     model their effect against the exit state, not the local one.
//   - Code made unreachable by return/goto/panic lands in blocks that
//     no edge reaches; Forward never visits them, and reporting passes
//     iterate only the blocks the fixpoint returned.
package analysis

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of nodes with its successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Cond is set when the block ends at a two-way branch on this
	// condition: Succs[0] is the true edge, Succs[1] the false edge.
	Cond ast.Expr
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // synthetic; every return and panic edges here
	Blocks []*Block
	Defers []*ast.DeferStmt // every defer, in lexical order
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// Innermost-first stacks of break/continue/fallthrough targets.
	breaks    []*Block
	continues []*Block
	fallthrus []*Block

	labels map[string]*labelInfo
	// pendingLabel carries a label down to the loop or switch it
	// prefixes, so labeled break/continue resolve to the right targets.
	pendingLabel *labelInfo
}

type labelInfo struct {
	start *Block // goto target
	brk   *Block // labeled break target (set by the labeled construct)
	cont  *Block // labeled continue target (loops only)
}

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]*labelInfo)}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate ends the current path (return, goto, panic): subsequent
// statements land in a fresh block no edge reaches.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) labelOf(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{start: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch consumes the
	// pending label without break/continue targets.
	pending := b.pendingLabel
	b.pendingLabel = nil

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.labelOf(s.Label.Name)
		b.edge(b.cur, li.start)
		b.cur = li.start
		b.pendingLabel = li
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		b.cur.Cond = s.Cond
		head := b.cur
		then := b.newBlock()
		join := b.newBlock()
		b.edge(head, then) // Succs[0]: condition true
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els) // Succs[1]: condition false
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(head, join) // Succs[1]: condition false
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		join := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
			b.edge(head, body) // true
			b.edge(head, join) // false
		} else {
			b.edge(head, body) // for {}: join only reachable via break
		}
		if pending != nil {
			pending.brk, pending.cont = join, post
		}
		b.breaks = append(b.breaks, join)
		b.continues = append(b.continues, post)
		b.cur = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = join

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		// The range statement itself is the head's node: the range
		// expression and the per-iteration key/value assignment both
		// live there.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		join := b.newBlock()
		b.edge(head, body)
		b.edge(head, join)
		if pending != nil {
			pending.brk, pending.cont = join, head
		}
		b.breaks = append(b.breaks, join)
		b.continues = append(b.continues, head)
		b.cur = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt:
		b.switchStmt(pending, s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(pending, s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		b.add(s) // the select is one atomic channel operation
		head := b.cur
		join := b.newBlock()
		if pending != nil {
			pending.brk = join
		}
		b.breaks = append(b.breaks, join)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// select{} blocks forever: join is then unreachable, which is
		// exactly right.
		b.cur = join

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.brk != nil {
					b.edge(b.cur, li.brk)
				}
			} else if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			}
			b.terminate()
		case token.CONTINUE:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.cont != nil {
					b.edge(b.cur, li.cont)
				}
			} else if n := len(b.continues); n > 0 {
				b.edge(b.cur, b.continues[n-1])
			}
			b.terminate()
		case token.GOTO:
			b.edge(b.cur, b.labelOf(s.Label.Name).start)
			b.terminate()
		case token.FALLTHROUGH:
			if n := len(b.fallthrus); n > 0 && b.fallthrus[n-1] != nil {
				b.edge(b.cur, b.fallthrus[n-1])
			}
			b.terminate()
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminate()

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
				b.edge(b.cur, b.cfg.Exit)
				b.terminate()
			}
		}

	default:
		// Assignments, declarations, sends, increments, go statements,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

// WalkNode traverses one CFG node like ast.Inspect, but respects the
// block structure: it does not descend into function literals (they
// are separate analysis roots), nor into a range statement's body or a
// select clause's body (the CFG broke those out into their own
// blocks). fn still sees the FuncLit, RangeStmt and SelectStmt nodes
// themselves, and a select's communication operations; returning false
// skips a node's children as usual.
func WalkNode(root ast.Node, fn func(ast.Node) bool) {
	skip := map[ast.Node]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if skip[n] {
			return false
		}
		if !fn(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			skip[n.Body] = true
		case *ast.CommClause:
			for _, s := range n.Body {
				skip[s] = true
			}
		}
		return true
	})
}

// switchStmt builds both expression and type switches: head evaluates
// init plus the tag (or the type-switch assign), each case body is a
// block, fallthrough edges to the next case body, and a missing
// default adds a head→join edge.
func (b *cfgBuilder) switchStmt(pending *labelInfo, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	join := b.newBlock()
	if pending != nil {
		pending.brk = join
	}

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}

	b.breaks = append(b.breaks, join)
	for i, cc := range clauses {
		var next *Block
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.fallthrus = append(b.fallthrus, next)
		b.cur = blocks[i]
		// Case expressions are evaluated on the way in; calls inside
		// them belong to this arm's path.
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
		b.fallthrus = b.fallthrus[:len(b.fallthrus)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}
