package query

import (
	"strings"
	"testing"

	"hypermodel/internal/backend/memdb"
	"hypermodel/internal/hyper"
)

func setup(t *testing.T) (*memdb.DB, hyper.Layout) {
	t.Helper()
	db, err := memdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return db, lay
}

// brute evaluates a predicate function over every node.
func brute(t *testing.T, db *memdb.DB, total int, pred func(hyper.Node, string) bool) []hyper.NodeID {
	t.Helper()
	var out []hyper.NodeID
	for id := hyper.NodeID(1); id <= hyper.NodeID(total); id++ {
		n, err := db.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		text := ""
		if n.Kind == hyper.KindText {
			if text, err = db.Text(id); err != nil {
				t.Fatal(err)
			}
		}
		if pred(n, text) {
			out = append(out, id)
		}
	}
	return out
}

func runQ(t *testing.T, db *memdb.DB, total int, q string) ([]hyper.NodeID, Plan) {
	t.Helper()
	res, plan, err := Run(db, 1, hyper.NodeID(total), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if res.Agg != nil {
		t.Fatalf("query %q: unexpected aggregate result", q)
	}
	return res.IDs, plan
}

func runAgg(t *testing.T, db *memdb.DB, total int, q string) (*AggValue, Plan) {
	t.Helper()
	res, plan, err := Run(db, 1, hyper.NodeID(total), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if res.Agg == nil {
		t.Fatalf("query %q: expected an aggregate result", q)
	}
	return res.Agg, plan
}

func sameIDs(a, b []hyper.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectAll(t *testing.T) {
	db, lay := setup(t)
	ids, plan := runQ(t, db, lay.Total(), "select")
	if len(ids) != lay.Total() {
		t.Fatalf("select returned %d, want %d", len(ids), lay.Total())
	}
	if plan.Access != FullScan {
		t.Fatalf("plan = %s", plan)
	}
}

func TestHundredRangeUsesIndex(t *testing.T) {
	db, lay := setup(t)
	ids, plan := runQ(t, db, lay.Total(), "select where hundred between 10 and 19")
	if plan.Access != IndexHundred || plan.Lo != 10 || plan.Hi != 19 {
		t.Fatalf("plan = %s", plan)
	}
	want := brute(t, db, lay.Total(), func(n hyper.Node, _ string) bool {
		return n.Hundred >= 10 && n.Hundred <= 19
	})
	if !sameIDs(ids, want) {
		t.Fatalf("got %d ids, want %d", len(ids), len(want))
	}
}

func TestComparisonOperators(t *testing.T) {
	db, lay := setup(t)
	cases := []struct {
		q    string
		pred func(hyper.Node, string) bool
	}{
		{"select where ten = 3", func(n hyper.Node, _ string) bool { return n.Ten == 3 }},
		{"select where ten != 3", func(n hyper.Node, _ string) bool { return n.Ten != 3 }},
		{"select where thousand < 100", func(n hyper.Node, _ string) bool { return n.Thousand < 100 }},
		{"select where thousand >= 900", func(n hyper.Node, _ string) bool { return n.Thousand >= 900 }},
		{"select where id <= 6", func(n hyper.Node, _ string) bool { return n.ID <= 6 }},
		{"select where million > 500000", func(n hyper.Node, _ string) bool { return n.Million > 500000 }},
	}
	for _, c := range cases {
		ids, _ := runQ(t, db, lay.Total(), c.q)
		want := brute(t, db, lay.Total(), c.pred)
		if !sameIDs(ids, want) {
			t.Fatalf("%q: got %d, want %d", c.q, len(ids), len(want))
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	db, lay := setup(t)
	q := "select where (ten = 1 or ten = 2) and not hundred < 50"
	ids, _ := runQ(t, db, lay.Total(), q)
	want := brute(t, db, lay.Total(), func(n hyper.Node, _ string) bool {
		return (n.Ten == 1 || n.Ten == 2) && !(n.Hundred < 50)
	})
	if !sameIDs(ids, want) {
		t.Fatalf("%q: got %d, want %d", q, len(ids), len(want))
	}
}

func TestKindAndContains(t *testing.T) {
	db, lay := setup(t)
	ids, _ := runQ(t, db, lay.Total(), `select where kind = text and text contains "version1"`)
	want := brute(t, db, lay.Total(), func(n hyper.Node, text string) bool {
		return n.Kind == hyper.KindText && strings.Contains(text, "version1")
	})
	if !sameIDs(ids, want) {
		t.Fatalf("got %d, want %d (every text node contains version1)", len(ids), len(want))
	}
	if len(ids) == 0 {
		t.Fatal("no text nodes matched")
	}
	ids2, _ := runQ(t, db, lay.Total(), "select where kind != form")
	want2 := brute(t, db, lay.Total(), func(n hyper.Node, _ string) bool { return n.Kind != hyper.KindForm })
	if !sameIDs(ids2, want2) {
		t.Fatal("kind != form mismatch")
	}
}

func TestLimit(t *testing.T) {
	db, lay := setup(t)
	ids, _ := runQ(t, db, lay.Total(), "select where ten >= 0 limit 7")
	if len(ids) != 7 {
		t.Fatalf("limit returned %d", len(ids))
	}
}

func TestPlannerPrefersTighterIndex(t *testing.T) {
	// A 1%-selectivity million range must beat a 50% hundred range.
	q, err := Parse("select where hundred >= 50 and million between 0 and 9999")
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(q)
	if plan.Access != IndexMillion || plan.Lo != 0 || plan.Hi != 9999 {
		t.Fatalf("plan = %s", plan)
	}
	// And the reverse.
	q2, err := Parse("select where hundred = 7 and million >= 0")
	if err != nil {
		t.Fatal(err)
	}
	plan2 := Compile(q2)
	if plan2.Access != IndexHundred || plan2.Lo != 7 || plan2.Hi != 7 {
		t.Fatalf("plan = %s", plan2)
	}
}

func TestPlannerIgnoresDisjunctiveBounds(t *testing.T) {
	q, err := Parse("select where hundred = 7 or ten = 1")
	if err != nil {
		t.Fatal(err)
	}
	if plan := Compile(q); plan.Access != FullScan {
		t.Fatalf("OR predicate must not use an index: %s", plan)
	}
	qn, err := Parse("select where not hundred = 7")
	if err != nil {
		t.Fatal(err)
	}
	if plan := Compile(qn); plan.Access != FullScan {
		t.Fatalf("NOT predicate must not use an index: %s", plan)
	}
}

func TestProvablyEmptyRange(t *testing.T) {
	db, lay := setup(t)
	ids, plan := runQ(t, db, lay.Total(), "select where hundred > 50 and hundred < 40")
	if len(ids) != 0 {
		t.Fatalf("contradictory range returned %d ids", len(ids))
	}
	if plan.Access == FullScan {
		t.Fatalf("contradiction not detected by planner: %s", plan)
	}
}

func TestIndexAndResidualAgree(t *testing.T) {
	db, lay := setup(t)
	q := "select where hundred between 20 and 39 and kind = text"
	ids, plan := runQ(t, db, lay.Total(), q)
	if plan.Access != IndexHundred {
		t.Fatalf("plan = %s", plan)
	}
	want := brute(t, db, lay.Total(), func(n hyper.Node, _ string) bool {
		return n.Hundred >= 20 && n.Hundred <= 39 && n.Kind == hyper.KindText
	})
	if !sameIDs(ids, want) {
		t.Fatalf("got %d, want %d", len(ids), len(want))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"delete where ten = 1",
		"select where",
		"select where ten",
		"select where ten = ",
		"select where bogus = 1",
		"select where kind = spaceship",
		"select where kind < node",
		"select where ten between 5 and 1",
		"select where text contains version1",
		"select limit 0",
		"select where ten = 1 garbage",
		`select where text contains "unterminated`,
		"select where ten ! 1",
		"select where (ten = 1",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("parse accepted %q", q)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q, err := Parse(`select where (ten = 1 or kind = form) and text contains "x" limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse of %q: %v", s, err)
	}
	if q2.String() != s {
		t.Fatalf("unstable round trip: %q vs %q", s, q2.String())
	}
}

func TestUniverseBounds(t *testing.T) {
	// Nodes outside [first, last] must not leak into results even via
	// index paths (a second structure may share the database).
	db, lay := setup(t)
	// Add an out-of-universe node with an extreme attribute.
	extra := hyper.Node{ID: hyper.NodeID(lay.Total() + 500), Hundred: 42}
	if err := db.CreateNode(extra, 0); err != nil {
		t.Fatal(err)
	}
	ids, _ := runQ(t, db, lay.Total(), "select where hundred = 42")
	for _, id := range ids {
		if id == extra.ID {
			t.Fatal("query leaked a node outside the test structure")
		}
	}
}
