package query

import (
	"fmt"
	"sort"

	"hypermodel/internal/hyper"
)

// AccessPath selects how candidate nodes are produced.
type AccessPath int

// Access paths.
const (
	FullScan AccessPath = iota
	IndexHundred
	IndexMillion
)

func (a AccessPath) String() string {
	switch a {
	case IndexHundred:
		return "index scan (hundred)"
	case IndexMillion:
		return "index scan (million)"
	default:
		return "sequential scan"
	}
}

// Plan is a compiled query: an access path plus the full predicate as
// a residual filter.
type Plan struct {
	Access AccessPath
	Lo, Hi int32 // index bounds, inclusive (index paths only)
	Query  Query
}

func (p Plan) String() string {
	s := p.Access.String()
	if p.Access != FullScan {
		s += fmt.Sprintf(" [%d,%d]", p.Lo, p.Hi)
	}
	if p.Query.Where != nil {
		s += fmt.Sprintf(", filter: %s", p.Query.Where)
	}
	if p.Query.Limit > 0 {
		s += fmt.Sprintf(", limit %d", p.Query.Limit)
	}
	return s
}

// bounds accumulates [lo, hi] constraints for one field.
type bounds struct {
	lo, hi int64
	any    bool
}

func (b *bounds) narrowLo(v int64) {
	if !b.any || v > b.lo {
		b.lo = v
	}
	b.any = true
}

func (b *bounds) narrowHi(v int64) {
	if !b.any || v < b.hi {
		b.hi = v
	}
	b.any = true
}

// collectBounds walks the AND-spine of the predicate, gathering range
// constraints on indexable fields. OR and NOT nodes stop the walk —
// their constraints are not conjunctive.
func collectBounds(e Expr, h, m *bounds) {
	switch x := e.(type) {
	case andExpr:
		collectBounds(x.l, h, m)
		collectBounds(x.r, h, m)
	case cmpExpr:
		var b *bounds
		switch x.field {
		case FieldHundred:
			b = h
		case FieldMillion:
			b = m
		default:
			return
		}
		switch x.op {
		case "=":
			b.narrowLo(x.val)
			b.narrowHi(x.val)
		case "<":
			b.narrowHi(x.val - 1)
		case "<=":
			b.narrowHi(x.val)
		case ">":
			b.narrowLo(x.val + 1)
		case ">=":
			b.narrowLo(x.val)
		}
	case betweenExpr:
		switch x.field {
		case FieldHundred:
			h.narrowLo(x.lo)
			h.narrowHi(x.hi)
		case FieldMillion:
			m.narrowLo(x.lo)
			m.narrowHi(x.hi)
		}
	}
}

// clamp materializes bounds against a field's domain, returning
// inclusive bounds and the fraction of the domain covered (the
// planner's selectivity estimate).
func clamp(b bounds, domain int64) (lo, hi int64, frac float64, usable bool) {
	if !b.any {
		return 0, 0, 1, false
	}
	lo, hi = b.lo, b.hi
	if lo < 0 {
		lo = 0
	}
	if hi > domain-1 {
		hi = domain - 1
	}
	if lo > hi {
		return lo, hi, 0, true // provably empty
	}
	return lo, hi, float64(hi-lo+1) / float64(domain), true
}

// Compile builds an execution plan: the tighter usable index range
// wins; with no conjunctive range on hundred or million the plan falls
// back to a sequential scan.
func Compile(q Query) Plan {
	p := Plan{Access: FullScan, Query: q}
	if q.Where == nil {
		return p
	}
	var h, m bounds
	// Initialize to full domains so narrowing works from both ends.
	h.lo, h.hi = 0, hyper.HundredRange-1
	m.lo, m.hi = 0, hyper.MillionRange-1
	collectBounds(q.Where, &h, &m)

	hLo, hHi, hFrac, hOK := clamp(h, hyper.HundredRange)
	mLo, mHi, mFrac, mOK := clamp(m, hyper.MillionRange)
	switch {
	case hOK && (!mOK || hFrac <= mFrac):
		p.Access, p.Lo, p.Hi = IndexHundred, int32(hLo), int32(hHi)
	case mOK:
		p.Access, p.Lo, p.Hi = IndexMillion, int32(mLo), int32(mHi)
	}
	return p
}

// AggValue is the outcome of an aggregate query.
type AggValue struct {
	Agg   Aggregate
	Field Field
	Count int
	Sum   int64
	Min   int64
	Max   int64
}

// Value renders the aggregate's principal number.
func (a AggValue) Value() float64 {
	switch a.Agg {
	case AggCount:
		return float64(a.Count)
	case AggSum:
		return float64(a.Sum)
	case AggMin:
		return float64(a.Min)
	case AggMax:
		return float64(a.Max)
	case AggAvg:
		if a.Count == 0 {
			return 0
		}
		return float64(a.Sum) / float64(a.Count)
	default:
		return 0
	}
}

func (a AggValue) String() string {
	if a.Count == 0 && a.Agg != AggCount {
		return fmt.Sprintf("%s(%s) over empty set", a.Agg, a.Field)
	}
	switch a.Agg {
	case AggCount:
		return fmt.Sprintf("count = %d", a.Count)
	case AggAvg:
		return fmt.Sprintf("avg(%s) = %.3f over %d nodes", a.Field, a.Value(), a.Count)
	default:
		return fmt.Sprintf("%s(%s) = %.0f over %d nodes", a.Agg, a.Field, a.Value(), a.Count)
	}
}

// Result is a query outcome: a node set, or an aggregate.
type Result struct {
	IDs []hyper.NodeID // node queries (Agg == AggNone)
	Agg *AggValue      // aggregate queries
}

// Run parses, plans and executes a query against the test structure
// whose uniqueIds span [first, last]. Node results come back in
// ascending uniqueId order unless the query orders by a field.
func Run(b hyper.Backend, first, last hyper.NodeID, input string) (Result, Plan, error) {
	q, err := Parse(input)
	if err != nil {
		return Result{}, Plan{}, err
	}
	plan := Compile(q)
	res, err := Execute(b, first, last, plan)
	return res, plan, err
}

// Execute runs a compiled plan.
func Execute(b hyper.Backend, first, last hyper.NodeID, plan Plan) (Result, error) {
	q := plan.Query
	var candidates []hyper.NodeID
	switch plan.Access {
	case IndexHundred:
		if plan.Lo > plan.Hi {
			return emptyResult(q), nil
		}
		ids, err := b.RangeHundred(plan.Lo, plan.Hi)
		if err != nil {
			return Result{}, err
		}
		candidates = ids
	case IndexMillion:
		if plan.Lo > plan.Hi {
			return emptyResult(q), nil
		}
		ids, err := b.RangeMillion(plan.Lo, plan.Hi)
		if err != nil {
			return Result{}, err
		}
		candidates = ids
	default:
		err := b.ScanTen(first, last, func(id hyper.NodeID, _ int32) bool {
			candidates = append(candidates, id)
			return true
		})
		if err != nil {
			return Result{}, err
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	// Early exit on limit is only sound for plain unordered node
	// queries.
	earlyLimit := q.Limit > 0 && q.Agg == AggNone && !q.Ordered

	var matched []hyper.Node
	for _, id := range candidates {
		if id < first || id > last {
			continue
		}
		n, err := b.Node(id)
		if err != nil {
			return Result{}, err
		}
		if q.Where != nil {
			ctx := &evalCtx{b: b, node: n}
			ok, err := q.Where.eval(ctx)
			if err != nil {
				return Result{}, err
			}
			if !ok {
				continue
			}
		}
		matched = append(matched, n)
		if earlyLimit && len(matched) >= q.Limit {
			break
		}
	}

	if q.Agg != AggNone {
		agg := &AggValue{Agg: q.Agg, Field: q.AggField, Count: len(matched)}
		for i, n := range matched {
			v := q.AggField.valueOf(n)
			agg.Sum += v
			if i == 0 || v < agg.Min {
				agg.Min = v
			}
			if i == 0 || v > agg.Max {
				agg.Max = v
			}
		}
		return Result{Agg: agg}, nil
	}

	if q.Ordered {
		sort.SliceStable(matched, func(i, j int) bool {
			vi, vj := q.OrderBy.valueOf(matched[i]), q.OrderBy.valueOf(matched[j])
			if q.Desc {
				return vi > vj
			}
			return vi < vj
		})
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	ids := make([]hyper.NodeID, len(matched))
	for i, n := range matched {
		ids[i] = n.ID
	}
	return Result{IDs: ids}, nil
}

func emptyResult(q Query) Result {
	if q.Agg != AggNone {
		return Result{Agg: &AggValue{Agg: q.Agg, Field: q.AggField}}
	}
	return Result{}
}
