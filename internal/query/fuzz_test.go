package query

import "testing"

// FuzzParse: arbitrary query text must parse or error, never panic,
// and whatever parses must round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select",
		"select where hundred between 10 and 19 limit 5",
		`select where kind = text and text contains "version1"`,
		"select count where ten = 1",
		"select avg million order by ten desc",
		"select where (ten = 1 or ten = 2) and not hundred < 50",
		"select where ten !! 1",
		`select where text contains "\"escaped\""`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		s := q.String()
		q2, err := Parse(s)
		if err != nil {
			t.Fatalf("String() of accepted query does not reparse: %q -> %q: %v", input, s, err)
		}
		if q2.String() != s {
			t.Fatalf("String() unstable: %q -> %q", s, q2.String())
		}
		// Planning must never panic either.
		_ = Compile(q)
	})
}
