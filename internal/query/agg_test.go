package query

import (
	"math"
	"testing"

	"hypermodel/internal/hyper"
)

func TestCount(t *testing.T) {
	db, lay := setup(t)
	agg, plan := runAgg(t, db, lay.Total(), "select count")
	if agg.Count != lay.Total() {
		t.Fatalf("count = %d, want %d", agg.Count, lay.Total())
	}
	if plan.Access != FullScan {
		t.Fatalf("plan = %s", plan)
	}
	agg2, plan2 := runAgg(t, db, lay.Total(), "select count where hundred between 10 and 19")
	want := brute(t, db, lay.Total(), func(n hyper.Node, _ string) bool {
		return n.Hundred >= 10 && n.Hundred <= 19
	})
	if agg2.Count != len(want) {
		t.Fatalf("filtered count = %d, want %d", agg2.Count, len(want))
	}
	if plan2.Access != IndexHundred {
		t.Fatalf("filtered count plan = %s", plan2)
	}
}

func TestSumMinMaxAvg(t *testing.T) {
	db, lay := setup(t)
	var sum, minV, maxV int64
	n := 0
	for id := hyper.NodeID(1); id <= hyper.NodeID(lay.Total()); id++ {
		node, err := db.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		v := int64(node.Thousand)
		if n == 0 || v < minV {
			minV = v
		}
		if n == 0 || v > maxV {
			maxV = v
		}
		sum += v
		n++
	}
	agg, _ := runAgg(t, db, lay.Total(), "select sum thousand")
	if agg.Sum != sum {
		t.Fatalf("sum = %d, want %d", agg.Sum, sum)
	}
	agg, _ = runAgg(t, db, lay.Total(), "select min thousand")
	if agg.Min != minV || agg.Value() != float64(minV) {
		t.Fatalf("min = %d, want %d", agg.Min, minV)
	}
	agg, _ = runAgg(t, db, lay.Total(), "select max thousand")
	if agg.Max != maxV {
		t.Fatalf("max = %d, want %d", agg.Max, maxV)
	}
	agg, _ = runAgg(t, db, lay.Total(), "select avg thousand")
	if math.Abs(agg.Value()-float64(sum)/float64(n)) > 1e-9 {
		t.Fatalf("avg = %v, want %v", agg.Value(), float64(sum)/float64(n))
	}
}

func TestAggregateOverEmptySet(t *testing.T) {
	db, lay := setup(t)
	agg, _ := runAgg(t, db, lay.Total(), "select count where hundred > 40 and hundred < 40")
	if agg.Count != 0 {
		t.Fatalf("count over empty set = %d", agg.Count)
	}
	agg, _ = runAgg(t, db, lay.Total(), "select avg ten where hundred > 40 and hundred < 40")
	if agg.Value() != 0 || agg.String() == "" {
		t.Fatalf("avg over empty set = %v", agg.Value())
	}
}

func TestOrderBy(t *testing.T) {
	db, lay := setup(t)
	ids, _ := runQ(t, db, lay.Total(), "select where ten = 3 order by thousand")
	if len(ids) < 2 {
		t.Skip("too few matches to check ordering")
	}
	var prev int32 = -1
	for _, id := range ids {
		n, err := db.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Thousand < prev {
			t.Fatalf("order by thousand violated: %d after %d", n.Thousand, prev)
		}
		prev = n.Thousand
	}
	// Descending.
	ids, _ = runQ(t, db, lay.Total(), "select where ten = 3 order by thousand desc")
	prev = math.MaxInt32
	for _, id := range ids {
		n, err := db.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Thousand > prev {
			t.Fatalf("desc order violated: %d after %d", n.Thousand, prev)
		}
		prev = n.Thousand
	}
}

func TestOrderByWithLimitIsTopK(t *testing.T) {
	db, lay := setup(t)
	// limit after ordering must give the k smallest, not the first k
	// in id order.
	ids, _ := runQ(t, db, lay.Total(), "select order by million limit 3")
	if len(ids) != 3 {
		t.Fatalf("got %d ids", len(ids))
	}
	got0, err := db.Node(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force global minimum of million.
	minV := int32(math.MaxInt32)
	for id := hyper.NodeID(1); id <= hyper.NodeID(lay.Total()); id++ {
		n, err := db.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Million < minV {
			minV = n.Million
		}
	}
	if got0.Million != minV {
		t.Fatalf("order by million limit 3 starts at %d, global min is %d", got0.Million, minV)
	}
}

func TestAggregateParseErrors(t *testing.T) {
	bad := []string{
		"select sum",                       // missing field
		"select sum bogus",                 // unknown field
		"select count order by ten",        // order by with aggregate
		"select avg ten order by thousand", // same
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("parse accepted %q", q)
		}
	}
}

func TestAggregateStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"select count where ten = 1",
		"select sum hundred where kind = text limit 4",
		"select where ten = 1 order by million desc limit 2",
	} {
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		q2, err := Parse(q.String())
		if err != nil || q2.String() != q.String() {
			t.Fatalf("round trip of %q → %q failed (%v)", s, q.String(), err)
		}
	}
}
