// Package query implements requirement R12: an ad-hoc query language
// over the HyperModel schema, with a planner that uses the hundred and
// million secondary indexes when a predicate permits and falls back to
// a sequential scan otherwise.
//
// Grammar:
//
//	query      = "select" [ aggregate ] [ "where" expr ]
//	             [ "order" "by" field [ "desc" ] ] [ "limit" number ]
//	aggregate  = "count" | ("sum" | "min" | "max" | "avg") field
//	expr       = andExpr { "or" andExpr }
//	andExpr    = unary { "and" unary }
//	unary      = "not" unary | "(" expr ")" | comparison
//	comparison = field cmpOp number
//	           | field "between" number "and" number
//	           | "kind" ( "=" | "!=" ) kindName
//	           | "text" "contains" string
//	field      = "ten" | "hundred" | "thousand" | "million" | "id"
//	cmpOp      = "=" | "!=" | "<" | "<=" | ">" | ">="
//	kindName   = "node" | "text" | "form"
//
// Example: select where hundred between 10 and 19 and kind = text limit 5
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // = != < <= > >=
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Identifiers and keywords are
// lower-cased; strings use double quotes with backslash escapes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 >= len(input) || input[i+1] != '=' {
				return nil, fmt.Errorf("query: stray '!' at %d", i)
			}
			toks = append(toks, token{tokOp, "!=", i})
			i += 2
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' && j+1 < len(input) {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[i:j]), i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
