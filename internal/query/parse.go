package query

import (
	"fmt"
	"strconv"

	"hypermodel/internal/hyper"
)

type parser struct {
	toks []token
	pos  int
}

// Parse compiles a query string into a Query.
func Parse(input string) (Query, error) {
	toks, err := lex(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return Query{}, err
	}
	if !p.at(tokEOF, "") {
		return Query{}, fmt.Errorf("query: unexpected %s after query", p.peek())
	}
	return q, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text, what string) (token, error) {
	if !p.at(kind, text) {
		return token{}, fmt.Errorf("query: expected %s, got %s", what, p.peek())
	}
	return p.next(), nil
}

var aggregates = map[string]Aggregate{
	"count": AggCount,
	"sum":   AggSum,
	"min":   AggMin,
	"max":   AggMax,
	"avg":   AggAvg,
}

func (p *parser) query() (Query, error) {
	if _, err := p.expect(tokIdent, "select", `"select"`); err != nil {
		return Query{}, err
	}
	var q Query
	if t := p.peek(); t.kind == tokIdent {
		if agg, ok := aggregates[t.text]; ok {
			p.next()
			q.Agg = agg
			if agg != AggCount {
				ft, err := p.expect(tokIdent, "", "a field name for the aggregate")
				if err != nil {
					return Query{}, err
				}
				field, ok := fields[ft.text]
				if !ok {
					return Query{}, fmt.Errorf("query: unknown field %q", ft.text)
				}
				q.AggField = field
			}
		}
	}
	if p.accept(tokIdent, "where") {
		e, err := p.orExpr()
		if err != nil {
			return Query{}, err
		}
		q.Where = e
	}
	if p.accept(tokIdent, "order") {
		if _, err := p.expect(tokIdent, "by", `"by"`); err != nil {
			return Query{}, err
		}
		ft, err := p.expect(tokIdent, "", "a field name to order by")
		if err != nil {
			return Query{}, err
		}
		field, ok := fields[ft.text]
		if !ok {
			return Query{}, fmt.Errorf("query: unknown field %q", ft.text)
		}
		q.OrderBy = field
		q.Ordered = true
		q.Desc = p.accept(tokIdent, "desc")
		if q.Agg != AggNone {
			return Query{}, fmt.Errorf("query: order by is meaningless with %s", q.Agg)
		}
	}
	if p.accept(tokIdent, "limit") {
		t, err := p.expect(tokNumber, "", "limit count")
		if err != nil {
			return Query{}, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return Query{}, fmt.Errorf("query: bad limit %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.accept(tokIdent, "not") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return notExpr{x}, nil
	}
	if p.accept(tokLParen, "") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "", `")"`); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.comparison()
}

var fields = map[string]Field{
	"ten":      FieldTen,
	"hundred":  FieldHundred,
	"thousand": FieldThousand,
	"million":  FieldMillion,
	"id":       FieldID,
	"uniqueid": FieldID,
}

var kinds = map[string]hyper.Kind{
	"node":     hyper.KindInternal,
	"internal": hyper.KindInternal,
	"text":     hyper.KindText,
	"textnode": hyper.KindText,
	"form":     hyper.KindForm,
	"formnode": hyper.KindForm,
}

func (p *parser) comparison() (Expr, error) {
	t, err := p.expect(tokIdent, "", "a field name")
	if err != nil {
		return nil, err
	}
	switch t.text {
	case "kind":
		op, err := p.expect(tokOp, "", `"=" or "!="`)
		if err != nil {
			return nil, err
		}
		if op.text != "=" && op.text != "!=" {
			return nil, fmt.Errorf("query: kind supports = and != only, got %q", op.text)
		}
		kt, err := p.expect(tokIdent, "", "a kind name (node, text, form)")
		if err != nil {
			return nil, err
		}
		kind, ok := kinds[kt.text]
		if !ok {
			return nil, fmt.Errorf("query: unknown kind %q", kt.text)
		}
		return kindExpr{kind: kind, neg: op.text == "!="}, nil
	case "text":
		if _, err := p.expect(tokIdent, "contains", `"contains"`); err != nil {
			return nil, err
		}
		st, err := p.expect(tokString, "", "a quoted string")
		if err != nil {
			return nil, err
		}
		return containsExpr{needle: st.text}, nil
	}
	field, ok := fields[t.text]
	if !ok {
		return nil, fmt.Errorf("query: unknown field %q", t.text)
	}
	if p.accept(tokIdent, "between") {
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "and", `"and"`); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, fmt.Errorf("query: between bounds reversed (%d > %d)", lo, hi)
		}
		return betweenExpr{field: field, lo: lo, hi: hi}, nil
	}
	op, err := p.expect(tokOp, "", "a comparison operator")
	if err != nil {
		return nil, err
	}
	v, err := p.number()
	if err != nil {
		return nil, err
	}
	return cmpExpr{field: field, op: op.text, val: v}, nil
}

func (p *parser) number() (int64, error) {
	t, err := p.expect(tokNumber, "", "a number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %q", t.text)
	}
	return v, nil
}
