package query

import (
	"fmt"
	"strings"

	"hypermodel/internal/hyper"
)

// Field names an attribute usable in comparisons.
type Field int

// Queryable fields.
const (
	FieldTen Field = iota
	FieldHundred
	FieldThousand
	FieldMillion
	FieldID
)

func (f Field) String() string {
	switch f {
	case FieldTen:
		return "ten"
	case FieldHundred:
		return "hundred"
	case FieldThousand:
		return "thousand"
	case FieldMillion:
		return "million"
	case FieldID:
		return "id"
	default:
		return fmt.Sprintf("field(%d)", int(f))
	}
}

func (f Field) valueOf(n hyper.Node) int64 {
	switch f {
	case FieldTen:
		return int64(n.Ten)
	case FieldHundred:
		return int64(n.Hundred)
	case FieldThousand:
		return int64(n.Thousand)
	case FieldMillion:
		return int64(n.Million)
	case FieldID:
		return int64(n.ID)
	default:
		return 0
	}
}

// Expr is a boolean predicate over a node.
type Expr interface {
	fmt.Stringer
	// eval decides the predicate; text access is lazy through ctx.
	eval(ctx *evalCtx) (bool, error)
}

type evalCtx struct {
	b    hyper.Backend
	node hyper.Node
	// text memoizes the node's content for "text contains".
	text       string
	textLoaded bool
}

func (c *evalCtx) loadText() (string, error) {
	if c.textLoaded {
		return c.text, nil
	}
	c.textLoaded = true
	if c.node.Kind != hyper.KindText {
		c.text = ""
		return "", nil
	}
	t, err := c.b.Text(c.node.ID)
	if err != nil {
		return "", err
	}
	c.text = t
	return t, nil
}

// andExpr / orExpr / notExpr compose predicates.
type andExpr struct{ l, r Expr }

func (e andExpr) String() string { return fmt.Sprintf("(%s and %s)", e.l, e.r) }
func (e andExpr) eval(ctx *evalCtx) (bool, error) {
	ok, err := e.l.eval(ctx)
	if err != nil || !ok {
		return false, err
	}
	return e.r.eval(ctx)
}

type orExpr struct{ l, r Expr }

func (e orExpr) String() string { return fmt.Sprintf("(%s or %s)", e.l, e.r) }
func (e orExpr) eval(ctx *evalCtx) (bool, error) {
	ok, err := e.l.eval(ctx)
	if err != nil || ok {
		return ok, err
	}
	return e.r.eval(ctx)
}

type notExpr struct{ x Expr }

func (e notExpr) String() string { return fmt.Sprintf("(not %s)", e.x) }
func (e notExpr) eval(ctx *evalCtx) (bool, error) {
	ok, err := e.x.eval(ctx)
	return !ok, err
}

// cmpExpr compares a field with a constant.
type cmpExpr struct {
	field Field
	op    string // = != < <= > >=
	val   int64
}

func (e cmpExpr) String() string { return fmt.Sprintf("%s %s %d", e.field, e.op, e.val) }
func (e cmpExpr) eval(ctx *evalCtx) (bool, error) {
	v := e.field.valueOf(ctx.node)
	switch e.op {
	case "=":
		return v == e.val, nil
	case "!=":
		return v != e.val, nil
	case "<":
		return v < e.val, nil
	case "<=":
		return v <= e.val, nil
	case ">":
		return v > e.val, nil
	case ">=":
		return v >= e.val, nil
	default:
		return false, fmt.Errorf("query: unknown operator %q", e.op)
	}
}

// betweenExpr is an inclusive range predicate.
type betweenExpr struct {
	field  Field
	lo, hi int64
}

func (e betweenExpr) String() string {
	return fmt.Sprintf("%s between %d and %d", e.field, e.lo, e.hi)
}
func (e betweenExpr) eval(ctx *evalCtx) (bool, error) {
	v := e.field.valueOf(ctx.node)
	return v >= e.lo && v <= e.hi, nil
}

// kindExpr tests the node's class.
type kindExpr struct {
	kind hyper.Kind
	neg  bool
}

func (e kindExpr) String() string {
	op := "="
	if e.neg {
		op = "!="
	}
	return fmt.Sprintf("kind %s %s", op, strings.ToLower(e.kind.String()))
}
func (e kindExpr) eval(ctx *evalCtx) (bool, error) {
	return (ctx.node.Kind == e.kind) != e.neg, nil
}

// containsExpr tests text content.
type containsExpr struct{ needle string }

// quoteQueryString renders s in the lexer's own quoting (backslash
// escapes only for '"' and '\'); fmt's %q would emit Go escape
// sequences like \x16 that the lexer reads as literal characters.
func quoteQueryString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '"' || c == '\\' {
			sb.WriteByte('\\')
			sb.WriteByte(c)
		} else {
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func (e containsExpr) String() string { return "text contains " + quoteQueryString(e.needle) }
func (e containsExpr) eval(ctx *evalCtx) (bool, error) {
	if ctx.node.Kind != hyper.KindText {
		return false, nil
	}
	text, err := ctx.loadText()
	if err != nil {
		return false, err
	}
	return strings.Contains(text, e.needle), nil
}

// Aggregate selects a reduction over the matching nodes instead of the
// node list itself.
type Aggregate int

// Aggregates.
const (
	AggNone Aggregate = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (a Aggregate) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return ""
	}
}

// Query is a parsed select statement.
type Query struct {
	Agg      Aggregate // AggNone = return the node set
	AggField Field     // operand of sum/min/max/avg
	Where    Expr      // nil = all nodes
	OrderBy  Field     // meaningful when Ordered
	Ordered  bool
	Desc     bool
	Limit    int // 0 = unlimited
}

func (q Query) String() string {
	var sb strings.Builder
	sb.WriteString("select")
	switch q.Agg {
	case AggNone:
	case AggCount:
		sb.WriteString(" count")
	default:
		fmt.Fprintf(&sb, " %s %s", q.Agg, q.AggField)
	}
	if q.Where != nil {
		fmt.Fprintf(&sb, " where %s", q.Where)
	}
	if q.Ordered {
		fmt.Fprintf(&sb, " order by %s", q.OrderBy)
		if q.Desc {
			sb.WriteString(" desc")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " limit %d", q.Limit)
	}
	return sb.String()
}
