package query

import (
	"path/filepath"
	"testing"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/hyper"
)

func benchDB(b *testing.B) (*oodb.DB, hyper.Layout) {
	b.Helper()
	db, err := oodb.Open(filepath.Join(b.TempDir(), "db"), oodb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return db, lay
}

// BenchmarkIndexedRange vs BenchmarkForcedScan quantify what the R12
// planner buys: the same 1%-selectivity predicate through the million
// index and through a sequential scan.
func BenchmarkIndexedRange(b *testing.B) {
	db, lay := benchDB(b)
	q, err := Parse("select where million between 100000 and 109999")
	if err != nil {
		b.Fatal(err)
	}
	plan := Compile(q)
	if plan.Access != IndexMillion {
		b.Fatalf("plan = %s", plan)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(db, 1, hyper.NodeID(lay.Total()), plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForcedScan(b *testing.B) {
	db, lay := benchDB(b)
	q, err := Parse("select where million between 100000 and 109999")
	if err != nil {
		b.Fatal(err)
	}
	plan := Compile(q)
	plan.Access = FullScan // planner override: pay the sequential scan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(db, 1, hyper.NodeID(lay.Total()), plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateCount(b *testing.B) {
	db, lay := benchDB(b)
	q, err := Parse("select count where hundred between 10 and 19")
	if err != nil {
		b.Fatal(err)
	}
	plan := Compile(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(db, 1, hyper.NodeID(lay.Total()), plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	const q = `select where (ten = 1 or kind = text) and text contains "version1" order by million desc limit 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
