package pager

import (
	"os"
	"testing"
)

// corrupt flips one byte at offset in the file at path.
func corrupt(t *testing.T, path string, offset int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], offset); err != nil {
		t.Fatal(err)
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
