package pager

import (
	"testing"

	"hypermodel/internal/storage/vfs"
)

// openMem returns a pager over a fresh in-memory FS, plus the FS for
// out-of-band damage injection.
func openMem(t *testing.T) (*Pager, *vfs.MemFS) {
	t.Helper()
	fs := vfs.NewMem()
	p, err := OpenFS(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, fs
}

// corrupt flips one byte at offset in the named in-memory file.
func corrupt(t *testing.T, fs *vfs.MemFS, name string, offset int64) {
	t.Helper()
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[offset] ^= 0xFF
	if err := fs.WriteFile(name, data); err != nil {
		t.Fatal(err)
	}
}
