package pager

import (
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/page"
)

func openTemp(t *testing.T) *Pager {
	t.Helper()
	p, err := Open(filepath.Join(t.TempDir(), "db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestExtendWriteRead(t *testing.T) {
	p := openTemp(t)
	if got := p.PageCount(); got != 0 {
		t.Fatalf("fresh file has %d pages", got)
	}
	id, err := p.Extend()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || p.PageCount() != 1 {
		t.Fatalf("extend: id=%d count=%d", id, p.PageCount())
	}
	img := page.New(page.TypeSlotted)
	copy(img.Payload(), "persisted")
	if err := p.Write(id, img); err != nil {
		t.Fatal(err)
	}
	var back page.Page
	if err := p.Read(id, &back); err != nil {
		t.Fatal(err)
	}
	if string(back.Payload()[:9]) != "persisted" {
		t.Fatal("read back wrong data")
	}
}

func TestWriteExtendsAtBoundary(t *testing.T) {
	p := openTemp(t)
	img := page.New(page.TypeSlotted)
	if err := p.Write(0, img); err != nil {
		t.Fatal(err)
	}
	if p.PageCount() != 1 {
		t.Fatalf("count = %d", p.PageCount())
	}
	// Writing past the boundary is an error.
	if err := p.Write(5, img); err == nil {
		t.Fatal("write far past EOF accepted")
	}
}

func TestReadBeyondEOF(t *testing.T) {
	p := openTemp(t)
	var img page.Page
	if err := p.Read(0, &img); err == nil {
		t.Fatal("read of empty file succeeded")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	img := page.New(page.TypeSlotted)
	if err := p.Write(0, img); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the payload on disk.
	corrupt(t, path, 100)
	p2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	var back page.Page
	if err := p2.Read(0, &back); err == nil {
		t.Fatal("corrupted page read succeeded")
	}
}

func TestOpenRejectsPartialPage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	writeFile(t, path, make([]byte, page.Size+100))
	if _, err := Open(path); err == nil {
		t.Fatal("open of misaligned file succeeded")
	}
}

func TestStatsCount(t *testing.T) {
	p := openTemp(t)
	img := page.New(page.TypeSlotted)
	for i := 0; i < 3; i++ {
		if err := p.Write(page.ID(i), img); err != nil {
			t.Fatal(err)
		}
	}
	var back page.Page
	for i := 0; i < 2; i++ {
		if err := p.Read(page.ID(i), &back); err != nil {
			t.Fatal(err)
		}
	}
	r, w := p.Stats()
	if r != 2 || w != 3 {
		t.Fatalf("stats = %d reads, %d writes", r, w)
	}
}
