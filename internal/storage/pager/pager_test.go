package pager

import (
	"errors"
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

func openTemp(t *testing.T) *Pager {
	t.Helper()
	p, err := Open(filepath.Join(t.TempDir(), "db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestExtendWriteRead runs against a real file: the osfs default path.
func TestExtendWriteRead(t *testing.T) {
	p := openTemp(t)
	if got := p.PageCount(); got != 0 {
		t.Fatalf("fresh file has %d pages", got)
	}
	id, err := p.Extend()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || p.PageCount() != 1 {
		t.Fatalf("extend: id=%d count=%d", id, p.PageCount())
	}
	img := page.New(page.TypeSlotted)
	copy(img.Payload(), "persisted")
	if err := p.Write(id, img); err != nil {
		t.Fatal(err)
	}
	var back page.Page
	if err := p.Read(id, &back); err != nil {
		t.Fatal(err)
	}
	if string(back.Payload()[:9]) != "persisted" {
		t.Fatal("read back wrong data")
	}
}

func TestWriteExtendsAtBoundary(t *testing.T) {
	p, _ := openMem(t)
	img := page.New(page.TypeSlotted)
	if err := p.Write(0, img); err != nil {
		t.Fatal(err)
	}
	if p.PageCount() != 1 {
		t.Fatalf("count = %d", p.PageCount())
	}
	// Writing past the boundary is an error.
	if err := p.Write(5, img); err == nil {
		t.Fatal("write far past EOF accepted")
	}
}

func TestReadBeyondEOF(t *testing.T) {
	p, _ := openMem(t)
	var img page.Page
	if err := p.Read(0, &img); err == nil {
		t.Fatal("read of empty file succeeded")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	fs := vfs.NewMem()
	p, err := OpenFS(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	img := page.New(page.TypeSlotted)
	if err := p.Write(0, img); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the payload on disk.
	corrupt(t, fs, "db", 100)
	p2, err := OpenFS(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	var back page.Page
	err = p2.Read(0, &back)
	if err == nil {
		t.Fatal("corrupted page read succeeded")
	}
	var ce *ErrCorruptPage
	if !errors.As(err, &ce) {
		t.Fatalf("corruption surfaced as %T (%v), want *ErrCorruptPage", err, err)
	}
	if ce.ID != 0 || ce.Detail == "" {
		t.Fatalf("taxonomy incomplete: %+v", ce)
	}
	// ReadNoVerify serves the raw damaged bytes for scrub-style
	// classification.
	if err := p2.ReadNoVerify(0, &back); err != nil {
		t.Fatalf("ReadNoVerify: %v", err)
	}
}

// TestOpenToleratesTornTail: a power cut can tear the final page
// write, leaving a non-page-multiple file. Open must cope — the
// partial page is ignored (recovery rewrites it from the WAL) and
// TornTail reports it.
func TestOpenToleratesTornTail(t *testing.T) {
	fs := vfs.NewMem()
	if err := fs.WriteFile("db", make([]byte, page.Size+100)); err != nil {
		t.Fatal(err)
	}
	p, err := OpenFS(fs, "db")
	if err != nil {
		t.Fatalf("open of torn file failed: %v", err)
	}
	defer p.Close()
	if p.PageCount() != 1 || !p.TornTail() {
		t.Fatalf("count=%d torn=%v, want 1 full page and a torn tail", p.PageCount(), p.TornTail())
	}
	whole, _ := openMem(t)
	if whole.TornTail() {
		t.Fatal("fresh aligned file reports a torn tail")
	}
}

func TestEnsurePages(t *testing.T) {
	p, _ := openMem(t)
	if err := p.EnsurePages(3); err != nil {
		t.Fatal(err)
	}
	if p.PageCount() != 3 {
		t.Fatalf("count = %d, want 3", p.PageCount())
	}
	// Shrinking is not EnsurePages' job: asking for fewer is a no-op.
	if err := p.EnsurePages(1); err != nil {
		t.Fatal(err)
	}
	if p.PageCount() != 3 {
		t.Fatalf("count shrank to %d", p.PageCount())
	}
	img := page.New(page.TypeSlotted)
	if err := p.Write(2, img); err != nil {
		t.Fatalf("write into ensured region: %v", err)
	}
}

func TestStatsCount(t *testing.T) {
	p, _ := openMem(t)
	img := page.New(page.TypeSlotted)
	for i := 0; i < 3; i++ {
		if err := p.Write(page.ID(i), img); err != nil {
			t.Fatal(err)
		}
	}
	var back page.Page
	for i := 0; i < 2; i++ {
		if err := p.Read(page.ID(i), &back); err != nil {
			t.Fatal(err)
		}
	}
	r, w := p.Stats()
	if r != 2 || w != 3 {
		t.Fatalf("stats = %d reads, %d writes", r, w)
	}
}
