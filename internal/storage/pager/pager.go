// Package pager performs page-granular file I/O for the database file.
//
// The pager is deliberately thin: it knows how to read, write and sync
// fixed-size pages by ID and how big the file is. Allocation policy,
// caching and logging live in the layers above (storage/store,
// storage/buffer, storage/wal).
package pager

import (
	"fmt"
	"os"
	"sync"

	"hypermodel/internal/storage/page"
)

// Pager reads and writes pages of a single database file.
type Pager struct {
	mu    sync.Mutex
	f     *os.File
	count uint64 // number of pages in the file
	reads uint64 // pages read from disk (statistics)
	wr    uint64 // pages written to disk (statistics)
}

// Open opens (or creates) the database file at path.
func Open(path string) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if st.Size()%page.Size != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s: size %d is not a multiple of the page size", path, st.Size())
	}
	return &Pager{f: f, count: uint64(st.Size()) / page.Size}, nil
}

// PageCount reports the number of pages currently in the file.
func (p *Pager) PageCount() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Extend grows the file by one zeroed page and returns its ID.
func (p *Pager) Extend() (page.ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := page.ID(p.count)
	if err := p.f.Truncate(int64(p.count+1) * page.Size); err != nil {
		return page.Invalid, fmt.Errorf("pager: extend: %w", err)
	}
	p.count++
	return id, nil
}

// Read fills dst with the stored image of page id and validates its
// checksum.
func (p *Pager) Read(id page.ID, dst *page.Page) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if uint64(id) >= p.count {
		return fmt.Errorf("pager: read page %d: beyond end of file (%d pages)", id, p.count)
	}
	if _, err := p.f.ReadAt(dst.Bytes(), int64(id)*page.Size); err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.reads++
	if err := dst.Validate(); err != nil {
		return fmt.Errorf("pager: page %d: %w", id, err)
	}
	return nil
}

// Write stores src as the image of page id, updating its checksum. The
// file is extended if id is exactly one past the current end.
func (p *Pager) Write(id page.ID, src *page.Page) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if uint64(id) > p.count {
		return fmt.Errorf("pager: write page %d: beyond end of file (%d pages)", id, p.count)
	}
	src.UpdateChecksum()
	if _, err := p.f.WriteAt(src.Bytes(), int64(id)*page.Size); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	if uint64(id) == p.count {
		p.count++
	}
	p.wr++
	return nil
}

// Sync flushes the file to stable storage.
func (p *Pager) Sync() error {
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("pager: sync: %w", err)
	}
	return nil
}

// Stats reports cumulative disk reads and writes, in pages.
func (p *Pager) Stats() (reads, writes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reads, p.wr
}

// Close syncs and closes the file.
func (p *Pager) Close() error {
	if err := p.f.Sync(); err != nil {
		p.f.Close()
		return fmt.Errorf("pager: close: %w", err)
	}
	return p.f.Close()
}
