// Package pager performs page-granular file I/O for the database file.
//
// The pager is deliberately thin: it knows how to read, write and sync
// fixed-size pages by ID and how big the file is. Allocation policy,
// caching and logging live in the layers above (storage/store,
// storage/buffer, storage/wal).
//
// Reads take no lock: File.ReadAt is safe for concurrent use, so N
// readers issue N preads in parallel. The page count and the I/O
// counters are atomic; only Extend (file growth) serializes, and growth
// is a single-writer operation anyway. Keeping concurrent reads away
// from concurrent writes of the same page is the caller's job — the
// store's no-steal policy guarantees it (a page being written back is
// always resident, so readers hit the pool instead of the disk).
//
// All file I/O flows through a vfs.FS (vfs.OS by default), so tests
// can run the pager over deterministic in-memory files or a seeded
// power-cut injector.
package pager

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

// ErrCorruptPage reports a page whose stored image failed checksum or
// header validation — the typed taxonomy for at-rest corruption.
// Detection sites fill ID and Detail; the store stamps Seq with the
// committed sequence number current when the damage surfaced, and the
// remote tier carries the triple across the wire, so a client can
// tell exactly which page of which committed state was unreadable.
type ErrCorruptPage struct {
	// ID is the damaged page.
	ID page.ID
	// Seq is the committed store sequence at detection time (zero when
	// detected below the store, e.g. by a bare pager).
	Seq uint64
	// Detail says what failed: checksum mismatch, bad type byte, …
	Detail string
}

func (e *ErrCorruptPage) Error() string {
	if e.Seq != 0 {
		return fmt.Sprintf("pager: page %d corrupt (seq %d): %s", e.ID, e.Seq, e.Detail)
	}
	return fmt.Sprintf("pager: page %d corrupt: %s", e.ID, e.Detail)
}

// Pager reads and writes pages of a single database file.
type Pager struct {
	mu    sync.Mutex // serializes Extend and EnsurePages
	f     vfs.File
	count atomic.Uint64 // number of pages in the file
	reads atomic.Uint64 // pages read from disk (statistics)
	wr    atomic.Uint64 // pages written to disk (statistics)
	torn  bool          // the file ended mid-page at open (crash tail)
}

// Open opens (or creates) the database file at path on the real
// filesystem.
func Open(path string) (*Pager, error) {
	return OpenFS(vfs.OS(), path)
}

// OpenFS opens (or creates) the database file at path on fs. A file
// whose size is not a page multiple — the tail a power cut can leave
// when it tears the last write — is usable: the partial page is
// ignored (recovery rewrites it from the WAL) and TornTail reports it.
func OpenFS(fs vfs.FS, path string) (*Pager, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: size %s: %w", path, err)
	}
	p := &Pager{f: f, torn: size%page.Size != 0}
	p.count.Store(uint64(size) / page.Size)
	return p, nil
}

// PageCount reports the number of pages currently in the file.
func (p *Pager) PageCount() uint64 { return p.count.Load() }

// TornTail reports whether the file ended mid-page when it was opened
// — evidence of a torn final write that a crash left behind.
func (p *Pager) TornTail() bool { return p.torn }

// Extend grows the file by one zeroed page and returns its ID.
func (p *Pager) Extend() (page.ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.count.Load()
	if err := p.f.Truncate(int64(n+1) * page.Size); err != nil {
		return page.Invalid, fmt.Errorf("pager: extend: %w", err)
	}
	p.count.Store(n + 1)
	return page.ID(n), nil
}

// EnsurePages grows the file (zero-filled) until it holds at least n
// pages. Recovery uses it before replaying an image past the current
// end: a crash can lose unsynced file growth, leaving committed WAL
// images pointing beyond EOF.
func (p *Pager) EnsurePages(n uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.count.Load()
	if n <= cur {
		return nil
	}
	if err := p.f.Truncate(int64(n) * page.Size); err != nil {
		return fmt.Errorf("pager: ensure %d pages: %w", n, err)
	}
	p.count.Store(n)
	return nil
}

// Read fills dst with the stored image of page id and validates its
// checksum, failing with *ErrCorruptPage when the image is damaged.
// Safe for concurrent use.
func (p *Pager) Read(id page.ID, dst *page.Page) error {
	if err := p.ReadNoVerify(id, dst); err != nil {
		return err
	}
	if err := dst.Validate(); err != nil {
		return &ErrCorruptPage{ID: id, Detail: err.Error()}
	}
	return nil
}

// ReadNoVerify fills dst with the raw stored image of page id without
// validating it — the scrub path, which classifies damage itself. (A
// torn final partial page, see TornTail, lies past PageCount and is
// not readable; recovery rewrites it from the WAL.)
func (p *Pager) ReadNoVerify(id page.ID, dst *page.Page) error {
	if n := p.count.Load(); uint64(id) >= n {
		return fmt.Errorf("pager: read page %d: beyond end of file (%d pages)", id, n)
	}
	if _, err := p.f.ReadAt(dst.Bytes(), int64(id)*page.Size); err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.reads.Add(1)
	return nil
}

// Write stores src as the image of page id, updating its checksum. The
// file is extended if id is exactly one past the current end. Write is
// a single-writer operation: callers serialize it against Extend and
// against other Writes (the store's writer lock does).
func (p *Pager) Write(id page.ID, src *page.Page) error {
	n := p.count.Load()
	if uint64(id) > n {
		return fmt.Errorf("pager: write page %d: beyond end of file (%d pages)", id, n)
	}
	src.UpdateChecksum()
	if _, err := p.f.WriteAt(src.Bytes(), int64(id)*page.Size); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	if uint64(id) == n {
		p.count.Store(n + 1)
	}
	p.wr.Add(1)
	return nil
}

// Sync flushes the file to stable storage.
func (p *Pager) Sync() error {
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("pager: sync: %w", err)
	}
	return nil
}

// Stats reports cumulative disk reads and writes, in pages.
func (p *Pager) Stats() (reads, writes uint64) {
	return p.reads.Load(), p.wr.Load()
}

// Close syncs and closes the file.
func (p *Pager) Close() error {
	if err := p.f.Sync(); err != nil {
		p.f.Close()
		return fmt.Errorf("pager: close: %w", err)
	}
	return p.f.Close()
}
