// Package pager performs page-granular file I/O for the database file.
//
// The pager is deliberately thin: it knows how to read, write and sync
// fixed-size pages by ID and how big the file is. Allocation policy,
// caching and logging live in the layers above (storage/store,
// storage/buffer, storage/wal).
//
// Reads take no lock: os.File.ReadAt is safe for concurrent use, so N
// readers issue N preads in parallel. The page count and the I/O
// counters are atomic; only Extend (file growth) serializes, and growth
// is a single-writer operation anyway. Keeping concurrent reads away
// from concurrent writes of the same page is the caller's job — the
// store's no-steal policy guarantees it (a page being written back is
// always resident, so readers hit the pool instead of the disk).
package pager

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/page"
)

// Pager reads and writes pages of a single database file.
type Pager struct {
	mu    sync.Mutex // serializes Extend
	f     *os.File
	count atomic.Uint64 // number of pages in the file
	reads atomic.Uint64 // pages read from disk (statistics)
	wr    atomic.Uint64 // pages written to disk (statistics)
}

// Open opens (or creates) the database file at path.
func Open(path string) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if st.Size()%page.Size != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s: size %d is not a multiple of the page size", path, st.Size())
	}
	p := &Pager{f: f}
	p.count.Store(uint64(st.Size()) / page.Size)
	return p, nil
}

// PageCount reports the number of pages currently in the file.
func (p *Pager) PageCount() uint64 { return p.count.Load() }

// Extend grows the file by one zeroed page and returns its ID.
func (p *Pager) Extend() (page.ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.count.Load()
	if err := p.f.Truncate(int64(n+1) * page.Size); err != nil {
		return page.Invalid, fmt.Errorf("pager: extend: %w", err)
	}
	p.count.Store(n + 1)
	return page.ID(n), nil
}

// Read fills dst with the stored image of page id and validates its
// checksum. Safe for concurrent use.
func (p *Pager) Read(id page.ID, dst *page.Page) error {
	if n := p.count.Load(); uint64(id) >= n {
		return fmt.Errorf("pager: read page %d: beyond end of file (%d pages)", id, n)
	}
	if _, err := p.f.ReadAt(dst.Bytes(), int64(id)*page.Size); err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.reads.Add(1)
	if err := dst.Validate(); err != nil {
		return fmt.Errorf("pager: page %d: %w", id, err)
	}
	return nil
}

// Write stores src as the image of page id, updating its checksum. The
// file is extended if id is exactly one past the current end. Write is
// a single-writer operation: callers serialize it against Extend and
// against other Writes (the store's writer lock does).
func (p *Pager) Write(id page.ID, src *page.Page) error {
	n := p.count.Load()
	if uint64(id) > n {
		return fmt.Errorf("pager: write page %d: beyond end of file (%d pages)", id, n)
	}
	src.UpdateChecksum()
	if _, err := p.f.WriteAt(src.Bytes(), int64(id)*page.Size); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	if uint64(id) == n {
		p.count.Store(n + 1)
	}
	p.wr.Add(1)
	return nil
}

// Sync flushes the file to stable storage.
func (p *Pager) Sync() error {
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("pager: sync: %w", err)
	}
	return nil
}

// Stats reports cumulative disk reads and writes, in pages.
func (p *Pager) Stats() (reads, writes uint64) {
	return p.reads.Load(), p.wr.Load()
}

// Close syncs and closes the file.
func (p *Pager) Close() error {
	if err := p.f.Sync(); err != nil {
		p.f.Close()
		return fmt.Errorf("pager: close: %w", err)
	}
	return p.f.Close()
}
