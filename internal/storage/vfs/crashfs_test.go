package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestCrashBuffersUntilSync: unsynced writes are visible through the
// crash FS (the page cache) but not in the inner FS (the platter)
// until Sync applies them.
func TestCrashBuffersUntilSync(t *testing.T) {
	mem := NewMem()
	cfs := NewCrash(mem, CrashConfig{Seed: 1})
	f, err := cfs.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("unsynced"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(got) != "unsynced" {
		t.Fatalf("cache read %q", got)
	}
	if inner, _ := mem.ReadFile("db"); len(inner) != 0 {
		t.Fatalf("inner file has %d unsynced bytes", len(inner))
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	inner, _ := mem.ReadFile("db")
	if string(inner) != "unsynced" {
		t.Fatalf("inner file after sync: %q", inner)
	}
}

// TestPowerCutDropsUnsynced: with DropWriteProb=1 every unsynced write
// vanishes at the cut, while everything a completed Sync covered
// survives.
func TestPowerCutDropsUnsynced(t *testing.T) {
	mem := NewMem()
	cfs := NewCrash(mem, CrashConfig{Seed: 1, DropWriteProb: 1})
	f, _ := cfs.Open("db")
	f.WriteAt([]byte("durable!"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("lost"), 8)
	cfs.PowerCut()
	if !cfs.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync after cut: %v", err)
	}
	if _, err := cfs.Open("other"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("open after cut: %v", err)
	}
	inner, _ := mem.ReadFile("db")
	if string(inner) != "durable!" {
		t.Fatalf("post-crash contents %q", inner)
	}
}

// TestCrashAtSyncBarrier: the cut fires at the configured sync, and
// SyncApplied selects whether that barrier's writes survive.
func TestCrashAtSyncBarrier(t *testing.T) {
	for _, applied := range []bool{false, true} {
		mem := NewMem()
		cfs := NewCrash(mem, CrashConfig{Seed: 3, CrashAtSync: 2, SyncApplied: applied, DropWriteProb: 1})
		f, _ := cfs.Open("db")
		f.WriteAt([]byte("one"), 0)
		if err := f.Sync(); err != nil { // barrier 1: survives
			t.Fatal(err)
		}
		f.WriteAt([]byte("two"), 3)
		if err := f.Sync(); !errors.Is(err, ErrPowerCut) { // barrier 2: the cut
			t.Fatalf("sync 2: %v", err)
		}
		inner, _ := mem.ReadFile("db")
		want := "one"
		if applied {
			want = "onetwo"
		}
		if string(inner) != want {
			t.Fatalf("applied=%v: post-crash contents %q, want %q", applied, inner, want)
		}
	}
}

// TestCrashAtWrite: the cut fires mid-workload at the Nth write; the
// triggering write settles with everything else pending.
func TestCrashAtWrite(t *testing.T) {
	mem := NewMem()
	cfs := NewCrash(mem, CrashConfig{Seed: 5, CrashAtWrite: 2, DropWriteProb: 1})
	f, _ := cfs.Open("db")
	if _, err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("b"), 1); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write 2: %v", err)
	}
	if cfs.Writes() != 2 {
		t.Fatalf("writes = %d", cfs.Writes())
	}
	if inner, _ := mem.ReadFile("db"); len(inner) != 0 {
		t.Fatalf("all writes unsynced and dropped, yet inner holds %q", inner)
	}
}

// TestTornWriteIsPrefix: with TornWriteProb=1 a surviving sector keeps
// only a prefix of the written bytes — never interleaved garbage.
func TestTornWriteIsPrefix(t *testing.T) {
	mem := NewMem()
	cfs := NewCrash(mem, CrashConfig{Seed: 7, TornWriteProb: 1})
	f, _ := cfs.Open("db")
	payload := bytes.Repeat([]byte{0xAB}, 100)
	f.WriteAt(payload, 0)
	cfs.PowerCut()
	inner, _ := mem.ReadFile("db")
	if len(inner) > 100 {
		t.Fatalf("inner grew past the write: %d", len(inner))
	}
	for i, b := range inner {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x: torn write is not a prefix", i, b)
		}
	}
}

// TestSettleIsDeterministic: the same seed and operation sequence
// settle to byte-identical post-crash state.
func TestSettleIsDeterministic(t *testing.T) {
	run := func() []byte {
		mem := NewMem()
		cfs := NewCrash(mem, CrashConfig{Seed: 42, DropWriteProb: 0.4, TornWriteProb: 0.4})
		f, _ := cfs.Open("db")
		for i := 0; i < 16; i++ {
			buf := bytes.Repeat([]byte{byte(i + 1)}, 700)
			f.WriteAt(buf, int64(i)*700)
		}
		cfs.PowerCut()
		got, _ := mem.ReadFile("db")
		return got
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed settled differently")
	}
	// And some sector must have dropped or torn (the config makes
	// survival-of-everything astronomically unlikely).
	if len(a) == 16*700 && !bytes.Contains(a, []byte{0}) {
		full := true
		for i := 0; i < 16 && full; i++ {
			for j := 0; j < 700; j++ {
				if a[i*700+j] != byte(i+1) {
					full = false
					break
				}
			}
		}
		if full {
			t.Fatal("no write dropped or tore under 0.8 combined probability")
		}
	}
}

// TestSectorIndependence: dropping is per sector, so one multi-sector
// write can survive partially — some sectors present, others zero.
func TestSectorIndependence(t *testing.T) {
	mem := NewMem()
	cfs := NewCrash(mem, CrashConfig{Seed: 11, DropWriteProb: 0.5, SectorSize: 512})
	f, _ := cfs.Open("db")
	f.WriteAt(bytes.Repeat([]byte{0xFF}, 8*512), 0)
	cfs.PowerCut()
	inner, _ := mem.ReadFile("db")
	kept, dropped := 0, 0
	for s := 0; s*512 < len(inner); s++ {
		sector := inner[s*512 : (s+1)*512]
		if sector[0] == 0xFF {
			kept++
		} else {
			dropped++
		}
	}
	// Trailing dropped sectors shorten the file instead.
	dropped += 8 - kept - dropped
	if kept == 0 || dropped == 0 {
		t.Fatalf("seed 11 settled all-or-nothing (kept=%d dropped=%d); want a mix", kept, dropped)
	}
}

// TestReadFaults: seeded read-side bit flips corrupt the returned
// bytes, not the stored ones; injected EIO is transient.
func TestReadFaults(t *testing.T) {
	mem := NewMem()
	cfs := NewCrash(mem, CrashConfig{Seed: 13, ReadBitFlipProb: 1})
	f, _ := cfs.Open("db")
	f.WriteAt([]byte{0x00, 0x00, 0x00, 0x00}, 0)
	got := make([]byte, 4)
	if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatal("bit flip did not fire at probability 1")
	}

	cfs2 := NewCrash(NewMem(), CrashConfig{Seed: 13, ReadErrProb: 1})
	f2, _ := cfs2.Open("db")
	f2.WriteAt([]byte{1}, 0)
	if _, err := f2.ReadAt(got[:1], 0); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("want injected EIO, got %v", err)
	}
}

// TestSyncCountsAcrossFiles: Syncs counts barriers across every file
// of the FS, giving a workload's sweep range.
func TestSyncCountsAcrossFiles(t *testing.T) {
	cfs := NewCrash(NewMem(), CrashConfig{Seed: 1})
	a, _ := cfs.Open("db")
	b, _ := cfs.Open("db.wal")
	a.WriteAt([]byte{1}, 0)
	a.Sync()
	b.WriteAt([]byte{2}, 0)
	b.Sync()
	b.Sync()
	if got := cfs.Syncs(); got != 3 {
		t.Fatalf("syncs = %d, want 3", got)
	}
}
