package vfs

import (
	"fmt"
	"os"
)

// osFS is the real-filesystem FS. It is stateless; OS() returns a
// shared instance.
type osFS struct{}

var theOS FS = osFS{}

// OS returns the real-filesystem FS — the storage tier's default, with
// exactly the semantics the pager and WAL had when they called os.*
// directly.
func OS() FS { return theOS }

func (osFS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vfs: open %s: %w", name, err)
	}
	return osFile{f}, nil
}

// osFile adapts *os.File, which already implements ReadAt/WriteAt/
// Sync/Truncate/Close; only Size needs a stat.
type osFile struct {
	f *os.File
}

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Close() error                             { return o.f.Close() }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
