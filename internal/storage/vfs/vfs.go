// Package vfs abstracts the files the storage tier does I/O against.
//
// The interface is deliberately tiny — open, positioned read/write,
// sync, truncate, size, close — exactly the operations the pager and
// the WAL use. Three implementations cover the repo's needs:
//
//   - OS():     real files (the default; the behavior the store always had)
//   - NewMem(): deterministic in-memory files, for tests that want no
//     temp dirs and byte-identical runs on every machine
//   - NewCrash(): a seeded fault injector wrapping any other FS, which
//     models the real failure surface of a disk — writes buffered until
//     Sync, a simulated power cut at any chosen crash point that drops,
//     tears, or reorders unsynced writes at sector granularity, plus
//     read-side bit corruption and transient I/O errors
//
// The storage tier (pager, wal, store) takes an FS; path-based
// constructors default to OS(). A hyperlint analyzer (vfsonly) keeps
// direct os file calls out of internal/storage so the seam cannot
// silently regress.
package vfs

import (
	"errors"
	"io"
)

// ErrPowerCut is returned by every operation on a crash FS after its
// simulated power cut has fired. Like a machine that lost power, the
// FS is unusable from that point on; reopen the synced state through
// the inner FS to model the post-reboot recovery.
var ErrPowerCut = errors.New("vfs: simulated power cut")

// ErrInjectedIO is the transient read fault injected by a crash FS
// (the EIO a flaky disk or controller returns). Unlike ErrPowerCut it
// does not latch: the next read may succeed.
var ErrInjectedIO = errors.New("vfs: injected I/O error")

// FS opens named files. Implementations must allow the same name to be
// opened, closed, and reopened with its contents preserved for the
// lifetime of the FS (for OS() that lifetime is the real filesystem's).
type FS interface {
	// Open opens the named file, creating it empty if it does not
	// exist.
	Open(name string) (File, error)
}

// File is one open database or log file. ReadAt must be safe for
// concurrent use with other ReadAts (the store issues reader preads in
// parallel); writes are serialized by the callers (the store's
// single-writer discipline).
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes all buffered writes to stable storage. This is the
	// durability barrier: a crash FS only guarantees writes that a
	// completed Sync covered.
	Sync() error
	// Truncate changes the file size, zero-filling on growth.
	Truncate(size int64) error
	// Size reports the current file size in bytes.
	Size() (int64, error)
	// Close releases the handle. Contents persist in the FS.
	Close() error
}
