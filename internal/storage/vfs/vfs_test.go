package vfs

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
)

// conformance runs the same behavioral checks against every FS
// implementation — the C2FO/vfs idiom of one testsuite, N backends.
// The crash FS participates with a zero config (no faults), in which
// mode it must be transparent.
func TestConformance(t *testing.T) {
	impls := []struct {
		name string
		fs   func(t *testing.T) FS
	}{
		{"os", func(t *testing.T) FS { return prefixed{OS(), t.TempDir()} }},
		{"mem", func(t *testing.T) FS { return NewMem() }},
		{"crash-transparent", func(t *testing.T) FS { return NewCrash(NewMem(), CrashConfig{}) }},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			conformance(t, impl.fs(t))
		})
	}
}

// prefixed roots an FS at a directory, so the OS implementation works
// against a temp dir with the same relative names as the others.
type prefixed struct {
	fs  FS
	dir string
}

func (p prefixed) Open(name string) (File, error) {
	return p.fs.Open(filepath.Join(p.dir, name))
}

func conformance(t *testing.T, fs FS) {
	f, err := fs.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Size(); err != nil || n != 0 {
		t.Fatalf("fresh file: size=%d err=%v", n, err)
	}

	// Reads past the end report EOF; short reads report EOF with the
	// partial count — the io.ReaderAt contract the pager and WAL rely
	// on.
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("read of empty file: err=%v, want io.EOF", err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if n, err := f.ReadAt(buf, 0); !errors.Is(err, io.EOF) || n != 5 {
		t.Fatalf("short read: n=%d err=%v, want 5, io.EOF", n, err)
	}
	if string(buf[:5]) != "hello" {
		t.Fatalf("read back %q", buf[:5])
	}

	// Writes past the end zero-fill the gap.
	if _, err := f.WriteAt([]byte("x"), 9); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Size(); n != 10 {
		t.Fatalf("size after gapped write = %d, want 10", n)
	}
	full := make([]byte, 10)
	if _, err := f.ReadAt(full, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, []byte("hello\x00\x00\x00\x00x")) {
		t.Fatalf("contents %q", full)
	}

	// Truncate shrinks and grows (zero-filled).
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(6); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(full[:6], 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full[:6], []byte("hel\x00\x00\x00")) {
		t.Fatalf("contents after shrink+grow: %q", full[:6])
	}

	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: contents persist within the FS lifetime.
	f2, err := fs.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if n, err := f2.Size(); err != nil || n != 6 {
		t.Fatalf("reopened: size=%d err=%v, want 6", n, err)
	}
	got := make([]byte, 6)
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hel\x00\x00\x00")) {
		t.Fatalf("reopened contents %q", got)
	}

	// A second name is independent.
	other, err := fs.Open("db.wal")
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if n, _ := other.Size(); n != 0 {
		t.Fatalf("second file not empty: %d", n)
	}
}

func TestMemFileHandlesShareContents(t *testing.T) {
	fs := NewMem()
	a, _ := fs.Open("f")
	b, _ := fs.Open("f")
	if _, err := a.WriteAt([]byte("shared"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := b.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared" {
		t.Fatalf("handle b read %q", got)
	}
}

func TestMemClosedHandleFails(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Open("f")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("read through closed handle succeeded")
	}
	if _, err := f.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write through closed handle succeeded")
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestMemReadWriteFile(t *testing.T) {
	fs := NewMem()
	if _, err := fs.ReadFile("missing"); err == nil {
		t.Fatal("ReadFile of missing file succeeded")
	}
	if err := fs.WriteFile("f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("ReadFile = %q", got)
	}
	// The returned slice is a copy: mutating it must not alter the file.
	got[0] = 'z'
	again, _ := fs.ReadFile("f")
	if string(again) != "abc" {
		t.Fatal("ReadFile returned an aliased slice")
	}
}

func TestSentinelErrorsDistinct(t *testing.T) {
	if errors.Is(ErrPowerCut, ErrInjectedIO) {
		t.Fatal("sentinels alias")
	}
}
