package vfs

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// MemFS is a fully deterministic in-memory FS. Files live in the FS
// for its lifetime, so close-and-reopen (crash-recovery tests) works
// without touching the real filesystem, and identical operation
// sequences produce identical bytes on every machine.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
}

// NewMem returns an empty in-memory FS.
func NewMem() *MemFS {
	return &MemFS{files: make(map[string]*memData)}
}

// memData is the shared state behind every handle opened on one name.
type memData struct {
	mu  sync.RWMutex
	buf []byte
}

// Open opens (creating if necessary) the named in-memory file. All
// handles on one name share contents, like file descriptors on one
// inode.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d := fs.files[name]
	if d == nil {
		d = &memData{}
		fs.files[name] = d
	}
	return &memFile{d: d}, nil
}

// ReadFile returns a copy of the named file's contents — a test
// convenience mirroring os.ReadFile.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	d := fs.files[name]
	fs.mu.Unlock()
	if d == nil {
		return nil, fmt.Errorf("vfs: read %s: %w", name, os.ErrNotExist)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]byte(nil), d.buf...), nil
}

// WriteFile replaces the named file's contents — a test convenience
// mirroring os.WriteFile.
func (fs *MemFS) WriteFile(name string, data []byte) error {
	fs.mu.Lock()
	d := fs.files[name]
	if d == nil {
		d = &memData{}
		fs.files[name] = d
	}
	fs.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = append([]byte(nil), data...)
	return nil
}

type memFile struct {
	d      *memData
	closed bool
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("vfs: read: %w", os.ErrClosed)
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: read at negative offset %d", off)
	}
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	if off >= int64(len(f.d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("vfs: write: %w", os.ErrClosed)
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: write at negative offset %d", off)
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(f.d.buf)) {
		grown := make([]byte, end)
		copy(grown, f.d.buf)
		f.d.buf = grown
	}
	copy(f.d.buf[off:], p)
	return len(p), nil
}

// Sync is a no-op: memory is as stable as this FS gets.
func (f *memFile) Sync() error {
	if f.closed {
		return fmt.Errorf("vfs: sync: %w", os.ErrClosed)
	}
	return nil
}

func (f *memFile) Truncate(size int64) error {
	if f.closed {
		return fmt.Errorf("vfs: truncate: %w", os.ErrClosed)
	}
	if size < 0 {
		return fmt.Errorf("vfs: truncate to negative size %d", size)
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if size <= int64(len(f.d.buf)) {
		f.d.buf = f.d.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.d.buf)
	f.d.buf = grown
	return nil
}

func (f *memFile) Size() (int64, error) {
	if f.closed {
		return 0, fmt.Errorf("vfs: size: %w", os.ErrClosed)
	}
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	return int64(len(f.d.buf)), nil
}

func (f *memFile) Close() error {
	if f.closed {
		return fmt.Errorf("vfs: close: %w", os.ErrClosed)
	}
	f.closed = true
	return nil
}
