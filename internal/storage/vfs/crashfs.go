package vfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// CrashConfig parameterizes a crash FS. The zero value is a transparent
// wrapper that never crashes and injects no faults — useful for
// counting sync barriers in a workload before sweeping them.
type CrashConfig struct {
	// Seed drives every random decision (which unsynced sectors
	// survive a cut, where a write tears, which reads fault). The same
	// seed and operation sequence settle identically on every machine.
	Seed int64
	// SectorSize is the granularity at which a power cut drops or
	// tears unsynced writes. Zero selects 512 bytes, the classic disk
	// sector: a 4 KiB page write-back spans 8 sectors, any subset of
	// which may survive.
	SectorSize int
	// CrashAtSync, when non-zero, fires the power cut at the Nth Sync
	// call across the FS (1-based). Sweeping n over every barrier of a
	// scripted workload visits every crash point a real power loss
	// could hit.
	CrashAtSync uint64
	// SyncApplied selects which side of the CrashAtSync barrier the
	// cut lands on: false cuts just before the fsync (its writes are
	// unsynced and settle randomly), true cuts just after (the syncing
	// file's writes are durable; only other files' pending writes
	// settle randomly).
	SyncApplied bool
	// CrashAtWrite, when non-zero, fires the power cut at the Nth
	// WriteAt call across the FS (1-based), mid-workload: the
	// triggering write is buffered and then settles — torn, dropped,
	// or applied — along with everything else pending.
	CrashAtWrite uint64
	// TornWriteProb is the probability that a surviving unsynced
	// sector is torn at the cut: only a prefix of it reaches the
	// platter.
	TornWriteProb float64
	// DropWriteProb is the probability that an unsynced sector (or
	// truncate) is dropped entirely at the cut. Because each buffered
	// sector write survives or drops independently, later writes can
	// land while earlier ones vanish — the write reordering a real
	// disk cache exhibits.
	DropWriteProb float64
	// ReadBitFlipProb is the per-ReadAt probability that one bit of
	// the returned data is flipped — transient read-side corruption
	// (the stored bytes are not modified).
	ReadBitFlipProb float64
	// ReadErrProb is the per-ReadAt probability of a transient
	// ErrInjectedIO failure.
	ReadErrProb float64
}

// CrashFS wraps an inner FS with deterministic, seeded fault
// injection. Writes are buffered in memory until Sync, which applies
// them to the inner FS — so at any instant the inner FS holds exactly
// the synced (durable) state. A power cut — at a configured sync or
// write count, or via PowerCut — settles each still-unsynced sector
// write independently (applied, torn, or dropped, per the config's
// probabilities), then latches the FS: every later operation fails
// with ErrPowerCut. Reopening the inner FS afterwards is the
// post-reboot view a recovery path must cope with.
type CrashFS struct {
	mu      sync.Mutex
	inner   FS
	cfg     CrashConfig
	rng     *rand.Rand
	files   map[string]*crashFile
	order   []*crashFile // settle order: deterministic, unlike map range
	syncs   uint64
	writes  uint64
	crashed bool
}

// NewCrash wraps inner with a crash FS configured by cfg.
func NewCrash(inner FS, cfg CrashConfig) *CrashFS {
	if cfg.SectorSize <= 0 {
		cfg.SectorSize = 512
	}
	return &CrashFS{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		files: make(map[string]*crashFile),
	}
}

// crashFile buffers one file's unsynced state. buf is the complete
// current contents (what the OS page cache would serve back); ops is
// the ordered log of unsynced sector writes and truncates that a power
// cut settles against the inner file.
type crashFile struct {
	fs    *CrashFS
	name  string
	inner File
	buf   []byte
	ops   []pendingOp
}

// pendingOp is one unsynced mutation: a sector's post-write contents,
// or a truncation.
type pendingOp struct {
	truncate bool
	size     int64 // truncate target
	sector   int64
	data     []byte // sector image after the write (short at file end)
}

// Open opens the named file through the inner FS and caches its
// current (synced) contents. Handles on one name share state.
func (fs *CrashFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrPowerCut
	}
	if f := fs.files[name]; f != nil {
		return f, nil
	}
	inner, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	size, err := inner.Size()
	if err != nil {
		inner.Close()
		return nil, err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := inner.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
			inner.Close()
			return nil, err
		}
	}
	f := &crashFile{fs: fs, name: name, inner: inner, buf: buf}
	fs.files[name] = f
	fs.order = append(fs.order, f)
	return f, nil
}

// Syncs reports how many Sync calls the FS has seen — the number of
// fsync barriers a workload crosses, hence the sweep range for
// CrashAtSync.
func (fs *CrashFS) Syncs() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

// Writes reports how many WriteAt calls the FS has seen — the sweep
// range for CrashAtWrite.
func (fs *CrashFS) Writes() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// Crashed reports whether the power cut has fired.
func (fs *CrashFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// PowerCut fires the power cut now: every unsynced write settles
// (applied, torn, or dropped per the config), and all further
// operations fail with ErrPowerCut. Idempotent.
func (fs *CrashFS) PowerCut() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cutLocked(nil)
}

// cutLocked settles every file's pending ops and latches the crash.
// If applied is non-nil, that file's pending ops are flushed in full
// first (the fsync that completed as the power died).
func (fs *CrashFS) cutLocked(applied *crashFile) {
	if fs.crashed {
		return
	}
	fs.crashed = true
	if applied != nil {
		applied.flushLocked()
	}
	for _, f := range fs.order {
		f.settleLocked()
	}
}

// flushLocked applies every pending op to the inner file, in order,
// and syncs it — a completed fsync.
func (f *crashFile) flushLocked() error {
	ss := int64(f.fs.cfg.SectorSize)
	for _, op := range f.ops {
		if op.truncate {
			if err := f.inner.Truncate(op.size); err != nil {
				return err
			}
			continue
		}
		if _, err := f.inner.WriteAt(op.data, op.sector*ss); err != nil {
			return err
		}
	}
	f.ops = nil
	return f.inner.Sync()
}

// settleLocked is the power cut hitting this file: each pending op
// independently applies, tears, or drops, per the config's seeded
// probabilities. Because ops settle independently, a later write can
// survive an earlier one's loss — reordering. The inner file ends up
// with some physically plausible post-crash state.
func (f *crashFile) settleLocked() {
	cfg, rng, ss := f.fs.cfg, f.fs.rng, int64(f.fs.cfg.SectorSize)
	for _, op := range f.ops {
		r := rng.Float64()
		if op.truncate {
			if r >= cfg.DropWriteProb {
				f.inner.Truncate(op.size)
			}
			continue
		}
		switch {
		case r < cfg.DropWriteProb:
			// dropped: never reached the platter
		case r < cfg.DropWriteProb+cfg.TornWriteProb:
			n := rng.Intn(len(op.data) + 1)
			f.inner.WriteAt(op.data[:n], op.sector*ss)
		default:
			f.inner.WriteAt(op.data, op.sector*ss)
		}
	}
	f.ops = nil
	f.inner.Sync()
}

func (f *crashFile) ReadAt(p []byte, off int64) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, ErrPowerCut
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: read at negative offset %d", off)
	}
	if fs.cfg.ReadErrProb > 0 && fs.rng.Float64() < fs.cfg.ReadErrProb {
		return 0, ErrInjectedIO
	}
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if fs.cfg.ReadBitFlipProb > 0 && n > 0 && fs.rng.Float64() < fs.cfg.ReadBitFlipProb {
		i := fs.rng.Intn(n)
		p[i] ^= 1 << fs.rng.Intn(8)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *crashFile) WriteAt(p []byte, off int64) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, ErrPowerCut
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: write at negative offset %d", off)
	}
	fs.writes++
	ss := int64(fs.cfg.SectorSize)
	if end := off + int64(len(p)); end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[off:], p)
	// Record the post-write image of every touched sector. The cut
	// settles whole sectors: that is the granularity at which real
	// hardware commits or loses data.
	if len(p) > 0 {
		first, last := off/ss, (off+int64(len(p))-1)/ss
		for s := first; s <= last; s++ {
			lo := s * ss
			hi := lo + ss
			if hi > int64(len(f.buf)) {
				hi = int64(len(f.buf))
			}
			f.ops = append(f.ops, pendingOp{
				sector: s,
				data:   append([]byte(nil), f.buf[lo:hi]...),
			})
		}
	}
	if fs.cfg.CrashAtWrite > 0 && fs.writes == fs.cfg.CrashAtWrite {
		fs.cutLocked(nil)
		return 0, ErrPowerCut
	}
	return len(p), nil
}

func (f *crashFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrPowerCut
	}
	fs.syncs++
	if fs.cfg.CrashAtSync > 0 && fs.syncs == fs.cfg.CrashAtSync {
		if fs.cfg.SyncApplied {
			fs.cutLocked(f)
		} else {
			fs.cutLocked(nil)
		}
		return ErrPowerCut
	}
	return f.flushLocked()
}

func (f *crashFile) Truncate(size int64) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrPowerCut
	}
	if size < 0 {
		return fmt.Errorf("vfs: truncate to negative size %d", size)
	}
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.buf)
		f.buf = grown
	}
	f.ops = append(f.ops, pendingOp{truncate: true, size: size})
	return nil
}

func (f *crashFile) Size() (int64, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, ErrPowerCut
	}
	return int64(len(f.buf)), nil
}

// Close makes nothing durable: like a process exit, unsynced writes
// stay at the mercy of a later cut. The state remains reachable via
// Open (handles on one name share state), mirroring the inode-like
// model of MemFS.
func (f *crashFile) Close() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrPowerCut
	}
	return nil
}
