package store

import (
	"encoding/binary"
	"fmt"
	"strings"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/wal"
)

// PageDamage describes one damaged page found by Scrub.
type PageDamage struct {
	// ID is the damaged page.
	ID page.ID
	// Type is the type byte as stored, however implausible.
	Type page.Type
	// Detail says what failed: checksum mismatch, bad type, read error.
	Detail string
}

// ScrubReport is the result of a Scrub pass: a full accounting of the
// database's at-rest state. Damage never aborts the pass — the point
// is to pinpoint every bad page in one walk, not to die on the first.
type ScrubReport struct {
	// Pages is the file size in pages (including the meta page).
	Pages uint64
	// Damaged lists every page whose stored image failed validation.
	Damaged []PageDamage
	// Unwritten lists allocated pages that are still all zero: space
	// leaked by allocations whose commit never happened (a crash
	// between Extend and Commit). Harmless — they are unreferenced —
	// so they are reported but not counted as damage.
	Unwritten []page.ID
	// FreePages is the number of pages on the free list.
	FreePages int
	// MetaDamage is non-empty when page 0 failed validation (checksum,
	// magic, or format version).
	MetaDamage string
	// FreeListDamage is non-empty when the free-list walk hit a cycle,
	// an out-of-range link, or a page that is not a valid free page.
	FreeListDamage string
	// TornTail reports that the database file ends mid-page — the torn
	// final write of a power cut.
	TornTail bool
	// WAL is the read-only scan of the log. A non-empty tail is not
	// damage (recovery discards it by design); Malformed tails are
	// likewise recoverable and reported for visibility.
	WAL wal.ScanReport
}

// Clean reports whether the scrub found no damage: meta, free list,
// and every written page validate, and the file has no torn tail.
// Unwritten (leaked) pages and a discardable WAL tail do not count.
func (r *ScrubReport) Clean() bool {
	return r.MetaDamage == "" && r.FreeListDamage == "" && len(r.Damaged) == 0 && !r.TornTail
}

// String formats the report as a per-page damage listing suitable for
// an operator (see cmd/hyperquery scrub).
func (r *ScrubReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrub: %d pages, %d free, %d unwritten\n", r.Pages, r.FreePages, len(r.Unwritten))
	if r.MetaDamage != "" {
		fmt.Fprintf(&b, "  META DAMAGED: %s\n", r.MetaDamage)
	}
	if r.FreeListDamage != "" {
		fmt.Fprintf(&b, "  FREE LIST DAMAGED: %s\n", r.FreeListDamage)
	}
	if r.TornTail {
		fmt.Fprintf(&b, "  TORN TAIL: file ends mid-page\n")
	}
	for _, d := range r.Damaged {
		fmt.Fprintf(&b, "  PAGE %d DAMAGED (type %s): %s\n", d.ID, d.Type, d.Detail)
	}
	fmt.Fprintf(&b, "  wal: %d records, %d commits, %d committed bytes, %d tail bytes",
		r.WAL.Records, r.WAL.Commits, r.WAL.CommittedBytes, r.WAL.TailBytes)
	if r.WAL.Malformed {
		b.WriteString(" (tail malformed)")
	}
	b.WriteString("\n")
	if r.Clean() {
		b.WriteString("  clean\n")
	} else {
		fmt.Fprintf(&b, "  %d damaged page(s)\n", len(r.Damaged))
	}
	return b.String()
}

// Scrub walks the durable state — meta page, every data page, the
// free list, and the WAL — validating checksums and structure, and
// reports all damage found without failing. It inspects the committed
// on-disk images directly (not the buffer pool), so it sees exactly
// what a post-crash reopen would read. The writer is excluded for the
// duration; readers are not.
func (s *Store) Scrub() *ScrubReport {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()

	rep := &ScrubReport{
		Pages:    s.pg.PageCount(),
		TornTail: s.pg.TornTail(),
		WAL:      s.log.Scan(),
	}
	damaged := make(map[page.ID]bool)

	// Meta page: checksum, magic, format version.
	var freeHead page.ID = page.Invalid
	var meta page.Page
	if rep.Pages == 0 {
		rep.MetaDamage = "no meta page (empty file)"
	} else if err := s.readRaw(0, &meta); err != nil {
		rep.MetaDamage = err.Error()
	} else if err := meta.Validate(); err != nil {
		rep.MetaDamage = err.Error()
	} else {
		pl := meta.Payload()
		switch {
		case [8]byte(pl[metaMagicOff:metaMagicOff+8]) != metaMagic:
			rep.MetaDamage = "bad magic"
		case binary.LittleEndian.Uint32(pl[metaVersionOff:]) != formatVersion:
			rep.MetaDamage = fmt.Sprintf("unsupported format version %d",
				binary.LittleEndian.Uint32(pl[metaVersionOff:]))
		default:
			freeHead = page.ID(binary.LittleEndian.Uint64(pl[metaFreeHeadOff:]))
		}
	}

	// Every data page: read raw, classify.
	var img page.Page
	for id := uint64(1); id < rep.Pages; id++ {
		pid := page.ID(id)
		if err := s.readRaw(pid, &img); err != nil {
			rep.Damaged = append(rep.Damaged, PageDamage{ID: pid, Type: img.Type(), Detail: err.Error()})
			damaged[pid] = true
			continue
		}
		if isZeroPage(&img) {
			rep.Unwritten = append(rep.Unwritten, pid)
			continue
		}
		if err := img.Validate(); err != nil {
			rep.Damaged = append(rep.Damaged, PageDamage{ID: pid, Type: img.Type(), Detail: err.Error()})
			damaged[pid] = true
		}
	}

	// Free-list walk: every link must land on an intact free page, no
	// cycles, no out-of-range hops.
	if rep.MetaDamage == "" {
		visited := make(map[page.ID]bool)
		for id := freeHead; id != page.Invalid; {
			switch {
			case uint64(id) >= rep.Pages || id == 0:
				rep.FreeListDamage = fmt.Sprintf("link to out-of-range page %d", id)
			case visited[id]:
				rep.FreeListDamage = fmt.Sprintf("cycle at page %d", id)
			case damaged[id]:
				rep.FreeListDamage = fmt.Sprintf("reaches damaged page %d", id)
			}
			if rep.FreeListDamage != "" {
				break
			}
			visited[id] = true
			if err := s.readRaw(id, &img); err != nil {
				rep.FreeListDamage = fmt.Sprintf("page %d unreadable: %v", id, err)
				break
			}
			if img.Type() != page.TypeFree {
				rep.FreeListDamage = fmt.Sprintf("page %d has type %s, want free", id, img.Type())
				break
			}
			rep.FreePages++
			id = page.ID(binary.LittleEndian.Uint64(img.Payload()))
		}
	}
	return rep
}

// readRaw reads a page without checksum validation, under the
// write-back fence like every other store read.
func (s *Store) readRaw(id page.ID, dst *page.Page) error {
	s.backMu.RLock()
	defer s.backMu.RUnlock()
	return s.pg.ReadNoVerify(id, dst)
}

func isZeroPage(p *page.Page) bool {
	for _, b := range p.Bytes() {
		if b != 0 {
			return false
		}
	}
	return true
}
