// Package store provides the transactional page store: a buffer pool
// over a single database file, with redo write-ahead logging, crash
// recovery, a page free list, and a small directory of named roots.
//
// Higher layers (B+trees, slotted record files, the object store)
// operate against the Space interface so that the same code runs over a
// local store or a remote page-server client.
//
// Durability protocol (redo-only, no-steal):
//
//  1. Mutations happen in pooled page images flagged dirty.
//  2. Commit appends every dirty image to the WAL, appends a commit
//     record, and fsyncs the log. Only then are the images written
//     (without fsync) to the main file and marked clean.
//  3. Checkpoint fsyncs the main file and truncates the WAL.
//  4. Recovery at open replays committed WAL images into the main file,
//     repairing any torn write-backs, then truncates the log.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/pager"
	"hypermodel/internal/storage/wal"
)

// NumRoots is the number of named root slots in the meta page.
const NumRoots = 16

// Handle is a pinned reference to a cached page.
type Handle interface {
	// Page returns the page image. The image may be mutated only if
	// MarkDirty is called before Release.
	Page() *page.Page
	// MarkDirty flags the page as modified so it is included in the
	// next Commit.
	MarkDirty()
	// Release unpins the page. The handle must not be used afterwards.
	Release()
}

// Space is the page-level storage abstraction consumed by the B+tree,
// slotted-page and object-store layers. *Store implements it locally;
// the remote package implements it over a TCP page server.
type Space interface {
	// Get pins the page with the given ID.
	Get(id page.ID) (Handle, error)
	// Alloc allocates a fresh zeroed page of the given type, pinned and
	// already marked dirty.
	Alloc(t page.Type) (page.ID, Handle, error)
	// Free returns a page to the free list.
	Free(id page.ID) error
	// Root returns the page ID stored in a named root slot, or
	// page.Invalid if the slot is unset.
	Root(slot int) page.ID
	// SetRoot updates a named root slot. The change is durable after
	// the next Commit.
	SetRoot(slot int, id page.ID)
	// Commit makes all modifications since the previous Commit durable.
	Commit() error
}

// Meta page payload layout (after the common page header).
const (
	metaMagicOff    = 0  // [8]byte
	metaVersionOff  = 8  // uint32
	metaFreeHeadOff = 12 // uint64 (page.ID)
	metaSeqOff      = 20 // uint64 commit sequence
	metaRootsOff    = 28 // NumRoots × uint64
)

var metaMagic = [8]byte{'H', 'Y', 'P', 'M', 'O', 'D', 'B', '1'}

const formatVersion = 1

// Options configure a Store.
type Options struct {
	// PoolPages is the buffer pool capacity in pages. Zero selects the
	// default (1024 pages = 4 MiB).
	PoolPages int
	// CheckpointBytes triggers an automatic checkpoint when the WAL
	// grows past this size. Zero selects the default (8 MiB).
	// Negative disables automatic checkpoints.
	CheckpointBytes int64
	// NoSync makes commits skip the WAL fsync. Faster, not crash-safe;
	// used by bulk loads that checkpoint at the end.
	NoSync bool
}

func (o *Options) withDefaults() Options {
	out := Options{PoolPages: 1024, CheckpointBytes: 8 << 20}
	if o == nil {
		return out
	}
	if o.PoolPages > 0 {
		out.PoolPages = o.PoolPages
	}
	if o.CheckpointBytes != 0 {
		out.CheckpointBytes = o.CheckpointBytes
	}
	out.NoSync = o.NoSync
	return out
}

// Store is the local implementation of Space.
type Store struct {
	mu        sync.Mutex
	pg        *pager.Pager
	log       *wal.WAL
	pool      *buffer.Pool
	opts      Options
	meta      *page.Page // always resident, never in the pool
	metaDirty bool
	seq       uint64 // commit sequence number
	closed    bool
	recovered bool // recovery ran at open (for tests/diagnostics)
}

// Stats is a snapshot of store activity counters.
type Stats struct {
	Pool       buffer.Stats
	DiskReads  uint64
	DiskWrites uint64
	WALAppends uint64
	WALSyncs   uint64
	Commits    uint64
}

// Open opens (creating if necessary) the database at path. The WAL is
// kept in path+".wal". Pending committed work is recovered.
func Open(path string, opts *Options) (*Store, error) {
	pg, err := pager.Open(path)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(path + ".wal")
	if err != nil {
		pg.Close()
		return nil, err
	}
	s := &Store{pg: pg, log: log, opts: opts.withDefaults()}
	s.pool = buffer.New(s.opts.PoolPages)

	if log.Size() > 0 {
		if err := log.Replay(func(id page.ID, p *page.Page) error {
			return pg.Write(id, p)
		}); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		if err := pg.Sync(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		if err := log.Truncate(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		s.recovered = true
	}

	if pg.PageCount() == 0 {
		if err := s.initFresh(); err != nil {
			s.closeFiles()
			return nil, err
		}
	} else if err := s.loadMeta(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.log.Close()
	s.pg.Close()
}

func (s *Store) initFresh() error {
	if _, err := s.pg.Extend(); err != nil { // reserve page 0
		return err
	}
	m := page.New(page.TypeMeta)
	pl := m.Payload()
	copy(pl[metaMagicOff:], metaMagic[:])
	binary.LittleEndian.PutUint32(pl[metaVersionOff:], formatVersion)
	binary.LittleEndian.PutUint64(pl[metaFreeHeadOff:], uint64(page.Invalid))
	for i := 0; i < NumRoots; i++ {
		binary.LittleEndian.PutUint64(pl[metaRootsOff+8*i:], uint64(page.Invalid))
	}
	s.meta = m
	s.metaDirty = true
	return s.Commit()
}

func (s *Store) loadMeta() error {
	m := &page.Page{}
	if err := s.pg.Read(0, m); err != nil {
		return fmt.Errorf("store: load meta: %w", err)
	}
	pl := m.Payload()
	if [8]byte(pl[metaMagicOff:metaMagicOff+8]) != metaMagic {
		return errors.New("store: not a hypermodel database (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(pl[metaVersionOff:]); v != formatVersion {
		return fmt.Errorf("store: unsupported format version %d", v)
	}
	s.meta = m
	s.seq = binary.LittleEndian.Uint64(pl[metaSeqOff:])
	return nil
}

// handle implements Handle for the local store.
type handle struct {
	s *Store
	f *buffer.Frame
}

func (h *handle) Page() *page.Page { return h.f.Page }
func (h *handle) MarkDirty()       { h.s.pool.MarkDirty(h.f) }
func (h *handle) Release()         { h.s.pool.Release(h.f) }

// Get pins the page with the given ID, reading it from disk on a miss.
func (s *Store) Get(id page.ID) (Handle, error) {
	if id == 0 || id == page.Invalid {
		return nil, fmt.Errorf("store: get page %d: reserved page", id)
	}
	if f := s.pool.Get(id); f != nil {
		return &handle{s, f}, nil
	}
	img := &page.Page{}
	if err := s.pg.Read(id, img); err != nil {
		return nil, err
	}
	// A racing Get may have inserted the page while we read; the store
	// is externally serialized by its users (txn layer / server), so
	// this double-read cannot happen in practice, but be defensive.
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.pool.Get(id); f != nil {
		return &handle{s, f}, nil
	}
	return &handle{s, s.pool.Insert(id, img)}, nil
}

// Alloc allocates a fresh zeroed page of type t, pinned and dirty.
func (s *Store) Alloc(t page.Type) (page.ID, Handle, error) {
	s.mu.Lock()
	head := s.freeHead()
	s.mu.Unlock()

	if head != page.Invalid {
		h, err := s.Get(head)
		if err != nil {
			return page.Invalid, nil, fmt.Errorf("store: alloc from free list: %w", err)
		}
		next := page.ID(binary.LittleEndian.Uint64(h.Page().Payload()))
		s.mu.Lock()
		s.setFreeHead(next)
		s.mu.Unlock()
		h.Page().Reset(t)
		h.MarkDirty()
		return head, h, nil
	}

	id, err := s.pg.Extend()
	if err != nil {
		return page.Invalid, nil, err
	}
	img := page.New(t)
	s.mu.Lock()
	f := s.pool.Insert(id, img)
	s.mu.Unlock()
	h := &handle{s, f}
	h.MarkDirty()
	return id, h, nil
}

// Free pushes page id onto the free list.
func (s *Store) Free(id page.ID) error {
	if id == 0 || id == page.Invalid {
		return fmt.Errorf("store: free page %d: reserved page", id)
	}
	h, err := s.Get(id)
	if err != nil {
		return err
	}
	defer h.Release()
	p := h.Page()
	p.Reset(page.TypeFree)
	s.mu.Lock()
	binary.LittleEndian.PutUint64(p.Payload(), uint64(s.freeHead()))
	s.setFreeHead(id)
	s.mu.Unlock()
	h.MarkDirty()
	return nil
}

// freeHead and setFreeHead require s.mu.
func (s *Store) freeHead() page.ID {
	return page.ID(binary.LittleEndian.Uint64(s.meta.Payload()[metaFreeHeadOff:]))
}

func (s *Store) setFreeHead(id page.ID) {
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaFreeHeadOff:], uint64(id))
	s.metaDirty = true
}

// Root returns the page ID in root slot, or page.Invalid if unset.
func (s *Store) Root(slot int) page.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return page.ID(binary.LittleEndian.Uint64(s.meta.Payload()[metaRootsOff+8*slot:]))
}

// SetRoot updates root slot; durable at the next Commit.
func (s *Store) SetRoot(slot int, id page.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaRootsOff+8*slot:], uint64(id))
	s.metaDirty = true
}

// Commit makes every modification since the last Commit durable: dirty
// page images go to the WAL, a commit record is appended and synced,
// then the images are written back to the main file (unsynced) and the
// frames marked clean.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked()
}

func (s *Store) commitLocked() error {
	dirty := s.pool.DirtyFrames()
	if len(dirty) == 0 && !s.metaDirty {
		return nil
	}
	s.seq++
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaSeqOff:], s.seq)
	s.metaDirty = true

	for _, f := range dirty {
		if _, err := s.log.AppendPage(f.ID, f.Page); err != nil {
			return err
		}
	}
	if _, err := s.log.AppendPage(0, s.meta); err != nil {
		return err
	}
	if s.opts.NoSync {
		if _, err := s.log.AppendCommitNoSync(s.seq); err != nil {
			return err
		}
	} else if _, err := s.log.AppendCommit(s.seq); err != nil {
		return err
	}

	for _, f := range dirty {
		if err := s.pg.Write(f.ID, f.Page); err != nil {
			return err
		}
	}
	if err := s.pg.Write(0, s.meta); err != nil {
		return err
	}
	s.pool.MarkAllClean()
	s.metaDirty = false

	if s.opts.CheckpointBytes > 0 && s.log.Size() > s.opts.CheckpointBytes {
		return s.checkpointLocked()
	}
	return nil
}

// Checkpoint fsyncs the main file and truncates the WAL. Implies Commit.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.commitLocked(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if err := s.pg.Sync(); err != nil {
		return err
	}
	return s.log.Truncate()
}

// DropCache empties the buffer pool, so the next access to every page
// is cold (a disk read). It refuses to run with uncommitted changes.
// The meta page stays resident; reopening a real database would reread
// one page, which is negligible and keeps the API misuse-proof.
func (s *Store) DropCache() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pool.DirtyFrames()) > 0 {
		return errors.New("store: DropCache with uncommitted changes")
	}
	s.pool.Drop()
	return nil
}

// Backup writes a consistent copy of the database to destPath (R10).
// It checkpoints first, so the copy contains every committed change
// and needs no WAL; the backup can be opened directly as a database.
// The store is locked for the duration (the databases here are small;
// a fuzzy ARIES-style backup would be overkill).
func (s *Store) Backup(destPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.commitLocked(); err != nil {
		return err
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	dst, err := pager.Open(destPath)
	if err != nil {
		return fmt.Errorf("store: backup: %w", err)
	}
	if dst.PageCount() != 0 {
		dst.Close()
		return fmt.Errorf("store: backup target %s is not empty", destPath)
	}
	var img page.Page
	for id := uint64(0); id < s.pg.PageCount(); id++ {
		if err := s.pg.Read(page.ID(id), &img); err != nil {
			// Never-written holes (allocated but uncommitted at a past
			// crash) fail checksum validation; back them up as free
			// pages.
			img.Reset(page.TypeFree)
		}
		if err := dst.Write(page.ID(id), &img); err != nil {
			dst.Close()
			return fmt.Errorf("store: backup: %w", err)
		}
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}

// Abort discards all uncommitted modifications: pooled dirty pages are
// dropped and the meta page is reloaded from disk. Because the store
// is no-steal (nothing reaches the WAL or the file before Commit),
// dropping the cache is a complete rollback.
func (s *Store) Abort() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.Drop()
	s.metaDirty = false
	if s.pg.PageCount() > 0 {
		if err := s.loadMeta(); err != nil {
			return fmt.Errorf("store: abort: %w", err)
		}
	}
	return nil
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	reads, writes := s.pg.Stats()
	appends, syncs := s.log.Stats()
	s.mu.Lock()
	seq := s.seq
	s.mu.Unlock()
	return Stats{
		Pool:       s.pool.Stats(),
		DiskReads:  reads,
		DiskWrites: writes,
		WALAppends: appends,
		WALSyncs:   syncs,
		Commits:    seq,
	}
}

// CacheStats reports buffer pool hits, misses and disk reads in the
// shape shared with remote page-server clients.
func (s *Store) CacheStats() (hits, misses, reads uint64) {
	st := s.Stats()
	return st.Pool.Hits, st.Pool.Misses, st.DiskReads
}

// Recovered reports whether crash recovery ran when the store was
// opened.
func (s *Store) Recovered() bool { return s.recovered }

// PageCount reports the current size of the database file in pages.
func (s *Store) PageCount() uint64 { return s.pg.PageCount() }

// Close commits pending work, checkpoints, and closes the files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.commitLocked(); err != nil {
		return err
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	if err := s.log.Close(); err != nil {
		s.pg.Close()
		return err
	}
	return s.pg.Close()
}
