// Package store provides the transactional page store: a buffer pool
// over a single database file, with redo write-ahead logging, crash
// recovery, a page free list, and a small directory of named roots.
//
// Higher layers (B+trees, slotted record files, the object store)
// operate against the Space interface so that the same code runs over a
// local store or a remote page-server client.
//
// Durability protocol (redo-only, no-steal):
//
//  1. Mutations happen in pooled page images flagged dirty.
//  2. Commit appends every dirty image to the WAL, appends a commit
//     record, and fsyncs the log. Only then are the images written
//     (without fsync) to the main file and marked clean.
//  3. Checkpoint fsyncs the main file and truncates the WAL.
//  4. Recovery at open replays committed WAL images into the main file,
//     repairing any torn write-backs, then truncates the log.
//
// Concurrency model (single writer, many readers):
//
// The store serializes mutation — Alloc, Free, SetRoot, Commit,
// Checkpoint, Abort, Backup, Close — behind one writer mutex, exactly
// as before. Reads no longer queue behind it. Get is safe to call from
// any number of goroutines: the buffer pool's frame table is sharded,
// no lock is held across a disk read on a miss, and a double-miss race
// resolves through GetOrInsert. Concurrent Gets are safe alongside each
// other; running them concurrently with a writer requires ReadView.
//
// ReadView is the concurrent read path proper. Every resident frame
// carries, besides its working image, an immutable committed snapshot
// published with an atomic pointer; commit installs fresh snapshots for
// all dirty frames (and a snapshot of the meta page, from which a view
// resolves roots) inside a seqlock window. A reader therefore never
// observes a torn commit: pages read while the sequence was stable all
// belong to one committed state, and ReadView.Atomically re-runs a
// multi-page operation whose window a commit overlapped. Non-resident
// pages are read from the main file, which is safe because no-steal
// guarantees a page being written back is resident — a reader can miss
// only on pages whose on-disk image is fully committed. (A narrow
// read/write lock still fences reader preads from the commit
// write-back, closing the race where a page becomes resident and dirty
// after a reader's miss but before its pread.)
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/pager"
	"hypermodel/internal/storage/wal"
)

// NumRoots is the number of named root slots in the meta page.
const NumRoots = 16

// ErrReadOnly is returned by mutating operations on a ReadView.
var ErrReadOnly = errors.New("store: read-only view")

// Handle is a pinned reference to a cached page.
type Handle interface {
	// Page returns the page image. The image may be mutated only if
	// MarkDirty is called before Release.
	Page() *page.Page
	// MarkDirty flags the page as modified so it is included in the
	// next Commit.
	MarkDirty()
	// Release unpins the page. The handle must not be used afterwards.
	Release()
}

// Space is the page-level storage abstraction consumed by the B+tree,
// slotted-page and object-store layers. *Store implements it locally;
// the remote package implements it over a TCP page server.
type Space interface {
	// Get pins the page with the given ID.
	Get(id page.ID) (Handle, error)
	// Alloc allocates a fresh zeroed page of the given type, pinned and
	// already marked dirty.
	Alloc(t page.Type) (page.ID, Handle, error)
	// Free returns a page to the free list.
	Free(id page.ID) error
	// Root returns the page ID stored in a named root slot, or
	// page.Invalid if the slot is unset.
	Root(slot int) page.ID
	// SetRoot updates a named root slot. The change is durable after
	// the next Commit.
	SetRoot(slot int, id page.ID)
	// Commit makes all modifications since the previous Commit durable.
	Commit() error
}

// Meta page payload layout (after the common page header).
const (
	metaMagicOff    = 0  // [8]byte
	metaVersionOff  = 8  // uint32
	metaFreeHeadOff = 12 // uint64 (page.ID)
	metaSeqOff      = 20 // uint64 commit sequence
	metaRootsOff    = 28 // NumRoots × uint64
)

var metaMagic = [8]byte{'H', 'Y', 'P', 'M', 'O', 'D', 'B', '1'}

const formatVersion = 1

// Options configure a Store.
type Options struct {
	// PoolPages is the buffer pool capacity in pages. Zero selects the
	// default (1024 pages = 4 MiB).
	PoolPages int
	// CheckpointBytes triggers an automatic checkpoint when the WAL
	// grows past this size. Zero selects the default (8 MiB).
	// Negative disables automatic checkpoints.
	CheckpointBytes int64
	// NoSync makes commits skip the WAL fsync. Faster, not crash-safe;
	// used by bulk loads that checkpoint at the end.
	NoSync bool
}

func (o *Options) withDefaults() Options {
	out := Options{PoolPages: 1024, CheckpointBytes: 8 << 20}
	if o == nil {
		return out
	}
	if o.PoolPages > 0 {
		out.PoolPages = o.PoolPages
	}
	if o.CheckpointBytes != 0 {
		out.CheckpointBytes = o.CheckpointBytes
	}
	out.NoSync = o.NoSync
	return out
}

// Store is the local implementation of Space.
type Store struct {
	// writeMu serializes the single writer: every mutating operation
	// (Alloc, Free, Commit, Checkpoint, Abort, Backup, DropCache,
	// Close) holds it end to end. Reads never take it.
	writeMu sync.Mutex
	// metaMu guards the live meta page payload (free-list head, roots,
	// metaDirty) so concurrent Root lookups are safe while the writer
	// mutates slots.
	metaMu sync.RWMutex
	// backMu fences reader preads (read side) from the commit
	// write-back (write side); see the package comment.
	backMu sync.RWMutex

	pg   *pager.Pager
	log  *wal.WAL
	pool *buffer.Pool
	opts Options

	meta      *page.Page                // working meta image; always resident, never in the pool
	metaDirty bool                      // guarded by metaMu
	metaSnap  atomic.Pointer[page.Page] // committed meta image for readers

	seq atomic.Uint64 // committed commit sequence number
	// rseq is the seqlock generation: odd while a commit is installing
	// snapshots, bumped to the next even value when the installation is
	// complete. Readers validate multi-page operations against it.
	rseq atomic.Uint64

	closed    bool
	recovered bool // recovery ran at open (for tests/diagnostics)
}

// Stats is a snapshot of store activity counters.
type Stats struct {
	Pool       buffer.Stats
	DiskReads  uint64
	DiskWrites uint64
	WALAppends uint64
	WALSyncs   uint64
	Commits    uint64
}

// Open opens (creating if necessary) the database at path. The WAL is
// kept in path+".wal". Pending committed work is recovered.
func Open(path string, opts *Options) (*Store, error) {
	pg, err := pager.Open(path)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(path + ".wal")
	if err != nil {
		pg.Close()
		return nil, err
	}
	s := &Store{pg: pg, log: log, opts: opts.withDefaults()}
	s.pool = buffer.New(s.opts.PoolPages)

	if log.Size() > 0 {
		if err := log.Replay(func(id page.ID, p *page.Page) error {
			return pg.Write(id, p)
		}); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		if err := pg.Sync(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		if err := log.Truncate(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		s.recovered = true
	}

	if pg.PageCount() == 0 {
		if err := s.initFresh(); err != nil {
			s.closeFiles()
			return nil, err
		}
	} else if err := s.loadMeta(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.log.Close()
	s.pg.Close()
}

func (s *Store) initFresh() error {
	if _, err := s.pg.Extend(); err != nil { // reserve page 0
		return err
	}
	m := page.New(page.TypeMeta)
	pl := m.Payload()
	copy(pl[metaMagicOff:], metaMagic[:])
	binary.LittleEndian.PutUint32(pl[metaVersionOff:], formatVersion)
	binary.LittleEndian.PutUint64(pl[metaFreeHeadOff:], uint64(page.Invalid))
	for i := 0; i < NumRoots; i++ {
		binary.LittleEndian.PutUint64(pl[metaRootsOff+8*i:], uint64(page.Invalid))
	}
	s.meta = m
	s.metaDirty = true
	return s.Commit()
}

// loadMeta (re)loads the meta page from disk and publishes it as the
// committed snapshot. Called at open and on Abort, both under writeMu
// (or before the store is shared).
func (s *Store) loadMeta() error {
	m := &page.Page{}
	if err := s.pg.Read(0, m); err != nil {
		return fmt.Errorf("store: load meta: %w", err)
	}
	pl := m.Payload()
	if [8]byte(pl[metaMagicOff:metaMagicOff+8]) != metaMagic {
		return errors.New("store: not a hypermodel database (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(pl[metaVersionOff:]); v != formatVersion {
		return fmt.Errorf("store: unsupported format version %d", v)
	}
	s.metaMu.Lock()
	s.meta = m
	s.metaDirty = false
	s.metaMu.Unlock()
	s.seq.Store(binary.LittleEndian.Uint64(pl[metaSeqOff:]))
	s.installMetaSnap()
	return nil
}

// installMetaSnap publishes a copy of the working meta page as the
// committed snapshot read by views. Writer only.
func (s *Store) installMetaSnap() {
	cp := *s.meta
	s.metaSnap.Store(&cp)
}

// handle implements Handle for the local store.
type handle struct {
	s *Store
	f *buffer.Frame
}

func (h *handle) Page() *page.Page { return h.f.Page }
func (h *handle) MarkDirty()       { h.s.pool.MarkDirty(h.f) }
func (h *handle) Release()         { h.s.pool.Release(h.f) }

// Get pins the page with the given ID, reading it from disk on a miss.
// Get never takes the writer lock: any number of goroutines may call it
// concurrently, and no lock is held across the disk read. Two goroutines
// that both miss on the same page both read it and race to insert; the
// loser adopts the winner's frame.
func (s *Store) Get(id page.ID) (Handle, error) {
	if id == 0 || id == page.Invalid {
		return nil, fmt.Errorf("store: get page %d: reserved page", id)
	}
	if f := s.pool.Get(id); f != nil {
		return &handle{s, f}, nil
	}
	img := &page.Page{}
	if err := s.readPage(id, img); err != nil {
		return nil, err
	}
	f, _ := s.pool.GetOrInsert(id, img)
	return &handle{s, f}, nil
}

// readPage reads a page from the main file under the write-back fence.
func (s *Store) readPage(id page.ID, dst *page.Page) error {
	s.backMu.RLock()
	defer s.backMu.RUnlock()
	return s.pg.Read(id, dst)
}

// Alloc allocates a fresh zeroed page of type t, pinned and dirty.
func (s *Store) Alloc(t page.Type) (page.ID, Handle, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()

	if head := s.freeHead(); head != page.Invalid {
		h, err := s.Get(head)
		if err != nil {
			return page.Invalid, nil, fmt.Errorf("store: alloc from free list: %w", err)
		}
		next := page.ID(binary.LittleEndian.Uint64(h.Page().Payload()))
		s.setFreeHead(next)
		h.Page().Reset(t)
		h.MarkDirty()
		return head, h, nil
	}

	id, err := s.pg.Extend()
	if err != nil {
		return page.Invalid, nil, err
	}
	img := page.New(t)
	f := s.pool.Insert(id, img)
	h := &handle{s, f}
	h.MarkDirty()
	return id, h, nil
}

// Free pushes page id onto the free list.
func (s *Store) Free(id page.ID) error {
	if id == 0 || id == page.Invalid {
		return fmt.Errorf("store: free page %d: reserved page", id)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	h, err := s.Get(id)
	if err != nil {
		return err
	}
	defer h.Release()
	p := h.Page()
	p.Reset(page.TypeFree)
	binary.LittleEndian.PutUint64(p.Payload(), uint64(s.freeHead()))
	s.setFreeHead(id)
	h.MarkDirty()
	return nil
}

func (s *Store) freeHead() page.ID {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	return page.ID(binary.LittleEndian.Uint64(s.meta.Payload()[metaFreeHeadOff:]))
}

func (s *Store) setFreeHead(id page.ID) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaFreeHeadOff:], uint64(id))
	s.metaDirty = true
}

// Root returns the page ID in root slot, or page.Invalid if unset.
// Safe for concurrent use; it reflects the writer's uncommitted root
// changes (views resolve roots against the committed snapshot instead).
func (s *Store) Root(slot int) page.ID {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	return page.ID(binary.LittleEndian.Uint64(s.meta.Payload()[metaRootsOff+8*slot:]))
}

// SetRoot updates root slot; durable at the next Commit.
func (s *Store) SetRoot(slot int, id page.ID) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaRootsOff+8*slot:], uint64(id))
	s.metaDirty = true
}

// Commit makes every modification since the last Commit durable: dirty
// page images go to the WAL, a commit record is appended and synced,
// then the images are written back to the main file (unsynced), fresh
// committed snapshots are installed for readers, and the frames marked
// clean.
func (s *Store) Commit() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.commitLocked()
}

func (s *Store) commitLocked() error {
	dirty := s.pool.DirtyFrames()
	s.metaMu.RLock()
	metaDirty := s.metaDirty
	s.metaMu.RUnlock()
	if len(dirty) == 0 && !metaDirty {
		return nil
	}
	newSeq := s.seq.Load() + 1
	s.metaMu.Lock()
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaSeqOff:], newSeq)
	s.metaDirty = true
	s.metaMu.Unlock()

	for _, f := range dirty {
		if _, err := s.log.AppendPage(f.ID, f.Page); err != nil {
			return err
		}
	}
	if _, err := s.log.AppendPage(0, s.meta); err != nil {
		return err
	}
	if s.opts.NoSync {
		if _, err := s.log.AppendCommitNoSync(newSeq); err != nil {
			return err
		}
	} else if _, err := s.log.AppendCommit(newSeq); err != nil {
		return err
	}

	// Write-back, fenced against reader preads. No-steal means a reader
	// can only be pread-ing pages that are not resident, hence not in
	// this dirty set — the fence closes the one remaining window, where
	// a page becomes resident and dirty between a reader's miss and its
	// pread.
	s.backMu.Lock()
	for _, f := range dirty {
		if err := s.pg.Write(f.ID, f.Page); err != nil {
			s.backMu.Unlock()
			return err
		}
	}
	if err := s.pg.Write(0, s.meta); err != nil {
		s.backMu.Unlock()
		return err
	}
	s.backMu.Unlock()

	// Install the new committed state for readers. The odd/even seqlock
	// generation lets a reader detect that this window overlapped its
	// operation and re-run it (ReadView.Atomically).
	s.rseq.Add(1)
	for _, f := range dirty {
		f.InstallSnapshot()
	}
	s.installMetaSnap()
	s.seq.Store(newSeq)
	s.rseq.Add(1)

	s.pool.MarkAllClean()
	s.metaMu.Lock()
	s.metaDirty = false
	s.metaMu.Unlock()

	if s.opts.CheckpointBytes > 0 && s.log.Size() > s.opts.CheckpointBytes {
		return s.checkpointLocked()
	}
	return nil
}

// Checkpoint fsyncs the main file and truncates the WAL. Implies Commit.
func (s *Store) Checkpoint() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.commitLocked(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if err := s.pg.Sync(); err != nil {
		return err
	}
	return s.log.Truncate()
}

// DropCache empties the buffer pool, so the next access to every page
// is cold (a disk read). It refuses to run with uncommitted changes.
// The meta page stays resident; reopening a real database would reread
// one page, which is negligible and keeps the API misuse-proof.
func (s *Store) DropCache() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if len(s.pool.DirtyFrames()) > 0 {
		return errors.New("store: DropCache with uncommitted changes")
	}
	s.pool.Drop()
	return nil
}

// Backup writes a consistent copy of the database to destPath (R10).
// It checkpoints first, so the copy contains every committed change
// and needs no WAL; the backup can be opened directly as a database.
// The writer is locked for the duration (the databases here are small;
// a fuzzy ARIES-style backup would be overkill).
func (s *Store) Backup(destPath string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.commitLocked(); err != nil {
		return err
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	dst, err := pager.Open(destPath)
	if err != nil {
		return fmt.Errorf("store: backup: %w", err)
	}
	if dst.PageCount() != 0 {
		dst.Close()
		return fmt.Errorf("store: backup target %s is not empty", destPath)
	}
	var img page.Page
	for id := uint64(0); id < s.pg.PageCount(); id++ {
		if err := s.pg.Read(page.ID(id), &img); err != nil {
			// Never-written holes (allocated but uncommitted at a past
			// crash) fail checksum validation; back them up as free
			// pages.
			img.Reset(page.TypeFree)
		}
		if err := dst.Write(page.ID(id), &img); err != nil {
			dst.Close()
			return fmt.Errorf("store: backup: %w", err)
		}
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}

// Abort discards all uncommitted modifications: pooled dirty pages are
// dropped and the meta page is reloaded from disk. Because the store
// is no-steal (nothing reaches the WAL or the file before Commit),
// dropping the cache is a complete rollback. The committed state —
// what readers see — is unchanged.
func (s *Store) Abort() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.pool.Drop()
	if s.pg.PageCount() > 0 {
		if err := s.loadMeta(); err != nil {
			return fmt.Errorf("store: abort: %w", err)
		}
	} else {
		s.metaMu.Lock()
		s.metaDirty = false
		s.metaMu.Unlock()
	}
	return nil
}

// Seq returns the committed commit-sequence number.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// Stats returns a snapshot of activity counters. Every source is
// atomic, so Stats never blocks the read path (or waits behind a
// commit fsync).
func (s *Store) Stats() Stats {
	reads, writes := s.pg.Stats()
	appends, syncs := s.log.Stats()
	return Stats{
		Pool:       s.pool.Stats(),
		DiskReads:  reads,
		DiskWrites: writes,
		WALAppends: appends,
		WALSyncs:   syncs,
		Commits:    s.seq.Load(),
	}
}

// CacheStats reports buffer pool hits, misses and disk reads in the
// shape shared with remote page-server clients.
func (s *Store) CacheStats() (hits, misses, reads uint64) {
	st := s.Stats()
	return st.Pool.Hits, st.Pool.Misses, st.DiskReads
}

// Recovered reports whether crash recovery ran when the store was
// opened.
func (s *Store) Recovered() bool { return s.recovered }

// PageCount reports the current size of the database file in pages.
func (s *Store) PageCount() uint64 { return s.pg.PageCount() }

// Close commits pending work, checkpoints, and closes the files.
func (s *Store) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.commitLocked(); err != nil {
		return err
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	if err := s.log.Close(); err != nil {
		s.pg.Close()
		return err
	}
	return s.pg.Close()
}

// ReadView is a read-only Space over the store's committed state. Any
// number of views (and goroutines per view) may read concurrently with
// each other and with the single writer: pages resolve to immutable
// committed snapshots, roots resolve against the committed meta page,
// and Atomically guards multi-page operations against commits
// installing mid-operation. Mutating methods fail with ErrReadOnly.
type ReadView struct {
	s *Store
}

// ReadView returns a read-only view of the store's committed state.
// Views are cheap: they share the store's buffer pool (reads through a
// view warm it) and hold no state of their own.
func (s *Store) ReadView() *ReadView { return &ReadView{s} }

// roHandle is a Handle over an immutable committed snapshot. There is
// no pin to release: the snapshot outlives any frame bookkeeping.
type roHandle struct {
	p *page.Page
}

func (h roHandle) Page() *page.Page { return h.p }
func (h roHandle) MarkDirty()       { panic("store: MarkDirty through a read-only view") }
func (h roHandle) Release()         {}

// Get returns the committed image of a page. On a pool miss the page is
// read from the main file — committed by definition under no-steal —
// and inserted so later readers (and the writer) hit.
func (v *ReadView) Get(id page.ID) (Handle, error) {
	if id == 0 || id == page.Invalid {
		return nil, fmt.Errorf("store: get page %d: reserved page", id)
	}
	if sp := v.s.pool.Snapshot(id); sp != nil {
		return roHandle{sp}, nil
	}
	img := &page.Page{}
	if err := v.s.readPage(id, img); err != nil {
		return nil, err
	}
	f, _ := v.s.pool.GetOrInsert(id, img)
	sp := f.Snapshot()
	v.s.pool.Release(f)
	return roHandle{sp}, nil
}

// Alloc fails: views are read-only.
func (v *ReadView) Alloc(t page.Type) (page.ID, Handle, error) {
	return page.Invalid, nil, ErrReadOnly
}

// Free fails: views are read-only.
func (v *ReadView) Free(id page.ID) error { return ErrReadOnly }

// Root resolves a root slot against the committed meta snapshot, so an
// uncommitted SetRoot (say, a B+tree root split inside the writer's
// open transaction) is invisible to readers.
func (v *ReadView) Root(slot int) page.ID {
	m := v.s.metaSnap.Load()
	return page.ID(binary.LittleEndian.Uint64(m.Payload()[metaRootsOff+8*slot:]))
}

// Roots returns all root slots resolved against one committed meta
// snapshot — a torn root directory is impossible.
func (v *ReadView) Roots() [NumRoots]page.ID {
	m := v.s.metaSnap.Load()
	pl := m.Payload()
	var out [NumRoots]page.ID
	for i := range out {
		out[i] = page.ID(binary.LittleEndian.Uint64(pl[metaRootsOff+8*i:]))
	}
	return out
}

// SetRoot panics: views are read-only. (Space's SetRoot has no error
// return; reaching this is a programming error, like double-releasing
// a frame.)
func (v *ReadView) SetRoot(slot int, id page.ID) {
	panic("store: SetRoot through a read-only view")
}

// Commit fails: views are read-only.
func (v *ReadView) Commit() error { return ErrReadOnly }

// Abort is a no-op: a view holds no uncommitted state to discard.
func (v *ReadView) Abort() error { return nil }

// Close is a no-op: the view borrows the store's resources.
func (v *ReadView) Close() error { return nil }

// DropCache fails: the pool is shared with the writer and other
// readers, so a view may not empty it.
func (v *ReadView) DropCache() error { return ErrReadOnly }

// CacheStats reports the shared pool's hits, misses and disk reads.
func (v *ReadView) CacheStats() (hits, misses, reads uint64) {
	return v.s.CacheStats()
}

// Seq returns the committed commit-sequence number, as Store.Seq.
func (v *ReadView) Seq() uint64 { return v.s.Seq() }

// Atomically runs op so that every page it reads through the view
// belongs to one committed state. If a commit installs while op runs
// (or is installing when it starts), op is re-run — so op must be
// restartable: no side effects it cannot repeat, and any error it
// returns while the state was torn is discarded along with the run.
// The final run's error is returned.
func (v *ReadView) Atomically(op func() error) error {
	for {
		s0 := v.s.rseq.Load()
		if s0&1 == 0 {
			err := op()
			if v.s.rseq.Load() == s0 {
				return err
			}
		}
		runtime.Gosched()
	}
}

var (
	_ Space = (*Store)(nil)
	_ Space = (*ReadView)(nil)
)
