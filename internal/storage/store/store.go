// Package store provides the transactional page store: a buffer pool
// over a single database file, with redo write-ahead logging, crash
// recovery, a page free list, and a small directory of named roots.
//
// Higher layers (B+trees, slotted record files, the object store)
// operate against the Space interface so that the same code runs over a
// local store or a remote page-server client.
//
// Durability protocol (redo-only, no-steal):
//
//  1. Mutations happen in pooled page images flagged dirty.
//  2. Commit appends every dirty image to the WAL, appends a commit
//     record, and fsyncs the log. Only then are the images written
//     (without fsync) to the main file and marked clean.
//  3. Checkpoint fsyncs the main file and truncates the WAL.
//  4. Recovery at open replays committed WAL images into the main file,
//     repairing any torn write-backs, then truncates the log.
//
// Concurrency model (single writer, many readers):
//
// The store serializes mutation — Alloc, Free, SetRoot, Commit,
// Checkpoint, Abort, Backup, Close — behind one writer mutex, exactly
// as before. Reads no longer queue behind it. Get is safe to call from
// any number of goroutines: the buffer pool's frame table is sharded,
// no lock is held across a disk read on a miss, and a double-miss race
// resolves through GetOrInsert. Concurrent Gets are safe alongside each
// other; running them concurrently with a writer requires ReadView.
//
// ReadView is the concurrent read path proper. Every resident frame
// carries, besides its working image, an immutable committed snapshot
// published with an atomic pointer; commit installs fresh snapshots for
// all dirty frames (and a snapshot of the meta page, from which a view
// resolves roots) inside a seqlock window. A reader therefore never
// observes a torn commit: pages read while the sequence was stable all
// belong to one committed state, and ReadView.Atomically re-runs a
// multi-page operation whose window a commit overlapped. Non-resident
// pages are read from the main file, which is safe because no-steal
// guarantees a page being written back is resident — a reader can miss
// only on pages whose on-disk image is fully committed. (A narrow
// read/write lock still fences reader preads from the commit
// write-back, closing the race where a page becomes resident and dirty
// after a reader's miss but before its pread.)
//
// MVCC version ring (multi-version reads):
//
// Beyond the always-latest ReadView, the store retains the last K
// committed versions (Options.VersionRing). Each commit publishes an
// immutable version entry — the commit's meta snapshot plus the map of
// page images it replaced (before-images) — instead of discarding the
// previous state outright. Snapshot() pins a SnapshotView to the
// current version: the view keeps reading that exact committed state
// while later commits proceed, resolving a page to the before-image
// recorded by the oldest later commit that overwrote it, or to the
// live committed image when no later commit touched it. A view whose
// version has been evicted from the ring fails with ErrSnapshotTooOld.
//
// Group commit:
//
// Concurrent Commit/CommitTokens callers coalesce: the first caller
// becomes the leader, absorbs every request queued behind it, writes
// the combined dirty set plus one commit barrier to the WAL, and
// amortizes a single fsync across the whole batch while the followers
// block on the leader's flush. CommitStats reports how well batching
// is amortizing flushes.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/pager"
	"hypermodel/internal/storage/vfs"
	"hypermodel/internal/storage/wal"
)

// NumRoots is the number of named root slots in the meta page.
const NumRoots = 16

// ErrReadOnly is returned by mutating operations on a ReadView.
var ErrReadOnly = errors.New("store: read-only view")

// ErrSnapshotTooOld is returned by a SnapshotView whose pinned version
// has aged out of the version ring: more than Options.VersionRing
// commits have landed since the view was pinned, so the before-images
// needed to reconstruct its state are gone. Re-pin with Snapshot().
var ErrSnapshotTooOld = errors.New("store: snapshot version evicted from the ring")

// ErrCorruptPage is the typed at-rest corruption error every read path
// — Get, ReadView.Get, SnapshotView.Get, recovery, Scrub — surfaces
// when a page's stored image fails validation. Match with errors.As to
// learn which page (and which committed sequence) was damaged.
type ErrCorruptPage = pager.ErrCorruptPage

// Handle is a pinned reference to a cached page.
type Handle interface {
	// Page returns the page image. The image may be mutated only if
	// MarkDirty is called before Release.
	Page() *page.Page
	// MarkDirty flags the page as modified so it is included in the
	// next Commit.
	MarkDirty()
	// Release unpins the page. The handle must not be used afterwards.
	Release()
}

// Space is the page-level storage abstraction consumed by the B+tree,
// slotted-page and object-store layers. *Store implements it locally;
// the remote package implements it over a TCP page server.
type Space interface {
	// Get pins the page with the given ID.
	Get(id page.ID) (Handle, error)
	// Alloc allocates a fresh zeroed page of the given type, pinned and
	// already marked dirty.
	Alloc(t page.Type) (page.ID, Handle, error)
	// Free returns a page to the free list.
	Free(id page.ID) error
	// Root returns the page ID stored in a named root slot, or
	// page.Invalid if the slot is unset.
	Root(slot int) page.ID
	// SetRoot updates a named root slot. The change is durable after
	// the next Commit.
	SetRoot(slot int, id page.ID)
	// Commit makes all modifications since the previous Commit durable.
	Commit() error
}

// Meta page payload layout (after the common page header).
const (
	metaMagicOff    = 0  // [8]byte
	metaVersionOff  = 8  // uint32
	metaFreeHeadOff = 12 // uint64 (page.ID)
	metaSeqOff      = 20 // uint64 commit sequence
	metaRootsOff    = 28 // NumRoots × uint64
)

var metaMagic = [8]byte{'H', 'Y', 'P', 'M', 'O', 'D', 'B', '1'}

const formatVersion = 1

// Options configure a Store.
type Options struct {
	// PoolPages is the buffer pool capacity in pages. Zero selects the
	// default (1024 pages = 4 MiB).
	PoolPages int
	// CheckpointBytes triggers an automatic checkpoint when the WAL
	// grows past this size. Zero selects the default (8 MiB).
	// Negative disables automatic checkpoints.
	CheckpointBytes int64
	// NoSync makes commits skip the WAL fsync. Faster, not crash-safe;
	// used by bulk loads that checkpoint at the end.
	NoSync bool
	// VersionRing is the number of committed versions kept for pinned
	// snapshots (see Snapshot). A SnapshotView stays readable until
	// VersionRing commits have landed after it was pinned. Zero selects
	// the default (8); negative disables retention, so snapshots go
	// stale at the first commit after the pin.
	VersionRing int
	// FS is the filesystem the database and WAL files live on. Nil
	// selects the real filesystem (vfs.OS); tests substitute vfs.NewMem
	// for deterministic no-temp-dir runs or vfs.NewCrash for seeded
	// power-cut and corruption injection.
	FS vfs.FS
	// TokenKeep, when positive, keeps a ring of that many recent
	// applied commit tokens and re-logs it across every checkpoint
	// truncation, so a server restarted over this store still
	// recognizes a resent commit it already applied (exactly-once
	// across crashes). Zero — the default — retains tokens only within
	// one WAL generation, exactly the pre-cluster behavior.
	TokenKeep int
}

func (o *Options) withDefaults() Options {
	out := Options{PoolPages: 1024, CheckpointBytes: 8 << 20, VersionRing: 8, FS: vfs.OS()}
	if o == nil {
		return out
	}
	if o.PoolPages > 0 {
		out.PoolPages = o.PoolPages
	}
	if o.CheckpointBytes != 0 {
		out.CheckpointBytes = o.CheckpointBytes
	}
	if o.VersionRing > 0 {
		out.VersionRing = o.VersionRing
	} else if o.VersionRing < 0 {
		out.VersionRing = 0
	}
	out.NoSync = o.NoSync
	if o.FS != nil {
		out.FS = o.FS
	}
	if o.TokenKeep > 0 {
		out.TokenKeep = o.TokenKeep
	}
	return out
}

// Store is the local implementation of Space.
type Store struct {
	// writeMu serializes the single writer: every mutating operation
	// (Alloc, Free, Commit, Checkpoint, Abort, Backup, DropCache,
	// Close) holds it end to end. Reads never take it.
	writeMu sync.Mutex
	// metaMu guards the live meta page payload (free-list head, roots,
	// metaDirty) so concurrent Root lookups are safe while the writer
	// mutates slots.
	metaMu sync.RWMutex
	// backMu fences reader preads (read side) from the commit
	// write-back (write side); see the package comment.
	backMu sync.RWMutex

	pg   *pager.Pager
	log  *wal.WAL
	pool *buffer.Pool
	opts Options

	meta      *page.Page                // working meta image; always resident, never in the pool
	metaDirty bool                      // guarded by metaMu
	metaSnap  atomic.Pointer[page.Page] // committed meta image for readers

	seq atomic.Uint64 // committed commit sequence number
	// rseq is the seqlock generation: odd while a commit is installing
	// snapshots, bumped to the next even value when the installation is
	// complete. Readers validate multi-page operations against it.
	rseq atomic.Uint64

	// ring holds the last Options.VersionRing committed versions in
	// ascending sequence order, published atomically as an immutable
	// slice inside the commit's seqlock window. Pinned SnapshotViews
	// resolve historical page images against it.
	ring    atomic.Pointer[[]*version]
	ringCap int

	// Group-commit queue: concurrent committers enqueue; the first
	// becomes leader and flushes the whole batch under one fsync.
	gcMu     sync.Mutex
	gcQueue  []*gcWaiter
	gcActive bool

	// Commit batching counters (see CommitStats).
	txnCommits   atomic.Uint64
	flushes      atomic.Uint64
	groupFlushes atomic.Uint64
	groupedTxns  atomic.Uint64
	maxBatch     atomic.Uint64

	closed    bool
	recovered bool // recovery ran at open (for tests/diagnostics)

	// Two-phase commit state (see prepare.go). prepared holds
	// transactions that voted yes but have no decision; keepTokens is
	// the ring of recently applied commit tokens re-logged across
	// checkpoints (Options.TokenKeep); abortRing is the bounded memory
	// of durable abort decisions. All guarded by writeMu; the recov*
	// slices are written once at Open and read-only afterwards.
	prepared    map[uint64]*PreparedTxn
	prepOrder   []uint64
	keepTokens  []uint64
	keepSet     map[uint64]struct{}
	abortRing   []uint64
	abortSet    map[uint64]struct{}
	recovTokens []uint64
	recovAborts []uint64
}

// version is one committed state retained in the ring: the sequence
// number it published, its committed meta image, and the page images
// it replaced (the before-images a pinned view older than this commit
// needs to reconstruct its state). All fields are immutable once the
// entry is published.
type version struct {
	seq    uint64
	meta   *page.Page
	before map[page.ID]*page.Page
}

// gcWaiter is one queued commit request: the transaction tokens it
// carries (empty for anonymous local commits) and the channel its
// caller blocks on until a leader's flush covers it.
type gcWaiter struct {
	tokens []uint64
	txns   uint64
	ch     chan error
}

// Stats is a snapshot of store activity counters.
type Stats struct {
	Pool       buffer.Stats
	DiskReads  uint64
	DiskWrites uint64
	WALAppends uint64
	WALSyncs   uint64
	Commits    uint64
}

// CommitStats report how effectively concurrent commits are being
// batched under shared WAL flushes.
type CommitStats struct {
	// Commits is the number of transactions durably committed.
	Commits uint64
	// Flushes is the number of physical commit barriers written to the
	// WAL; Commits/Flushes is the average batch size.
	Flushes uint64
	// GroupCommits is the number of barriers that carried more than
	// one transaction.
	GroupCommits uint64
	// GroupedTxns is the number of transactions that shared their
	// barrier with at least one other.
	GroupedTxns uint64
	// MaxBatch is the largest number of transactions under one barrier.
	MaxBatch uint64
}

// Open opens (creating if necessary) the database at path. The WAL is
// kept in path+".wal", both on Options.FS (the real filesystem by
// default). Pending committed work is recovered.
func Open(path string, opts *Options) (*Store, error) {
	o := opts.withDefaults()
	pg, err := pager.OpenFS(o.FS, path)
	if err != nil {
		return nil, err
	}
	log, err := wal.OpenFS(o.FS, path+".wal")
	if err != nil {
		pg.Close()
		return nil, err
	}
	s := &Store{pg: pg, log: log, opts: o}
	s.pool = buffer.New(s.opts.PoolPages)
	s.ringCap = s.opts.VersionRing
	empty := []*version{}
	s.ring.Store(&empty)

	if log.Size() > 0 {
		res, err := log.ReplayFull(func(id page.ID, p *page.Page) error {
			// A crash can lose unsynced file growth: a committed image
			// may lie past the surviving end of the file (or inside a
			// torn final page). Regrow before writing.
			if err := pg.EnsurePages(uint64(id) + 1); err != nil {
				return err
			}
			return pg.Write(id, p)
		})
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		if err := pg.Sync(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		if err := log.Truncate(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		s.seedRecovery(res)
		// Truncation just dropped the in-doubt prepared records and the
		// token/abort memory with the rest of the log; put them back so
		// a second crash before the next checkpoint still recovers them.
		if err := s.relogLocked(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: recovery: %w", err)
		}
		s.recovered = true
	}

	if pg.PageCount() == 0 {
		if err := s.initFresh(); err != nil {
			s.closeFiles()
			return nil, err
		}
	} else if err := s.loadMeta(); err != nil {
		// A power cut during first-ever initialization can leave the
		// file grown but page 0 all zero (the meta write-back never
		// ran, and no WAL barrier committed a copy). An all-zero meta
		// can never be a committed state — every commit stores a
		// checksummed one — so it is safe to initialize afresh.
		// Anything else (garbage magic, foreign contents) stays fatal.
		var raw page.Page
		if rerr := s.readRaw(0, &raw); rerr == nil && isZeroPage(&raw) {
			if ierr := s.initFresh(); ierr != nil {
				s.closeFiles()
				return nil, ierr
			}
		} else {
			s.closeFiles()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.log.Close()
	s.pg.Close()
}

func (s *Store) initFresh() error {
	if s.pg.PageCount() == 0 {
		if _, err := s.pg.Extend(); err != nil { // reserve page 0
			return err
		}
	}
	m := page.New(page.TypeMeta)
	pl := m.Payload()
	copy(pl[metaMagicOff:], metaMagic[:])
	binary.LittleEndian.PutUint32(pl[metaVersionOff:], formatVersion)
	binary.LittleEndian.PutUint64(pl[metaFreeHeadOff:], uint64(page.Invalid))
	for i := 0; i < NumRoots; i++ {
		binary.LittleEndian.PutUint64(pl[metaRootsOff+8*i:], uint64(page.Invalid))
	}
	s.meta = m
	s.metaDirty = true
	return s.Commit()
}

// loadMeta (re)loads the meta page from disk and publishes it as the
// committed snapshot. Called at open and on Abort, both under writeMu
// (or before the store is shared).
func (s *Store) loadMeta() error {
	m := &page.Page{}
	if err := s.pg.Read(0, m); err != nil {
		return fmt.Errorf("store: load meta: %w", err)
	}
	pl := m.Payload()
	if [8]byte(pl[metaMagicOff:metaMagicOff+8]) != metaMagic {
		return errors.New("store: not a hypermodel database (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(pl[metaVersionOff:]); v != formatVersion {
		return fmt.Errorf("store: unsupported format version %d", v)
	}
	s.metaMu.Lock()
	s.meta = m
	s.metaDirty = false
	s.metaMu.Unlock()
	s.seq.Store(binary.LittleEndian.Uint64(pl[metaSeqOff:]))
	s.installMetaSnap()
	return nil
}

// installMetaSnap publishes a copy of the working meta page as the
// committed snapshot read by views. Writer only.
func (s *Store) installMetaSnap() {
	cp := *s.meta
	s.metaSnap.Store(&cp)
}

// handle implements Handle for the local store.
type handle struct {
	s *Store
	f *buffer.Frame
}

func (h *handle) Page() *page.Page { return h.f.Page }
func (h *handle) MarkDirty()       { h.s.pool.MarkDirty(h.f) }
func (h *handle) Release()         { h.s.pool.Release(h.f) }

// Get pins the page with the given ID, reading it from disk on a miss.
// Get never takes the writer lock: any number of goroutines may call it
// concurrently, and no lock is held across the disk read. Two goroutines
// that both miss on the same page both read it and race to insert; the
// loser adopts the winner's frame.
func (s *Store) Get(id page.ID) (Handle, error) {
	if id == 0 || id == page.Invalid {
		return nil, fmt.Errorf("store: get page %d: reserved page", id)
	}
	if f := s.pool.Get(id); f != nil {
		return &handle{s, f}, nil
	}
	img := &page.Page{}
	if err := s.readPage(id, img); err != nil {
		return nil, err
	}
	f, _ := s.pool.GetOrInsert(id, img)
	return &handle{s, f}, nil
}

// readPage reads a page from the main file under the write-back fence.
// Corruption errors are stamped with the committed sequence current at
// detection, completing the ErrCorruptPage{ID, Seq} taxonomy.
func (s *Store) readPage(id page.ID, dst *page.Page) error {
	s.backMu.RLock()
	err := s.pg.Read(id, dst)
	s.backMu.RUnlock()
	var ce *pager.ErrCorruptPage
	if errors.As(err, &ce) && ce.Seq == 0 {
		ce.Seq = s.seq.Load()
	}
	return err
}

// Alloc allocates a fresh zeroed page of type t, pinned and dirty.
func (s *Store) Alloc(t page.Type) (page.ID, Handle, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()

	if head := s.freeHead(); head != page.Invalid {
		h, err := s.Get(head)
		if err != nil {
			return page.Invalid, nil, fmt.Errorf("store: alloc from free list: %w", err)
		}
		next := page.ID(binary.LittleEndian.Uint64(h.Page().Payload()))
		s.setFreeHead(next)
		h.Page().Reset(t)
		h.MarkDirty()
		return head, h, nil
	}

	id, err := s.pg.Extend()
	if err != nil {
		return page.Invalid, nil, err
	}
	img := page.New(t)
	f := s.pool.Insert(id, img)
	h := &handle{s, f}
	h.MarkDirty()
	return id, h, nil
}

// Free pushes page id onto the free list.
func (s *Store) Free(id page.ID) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.freeLocked(id)
}

// freeLocked is Free with writeMu already held (DecidePrepared applies
// a prepared transaction's frees under its own writeMu hold).
func (s *Store) freeLocked(id page.ID) error {
	if id == 0 || id == page.Invalid {
		return fmt.Errorf("store: free page %d: reserved page", id)
	}
	h, err := s.Get(id)
	if err != nil {
		return err
	}
	defer h.Release()
	p := h.Page()
	p.Reset(page.TypeFree)
	binary.LittleEndian.PutUint64(p.Payload(), uint64(s.freeHead()))
	s.setFreeHead(id)
	h.MarkDirty()
	return nil
}

func (s *Store) freeHead() page.ID {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	return page.ID(binary.LittleEndian.Uint64(s.meta.Payload()[metaFreeHeadOff:]))
}

func (s *Store) setFreeHead(id page.ID) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaFreeHeadOff:], uint64(id))
	s.metaDirty = true
}

// Root returns the page ID in root slot, or page.Invalid if unset.
// Safe for concurrent use; it reflects the writer's uncommitted root
// changes (views resolve roots against the committed snapshot instead).
func (s *Store) Root(slot int) page.ID {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	return page.ID(binary.LittleEndian.Uint64(s.meta.Payload()[metaRootsOff+8*slot:]))
}

// SetRoot updates root slot; durable at the next Commit.
func (s *Store) SetRoot(slot int, id page.ID) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaRootsOff+8*slot:], uint64(id))
	s.metaDirty = true
}

// Commit makes every modification since the last Commit durable: dirty
// page images go to the WAL, a commit record is appended and synced,
// then the images are written back to the main file (unsynced), fresh
// committed snapshots are installed for readers, and the frames marked
// clean. Concurrent callers coalesce into group commits: the first
// becomes the leader and flushes every request queued behind it under
// a single fsync.
func (s *Store) Commit() error {
	return s.groupCommit(nil, 1)
}

// CommitTokens is Commit for a leader acting on behalf of a batch of
// transactions: the commit barrier written to the WAL records the
// batch's transaction tokens (kindGroup), and the batch counts as
// len(tokens) transactions in CommitStats. An empty token list behaves
// exactly like Commit.
func (s *Store) CommitTokens(tokens []uint64) error {
	txns := uint64(len(tokens))
	if txns == 0 {
		txns = 1
	}
	return s.groupCommit(tokens, txns)
}

// groupCommit enqueues one commit request and either waits for an
// active leader's flush to cover it or becomes the leader and drains
// the queue itself, batch by batch, until it is empty.
func (s *Store) groupCommit(tokens []uint64, txns uint64) error {
	w := &gcWaiter{tokens: tokens, txns: txns, ch: make(chan error, 1)}
	s.gcMu.Lock()
	s.gcQueue = append(s.gcQueue, w)
	if s.gcActive {
		s.gcMu.Unlock()
		return <-w.ch
	}
	s.gcActive = true
	for {
		batch := s.gcQueue
		s.gcQueue = nil
		if len(batch) == 0 {
			s.gcActive = false
			s.gcMu.Unlock()
			break
		}
		s.gcMu.Unlock()

		var toks []uint64
		var n uint64
		for _, b := range batch {
			toks = append(toks, b.tokens...)
			n += b.txns
		}
		s.writeMu.Lock()
		err := s.commitLocked(toks, n)
		s.writeMu.Unlock()
		for _, b := range batch {
			b.ch <- err
		}
		s.gcMu.Lock()
	}
	return <-w.ch
}

// commitLocked flushes the current dirty set as one commit covering
// txns transactions identified by tokens (both may describe a batch
// when a group-commit leader is calling). Direct callers that are not
// leaders (Checkpoint, Backup, Close) pass nil, 1.
func (s *Store) commitLocked(tokens []uint64, txns uint64) error {
	err := s.flushLocked(txns, func(newSeq uint64) error {
		if len(tokens) > 0 {
			_, err := s.log.AppendCommitGroup(newSeq, tokens, s.opts.NoSync)
			return err
		}
		if s.opts.NoSync {
			_, err := s.log.AppendCommitNoSync(newSeq)
			return err
		}
		_, err := s.log.AppendCommit(newSeq)
		return err
	})
	if err != nil {
		return err
	}
	s.recordTokensLocked(tokens)
	return s.maybeCheckpointLocked()
}

// flushLocked writes the current dirty set to the WAL, seals it with
// the barrier record the caller appends (a commit, a commit group, or
// a 2PC decide), writes the images back to the main file, and installs
// the new committed state for readers. It is the shared tail of
// commitLocked and DecidePrepared; barrier runs exactly once, after
// the dirty images are in the log.
func (s *Store) flushLocked(txns uint64, barrier func(newSeq uint64) error) error {
	dirty := s.pool.DirtyFrames()
	s.metaMu.RLock()
	metaDirty := s.metaDirty
	s.metaMu.RUnlock()
	if len(dirty) == 0 && !metaDirty {
		return nil
	}
	newSeq := s.seq.Load() + 1
	s.metaMu.Lock()
	binary.LittleEndian.PutUint64(s.meta.Payload()[metaSeqOff:], newSeq)
	s.metaDirty = true
	s.metaMu.Unlock()

	for _, f := range dirty {
		if _, err := s.log.AppendPage(f.ID, f.Page); err != nil {
			return err
		}
	}
	if _, err := s.log.AppendPage(0, s.meta); err != nil {
		return err
	}
	if err := barrier(newSeq); err != nil {
		return err
	}

	// Write-back, fenced against reader preads. No-steal means a reader
	// can only be pread-ing pages that are not resident, hence not in
	// this dirty set — the fence closes the one remaining window, where
	// a page becomes resident and dirty between a reader's miss and its
	// pread.
	s.backMu.Lock()
	for _, f := range dirty {
		if err := s.pg.Write(f.ID, f.Page); err != nil {
			s.backMu.Unlock()
			return err
		}
	}
	if err := s.pg.Write(0, s.meta); err != nil {
		s.backMu.Unlock()
		return err
	}
	s.backMu.Unlock()

	// Install the new committed state for readers. The odd/even seqlock
	// generation lets a reader detect that this window overlapped its
	// operation and re-run it (ReadView.Atomically). The version-ring
	// entry — this commit's before-images plus its meta snapshot — is
	// published inside the same window, so a reader that saw a stable
	// generation saw a ring covering every completed commit.
	s.rseq.Add(1)
	var before map[page.ID]*page.Page
	if s.ringCap > 0 {
		before = make(map[page.ID]*page.Page, len(dirty))
		for _, f := range dirty {
			if old := f.Snapshot(); old != nil {
				before[f.ID] = old
			}
		}
	}
	for _, f := range dirty {
		f.InstallSnapshot()
	}
	s.installMetaSnap()
	if s.ringCap > 0 {
		old := *s.ring.Load()
		start := 0
		if len(old)+1 > s.ringCap {
			start = len(old) + 1 - s.ringCap
		}
		entries := make([]*version, 0, len(old)+1-start)
		entries = append(entries, old[start:]...)
		entries = append(entries, &version{seq: newSeq, meta: s.metaSnap.Load(), before: before})
		s.ring.Store(&entries)
	}
	s.seq.Store(newSeq)
	s.rseq.Add(1)

	s.pool.MarkAllClean()
	s.metaMu.Lock()
	s.metaDirty = false
	s.metaMu.Unlock()

	s.txnCommits.Add(txns)
	s.flushes.Add(1)
	if txns > 1 {
		s.groupFlushes.Add(1)
		s.groupedTxns.Add(txns)
	}
	for {
		cur := s.maxBatch.Load()
		if txns <= cur || s.maxBatch.CompareAndSwap(cur, txns) {
			break
		}
	}
	return nil
}

func (s *Store) maybeCheckpointLocked() error {
	if s.opts.CheckpointBytes > 0 && s.log.Size() > s.opts.CheckpointBytes {
		return s.checkpointLocked()
	}
	return nil
}

// Checkpoint fsyncs the main file and truncates the WAL. Implies Commit.
func (s *Store) Checkpoint() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.commitLocked(nil, 1); err != nil {
		return err
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if err := s.pg.Sync(); err != nil {
		return err
	}
	if err := s.log.Truncate(); err != nil {
		return err
	}
	// Truncation dropped any in-doubt prepared transactions and the
	// token/abort memory along with the applied images; re-log them so
	// they survive a crash after this checkpoint (see prepare.go).
	return s.relogLocked()
}

// DropCache empties the buffer pool, so the next access to every page
// is cold (a disk read). It refuses to run with uncommitted changes.
// The meta page stays resident; reopening a real database would reread
// one page, which is negligible and keeps the API misuse-proof.
func (s *Store) DropCache() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if len(s.pool.DirtyFrames()) > 0 {
		return errors.New("store: DropCache with uncommitted changes")
	}
	s.pool.Drop()
	return nil
}

// Backup writes a consistent copy of the database to destPath (R10).
// It checkpoints first, so the copy contains every committed change
// and needs no WAL; the backup can be opened directly as a database.
// The writer is locked for the duration (the databases here are small;
// a fuzzy ARIES-style backup would be overkill).
func (s *Store) Backup(destPath string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.commitLocked(nil, 1); err != nil {
		return err
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	dst, err := pager.OpenFS(s.opts.FS, destPath)
	if err != nil {
		return fmt.Errorf("store: backup: %w", err)
	}
	if dst.PageCount() != 0 {
		dst.Close()
		return fmt.Errorf("store: backup target %s is not empty", destPath)
	}
	var img page.Page
	for id := uint64(0); id < s.pg.PageCount(); id++ {
		if err := s.pg.Read(page.ID(id), &img); err != nil {
			// Never-written holes (allocated but uncommitted at a past
			// crash) fail checksum validation; back them up as free
			// pages.
			img.Reset(page.TypeFree)
		}
		if err := dst.Write(page.ID(id), &img); err != nil {
			dst.Close()
			return fmt.Errorf("store: backup: %w", err)
		}
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}

// Abort discards all uncommitted modifications: pooled dirty pages are
// dropped and the meta page is reloaded from disk. Because the store
// is no-steal (nothing reaches the WAL or the file before Commit),
// dropping the cache is a complete rollback. The committed state —
// what readers see — is unchanged.
func (s *Store) Abort() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.pool.Drop()
	if s.pg.PageCount() > 0 {
		if err := s.loadMeta(); err != nil {
			return fmt.Errorf("store: abort: %w", err)
		}
	} else {
		s.metaMu.Lock()
		s.metaDirty = false
		s.metaMu.Unlock()
	}
	return nil
}

// Seq returns the committed commit-sequence number.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// Stats returns a snapshot of activity counters. Every source is
// atomic, so Stats never blocks the read path (or waits behind a
// commit fsync).
func (s *Store) Stats() Stats {
	reads, writes := s.pg.Stats()
	appends, syncs := s.log.Stats()
	return Stats{
		Pool:       s.pool.Stats(),
		DiskReads:  reads,
		DiskWrites: writes,
		WALAppends: appends,
		WALSyncs:   syncs,
		Commits:    s.seq.Load(),
	}
}

// CacheStats reports buffer pool hits, misses and disk reads in the
// shape shared with remote page-server clients.
func (s *Store) CacheStats() (hits, misses, reads uint64) {
	st := s.Stats()
	return st.Pool.Hits, st.Pool.Misses, st.DiskReads
}

// CommitStats reports how many transactions committed, how many
// physical WAL flushes carried them, and the batching shape — the
// group-commit amortization evidence.
func (s *Store) CommitStats() CommitStats {
	return CommitStats{
		Commits:      s.txnCommits.Load(),
		Flushes:      s.flushes.Load(),
		GroupCommits: s.groupFlushes.Load(),
		GroupedTxns:  s.groupedTxns.Load(),
		MaxBatch:     s.maxBatch.Load(),
	}
}

// Recovered reports whether crash recovery ran when the store was
// opened.
func (s *Store) Recovered() bool { return s.recovered }

// PageCount reports the current size of the database file in pages.
func (s *Store) PageCount() uint64 { return s.pg.PageCount() }

// Close commits pending work, checkpoints, and closes the files.
func (s *Store) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.commitLocked(nil, 1); err != nil {
		return err
	}
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	if err := s.log.Close(); err != nil {
		s.pg.Close()
		return err
	}
	return s.pg.Close()
}

// ReadView is a read-only Space over the store's committed state. Any
// number of views (and goroutines per view) may read concurrently with
// each other and with the single writer: pages resolve to immutable
// committed snapshots, roots resolve against the committed meta page,
// and Atomically guards multi-page operations against commits
// installing mid-operation. Mutating methods fail with ErrReadOnly.
type ReadView struct {
	s *Store
}

// ReadView returns a read-only view of the store's committed state.
// Views are cheap: they share the store's buffer pool (reads through a
// view warm it) and hold no state of their own.
func (s *Store) ReadView() *ReadView { return &ReadView{s} }

// ReadOnly marks the view for layers above the page store: structures
// opened over it should refuse mutations up front (with ErrReadOnly)
// instead of tripping the MarkDirty panic mid-update.
func (v *ReadView) ReadOnly() bool { return true }

// roHandle is a Handle over an immutable committed snapshot. There is
// no pin to release: the snapshot outlives any frame bookkeeping.
type roHandle struct {
	p *page.Page
}

func (h roHandle) Page() *page.Page { return h.p }
func (h roHandle) MarkDirty()       { panic("store: MarkDirty through a read-only view") }
func (h roHandle) Release()         {}

// Get returns the committed image of a page. On a pool miss the page is
// read from the main file — committed by definition under no-steal —
// and inserted so later readers (and the writer) hit.
func (v *ReadView) Get(id page.ID) (Handle, error) {
	if id == 0 || id == page.Invalid {
		return nil, fmt.Errorf("store: get page %d: reserved page", id)
	}
	if sp := v.s.pool.Snapshot(id); sp != nil {
		return roHandle{sp}, nil
	}
	img := &page.Page{}
	if err := v.s.readPage(id, img); err != nil {
		return nil, err
	}
	f, _ := v.s.pool.GetOrInsert(id, img)
	sp := f.Snapshot()
	v.s.pool.Release(f)
	return roHandle{sp}, nil
}

// Alloc fails: views are read-only.
func (v *ReadView) Alloc(t page.Type) (page.ID, Handle, error) {
	return page.Invalid, nil, ErrReadOnly
}

// Free fails: views are read-only.
func (v *ReadView) Free(id page.ID) error { return ErrReadOnly }

// Root resolves a root slot against the committed meta snapshot, so an
// uncommitted SetRoot (say, a B+tree root split inside the writer's
// open transaction) is invisible to readers.
func (v *ReadView) Root(slot int) page.ID {
	m := v.s.metaSnap.Load()
	return page.ID(binary.LittleEndian.Uint64(m.Payload()[metaRootsOff+8*slot:]))
}

// Roots returns all root slots resolved against one committed meta
// snapshot — a torn root directory is impossible.
func (v *ReadView) Roots() [NumRoots]page.ID {
	m := v.s.metaSnap.Load()
	pl := m.Payload()
	var out [NumRoots]page.ID
	for i := range out {
		out[i] = page.ID(binary.LittleEndian.Uint64(pl[metaRootsOff+8*i:]))
	}
	return out
}

// SetRoot panics: views are read-only. (Space's SetRoot has no error
// return; reaching this is a programming error, like double-releasing
// a frame.)
func (v *ReadView) SetRoot(slot int, id page.ID) {
	panic("store: SetRoot through a read-only view")
}

// Commit fails: views are read-only.
func (v *ReadView) Commit() error { return ErrReadOnly }

// Abort is a no-op: a view holds no uncommitted state to discard.
func (v *ReadView) Abort() error { return nil }

// Close is a no-op: the view borrows the store's resources.
func (v *ReadView) Close() error { return nil }

// DropCache fails: the pool is shared with the writer and other
// readers, so a view may not empty it.
func (v *ReadView) DropCache() error { return ErrReadOnly }

// CacheStats reports the shared pool's hits, misses and disk reads.
func (v *ReadView) CacheStats() (hits, misses, reads uint64) {
	return v.s.CacheStats()
}

// Seq returns the committed commit-sequence number, as Store.Seq.
func (v *ReadView) Seq() uint64 { return v.s.Seq() }

// Snapshot pins the store's current committed version, as
// Store.Snapshot: the returned view keeps reading that version while
// this ReadView continues to track the latest.
func (v *ReadView) Snapshot() (*SnapshotView, error) { return v.s.Snapshot() }

// Atomically runs op so that every page it reads through the view
// belongs to one committed state. If a commit installs while op runs
// (or is installing when it starts), op is re-run — so op must be
// restartable: no side effects it cannot repeat, and any error it
// returns while the state was torn is discarded along with the run.
// The final run's error is returned.
func (v *ReadView) Atomically(op func() error) error {
	for {
		s0 := v.s.rseq.Load()
		if s0&1 == 0 {
			err := op()
			if v.s.rseq.Load() == s0 {
				return err
			}
		}
		runtime.Gosched()
	}
}

// SnapshotView is a read-only Space pinned to one committed version.
// Unlike a ReadView — which always tracks the latest committed state —
// a SnapshotView keeps resolving every page and root exactly as they
// were at the version it was pinned to, while commits proceed
// underneath it. It stays valid until Options.VersionRing commits have
// landed after the pin, after which reads fail with ErrSnapshotTooOld.
type SnapshotView struct {
	s    *Store
	seq  uint64
	meta *page.Page
}

// Snapshot pins a view to the current committed version. Pinning is
// cheap — it captures the committed sequence number and meta snapshot,
// nothing else — and never blocks the writer.
func (s *Store) Snapshot() (*SnapshotView, error) {
	for {
		r0 := s.rseq.Load()
		if r0&1 == 0 {
			seq := s.seq.Load()
			meta := s.metaSnap.Load()
			if s.rseq.Load() == r0 {
				return &SnapshotView{s: s, seq: seq, meta: meta}, nil
			}
		}
		runtime.Gosched()
	}
}

// Get returns the image of a page as of the pinned version: the
// before-image recorded by the oldest later commit that overwrote the
// page, or the live committed image when no later commit touched it.
func (v *SnapshotView) Get(id page.ID) (Handle, error) {
	if id == 0 || id == page.Invalid {
		return nil, fmt.Errorf("store: get page %d: reserved page", id)
	}
	for {
		r0 := v.s.rseq.Load()
		if r0&1 != 0 {
			runtime.Gosched()
			continue
		}
		ring := *v.s.ring.Load()
		// The reconstruction below is sound only while the ring still
		// covers every commit after the pinned version.
		if len(ring) > 0 {
			if ring[0].seq > v.seq+1 {
				return nil, ErrSnapshotTooOld
			}
		} else if v.s.seq.Load() != v.seq {
			return nil, ErrSnapshotTooOld
		}
		for _, e := range ring {
			if e.seq <= v.seq {
				continue
			}
			if img, ok := e.before[id]; ok {
				return roHandle{img}, nil
			}
		}
		// No commit after the pin touched the page: the live committed
		// image is the pinned image. Validate that no commit installed
		// while we read it — a fresh one may have added the page's
		// before-image to the ring, so retry resolves correctly.
		var img *page.Page
		if sp := v.s.pool.Snapshot(id); sp != nil {
			img = sp
		} else {
			tmp := &page.Page{}
			if err := v.s.readPage(id, tmp); err != nil {
				return nil, err
			}
			f, _ := v.s.pool.GetOrInsert(id, tmp)
			img = f.Snapshot()
			v.s.pool.Release(f)
		}
		if v.s.rseq.Load() == r0 {
			return roHandle{img}, nil
		}
	}
}

// Alloc fails: snapshots are read-only.
func (v *SnapshotView) Alloc(t page.Type) (page.ID, Handle, error) {
	return page.Invalid, nil, ErrReadOnly
}

// Free fails: snapshots are read-only.
func (v *SnapshotView) Free(id page.ID) error { return ErrReadOnly }

// Root resolves a root slot against the pinned meta image.
func (v *SnapshotView) Root(slot int) page.ID {
	return page.ID(binary.LittleEndian.Uint64(v.meta.Payload()[metaRootsOff+8*slot:]))
}

// Roots returns all root slots as of the pinned version.
func (v *SnapshotView) Roots() [NumRoots]page.ID {
	pl := v.meta.Payload()
	var out [NumRoots]page.ID
	for i := range out {
		out[i] = page.ID(binary.LittleEndian.Uint64(pl[metaRootsOff+8*i:]))
	}
	return out
}

// SetRoot panics: snapshots are read-only.
func (v *SnapshotView) SetRoot(slot int, id page.ID) {
	panic("store: SetRoot through a snapshot view")
}

// Commit fails: snapshots are read-only.
func (v *SnapshotView) Commit() error { return ErrReadOnly }

// ReadOnly marks the view for layers above the page store (see
// ReadView.ReadOnly).
func (v *SnapshotView) ReadOnly() bool { return true }

// Abort is a no-op: a snapshot holds no uncommitted state.
func (v *SnapshotView) Abort() error { return nil }

// Close is a no-op: the snapshot borrows the store's resources, and
// the ring reclaims its version by aging regardless.
func (v *SnapshotView) Close() error { return nil }

// DropCache fails: the pool is shared with the writer and other
// readers.
func (v *SnapshotView) DropCache() error { return ErrReadOnly }

// CacheStats reports the shared pool's hits, misses and disk reads.
func (v *SnapshotView) CacheStats() (hits, misses, reads uint64) {
	return v.s.CacheStats()
}

// Seq returns the pinned committed sequence number.
func (v *SnapshotView) Seq() uint64 { return v.seq }

// Snapshot returns the view itself: a snapshot of a snapshot is the
// same version.
func (v *SnapshotView) Snapshot() (*SnapshotView, error) { return v, nil }

// Atomically runs op directly: a pinned view is stable by
// construction, so there is nothing to re-run against.
func (v *SnapshotView) Atomically(op func() error) error { return op() }

var (
	_ Space = (*Store)(nil)
	_ Space = (*ReadView)(nil)
	_ Space = (*SnapshotView)(nil)
)
