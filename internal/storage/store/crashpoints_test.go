package store

import (
	"encoding/binary"
	"fmt"
	"testing"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

// crashHistory builds a database (on an in-memory FS — no temp dirs,
// byte-deterministic across machines) with a checkpointed baseline
// followed by `txns` committed transactions (never checkpointed, so
// the WAL holds them all). Transaction k writes k into three pages and
// 1000+k into root slot 0. It returns the page ids, the raw database
// image and WAL bytes at crash time, and the WAL size right after the
// first transaction's commit (the earliest reachable crash point that
// proves a commit).
func crashHistory(t *testing.T, txns int) (ids []page.ID, dbImage, wal []byte, walFloor int64) {
	t.Helper()
	fs := vfs.NewMem()
	s, err := Open("db", &Options{CheckpointBytes: -1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
		ids = append(ids, id)
	}
	s.SetRoot(0, page.ID(1000))
	if err := s.Checkpoint(); err != nil { // durable baseline, empty WAL
		t.Fatal(err)
	}
	for k := 1; k <= txns; k++ {
		for _, id := range ids {
			h, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint64(h.Page().Payload(), uint64(k))
			h.MarkDirty()
			h.Release()
		}
		s.SetRoot(0, page.ID(1000+k))
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if k == 1 {
			walFloor = s.WALSizeForTesting()
		}
	}
	s.CrashForTesting()

	wal, err = fs.ReadFile("db.wal")
	if err != nil {
		t.Fatal(err)
	}
	dbImage, err = fs.ReadFile("db")
	if err != nil {
		t.Fatal(err)
	}
	return ids, dbImage, wal, walFloor
}

// verifyRecovered opens a crash image and checks internal consistency:
// the recovered state is transaction k for a single k in [1, txns].
func verifyRecovered(t *testing.T, dbImage, walPrefix []byte, ids []page.ID, txns int) {
	t.Helper()
	fs := vfs.NewMem()
	if err := fs.WriteFile("db", dbImage); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("db.wal", walPrefix); err != nil {
		t.Fatal(err)
	}
	s, err := Open("db", &Options{FS: fs})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s.Close()
	k := int(uint64(s.Root(0)) - 1000)
	if k < 1 || k > txns {
		t.Fatalf("recovered root claims transaction %d, history has 1..%d", k, txns)
	}
	for _, id := range ids {
		h, err := s.Get(id)
		if err != nil {
			t.Fatalf("page %d unreadable after recovery to txn %d: %v", id, k, err)
		}
		got := binary.LittleEndian.Uint64(h.Page().Payload())
		h.Release()
		if got != uint64(k) {
			t.Fatalf("mixed state: root says txn %d, page %d says txn %d", k, id, got)
		}
	}
}

// TestEveryWALTruncationPointRecovers sweeps every reachable crash
// point: the WAL is synced at each commit, so any crash leaves some
// prefix that contains at least the first commit (earlier crashes
// leave the checkpointed baseline, which needs no recovery). Recovery
// must always land on exactly one committed transaction — never a torn
// or mixed state.
func TestEveryWALTruncationPointRecovers(t *testing.T) {
	const txns = 4
	ids, dbImage, wal, floor := crashHistory(t, txns)
	stride := (len(wal)-int(floor))/256 + 1
	for cut := int(floor); cut <= len(wal); cut += stride {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			verifyRecovered(t, dbImage, wal[:cut], ids, txns)
		})
	}
}

// TestEveryWALTruncationPointRecoversWithTornFile repeats the sweep
// with the main file's write-backs torn (garbage in the page images):
// the WAL prefix proves at least one commit, and recovery must repair
// the torn pages from it.
func TestEveryWALTruncationPointRecoversWithTornFile(t *testing.T) {
	const txns = 3
	ids, dbImage, wal, floor := crashHistory(t, txns)
	// Tear every history page and the meta page's root area: all of
	// them were written back unsynced after the checkpoint, so a crash
	// may corrupt any of them.
	torn := append([]byte(nil), dbImage...)
	for _, id := range ids {
		for i := 0; i < 64; i++ {
			torn[int(id)*page.Size+150+i] ^= 0xAB
		}
	}
	stride := (len(wal)-int(floor))/256 + 1
	for cut := int(floor); cut <= len(wal); cut += stride {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			verifyRecovered(t, torn, wal[:cut], ids, txns)
		})
	}
}

// groupCrashHistory builds a database whose WAL holds `batches` group
// commits of `perBatch` transactions each, then crashes it. Transaction
// j of batch k writes k into its own page (so a half-applied batch
// would leave some pages at k and others at k-1), and the batch's last
// transaction moves root slot 0 to 1000+k; the whole batch then
// commits under one CommitTokens call — one combined WAL record, one
// fsync — exactly the way the page server's group-commit leader retires
// a batch.
func groupCrashHistory(t *testing.T, batches, perBatch int) (ids []page.ID, dbImage, wal []byte, walFloor int64) {
	t.Helper()
	fs := vfs.NewMem()
	s, err := Open("db", &Options{CheckpointBytes: -1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < perBatch; i++ {
		id, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
		ids = append(ids, id)
	}
	s.SetRoot(0, page.ID(1000))
	if err := s.Checkpoint(); err != nil { // durable baseline, empty WAL
		t.Fatal(err)
	}
	base := s.CommitStats()
	for k := 1; k <= batches; k++ {
		tokens := make([]uint64, 0, perBatch)
		for j, id := range ids {
			h, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint64(h.Page().Payload(), uint64(k))
			h.MarkDirty()
			h.Release()
			tokens = append(tokens, uint64(k*100+j+1))
		}
		s.SetRoot(0, page.ID(1000+k))
		if err := s.CommitTokens(tokens); err != nil {
			t.Fatal(err)
		}
		if k == 1 {
			walFloor = s.WALSizeForTesting()
		}
	}
	if cs := s.CommitStats(); cs.Commits-base.Commits != uint64(batches*perBatch) ||
		cs.Flushes-base.Flushes != uint64(batches) {
		t.Fatalf("commit stats: %d txns over %d flushes, want %d over %d",
			cs.Commits-base.Commits, cs.Flushes-base.Flushes, batches*perBatch, batches)
	}
	s.CrashForTesting()

	wal, err = fs.ReadFile("db.wal")
	if err != nil {
		t.Fatal(err)
	}
	dbImage, err = fs.ReadFile("db")
	if err != nil {
		t.Fatal(err)
	}
	return ids, dbImage, wal, walFloor
}

// TestGroupCommitCrashAllOrNothing sweeps every WAL truncation point of
// a history of multi-transaction group commits — the crash window the
// leader protocol opens between its combined WAL flush and the page
// write-backs. Recovery must land on a batch boundary: either every
// transaction of a batch is recovered or none of it is, never a prefix
// of a batch (the group WAL record is the batch's single commit
// barrier, so a torn batch would mean the barrier logic leaks
// uncommitted writes).
func TestGroupCommitCrashAllOrNothing(t *testing.T) {
	const batches, perBatch = 3, 5
	ids, dbImage, wal, floor := groupCrashHistory(t, batches, perBatch)
	stride := (len(wal)-int(floor))/256 + 1
	for cut := int(floor); cut <= len(wal); cut += stride {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			verifyRecovered(t, dbImage, wal[:cut], ids, batches)
		})
	}
}

// TestGroupCommitCrashWithTornFile repeats the batch sweep with every
// history page torn in the main file: the group record in the WAL must
// repair all of a batch's pages together.
func TestGroupCommitCrashWithTornFile(t *testing.T) {
	const batches, perBatch = 2, 4
	ids, dbImage, wal, floor := groupCrashHistory(t, batches, perBatch)
	torn := append([]byte(nil), dbImage...)
	for _, id := range ids {
		for i := 0; i < 64; i++ {
			torn[int(id)*page.Size+150+i] ^= 0xAB
		}
	}
	stride := (len(wal)-int(floor))/256 + 1
	for cut := int(floor); cut <= len(wal); cut += stride {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			verifyRecovered(t, torn, wal[:cut], ids, batches)
		})
	}
}
