// Two-phase commit support: the store-side half of the cluster's
// cross-shard commit protocol.
//
// A shard votes yes on a cross-shard transaction by staging its write
// set in the prepared-but-undecided state: Prepare forces the images,
// root updates and frees to the WAL behind a prepare barrier, so the
// vote survives any crash, but applies nothing — the committed state
// readers see is untouched. DecidePrepared later applies the stash
// (commit) or discards it behind a durable tombstone (abort). Recovery
// rebuilds the in-doubt stash from the log, and a checkpoint
// truncation re-logs it, so a prepared transaction can only leave this
// state through a decision.
//
// The store also remembers decisions: the tokens of applied commits
// (bounded by Options.TokenKeep) and of durable aborts (bounded by
// abortKeep) are re-logged across checkpoints, so a restarted server
// answers a resent commit or an in-doubt participant's status poll
// correctly even when the covering WAL generation is long gone.
package store

import (
	"errors"
	"fmt"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/wal"
)

// Re-exports so the remote tier can speak the prepared-transaction
// vocabulary without importing the WAL directly.
type (
	// PreparedTxn is a transaction in the prepared-but-undecided state.
	PreparedTxn = wal.PreparedTxn
	// PageImage is one staged page write inside a PreparedTxn.
	PageImage = wal.PageImage
	// RootUpdate is one staged named-root assignment inside a PreparedTxn.
	RootUpdate = wal.RootUpdate
)

// abortKeep bounds the store's memory of durable abort decisions. A
// participant in doubt polls its coordinator within seconds, so a ring
// of recent aborts is ample; an abort that somehow ages out before the
// poll leaves the participant waiting (safe) rather than guessing.
const abortKeep = 256

// seedRecovery installs what replay learned beyond the applied images:
// the in-doubt prepared transactions, and the commit/abort decisions
// to remember. Runs at Open, before the store is shared.
func (s *Store) seedRecovery(res *wal.ReplayResult) {
	s.recovTokens = res.Tokens
	s.recovAborts = res.Aborted
	s.recordTokensLocked(res.Tokens)
	for _, tok := range res.Aborted {
		s.recordAbortLocked(tok)
	}
	for _, pt := range res.Prepared {
		s.stashPreparedLocked(pt)
	}
}

// Prepare stages a transaction's write set in the prepared state (the
// 2PC yes-vote). After Prepare returns nil the stash can no longer be
// lost, but nothing is applied until DecidePrepared — readers and the
// working state are untouched. The caller owns conflict validation
// (the page server validates the read set before voting); the store
// only promises durability of the stash. Images are copied, so the
// caller may reuse its buffers. Preparing an already-prepared or
// already-applied token is a no-op: votes are idempotent.
func (s *Store) Prepare(token uint64, images []PageImage, roots []RootUpdate, frees []page.ID) error {
	if token == 0 {
		return errors.New("store: prepare requires a nonzero token")
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return errors.New("store: prepare on closed store")
	}
	if _, ok := s.prepared[token]; ok {
		return nil
	}
	if _, ok := s.keepSet[token]; ok {
		return nil
	}
	pt := &PreparedTxn{
		Token: token,
		Roots: append([]RootUpdate(nil), roots...),
		Frees: append([]page.ID(nil), frees...),
	}
	pt.Images = make([]PageImage, 0, len(images))
	for _, pi := range images {
		cp := *pi.Image
		pt.Images = append(pt.Images, PageImage{ID: pi.ID, Image: &cp})
	}
	for _, pi := range pt.Images {
		if _, err := s.log.AppendPage(pi.ID, pi.Image); err != nil {
			return err
		}
	}
	if _, err := s.log.AppendPrepare(token, pt.Roots, pt.Frees); err != nil {
		return err
	}
	s.stashPreparedLocked(pt)
	return nil
}

// DecidePrepared resolves a prepared transaction. Commit applies the
// stash — images into the pool, root updates, frees — and flushes it
// behind a durable decide barrier, exactly like a commit of the same
// writes. Abort discards the stash behind a durable tombstone; an
// abort for a token never prepared here still writes the tombstone,
// because a coordinator records presumed-abort decisions for
// transactions whose client vanished before preparing anything, and
// in-doubt participants polling later need the definite answer. Both
// directions are idempotent.
func (s *Store) DecidePrepared(token uint64, commit bool) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return errors.New("store: decide on closed store")
	}
	pt := s.prepared[token]
	if !commit {
		if _, err := s.log.AppendDecide(token, false); err != nil {
			return err
		}
		if pt != nil {
			s.dropPreparedLocked(token)
		}
		s.recordAbortLocked(token)
		return nil
	}
	if pt == nil {
		if _, ok := s.keepSet[token]; ok {
			return nil // already applied
		}
		return fmt.Errorf("store: decide commit for unknown prepared transaction %#x", token)
	}
	for _, pi := range pt.Images {
		// The page was allocated before the prepare, but a crash since
		// can have lost unsynced file growth; regrow so the write-back
		// lands. The stash is applied directly into the pool — the
		// on-disk image may be an unwritten hole, so it is never read.
		if err := s.pg.EnsurePages(uint64(pi.ID) + 1); err != nil {
			return err
		}
		if f := s.pool.Get(pi.ID); f != nil {
			*f.Page = *pi.Image
			s.pool.MarkDirty(f)
			s.pool.Release(f)
			continue
		}
		cp := *pi.Image
		f, installed := s.pool.GetOrInsert(pi.ID, &cp)
		if !installed {
			*f.Page = *pi.Image
		}
		s.pool.MarkDirty(f)
		s.pool.Release(f)
	}
	for _, r := range pt.Roots {
		s.SetRoot(r.Slot, r.ID)
	}
	for _, id := range pt.Frees {
		if err := s.freeLocked(id); err != nil {
			return err
		}
	}
	if err := s.flushLocked(1, func(uint64) error {
		_, err := s.log.AppendDecide(token, true)
		return err
	}); err != nil {
		return err
	}
	s.dropPreparedLocked(token)
	s.recordTokensLocked([]uint64{token})
	return s.maybeCheckpointLocked()
}

// PreparedTxns returns the transactions currently in the prepared
// state, oldest first. The page server seeds its conflict interlock
// and in-doubt resolver from this after a restart.
func (s *Store) PreparedTxns() []*PreparedTxn {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	out := make([]*PreparedTxn, 0, len(s.prepOrder))
	for _, tok := range s.prepOrder {
		if pt := s.prepared[tok]; pt != nil {
			out = append(out, pt)
		}
	}
	return out
}

// RecoveredTokens returns the commit tokens recovery replayed from the
// WAL at Open, in log order: the transactions this store demonstrably
// applied. A restarted page server seeds its duplicate-commit memory
// from them.
func (s *Store) RecoveredTokens() []uint64 { return s.recovTokens }

// RecoveredAborts returns the abort decisions recovery found in the
// WAL at Open, in log order.
func (s *Store) RecoveredAborts() []uint64 { return s.recovAborts }

// stashPreparedLocked records a prepared transaction in memory (the
// durable record is already in the WAL).
func (s *Store) stashPreparedLocked(pt *PreparedTxn) {
	if s.prepared == nil {
		s.prepared = make(map[uint64]*PreparedTxn)
	}
	if _, ok := s.prepared[pt.Token]; ok {
		return
	}
	s.prepared[pt.Token] = pt
	s.prepOrder = append(s.prepOrder, pt.Token)
}

func (s *Store) dropPreparedLocked(token uint64) {
	delete(s.prepared, token)
	for i, tok := range s.prepOrder {
		if tok == token {
			s.prepOrder = append(s.prepOrder[:i], s.prepOrder[i+1:]...)
			break
		}
	}
}

// recordTokensLocked remembers applied commit tokens in the keep ring
// when Options.TokenKeep asks for it.
func (s *Store) recordTokensLocked(tokens []uint64) {
	if s.opts.TokenKeep <= 0 {
		return
	}
	for _, tok := range tokens {
		if tok == 0 {
			continue
		}
		if s.keepSet == nil {
			s.keepSet = make(map[uint64]struct{})
		}
		if _, ok := s.keepSet[tok]; ok {
			continue
		}
		s.keepSet[tok] = struct{}{}
		s.keepTokens = append(s.keepTokens, tok)
		if len(s.keepTokens) > s.opts.TokenKeep {
			delete(s.keepSet, s.keepTokens[0])
			s.keepTokens = append(s.keepTokens[:0], s.keepTokens[1:]...)
		}
	}
}

func (s *Store) recordAbortLocked(token uint64) {
	if token == 0 {
		return
	}
	if s.abortSet == nil {
		s.abortSet = make(map[uint64]struct{})
	}
	if _, ok := s.abortSet[token]; ok {
		return
	}
	s.abortSet[token] = struct{}{}
	s.abortRing = append(s.abortRing, token)
	if len(s.abortRing) > abortKeep {
		delete(s.abortSet, s.abortRing[0])
		s.abortRing = append(s.abortRing[:0], s.abortRing[1:]...)
	}
}

// relogLocked re-appends the state that must outlive a WAL truncation:
// every in-doubt prepared transaction (images plus prepare barrier),
// the applied-token keep ring, and the remembered abort decisions.
// Called with the log freshly truncated, at recovery and after every
// checkpoint.
func (s *Store) relogLocked() error {
	for _, tok := range s.prepOrder {
		pt := s.prepared[tok]
		if pt == nil {
			continue
		}
		for _, pi := range pt.Images {
			if _, err := s.log.AppendPage(pi.ID, pi.Image); err != nil {
				return err
			}
		}
		if _, err := s.log.AppendPrepare(pt.Token, pt.Roots, pt.Frees); err != nil {
			return err
		}
	}
	if len(s.keepTokens) > 0 {
		if _, err := s.log.AppendCommitGroup(s.seq.Load(), s.keepTokens, true); err != nil {
			return err
		}
	}
	for _, tok := range s.abortRing {
		if _, err := s.log.AppendDecideNoSync(tok, false); err != nil {
			return err
		}
	}
	return s.log.Sync()
}
