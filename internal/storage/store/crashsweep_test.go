package store

import (
	"encoding/binary"
	"fmt"
	"testing"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

// sweepWorkload runs the scripted group-commit history on fs: allocate
// perBatch pages and checkpoint a baseline (root 1000, pages zero),
// then `batches` group commits — batch k writes k into every page and
// moves the root to 1000+k under one CommitTokens barrier. Under a
// crash FS the workload dies mid-flight with ErrPowerCut; the first
// error is returned and everything after it abandoned, exactly like a
// process losing power.
func sweepWorkload(fs vfs.FS, batches, perBatch int) error {
	s, err := Open("db", &Options{FS: fs, CheckpointBytes: -1})
	if err != nil {
		return err
	}
	ids := make([]page.ID, 0, perBatch)
	for i := 0; i < perBatch; i++ {
		id, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			return err
		}
		h.Release()
		ids = append(ids, id)
	}
	s.SetRoot(0, page.ID(1000))
	if err := s.Checkpoint(); err != nil {
		return err
	}
	for k := 1; k <= batches; k++ {
		tokens := make([]uint64, 0, perBatch)
		for j, id := range ids {
			h, err := s.Get(id)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(h.Page().Payload(), uint64(k))
			h.MarkDirty()
			h.Release()
			tokens = append(tokens, uint64(k*100+j+1))
		}
		s.SetRoot(0, page.ID(1000+k))
		if err := s.CommitTokens(tokens); err != nil {
			return err
		}
	}
	return s.Close()
}

// verifySurvivor reopens the post-crash state and asserts the two
// invariants every crash point must preserve: (1) recovery lands on a
// single batch boundary — root 1000+k with every page holding k, for
// one k in [0, batches], or the pre-baseline fresh state — never a
// torn or mixed batch; (2) Scrub finds zero damage.
func verifySurvivor(t *testing.T, fs vfs.FS, batches, perBatch int, label string) {
	t.Helper()
	s, err := Open("db", &Options{FS: fs})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer s.Close()

	root := s.Root(0)
	if root == page.Invalid {
		// Crash before the baseline checkpoint committed the root:
		// the recovered store is (re)initialized and empty-ish. Only
		// the scrub invariant applies.
	} else {
		k := int(uint64(root) - 1000)
		if k < 0 || k > batches {
			t.Fatalf("%s: recovered root %d names batch %d, history has 0..%d", label, root, k, batches)
		}
		for i := 0; i < perBatch; i++ {
			id := page.ID(1 + i) // fresh DB allocates 1..perBatch
			if uint64(id) >= s.PageCount() {
				t.Fatalf("%s: root claims batch %d but page %d is missing", label, k, id)
			}
			h, err := s.Get(id)
			if err != nil {
				t.Fatalf("%s: page %d unreadable after recovery to batch %d: %v", label, id, k, err)
			}
			got := binary.LittleEndian.Uint64(h.Page().Payload())
			h.Release()
			if got != uint64(k) {
				t.Fatalf("%s: torn batch: root says %d, page %d says %d", label, k, id, got)
			}
		}
	}

	if rep := s.Scrub(); !rep.Clean() {
		t.Fatalf("%s: scrub after recovery found damage:\n%s", label, rep)
	}
}

// countSyncs runs the workload on a transparent crash FS and reports
// how many fsync barriers it crosses — the sweep range.
func countSyncs(t *testing.T, batches, perBatch int) uint64 {
	t.Helper()
	cfs := vfs.NewCrash(vfs.NewMem(), vfs.CrashConfig{})
	if err := sweepWorkload(cfs, batches, perBatch); err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	}
	n := cfs.Syncs()
	if n < uint64(batches) {
		t.Fatalf("workload crossed %d sync barriers, fewer than its %d commits", n, batches)
	}
	return n
}

// TestCrashSweepEveryFsyncBarrier is the acceptance sweep: a scripted
// workload of 20 group commits is killed at every fsync barrier it
// crosses — on both sides of the barrier (cut before the flush
// applied, and just after) — with unsynced sector writes dropped and
// torn under three seeds. Every survivor must recover all-or-nothing
// and scrub clean.
func TestCrashSweepEveryFsyncBarrier(t *testing.T) {
	const batches, perBatch = 20, 4
	syncs := countSyncs(t, batches, perBatch)
	for _, seed := range []int64{1, 7, 42} {
		for _, applied := range []bool{false, true} {
			for n := uint64(1); n <= syncs; n++ {
				label := fmt.Sprintf("seed=%d applied=%v sync=%d", seed, applied, n)
				base := vfs.NewMem()
				cfs := vfs.NewCrash(base, vfs.CrashConfig{
					Seed:          seed,
					CrashAtSync:   n,
					SyncApplied:   applied,
					DropWriteProb: 0.35,
					TornWriteProb: 0.35,
				})
				err := sweepWorkload(cfs, batches, perBatch)
				if !cfs.Crashed() {
					t.Fatalf("%s: cut never fired (workload err %v)", label, err)
				}
				if err == nil {
					t.Fatalf("%s: workload survived its own power cut", label)
				}
				verifySurvivor(t, base, batches, perBatch, label)
			}
		}
	}
}

// TestCrashSweepMidWrite cuts the power mid-workload at strided write
// counts instead of sync barriers — the torn-write variant: the
// triggering write itself settles torn, dropped, or applied with
// everything else pending.
func TestCrashSweepMidWrite(t *testing.T) {
	const batches, perBatch = 20, 4
	cfs0 := vfs.NewCrash(vfs.NewMem(), vfs.CrashConfig{})
	if err := sweepWorkload(cfs0, batches, perBatch); err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	}
	writes := cfs0.Writes()
	if writes == 0 {
		t.Fatal("workload issued no writes")
	}
	stride := writes/64 + 1
	for _, seed := range []int64{3, 11, 99} {
		for n := uint64(1); n <= writes; n += stride {
			label := fmt.Sprintf("seed=%d write=%d", seed, n)
			base := vfs.NewMem()
			cfs := vfs.NewCrash(base, vfs.CrashConfig{
				Seed:          seed,
				CrashAtWrite:  n,
				DropWriteProb: 0.35,
				TornWriteProb: 0.35,
			})
			err := sweepWorkload(cfs, batches, perBatch)
			if !cfs.Crashed() {
				t.Fatalf("%s: cut never fired (workload err %v)", label, err)
			}
			if err == nil {
				t.Fatalf("%s: workload survived its own power cut", label)
			}
			verifySurvivor(t, base, batches, perBatch, label)
		}
	}
}

// TestCrashThenCorruptionScrub drives the full robustness story end to
// end: power-cut a workload, recover, then corrupt one page of the
// survivor and confirm Scrub pinpoints exactly that page while reads
// surface the typed error.
func TestCrashThenCorruptionScrub(t *testing.T) {
	const batches, perBatch = 6, 3
	base := vfs.NewMem()
	cfs := vfs.NewCrash(base, vfs.CrashConfig{
		Seed:          5,
		CrashAtSync:   8,
		DropWriteProb: 0.5,
		TornWriteProb: 0.25,
	})
	if err := sweepWorkload(cfs, batches, perBatch); err == nil {
		t.Fatal("workload survived its power cut")
	}
	verifySurvivor(t, base, batches, perBatch, "pre-corruption")

	corruptPage(t, base, "db", 2, 1000, 32)
	s, err := Open("db", &Options{FS: base})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep := s.Scrub()
	if rep.Clean() || len(rep.Damaged) != 1 || rep.Damaged[0].ID != 2 {
		t.Fatalf("scrub did not pinpoint page 2:\n%s", rep)
	}
}
