package store

import (
	"encoding/binary"
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

func openTemp(t *testing.T, opts *Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db")
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestFreshDatabaseInitializesRoots(t *testing.T) {
	s, _ := openTemp(t, nil)
	for i := 0; i < NumRoots; i++ {
		if got := s.Root(i); got != page.Invalid {
			t.Fatalf("root %d = %d, want Invalid", i, got)
		}
	}
}

func TestAllocCommitReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Page().Payload(), "durable")
	h.MarkDirty()
	h.Release()
	s.SetRoot(3, id)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Root(3); got != id {
		t.Fatalf("root = %d, want %d", got, id)
	}
	h2, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if string(h2.Page().Payload()[:7]) != "durable" {
		t.Fatal("page contents lost across reopen")
	}
}

func TestFreeListReusesPages(t *testing.T) {
	s, _ := openTemp(t, nil)
	id1, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	id2, h2, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
	if err := s.Free(id1); err != nil {
		t.Fatal(err)
	}
	id3, h3, err := s.Alloc(page.TypeBTree)
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Release()
	if id3 != id1 {
		t.Fatalf("alloc after free returned %d, want reused %d", id3, id1)
	}
	if h3.Page().Type() != page.TypeBTree {
		t.Fatalf("reused page type = %s", h3.Page().Type())
	}
	_ = id2
}

func TestFreeReservedPageRejected(t *testing.T) {
	s, _ := openTemp(t, nil)
	if err := s.Free(0); err == nil {
		t.Fatal("freeing the meta page succeeded")
	}
	if err := s.Free(page.Invalid); err == nil {
		t.Fatal("freeing Invalid succeeded")
	}
}

func TestRecoveryRepairsTornWriteback(t *testing.T) {
	fs := vfs.NewMem()
	s, err := Open("db", &Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Page().Payload(), "committed state")
	h.MarkDirty()
	h.Release()
	s.SetRoot(0, id)
	if err := s.Commit(); err != nil { // WAL synced, file written (unsynced)
		t.Fatal(err)
	}
	// Simulate a crash: no checkpoint, underlying files abandoned, and
	// the main-file write-back torn (corrupted page image on disk).
	s.CrashForTesting()
	corruptPage(t, fs, "db", id, 100, 50)

	s2, err := Open("db", &Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovered() {
		t.Fatal("recovery did not run")
	}
	h2, err := s2.Get(id)
	if err != nil {
		t.Fatalf("committed page unreadable after recovery: %v", err)
	}
	defer h2.Release()
	if string(h2.Page().Payload()[:15]) != "committed state" {
		t.Fatal("recovery lost committed data")
	}
	if got := s2.Root(0); got != id {
		t.Fatalf("root lost after recovery: %d", got)
	}
}

func TestUncommittedWorkIsLostOnCrash(t *testing.T) {
	fs := vfs.NewMem()
	s, err := Open("db", &Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Page().Payload(), "committed")
	h.MarkDirty()
	h.Release()
	s.SetRoot(0, id)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Uncommitted mutation.
	h, err = s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Page().Payload(), "UNCOMMIT!")
	h.MarkDirty()
	h.Release()
	s.CrashForTesting()

	s2, err := Open("db", &Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if string(h2.Page().Payload()[:9]) != "committed" {
		t.Fatalf("got %q, want the committed image", h2.Page().Payload()[:9])
	}
}

func TestDropCacheForcesColdReads(t *testing.T) {
	s, _ := openTemp(t, nil)
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Warm access: no disk read.
	before := s.Stats().DiskReads
	h, err = s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if got := s.Stats().DiskReads; got != before {
		t.Fatalf("warm access read from disk (%d -> %d)", before, got)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	h, err = s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if got := s.Stats().DiskReads; got != before+1 {
		t.Fatalf("cold access did not hit disk (%d -> %d)", before, got)
	}
}

func TestDropCacheRefusesDirty(t *testing.T) {
	s, _ := openTemp(t, nil)
	_, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := s.DropCache(); err == nil {
		t.Fatal("DropCache with dirty pages succeeded")
	}
}

func TestGetReservedPageRejected(t *testing.T) {
	s, _ := openTemp(t, nil)
	if _, err := s.Get(0); err == nil {
		t.Fatal("Get(0) succeeded")
	}
	if _, err := s.Get(page.Invalid); err == nil {
		t.Fatal("Get(Invalid) succeeded")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	fs := vfs.NewMem()
	junk := make([]byte, page.Size)
	binary.LittleEndian.PutUint32(junk[0:4], 0xDEAD)
	if err := fs.WriteFile("db", junk); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("db", &Options{FS: fs}); err == nil {
		t.Fatal("opened a non-hypermodel file")
	}
}

// TestOpenReinitializesZeroMeta: a power cut during first-ever
// initialization can leave the file grown but page 0 all zero, with no
// committed WAL barrier. That state must reopen as a fresh database,
// not brick the file.
func TestOpenReinitializesZeroMeta(t *testing.T) {
	fs := vfs.NewMem()
	if err := fs.WriteFile("db", make([]byte, page.Size)); err != nil {
		t.Fatal(err)
	}
	s, err := Open("db", &Options{FS: fs})
	if err != nil {
		t.Fatalf("zero-meta file did not reinitialize: %v", err)
	}
	defer s.Close()
	if got := s.Root(0); got != page.Invalid {
		t.Fatalf("root = %d, want Invalid on fresh init", got)
	}
	if rep := s.Scrub(); !rep.Clean() {
		t.Fatalf("reinitialized store scrubs dirty:\n%s", rep)
	}
}

func TestCommitSequenceAdvances(t *testing.T) {
	s, _ := openTemp(t, nil)
	first := s.Stats().Commits
	_, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Commits; got != first+1 {
		t.Fatalf("commit seq %d -> %d", first, got)
	}
	// Empty commit is a no-op.
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Commits; got != first+1 {
		t.Fatal("empty commit advanced the sequence")
	}
}

func TestAutoCheckpointBoundsWAL(t *testing.T) {
	s, _ := openTemp(t, &Options{CheckpointBytes: 3 * page.Size})
	for i := 0; i < 10; i++ {
		_, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if size := s.WALSizeForTesting(); size > 6*page.Size {
		t.Fatalf("WAL grew unbounded: %d bytes", size)
	}
}
