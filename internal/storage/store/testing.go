package store

// CrashForTesting abandons the store without committing, checkpointing
// or closing cleanly, simulating a process crash. The underlying file
// descriptors are closed so tests can reopen the same paths; any
// uncommitted buffered state is discarded, exactly as a crash would.
func (s *Store) CrashForTesting() {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.closed = true
	s.closeFiles()
}

// WALSizeForTesting reports the current WAL size in bytes.
func (s *Store) WALSizeForTesting() int64 { return s.log.Size() }
