package store

import (
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/page"
)

func BenchmarkCommitOnePage(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "db"), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		b.Fatal(err)
	}
	h.Release()
	if err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		h.Page().Payload()[0] = byte(i)
		h.MarkDirty()
		h.Release()
		if err := s.Commit(); err != nil { // WAL append + fsync + write-back
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitOnePageNoSync(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "db"), &Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		b.Fatal(err)
	}
	h.Release()
	if err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		h.Page().Payload()[0] = byte(i)
		h.MarkDirty()
		h.Release()
		if err := s.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "db"), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		b.Fatal(err)
	}
	h.Release()
	if err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
}

func BenchmarkGetColdRead(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "db"), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// A spread of pages so each iteration reads a different one cold.
	var ids []page.ID
	for i := 0; i < 512; i++ {
		id, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			b.Fatal(err)
		}
		h.Release()
		ids = append(ids, id)
	}
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(ids) == 0 {
			b.StopTimer()
			if err := s.DropCache(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		h, err := s.Get(ids[i%len(ids)])
		if err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
}
