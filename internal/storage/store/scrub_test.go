package store

import (
	"encoding/binary"
	"errors"
	"testing"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

// openMemStore opens a store named "db" on a fresh in-memory FS.
func openMemStore(t *testing.T, opts *Options) (*Store, *vfs.MemFS) {
	t.Helper()
	fs := vfs.NewMem()
	if opts == nil {
		opts = &Options{}
	}
	opts.FS = fs
	s, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, fs
}

// corruptPage flips bytes inside one page of the on-disk image.
func corruptPage(t *testing.T, fs *vfs.MemFS, name string, id page.ID, off int64, n int) {
	t.Helper()
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	base := int64(id)*page.Size + off
	for i := int64(0); i < int64(n); i++ {
		data[base+i] ^= 0xA5
	}
	if err := fs.WriteFile(name, data); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanStore(t *testing.T) {
	s, _ := openMemStore(t, nil)
	var ids []page.ID
	for i := 0; i < 4; i++ {
		id, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
		ids = append(ids, id)
	}
	// Free two pages so the walk has a list to follow.
	if err := s.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	rep := s.Scrub()
	if !rep.Clean() {
		t.Fatalf("clean store scrubs dirty:\n%s", rep)
	}
	if rep.Pages != 5 || rep.FreePages != 2 {
		t.Fatalf("pages=%d free=%d, want 5, 2", rep.Pages, rep.FreePages)
	}
	if rep.String() == "" {
		t.Fatal("empty report text")
	}
}

// TestScrubPinpointsDamage: single-page corruption is located exactly,
// and the pass keeps walking — two damaged pages are both found.
func TestScrubPinpointsDamage(t *testing.T) {
	s, fs := openMemStore(t, nil)
	var ids []page.ID
	for i := 0; i < 5; i++ {
		id, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
		ids = append(ids, id)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	corruptPage(t, fs, "db", ids[1], 200, 8)
	corruptPage(t, fs, "db", ids[3], 500, 8)

	rep := s.Scrub()
	if rep.Clean() {
		t.Fatal("scrub missed injected damage")
	}
	if len(rep.Damaged) != 2 {
		t.Fatalf("found %d damaged pages, want 2:\n%s", len(rep.Damaged), rep)
	}
	got := map[page.ID]bool{rep.Damaged[0].ID: true, rep.Damaged[1].ID: true}
	if !got[ids[1]] || !got[ids[3]] {
		t.Fatalf("damaged set %v, want {%d, %d}", got, ids[1], ids[3])
	}
	for _, d := range rep.Damaged {
		if d.Detail == "" {
			t.Fatalf("empty damage detail for page %d", d.ID)
		}
	}
}

// TestScrubMetaDamage: a corrupted meta page is reported as such, not
// as a crash.
func TestScrubMetaDamage(t *testing.T) {
	s, fs := openMemStore(t, nil)
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	_ = id
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	corruptPage(t, fs, "db", 0, 40, 4)
	rep := s.Scrub()
	if rep.Clean() || rep.MetaDamage == "" {
		t.Fatalf("meta damage not reported:\n%s", rep)
	}
}

// TestScrubFreeListDamage: corrupting a page on the free list is
// called out by the walk as well as the page scan.
func TestScrubFreeListDamage(t *testing.T) {
	s, fs := openMemStore(t, nil)
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	corruptPage(t, fs, "db", id, 100, 4)
	rep := s.Scrub()
	if rep.FreeListDamage == "" {
		t.Fatalf("free-list damage not reported:\n%s", rep)
	}
}

// TestCorruptionTaxonomyOnEveryReadPath: a single damaged page is
// surfaced as *ErrCorruptPage — with the right ID — by Store.Get, by
// a ReadView, and by a pinned SnapshotView; never a panic, never
// silent wrong bytes. Undamaged pages keep reading fine (graceful
// degradation), and Scrub pinpoints exactly the damaged page.
func TestCorruptionTaxonomyOnEveryReadPath(t *testing.T) {
	s, fs := openMemStore(t, nil)
	var ids []page.ID
	for i := 0; i < 3; i++ {
		id, h, err := s.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(h.Page().Payload(), uint64(100+i))
		h.MarkDirty()
		h.Release()
		ids = append(ids, id)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	corruptPage(t, fs, "db", ids[1], 300, 16)
	if err := s.DropCache(); err != nil { // force every read to disk
		t.Fatal(err)
	}

	check := func(name string, get func(page.ID) (Handle, error)) {
		t.Helper()
		_, err := get(ids[1])
		var ce *ErrCorruptPage
		if !errors.As(err, &ce) {
			t.Fatalf("%s: corrupt page surfaced as %T (%v), want *ErrCorruptPage", name, err, err)
		}
		if ce.ID != ids[1] {
			t.Fatalf("%s: taxonomy names page %d, damage is on %d", name, ce.ID, ids[1])
		}
		if ce.Seq != s.Seq() {
			t.Fatalf("%s: taxonomy seq %d, want committed seq %d", name, ce.Seq, s.Seq())
		}
		// The neighbor page still reads: per-page degradation.
		h, err := get(ids[0])
		if err != nil {
			t.Fatalf("%s: undamaged neighbor unreadable: %v", name, err)
		}
		if got := binary.LittleEndian.Uint64(h.Page().Payload()); got != 100 {
			t.Fatalf("%s: neighbor holds %d, want 100", name, got)
		}
		h.Release()
		if err := s.DropCache(); err != nil {
			t.Fatal(err)
		}
	}

	check("Store.Get", s.Get)
	check("ReadView.Get", s.ReadView().Get)
	check("SnapshotView.Get", snap.Get)

	rep := s.Scrub()
	if len(rep.Damaged) != 1 || rep.Damaged[0].ID != ids[1] {
		t.Fatalf("scrub did not pinpoint page %d:\n%s", ids[1], rep)
	}
}
