package store

import (
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/page"
)

// prepPayload builds one staged page image carrying the given text.
func prepPayload(text string) *page.Page {
	img := page.New(page.TypeSlotted)
	copy(img.Payload(), text)
	img.UpdateChecksum()
	return img
}

// allocCommitted allocates a page and commits, so the prepared write
// targets a page that exists in committed state.
func allocCommitted(t *testing.T, s *Store) page.ID {
	t.Helper()
	id, h, err := s.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestPrepareSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prep.db")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := allocCommitted(t, s)
	img := prepPayload("staged but undecided")
	if err := s.Prepare(0xA1, []PageImage{{ID: id, Image: img}}, []RootUpdate{{Slot: 1, ID: id}}, nil); err != nil {
		t.Fatal(err)
	}
	// The stash is durable but applied nowhere: committed state and the
	// root directory are untouched.
	if got := s.Root(1); got == id {
		t.Fatal("prepare applied a root update before the decision")
	}
	s.Close()

	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pts := s2.PreparedTxns()
	if len(pts) != 1 || pts[0].Token != 0xA1 {
		t.Fatalf("recovered prepared txns = %+v, want one with token 0xA1", pts)
	}
	if len(pts[0].Images) != 1 || pts[0].Images[0].ID != id {
		t.Fatalf("recovered stash images = %+v", pts[0].Images)
	}
	if string(pts[0].Images[0].Image.Payload()[:20]) != "staged but undecided" {
		t.Fatal("recovered image bytes differ from the staged write")
	}
	if len(pts[0].Roots) != 1 || pts[0].Roots[0].Slot != 1 {
		t.Fatalf("recovered stash roots = %+v", pts[0].Roots)
	}

	// Deciding commit after the restart applies the stash.
	if err := s2.DecidePrepared(0xA1, true); err != nil {
		t.Fatal(err)
	}
	if got := s2.Root(1); got != id {
		t.Fatalf("root after decide = %d, want %d", got, id)
	}
	h, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(h.Page().Payload()[:20]) != "staged but undecided" {
		t.Fatal("decided image not applied")
	}
	h.Release()
	if n := len(s2.PreparedTxns()); n != 0 {
		t.Fatalf("%d prepared txns remain after decide", n)
	}
}

func TestDecideAbortIsDurableTombstone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "abort.db")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := allocCommitted(t, s)
	if err := s.Prepare(0xB2, []PageImage{{ID: id, Image: prepPayload("doomed")}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DecidePrepared(0xB2, false); err != nil {
		t.Fatal(err)
	}
	// Aborting a token never prepared still records the tombstone (the
	// coordinator's presumed-abort memory).
	if err := s.DecidePrepared(0xC3, false); err != nil {
		t.Fatal(err)
	}
	// A commit decision for an aborted token must fail, not resurrect.
	if err := s.DecidePrepared(0xB2, true); err == nil {
		t.Fatal("decide commit after abort succeeded")
	}
	s.Close()

	s2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := len(s2.PreparedTxns()); n != 0 {
		t.Fatalf("%d prepared txns survived an abort", n)
	}
	aborts := map[uint64]bool{}
	for _, tok := range s2.RecoveredAborts() {
		aborts[tok] = true
	}
	if !aborts[0xB2] || !aborts[0xC3] {
		t.Fatalf("recovered aborts = %v, want 0xB2 and 0xC3", s2.RecoveredAborts())
	}
	h, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(h.Page().Payload()[:6]) == "doomed" {
		t.Fatal("aborted stash leaked into committed state")
	}
	h.Release()
}

func TestPreparedStateSurvivesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	s, err := Open(path, &Options{TokenKeep: 8})
	if err != nil {
		t.Fatal(err)
	}
	id := allocCommitted(t, s)
	if err := s.Prepare(0xD4, []PageImage{{ID: id, Image: prepPayload("across the truncation")}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DecidePrepared(0xE5, false); err != nil {
		t.Fatal(err)
	}
	// A checkpoint truncates the WAL generation holding the prepare and
	// the abort tombstone; both must be re-logged into the fresh one.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path, &Options{TokenKeep: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pts := s2.PreparedTxns()
	if len(pts) != 1 || pts[0].Token != 0xD4 {
		t.Fatalf("prepared txns after checkpoint+reopen = %+v", pts)
	}
	found := false
	for _, tok := range s2.RecoveredAborts() {
		if tok == 0xE5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("abort tombstone lost across checkpoint: %v", s2.RecoveredAborts())
	}
}

func TestTokenKeepSurvivesCheckpointAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tok.db")
	s, err := Open(path, &Options{TokenKeep: 4})
	if err != nil {
		t.Fatal(err)
	}
	id := allocCommitted(t, s)
	if err := s.Prepare(0xF6, []PageImage{{ID: id, Image: prepPayload("kept")}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DecidePrepared(0xF6, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path, &Options{TokenKeep: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	found := false
	for _, tok := range s2.RecoveredTokens() {
		if tok == 0xF6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("applied token lost across checkpoint+reopen: %v", s2.RecoveredTokens())
	}
	// Idempotent re-decide: the token is remembered as applied.
	if err := s2.DecidePrepared(0xF6, true); err != nil {
		t.Fatalf("re-decide of an applied token: %v", err)
	}
}

func TestPrepareIdempotentAndZeroTokenRejected(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "idem.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := allocCommitted(t, s)
	if err := s.Prepare(0, []PageImage{{ID: id, Image: prepPayload("x")}}, nil, nil); err == nil {
		t.Fatal("zero token accepted")
	}
	for i := 0; i < 2; i++ {
		if err := s.Prepare(0x77, []PageImage{{ID: id, Image: prepPayload("x")}}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.PreparedTxns()); n != 1 {
		t.Fatalf("re-prepare duplicated the stash: %d entries", n)
	}
}
