package page

import (
	"testing"
	"testing/quick"
)

func TestChecksumRoundTrip(t *testing.T) {
	p := New(TypeBTree)
	copy(p.Payload(), "hello hypermodel")
	p.UpdateChecksum()
	if !p.VerifyChecksum() {
		t.Fatal("fresh checksum does not verify")
	}
	p.Payload()[0] ^= 0xFF
	if p.VerifyChecksum() {
		t.Fatal("corrupted page still verifies")
	}
}

func TestValidateRejectsUnknownType(t *testing.T) {
	p := New(TypeBTree)
	p.Bytes()[4] = 200
	p.UpdateChecksum()
	if err := p.Validate(); err == nil {
		t.Fatal("unknown page type accepted")
	}
}

func TestValidateAcceptsAllKnownTypes(t *testing.T) {
	for ty := TypeFree; ty < maxType; ty++ {
		p := New(ty)
		p.UpdateChecksum()
		if err := p.Validate(); err != nil {
			t.Fatalf("type %s: %v", ty, err)
		}
		if p.Type() != ty {
			t.Fatalf("type %s: round-trip got %s", ty, p.Type())
		}
	}
}

func TestLSNRoundTrip(t *testing.T) {
	f := func(lsn uint64) bool {
		p := New(TypeSlotted)
		p.SetLSN(lsn)
		return p.LSN() == lsn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFromAndReset(t *testing.T) {
	a := New(TypeSlotted)
	copy(a.Payload(), "payload data")
	b := New(TypeFree)
	b.CopyFrom(a)
	if b.Type() != TypeSlotted || string(b.Payload()[:12]) != "payload data" {
		t.Fatal("CopyFrom did not copy the image")
	}
	b.Reset(TypeBTree)
	if b.Type() != TypeBTree {
		t.Fatalf("Reset type = %s", b.Type())
	}
	for _, c := range b.Payload() {
		if c != 0 {
			t.Fatal("Reset left non-zero payload bytes")
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeBTree.String() != "btree" || Type(99).String() != "type(99)" {
		t.Fatal("unexpected Type.String output")
	}
}
