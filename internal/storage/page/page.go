// Package page defines the fixed-size page abstraction shared by the
// pager, buffer pool, B+tree and slotted-record layers.
//
// A page is a 4 KiB byte array with a small typed header:
//
//	offset  size  field
//	0       4     checksum (CRC-32C of bytes [4:PageSize])
//	4       1     page type
//	5       8     LSN of the last log record that touched the page
//	13      ...   type-specific payload
//
// The checksum is computed on write-out and verified on read-in by the
// pager; in-memory pages carry whatever stale checksum was last stored.
package page

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Size is the size of every page in the database file, in bytes.
const Size = 4096

// HeaderSize is the number of bytes reserved at the start of every page
// for the common header (checksum, type, LSN).
const HeaderSize = 13

// ID identifies a page by its zero-based position in the database file.
type ID uint64

// Invalid is the reserved "no page" identifier. Page 0 is the meta page,
// so Invalid uses the all-ones pattern instead of zero.
const Invalid ID = ^ID(0)

// Type tags the role of a page so that crash recovery and debugging
// tools can interpret its payload.
type Type uint8

// Page types.
const (
	TypeFree     Type = iota // on the free list
	TypeMeta                 // page 0: database metadata
	TypeBTree                // B+tree interior or leaf node
	TypeSlotted              // slotted record page
	TypeOverflow             // large-object overflow chain
	TypeObjTable             // object-table directory page
	maxType
)

func (t Type) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeMeta:
		return "meta"
	case TypeBTree:
		return "btree"
	case TypeSlotted:
		return "slotted"
	case TypeOverflow:
		return "overflow"
	case TypeObjTable:
		return "objtable"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Page is a single fixed-size page image.
type Page struct {
	buf [Size]byte
}

// New returns a zeroed page of the given type.
func New(t Type) *Page {
	p := &Page{}
	p.SetType(t)
	return p
}

// Bytes returns the full page image, including the header. The caller
// must not change the length; mutating contents is allowed.
func (p *Page) Bytes() []byte { return p.buf[:] }

// Payload returns the type-specific portion of the page, i.e. the bytes
// after the common header.
func (p *Page) Payload() []byte { return p.buf[HeaderSize:] }

// Type reports the page's type tag.
func (p *Page) Type() Type { return Type(p.buf[4]) }

// SetType sets the page's type tag.
func (p *Page) SetType(t Type) { p.buf[4] = byte(t) }

// LSN reports the log sequence number of the last WAL record applied to
// the page.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[5:13]) }

// SetLSN records the log sequence number of the last WAL record applied
// to the page.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[5:13], lsn) }

// UpdateChecksum recomputes and stores the header checksum. Call just
// before writing the page image out.
func (p *Page) UpdateChecksum() {
	sum := crc32.Checksum(p.buf[4:], castagnoli)
	binary.LittleEndian.PutUint32(p.buf[0:4], sum)
}

// VerifyChecksum reports whether the stored checksum matches the page
// contents. An all-zero page does NOT verify (the CRC of zeros is
// nonzero): unwritten pages are indistinguishable from damage at this
// layer, and callers that must tell them apart check for zeros first.
func (p *Page) VerifyChecksum() bool {
	want := binary.LittleEndian.Uint32(p.buf[0:4])
	return crc32.Checksum(p.buf[4:], castagnoli) == want
}

// SealBytes recomputes and stores the header checksum of a raw page
// image held in a byte slice (len must be at least Size) without
// copying it into a Page. The page server uses it to seal response
// buffers: an in-memory image may predate its first write-out, so its
// stored checksum is not yet meaningful.
func SealBytes(b []byte) {
	sum := crc32.Checksum(b[4:Size], castagnoli)
	binary.LittleEndian.PutUint32(b[0:4], sum)
}

// Validate performs basic structural checks on a page read from disk.
func (p *Page) Validate() error {
	if !p.VerifyChecksum() {
		return fmt.Errorf("page: checksum mismatch (type %s)", p.Type())
	}
	if Type(p.buf[4]) >= maxType {
		return fmt.Errorf("page: unknown page type %d", p.buf[4])
	}
	return nil
}

// CopyFrom replaces this page's image with src's.
func (p *Page) CopyFrom(src *Page) { p.buf = src.buf }

// Reset zeroes the page and sets the given type.
func (p *Page) Reset(t Type) {
	p.buf = [Size]byte{}
	p.SetType(t)
}
