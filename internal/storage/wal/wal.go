// Package wal implements a redo-only write-ahead log.
//
// The store appends the full after-image of every page dirtied by a
// transaction, followed by a commit record, and syncs the log before
// acknowledging the commit. Data pages are written back to the main
// file lazily (at checkpoint or eviction), so after a crash the log is
// replayed: page images belonging to committed transactions are applied
// to the file, everything after the last valid commit record is
// discarded.
//
// Record framing:
//
//	length  uint32   length of body
//	crc     uint32   CRC-32C of body
//	body    []byte   kind byte followed by kind-specific payload
//
// Kinds:
//
//	kindPage   (1): pageID uint64, image [page.Size]byte
//	kindCommit (2): txn sequence number uint64
//	kindGroup  (3): store sequence uint64, count uint32, count × txn
//	               token uint64 — one commit barrier covering every
//	               page image appended since the previous barrier, on
//	               behalf of count batched transactions (group commit).
//	               Recovery applies the batch all-or-nothing, exactly
//	               like kindCommit: either the barrier made it to disk
//	               and every transaction in the group replays, or it
//	               did not and none do.
//	kindPrepare (4): txn token uint64, root-update count uint32,
//	               count × (slot uint32, pageID uint64), free count
//	               uint32, count × pageID uint64 — a two-phase-commit
//	               prepare barrier. The page images appended since the
//	               previous barrier are NOT applied: they are stashed
//	               under the token, together with the record's root
//	               updates and frees, and surface from Replay as an
//	               in-doubt prepared transaction for the upper layer
//	               (the page server) to resolve against the commit
//	               coordinator. The barrier still advances the
//	               committed watermark, so a prepared-but-undecided
//	               transaction survives tail truncation.
//	kindDecide (5): txn token uint64, commit byte — the decision for a
//	               prepared transaction. commit=1 applies any pending
//	               images (the decide flush re-appends the prepared
//	               write set) and records the token as applied;
//	               commit=0 drops the token's stash and records the
//	               abort, so a recovering participant answers "aborted"
//	               instead of staying in doubt.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

const (
	kindPage    = 1
	kindCommit  = 2
	kindGroup   = 3
	kindPrepare = 4
	kindDecide  = 5

	frameHeader = 8 // length + crc

	// maxFrameBody bounds a plausible frame body: far above any real
	// record (a page record is ~4 KiB, a group record grows 8 bytes per
	// token) but small enough that random garbage in a length field is
	// recognized as corruption rather than a torn tail.
	maxFrameBody = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only redo log.
type WAL struct {
	mu      sync.Mutex
	f       vfs.File
	size    int64 // current log size = next LSN
	pending int64 // bytes appended but not yet synced
	// Counters are atomic so Stats never blocks behind a commit fsync
	// holding mu.
	syncs   atomic.Uint64
	appends atomic.Uint64
}

// Open opens (or creates) the log file at path on the real
// filesystem. The caller is expected to run Replay before appending
// new records.
func Open(path string) (*WAL, error) {
	return OpenFS(vfs.OS(), path)
}

// OpenFS opens (or creates) the log file at path on fs.
func OpenFS(fs vfs.FS, path string) (*WAL, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: size %s: %w", path, err)
	}
	return &WAL{f: f, size: size}, nil
}

func (w *WAL) appendFrame(body []byte) (lsn uint64, err error) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	if _, err := w.f.WriteAt(hdr[:], w.size); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.f.WriteAt(body, w.size+frameHeader); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	lsn = uint64(w.size)
	w.size += frameHeader + int64(len(body))
	w.pending += frameHeader + int64(len(body))
	w.appends.Add(1)
	return lsn, nil
}

// AppendPage logs the full after-image of page id and returns the LSN
// of the record.
func (w *WAL) AppendPage(id page.ID, p *page.Page) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8+page.Size)
	body[0] = kindPage
	binary.LittleEndian.PutUint64(body[1:9], uint64(id))
	p.UpdateChecksum()
	copy(body[9:], p.Bytes())
	return w.appendFrame(body)
}

// AppendCommit logs a commit record for the given transaction sequence
// number and syncs the log to stable storage.
func (w *WAL) AppendCommit(seq uint64) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8)
	body[0] = kindCommit
	binary.LittleEndian.PutUint64(body[1:9], seq)
	if lsn, err = w.appendFrame(body); err != nil {
		return 0, err
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendCommitNoSync logs a commit record without forcing the log to
// stable storage. Used by bulk loads that accept losing the tail on a
// crash and checkpoint at the end.
func (w *WAL) AppendCommitNoSync(seq uint64) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8)
	body[0] = kindCommit
	binary.LittleEndian.PutUint64(body[1:9], seq)
	return w.appendFrame(body)
}

// AppendCommitGroup logs one commit barrier covering every page image
// appended since the previous barrier on behalf of len(tokens) batched
// transactions, and (unless nosync) forces the log to stable storage —
// the single fsync a group commit amortizes across the whole batch.
func (w *WAL) AppendCommitGroup(seq uint64, tokens []uint64, nosync bool) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8+4+8*len(tokens))
	body[0] = kindGroup
	binary.LittleEndian.PutUint64(body[1:9], seq)
	binary.LittleEndian.PutUint32(body[9:13], uint32(len(tokens)))
	for i, t := range tokens {
		binary.LittleEndian.PutUint64(body[13+8*i:], t)
	}
	if lsn, err = w.appendFrame(body); err != nil {
		return 0, err
	}
	if nosync {
		return lsn, nil
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// RootUpdate is one named-root assignment carried by a prepare record.
type RootUpdate struct {
	Slot int
	ID   page.ID
}

// AppendPrepare logs a two-phase-commit prepare barrier covering every
// page image appended since the previous barrier, on behalf of the
// transaction identified by token, and forces the log to stable
// storage: a participant must not vote yes on a prepare it could lose.
// The write set travels as the stashed images; the root updates and
// frees — which have no page image of their own — ride in the record.
func (w *WAL) AppendPrepare(token uint64, roots []RootUpdate, frees []page.ID) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 0, 1+8+4+12*len(roots)+4+8*len(frees))
	body = append(body, kindPrepare)
	body = binary.LittleEndian.AppendUint64(body, token)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(roots)))
	for _, r := range roots {
		body = binary.LittleEndian.AppendUint32(body, uint32(r.Slot))
		body = binary.LittleEndian.AppendUint64(body, uint64(r.ID))
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(frees)))
	for _, id := range frees {
		body = binary.LittleEndian.AppendUint64(body, uint64(id))
	}
	if lsn, err = w.appendFrame(body); err != nil {
		return 0, err
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendDecide logs the decision for a prepared transaction and forces
// the log to stable storage. With commit set it doubles as a commit
// barrier for any page images appended since the previous barrier (the
// decide flush re-appends the prepared write set); without it nothing
// is applied and the abort is remembered.
func (w *WAL) AppendDecide(token uint64, commit bool) (lsn uint64, err error) {
	return w.appendDecide(token, commit, false)
}

// AppendDecideNoSync is AppendDecide without the fsync, for re-logging
// a batch of remembered decisions after a checkpoint truncation; the
// caller seals the batch with one Sync.
func (w *WAL) AppendDecideNoSync(token uint64, commit bool) (lsn uint64, err error) {
	return w.appendDecide(token, commit, true)
}

func (w *WAL) appendDecide(token uint64, commit, nosync bool) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8+1)
	body[0] = kindDecide
	binary.LittleEndian.PutUint64(body[1:9], token)
	if commit {
		body[9] = 1
	}
	if lsn, err = w.appendFrame(body); err != nil {
		return 0, err
	}
	if !nosync {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

func (w *WAL) syncLocked() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.pending = 0
	w.syncs.Add(1)
	return nil
}

// Sync forces buffered records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// Size reports the current log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Stats reports the cumulative number of appended records and syncs.
// It takes no lock, so it never waits behind an in-flight commit.
func (w *WAL) Stats() (appends, syncs uint64) {
	return w.appends.Load(), w.syncs.Load()
}

// PageImage is one logged page after-image, surfaced by ReplayFull as
// part of a prepared transaction's stashed write set.
type PageImage struct {
	ID    page.ID
	Image *page.Page
}

// PreparedTxn is a transaction recovered in the prepared-but-undecided
// state: its prepare barrier reached stable storage but no decide
// record followed. The upper layer resolves it against the commit
// coordinator and applies or discards the stash.
type PreparedTxn struct {
	Token  uint64
	Images []PageImage
	Roots  []RootUpdate
	Frees  []page.ID
}

// ReplayResult is what recovery learned beyond the applied images: the
// transactions still in doubt, the tokens of applied commits (for
// exactly-once dedup across a restart), and the tokens durably decided
// abort — all in log order.
type ReplayResult struct {
	Prepared []*PreparedTxn
	Tokens   []uint64
	Aborted  []uint64
}

// Replay scans the log from the beginning and invokes apply for every
// page image that belongs to a committed transaction, in log order.
// Torn or corrupt tails are tolerated: scanning stops at the first
// invalid frame and the log is truncated to the last committed point.
func (w *WAL) Replay(apply func(id page.ID, p *page.Page) error) error {
	_, err := w.ReplayFull(apply)
	return err
}

// ReplayFull is Replay returning the recovery artifacts the two-phase
// commit machinery needs: prepared-but-undecided transactions, applied
// commit tokens, and durable abort decisions.
func (w *WAL) ReplayFull(apply func(id page.ID, p *page.Page) error) (*ReplayResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	res := &ReplayResult{}
	stash := make(map[uint64]*PreparedTxn)
	var stashOrder []uint64 // prepare log order, for deterministic re-log
	var pending []PageImage
	var off, committed int64
	for off < w.size {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off, frameHeader), hdr[:]); err != nil {
			break // torn tail
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n <= 0 || off+frameHeader+n > w.size {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off+frameHeader, n), body); err != nil {
			break
		}
		if crc32.Checksum(body, castagnoli) != want {
			break
		}
		switch body[0] {
		case kindPage:
			if len(body) != 1+8+page.Size {
				return nil, fmt.Errorf("wal: malformed page record at offset %d", off)
			}
			img := &page.Page{}
			copy(img.Bytes(), body[9:])
			pending = append(pending, PageImage{page.ID(binary.LittleEndian.Uint64(body[1:9])), img})
		case kindCommit, kindGroup:
			if body[0] == kindGroup {
				if len(body) < 1+8+4 || len(body) != 1+8+4+8*int(binary.LittleEndian.Uint32(body[9:13])) {
					return nil, fmt.Errorf("wal: malformed group-commit record at offset %d", off)
				}
				count := int(binary.LittleEndian.Uint32(body[9:13]))
				for i := 0; i < count; i++ {
					res.Tokens = append(res.Tokens, binary.LittleEndian.Uint64(body[13+8*i:]))
				}
			}
			for _, pi := range pending {
				if err := apply(pi.ID, pi.Image); err != nil {
					return nil, fmt.Errorf("wal: replay apply page %d: %w", pi.ID, err)
				}
			}
			pending = nil
			committed = off + frameHeader + n
		case kindPrepare:
			pt, err := parsePrepare(body)
			if err != nil {
				return nil, fmt.Errorf("wal: %w at offset %d", err, off)
			}
			// The images since the last barrier are the prepared write
			// set: stashed, not applied — the decision is not ours to
			// take. The barrier still advances the committed watermark so
			// the in-doubt state survives tail truncation.
			pt.Images = pending
			pending = nil
			if _, seen := stash[pt.Token]; !seen {
				stashOrder = append(stashOrder, pt.Token)
			}
			stash[pt.Token] = pt
			committed = off + frameHeader + n
		case kindDecide:
			if len(body) != 1+8+1 {
				return nil, fmt.Errorf("wal: malformed decide record at offset %d", off)
			}
			tok := binary.LittleEndian.Uint64(body[1:9])
			if body[9] == 1 {
				// Commit: the decide flush re-appended the write set, so
				// the stash and the pending images carry the same bytes —
				// apply both, last writer wins.
				if pt := stash[tok]; pt != nil {
					pending = append(pt.Images, pending...)
				}
				for _, pi := range pending {
					if err := apply(pi.ID, pi.Image); err != nil {
						return nil, fmt.Errorf("wal: replay apply page %d: %w", pi.ID, err)
					}
				}
				res.Tokens = append(res.Tokens, tok)
			} else {
				// Abort: the stashed write set (and any images appended
				// since the last barrier) belonged to the aborted txn.
				res.Aborted = append(res.Aborted, tok)
			}
			pending = nil
			delete(stash, tok)
			committed = off + frameHeader + n
		default:
			return nil, fmt.Errorf("wal: unknown record kind %d at offset %d", body[0], off)
		}
		off += frameHeader + n
	}
	// Drop any uncommitted or torn tail.
	if committed < w.size {
		if err := w.f.Truncate(committed); err != nil {
			return nil, fmt.Errorf("wal: truncate tail: %w", err)
		}
		w.size = committed
	}
	// Surface the still-undecided transactions in log order.
	for _, tok := range stashOrder {
		if pt, ok := stash[tok]; ok {
			res.Prepared = append(res.Prepared, pt)
		}
	}
	return res, nil
}

// parsePrepare decodes a kindPrepare body (sans the stashed images,
// which the caller collects from the preceding page records).
func parsePrepare(body []byte) (*PreparedTxn, error) {
	if len(body) < 1+8+4 {
		return nil, errors.New("wal: malformed prepare record")
	}
	pt := &PreparedTxn{Token: binary.LittleEndian.Uint64(body[1:9])}
	off := 9
	nr := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if len(body) < off+12*nr+4 {
		return nil, errors.New("wal: malformed prepare record")
	}
	for i := 0; i < nr; i++ {
		slot := int(binary.LittleEndian.Uint32(body[off:]))
		id := page.ID(binary.LittleEndian.Uint64(body[off+4:]))
		pt.Roots = append(pt.Roots, RootUpdate{Slot: slot, ID: id})
		off += 12
	}
	nf := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if len(body) != off+8*nf {
		return nil, errors.New("wal: malformed prepare record")
	}
	for i := 0; i < nf; i++ {
		pt.Frees = append(pt.Frees, page.ID(binary.LittleEndian.Uint64(body[off:])))
		off += 8
	}
	return pt, nil
}

// ScanReport summarizes a read-only integrity pass over the log (see
// Scan).
type ScanReport struct {
	// Records is the number of well-formed records scanned, committed
	// or not.
	Records int
	// Commits is the number of commit barriers (kindCommit, kindGroup
	// or a commit-decide) among them.
	Commits int
	// Prepares is the number of two-phase-commit prepare barriers among
	// them — transactions that were in doubt at the point the log
	// captures.
	Prepares int
	// CommittedBytes is the length of the log prefix covered by the
	// last commit barrier — exactly what Replay would keep.
	CommittedBytes int64
	// TailBytes is the length of the log past that prefix: appended
	// records no barrier covers yet, a torn final frame, or a
	// mid-frame corruption that ended the scan. Recovery discards
	// these bytes by design, so a tail is not damage — Malformed says
	// whether it was cut short by an invalid frame.
	TailBytes int64
	// Malformed reports that the scan stopped at a structurally
	// invalid frame (bad CRC, impossible length, unknown kind) before
	// the physical end of the log.
	Malformed bool
}

// Scan walks the log read-only and reports what Replay would find,
// without applying or truncating anything — the scrub path. Unlike
// Replay it never fails on a damaged log: damage ends the scan and is
// reported in the result.
func (w *WAL) Scan() ScanReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	var rep ScanReport
	var off int64
	for off < w.size {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off, frameHeader), hdr[:]); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrameBody {
			// No legitimate frame is this large; a torn in-progress
			// frame carries a plausible length. This is garbage.
			rep.Malformed = true
			break
		}
		if n <= 0 || off+frameHeader+n > w.size {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off+frameHeader, n), body); err != nil {
			break
		}
		if crc32.Checksum(body, castagnoli) != want {
			rep.Malformed = true
			break
		}
		switch body[0] {
		case kindPage:
			if len(body) != 1+8+page.Size {
				rep.Malformed = true
			}
		case kindCommit:
			rep.Commits++
			rep.CommittedBytes = off + frameHeader + n
		case kindGroup:
			if len(body) < 1+8+4 || len(body) != 1+8+4+8*int(binary.LittleEndian.Uint32(body[9:13])) {
				rep.Malformed = true
			} else {
				rep.Commits++
				rep.CommittedBytes = off + frameHeader + n
			}
		case kindPrepare:
			if _, err := parsePrepare(body); err != nil {
				rep.Malformed = true
			} else {
				// A prepare is a barrier: Replay keeps the prefix it
				// covers (the stash must survive truncation).
				rep.Prepares++
				rep.CommittedBytes = off + frameHeader + n
			}
		case kindDecide:
			if len(body) != 1+8+1 {
				rep.Malformed = true
			} else {
				rep.Commits++
				rep.CommittedBytes = off + frameHeader + n
			}
		default:
			rep.Malformed = true
		}
		if rep.Malformed {
			return rep.withTail(w.size)
		}
		rep.Records++
		off += frameHeader + n
	}
	return rep.withTail(w.size)
}

func (r ScanReport) withTail(size int64) ScanReport {
	r.TailBytes = size - r.CommittedBytes
	return r
}

// Truncate discards the entire log (after a checkpoint has made the
// main file durable).
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	w.size = 0
	w.pending = 0
	return nil
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return err
	}
	return nil
}
