// Package wal implements a redo-only write-ahead log.
//
// The store appends the full after-image of every page dirtied by a
// transaction, followed by a commit record, and syncs the log before
// acknowledging the commit. Data pages are written back to the main
// file lazily (at checkpoint or eviction), so after a crash the log is
// replayed: page images belonging to committed transactions are applied
// to the file, everything after the last valid commit record is
// discarded.
//
// Record framing:
//
//	length  uint32   length of body
//	crc     uint32   CRC-32C of body
//	body    []byte   kind byte followed by kind-specific payload
//
// Kinds:
//
//	kindPage   (1): pageID uint64, image [page.Size]byte
//	kindCommit (2): txn sequence number uint64
//	kindGroup  (3): store sequence uint64, count uint32, count × txn
//	               token uint64 — one commit barrier covering every
//	               page image appended since the previous barrier, on
//	               behalf of count batched transactions (group commit).
//	               Recovery applies the batch all-or-nothing, exactly
//	               like kindCommit: either the barrier made it to disk
//	               and every transaction in the group replays, or it
//	               did not and none do.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

const (
	kindPage   = 1
	kindCommit = 2
	kindGroup  = 3

	frameHeader = 8 // length + crc

	// maxFrameBody bounds a plausible frame body: far above any real
	// record (a page record is ~4 KiB, a group record grows 8 bytes per
	// token) but small enough that random garbage in a length field is
	// recognized as corruption rather than a torn tail.
	maxFrameBody = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only redo log.
type WAL struct {
	mu      sync.Mutex
	f       vfs.File
	size    int64 // current log size = next LSN
	pending int64 // bytes appended but not yet synced
	// Counters are atomic so Stats never blocks behind a commit fsync
	// holding mu.
	syncs   atomic.Uint64
	appends atomic.Uint64
}

// Open opens (or creates) the log file at path on the real
// filesystem. The caller is expected to run Replay before appending
// new records.
func Open(path string) (*WAL, error) {
	return OpenFS(vfs.OS(), path)
}

// OpenFS opens (or creates) the log file at path on fs.
func OpenFS(fs vfs.FS, path string) (*WAL, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: size %s: %w", path, err)
	}
	return &WAL{f: f, size: size}, nil
}

func (w *WAL) appendFrame(body []byte) (lsn uint64, err error) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	if _, err := w.f.WriteAt(hdr[:], w.size); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.f.WriteAt(body, w.size+frameHeader); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	lsn = uint64(w.size)
	w.size += frameHeader + int64(len(body))
	w.pending += frameHeader + int64(len(body))
	w.appends.Add(1)
	return lsn, nil
}

// AppendPage logs the full after-image of page id and returns the LSN
// of the record.
func (w *WAL) AppendPage(id page.ID, p *page.Page) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8+page.Size)
	body[0] = kindPage
	binary.LittleEndian.PutUint64(body[1:9], uint64(id))
	p.UpdateChecksum()
	copy(body[9:], p.Bytes())
	return w.appendFrame(body)
}

// AppendCommit logs a commit record for the given transaction sequence
// number and syncs the log to stable storage.
func (w *WAL) AppendCommit(seq uint64) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8)
	body[0] = kindCommit
	binary.LittleEndian.PutUint64(body[1:9], seq)
	if lsn, err = w.appendFrame(body); err != nil {
		return 0, err
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendCommitNoSync logs a commit record without forcing the log to
// stable storage. Used by bulk loads that accept losing the tail on a
// crash and checkpoint at the end.
func (w *WAL) AppendCommitNoSync(seq uint64) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8)
	body[0] = kindCommit
	binary.LittleEndian.PutUint64(body[1:9], seq)
	return w.appendFrame(body)
}

// AppendCommitGroup logs one commit barrier covering every page image
// appended since the previous barrier on behalf of len(tokens) batched
// transactions, and (unless nosync) forces the log to stable storage —
// the single fsync a group commit amortizes across the whole batch.
func (w *WAL) AppendCommitGroup(seq uint64, tokens []uint64, nosync bool) (lsn uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 1+8+4+8*len(tokens))
	body[0] = kindGroup
	binary.LittleEndian.PutUint64(body[1:9], seq)
	binary.LittleEndian.PutUint32(body[9:13], uint32(len(tokens)))
	for i, t := range tokens {
		binary.LittleEndian.PutUint64(body[13+8*i:], t)
	}
	if lsn, err = w.appendFrame(body); err != nil {
		return 0, err
	}
	if nosync {
		return lsn, nil
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	return lsn, nil
}

func (w *WAL) syncLocked() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.pending = 0
	w.syncs.Add(1)
	return nil
}

// Sync forces buffered records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// Size reports the current log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Stats reports the cumulative number of appended records and syncs.
// It takes no lock, so it never waits behind an in-flight commit.
func (w *WAL) Stats() (appends, syncs uint64) {
	return w.appends.Load(), w.syncs.Load()
}

// Replay scans the log from the beginning and invokes apply for every
// page image that belongs to a committed transaction, in log order.
// Torn or corrupt tails are tolerated: scanning stops at the first
// invalid frame and the log is truncated to the last committed point.
func (w *WAL) Replay(apply func(id page.ID, p *page.Page) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	type pendingImage struct {
		id page.ID
		p  *page.Page
	}
	var pending []pendingImage
	var off, committed int64
	for off < w.size {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off, frameHeader), hdr[:]); err != nil {
			break // torn tail
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n <= 0 || off+frameHeader+n > w.size {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off+frameHeader, n), body); err != nil {
			break
		}
		if crc32.Checksum(body, castagnoli) != want {
			break
		}
		switch body[0] {
		case kindPage:
			if len(body) != 1+8+page.Size {
				return fmt.Errorf("wal: malformed page record at offset %d", off)
			}
			img := &page.Page{}
			copy(img.Bytes(), body[9:])
			pending = append(pending, pendingImage{page.ID(binary.LittleEndian.Uint64(body[1:9])), img})
		case kindCommit, kindGroup:
			if body[0] == kindGroup {
				if len(body) < 1+8+4 || len(body) != 1+8+4+8*int(binary.LittleEndian.Uint32(body[9:13])) {
					return fmt.Errorf("wal: malformed group-commit record at offset %d", off)
				}
			}
			for _, pi := range pending {
				if err := apply(pi.id, pi.p); err != nil {
					return fmt.Errorf("wal: replay apply page %d: %w", pi.id, err)
				}
			}
			pending = pending[:0]
			committed = off + frameHeader + n
		default:
			return fmt.Errorf("wal: unknown record kind %d at offset %d", body[0], off)
		}
		off += frameHeader + n
	}
	// Drop any uncommitted or torn tail.
	if committed < w.size {
		if err := w.f.Truncate(committed); err != nil {
			return fmt.Errorf("wal: truncate tail: %w", err)
		}
		w.size = committed
	}
	return nil
}

// ScanReport summarizes a read-only integrity pass over the log (see
// Scan).
type ScanReport struct {
	// Records is the number of well-formed records scanned, committed
	// or not.
	Records int
	// Commits is the number of commit barriers (kindCommit or
	// kindGroup) among them.
	Commits int
	// CommittedBytes is the length of the log prefix covered by the
	// last commit barrier — exactly what Replay would keep.
	CommittedBytes int64
	// TailBytes is the length of the log past that prefix: appended
	// records no barrier covers yet, a torn final frame, or a
	// mid-frame corruption that ended the scan. Recovery discards
	// these bytes by design, so a tail is not damage — Malformed says
	// whether it was cut short by an invalid frame.
	TailBytes int64
	// Malformed reports that the scan stopped at a structurally
	// invalid frame (bad CRC, impossible length, unknown kind) before
	// the physical end of the log.
	Malformed bool
}

// Scan walks the log read-only and reports what Replay would find,
// without applying or truncating anything — the scrub path. Unlike
// Replay it never fails on a damaged log: damage ends the scan and is
// reported in the result.
func (w *WAL) Scan() ScanReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	var rep ScanReport
	var off int64
	for off < w.size {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off, frameHeader), hdr[:]); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrameBody {
			// No legitimate frame is this large; a torn in-progress
			// frame carries a plausible length. This is garbage.
			rep.Malformed = true
			break
		}
		if n <= 0 || off+frameHeader+n > w.size {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(w.f, off+frameHeader, n), body); err != nil {
			break
		}
		if crc32.Checksum(body, castagnoli) != want {
			rep.Malformed = true
			break
		}
		switch body[0] {
		case kindPage:
			if len(body) != 1+8+page.Size {
				rep.Malformed = true
			}
		case kindCommit:
			rep.Commits++
			rep.CommittedBytes = off + frameHeader + n
		case kindGroup:
			if len(body) < 1+8+4 || len(body) != 1+8+4+8*int(binary.LittleEndian.Uint32(body[9:13])) {
				rep.Malformed = true
			} else {
				rep.Commits++
				rep.CommittedBytes = off + frameHeader + n
			}
		default:
			rep.Malformed = true
		}
		if rep.Malformed {
			return rep.withTail(w.size)
		}
		rep.Records++
		off += frameHeader + n
	}
	return rep.withTail(w.size)
}

func (r ScanReport) withTail(size int64) ScanReport {
	r.TailBytes = size - r.CommittedBytes
	return r
}

// Truncate discards the entire log (after a checkpoint has made the
// main file durable).
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	w.size = 0
	w.pending = 0
	return nil
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return err
	}
	return nil
}
