package wal

import (
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/vfs"
)

// openMem opens a log named "wal" on a fresh in-memory FS so tests can
// corrupt and truncate the raw bytes without touching the real disk.
func openMem(t *testing.T) (*WAL, *vfs.MemFS) {
	t.Helper()
	fs := vfs.NewMem()
	w, err := OpenFS(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, fs
}

func reopen(t *testing.T, fs *vfs.MemFS) *WAL {
	t.Helper()
	w, err := OpenFS(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func mkPage(t *testing.T, fill byte) *page.Page {
	t.Helper()
	p := page.New(page.TypeSlotted)
	pl := p.Payload()
	for i := range pl {
		pl[i] = fill
	}
	return p
}

func TestReplayAppliesCommittedOnly(t *testing.T) {
	w, _ := openMem(t)
	if _, err := w.AppendPage(1, mkPage(t, 0xAA)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendPage(2, mkPage(t, 0xBB)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Uncommitted page after the commit: must not be applied.
	if _, err := w.AppendPage(3, mkPage(t, 0xCC)); err != nil {
		t.Fatal(err)
	}

	applied := map[page.ID]byte{}
	if err := w.Replay(func(id page.ID, p *page.Page) error {
		applied[id] = p.Payload()[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[1] != 0xAA || applied[2] != 0xBB {
		t.Fatalf("applied = %v", applied)
	}
	// The uncommitted tail must have been truncated away.
	if err := w.Replay(func(id page.ID, p *page.Page) error {
		applied[id]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if applied[1] != 0xAB || applied[2] != 0xBC {
		t.Fatal("second replay did not re-apply exactly the committed prefix")
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	w, fs := openMem(t)
	if _, err := w.AppendPage(7, mkPage(t, 0x77)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	if _, err := w.AppendPage(8, mkPage(t, 0x88)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second transaction in half.
	raw, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("wal", raw[:goodSize+10]); err != nil {
		t.Fatal(err)
	}
	w2 := reopen(t, fs)
	var got []page.ID
	if err := w2.Replay(func(id page.ID, p *page.Page) error {
		got = append(got, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("replayed %v, want [7]", got)
	}
	if w2.Size() != goodSize {
		t.Fatalf("log not truncated to last commit: size=%d want %d", w2.Size(), goodSize)
	}
}

func TestReplayDetectsCorruptBody(t *testing.T) {
	w, fs := openMem(t)
	if _, err := w.AppendPage(1, mkPage(t, 0x11)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendPage(2, mkPage(t, 0x22)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Corrupt a byte inside the second transaction's page image.
	raw, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	firstTxnEnd := int64(frameHeader+1+8+page.Size) + frameHeader + 9
	raw[firstTxnEnd+100] ^= 0xFF
	if err := fs.WriteFile("wal", raw); err != nil {
		t.Fatal(err)
	}

	w2 := reopen(t, fs)
	var got []page.ID
	if err := w2.Replay(func(id page.ID, p *page.Page) error {
		got = append(got, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("replayed %v, want just page 1", got)
	}
}

func TestTruncate(t *testing.T) {
	w, _ := openMem(t)
	if _, err := w.AppendPage(1, mkPage(t, 0x01)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if w.Size() == 0 {
		t.Fatal("log empty after append")
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatal("log not empty after truncate")
	}
	n := 0
	if err := w.Replay(func(page.ID, *page.Page) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("replay after truncate applied records")
	}
}

// TestLSNMonotonic runs on a real temp dir so the default path-based
// constructor keeps coverage.
func TestLSNMonotonic(t *testing.T) {
	w, err := Open(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var last uint64
	for i := 0; i < 5; i++ {
		lsn, err := w.AppendPage(page.ID(i), mkPage(t, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && lsn <= last {
			t.Fatalf("LSN not monotonic: %d after %d", lsn, last)
		}
		last = lsn
	}
}

func TestAppendCommitNoSyncIsReplayable(t *testing.T) {
	w, _ := openMem(t)
	if _, err := w.AppendPage(4, mkPage(t, 0x44)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommitNoSync(1); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := w.Replay(func(page.ID, *page.Page) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d pages, want 1", n)
	}
}

// TestScanIsReadOnly: Scan reports the same commit structure Replay
// acts on, but never mutates the log — the uncommitted tail survives.
func TestScanIsReadOnly(t *testing.T) {
	w, _ := openMem(t)
	if _, err := w.AppendPage(1, mkPage(t, 0x01)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendPage(2, mkPage(t, 0x02)); err != nil { // uncommitted tail
		t.Fatal(err)
	}
	before := w.Size()

	rep := w.Scan()
	if rep.Records != 3 || rep.Commits != 1 {
		t.Fatalf("scan saw %d records, %d commits, want 3, 1", rep.Records, rep.Commits)
	}
	if rep.TailBytes == 0 {
		t.Fatal("scan missed the uncommitted tail")
	}
	if rep.Malformed {
		t.Fatal("well-formed log reported malformed")
	}
	if rep.CommittedBytes+rep.TailBytes != before {
		t.Fatalf("committed %d + tail %d != size %d", rep.CommittedBytes, rep.TailBytes, before)
	}
	if w.Size() != before {
		t.Fatal("Scan mutated the log")
	}
}

// TestScanFlagsMalformedTail: garbage after the last commit is
// reported as malformed, still without mutation.
func TestScanFlagsMalformedTail(t *testing.T) {
	w, fs := openMem(t)
	if _, err := w.AppendPage(1, mkPage(t, 0x01)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	good := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06)
	if err := fs.WriteFile("wal", raw); err != nil {
		t.Fatal(err)
	}

	w2 := reopen(t, fs)
	rep := w2.Scan()
	if !rep.Malformed {
		t.Fatal("garbage tail not flagged")
	}
	if rep.Commits != 1 || rep.CommittedBytes != good {
		t.Fatalf("scan lost the committed prefix: %+v", rep)
	}
	if w2.Size() != good+10 {
		t.Fatal("Scan mutated the log")
	}
}
