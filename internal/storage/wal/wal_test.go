package wal

import (
	"os"
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/page"
)

func openTemp(t *testing.T) (*WAL, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, path
}

func mkPage(t *testing.T, fill byte) *page.Page {
	t.Helper()
	p := page.New(page.TypeSlotted)
	pl := p.Payload()
	for i := range pl {
		pl[i] = fill
	}
	return p
}

func TestReplayAppliesCommittedOnly(t *testing.T) {
	w, _ := openTemp(t)
	if _, err := w.AppendPage(1, mkPage(t, 0xAA)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendPage(2, mkPage(t, 0xBB)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Uncommitted page after the commit: must not be applied.
	if _, err := w.AppendPage(3, mkPage(t, 0xCC)); err != nil {
		t.Fatal(err)
	}

	applied := map[page.ID]byte{}
	if err := w.Replay(func(id page.ID, p *page.Page) error {
		applied[id] = p.Payload()[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[1] != 0xAA || applied[2] != 0xBB {
		t.Fatalf("applied = %v", applied)
	}
	// The uncommitted tail must have been truncated away.
	if err := w.Replay(func(id page.ID, p *page.Page) error {
		applied[id]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if applied[1] != 0xAB || applied[2] != 0xBC {
		t.Fatal("second replay did not re-apply exactly the committed prefix")
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	w, path := openTemp(t)
	if _, err := w.AppendPage(7, mkPage(t, 0x77)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	if _, err := w.AppendPage(8, mkPage(t, 0x88)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second transaction in half.
	if err := os.Truncate(path, goodSize+10); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var got []page.ID
	if err := w2.Replay(func(id page.ID, p *page.Page) error {
		got = append(got, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("replayed %v, want [7]", got)
	}
	if w2.Size() != goodSize {
		t.Fatalf("log not truncated to last commit: size=%d want %d", w2.Size(), goodSize)
	}
}

func TestReplayDetectsCorruptBody(t *testing.T) {
	w, path := openTemp(t)
	if _, err := w.AppendPage(1, mkPage(t, 0x11)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendPage(2, mkPage(t, 0x22)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Corrupt a byte inside the second transaction's page image.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	firstTxnEnd := int64(frameHeader+1+8+page.Size) + frameHeader + 9
	var b [1]byte
	if _, err := f.ReadAt(b[:], firstTxnEnd+100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], firstTxnEnd+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var got []page.ID
	if err := w2.Replay(func(id page.ID, p *page.Page) error {
		got = append(got, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("replayed %v, want just page 1", got)
	}
}

func TestTruncate(t *testing.T) {
	w, _ := openTemp(t)
	if _, err := w.AppendPage(1, mkPage(t, 0x01)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if w.Size() == 0 {
		t.Fatal("log empty after append")
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatal("log not empty after truncate")
	}
	n := 0
	if err := w.Replay(func(page.ID, *page.Page) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("replay after truncate applied records")
	}
}

func TestLSNMonotonic(t *testing.T) {
	w, _ := openTemp(t)
	var last uint64
	for i := 0; i < 5; i++ {
		lsn, err := w.AppendPage(page.ID(i), mkPage(t, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && lsn <= last {
			t.Fatalf("LSN not monotonic: %d after %d", lsn, last)
		}
		last = lsn
	}
}

func TestAppendCommitNoSyncIsReplayable(t *testing.T) {
	w, _ := openTemp(t)
	if _, err := w.AppendPage(4, mkPage(t, 0x44)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommitNoSync(1); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := w.Replay(func(page.ID, *page.Page) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d pages, want 1", n)
	}
}
