package buffer

import (
	"testing"

	"hypermodel/internal/storage/page"
)

func TestGetMissThenInsertHit(t *testing.T) {
	p := New(4)
	if f := p.Get(1); f != nil {
		t.Fatal("hit on empty pool")
	}
	f := p.Insert(1, page.New(page.TypeSlotted))
	p.Release(f)
	if f := p.Get(1); f == nil {
		t.Fatal("miss after insert")
	} else {
		p.Release(f)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(2)
	for i := 1; i <= 3; i++ {
		f := p.Insert(page.ID(i), page.New(page.TypeSlotted))
		p.Release(f)
	}
	// Page 1 was least recently used and clean: it must be gone.
	if f := p.Get(1); f != nil {
		t.Fatal("LRU page not evicted")
	}
	if f := p.Get(3); f == nil {
		t.Fatal("most recent page evicted")
	} else {
		p.Release(f)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestPinnedPagesSurviveEviction(t *testing.T) {
	p := New(1)
	f1 := p.Insert(1, page.New(page.TypeSlotted)) // stays pinned
	f2 := p.Insert(2, page.New(page.TypeSlotted))
	p.Release(f2)
	_ = f1
	if f := p.Get(1); f == nil {
		t.Fatal("pinned page evicted")
	} else {
		p.Release(f)
	}
}

func TestDirtyPagesNotEvicted(t *testing.T) {
	p := New(1)
	f1 := p.Insert(1, page.New(page.TypeSlotted))
	p.MarkDirty(f1)
	p.Release(f1)
	f2 := p.Insert(2, page.New(page.TypeSlotted))
	p.Release(f2)
	if f := p.Get(1); f == nil {
		t.Fatal("dirty page evicted")
	} else {
		p.Release(f)
	}
}

func TestDirtyFramesAndMarkAllClean(t *testing.T) {
	p := New(8)
	for i := 1; i <= 3; i++ {
		f := p.Insert(page.ID(i), page.New(page.TypeSlotted))
		if i != 2 {
			p.MarkDirty(f)
		}
		p.Release(f)
	}
	if n := len(p.DirtyFrames()); n != 2 {
		t.Fatalf("dirty frames = %d, want 2", n)
	}
	p.MarkAllClean()
	if n := len(p.DirtyFrames()); n != 0 {
		t.Fatalf("dirty frames after clean = %d", n)
	}
}

func TestDropMakesPoolCold(t *testing.T) {
	p := New(8)
	f := p.Insert(1, page.New(page.TypeSlotted))
	p.Release(f)
	p.Drop()
	if p.Len() != 0 {
		t.Fatal("pool not empty after Drop")
	}
	if f := p.Get(1); f != nil {
		t.Fatal("hit after Drop")
	}
}

func TestForget(t *testing.T) {
	p := New(8)
	f := p.Insert(1, page.New(page.TypeSlotted))
	p.MarkDirty(f)
	p.Release(f)
	p.Forget(1)
	if f := p.Get(1); f != nil {
		t.Fatal("forgotten page still resident")
	}
	if n := len(p.DirtyFrames()); n != 0 {
		t.Fatal("forgotten page still dirty-listed")
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p := New(2)
	f := p.Insert(1, page.New(page.TypeSlotted))
	p.Release(f)
	p.Release(f)
}

func TestDoubleInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	p := New(2)
	p.Insert(1, page.New(page.TypeSlotted))
	p.Insert(1, page.New(page.TypeSlotted))
}

func TestRepinRemovesFromLRU(t *testing.T) {
	p := New(2)
	f := p.Insert(1, page.New(page.TypeSlotted))
	p.Release(f)
	g := p.Get(1) // repin
	// Fill past capacity; page 1 is pinned so page 2 must be the victim.
	h2 := p.Insert(2, page.New(page.TypeSlotted))
	p.Release(h2)
	h3 := p.Insert(3, page.New(page.TypeSlotted))
	p.Release(h3)
	if got := p.Get(1); got == nil {
		t.Fatal("pinned page lost")
	} else {
		p.Release(got)
	}
	p.Release(g)
}

func TestDropCleanKeepsDirtyAndPinned(t *testing.T) {
	p := New(8)
	clean := p.Insert(1, page.New(page.TypeSlotted))
	p.Release(clean)
	dirty := p.Insert(2, page.New(page.TypeSlotted))
	p.MarkDirty(dirty)
	p.Release(dirty)
	pinned := p.Insert(3, page.New(page.TypeSlotted))

	p.DropClean()

	if got := p.Get(1); got != nil {
		t.Fatal("clean unpinned frame survived DropClean")
	}
	if got := p.Get(2); got == nil {
		t.Fatal("dirty frame lost by DropClean (no-steal violated)")
	} else {
		p.Release(got)
	}
	if got := p.Get(3); got == nil {
		t.Fatal("pinned frame lost by DropClean")
	} else {
		p.Release(got)
	}
	p.Release(pinned)
}

// TestZombieFrameNotRelisted: a handle released after its page was
// dropped from the pool must not re-enter the eviction list — its
// eviction would delete whatever fresh frame now holds the same ID.
func TestZombieFrameNotRelisted(t *testing.T) {
	p := New(2)
	old := p.Insert(1, page.New(page.TypeSlotted))
	p.Drop() // page 1 forgotten while still pinned

	fresh := p.Insert(1, page.New(page.TypeSlotted))
	p.Release(fresh)
	p.Release(old) // zombie release: must NOT list old for eviction

	// Force evictions; if the zombie was listed, its eviction deletes
	// the fresh frame's map entry.
	a := p.Insert(2, page.New(page.TypeSlotted))
	p.Release(a)
	b := p.Insert(3, page.New(page.TypeSlotted))
	p.Release(b)

	// The fresh frame for page 1 was the LRU victim or survived — but
	// the pool must stay coherent: every Get returns the frame that is
	// actually in the map, and re-inserting after a miss must not panic.
	if f := p.Get(1); f != nil {
		p.Release(f)
	} else {
		f = p.Insert(1, page.New(page.TypeSlotted))
		p.Release(f)
	}
}

func TestResidentIDs(t *testing.T) {
	p := New(4)
	for id := 1; id <= 3; id++ {
		f := p.Insert(page.ID(id), page.New(page.TypeSlotted))
		p.Release(f)
	}
	ids := p.ResidentIDs()
	if len(ids) != 3 {
		t.Fatalf("resident = %v, want 3 pages", ids)
	}
	seen := map[page.ID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("resident = %v", ids)
	}
}
