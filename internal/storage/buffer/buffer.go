// Package buffer implements the page buffer pool.
//
// The pool caches page images in memory with LRU replacement. It is the
// component that produces the HyperModel benchmark's cold/warm
// distinction: a cold run starts with an empty pool (every access is a
// disk or server fetch), a warm run finds the working set resident.
//
// The pool is no-steal: dirty frames are never evicted, because the
// write-ahead log is redo-only and an early write-back of uncommitted
// data could not be undone after a crash. If every frame is dirty or
// pinned the pool grows past its nominal capacity; the store bounds
// this by checkpointing.
//
// Concurrency: the frame table is sharded so parallel readers do not
// serialize behind one mutex (small pools collapse to a single shard to
// keep exact global LRU order). Hit/miss/eviction counters and pin
// counts are atomic. Each frame carries two page images: the working
// image (Frame.Page), owned by the single writer, and an immutable
// committed snapshot published with an atomic pointer, which concurrent
// readers access without pinning the frame at all (see Snapshot).
package buffer

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/page"
)

// Frame is a cached page together with its bookkeeping.
type Frame struct {
	ID page.ID
	// Page is the working image. It belongs to the single writer: only
	// one goroutine at a time may mutate it (and must call MarkDirty
	// before Release). Concurrent readers never touch it — they read
	// the committed snapshot instead.
	Page  *page.Page
	snap  atomic.Pointer[page.Page] // committed copy; always distinct from Page
	pins  atomic.Int32
	dirty atomic.Bool
	// elem is the frame's position in its shard's eviction list. Only
	// clean, unpinned frames are listed; everything else is ineligible,
	// which keeps eviction O(1) even when the pool is full of dirty
	// pages (bulk loads under the no-steal policy). Guarded by the
	// shard mutex.
	elem *list.Element
}

// Dirty reports whether the frame has modifications that are not yet in
// the main database file.
func (f *Frame) Dirty() bool { return f.dirty.Load() }

// Snapshot returns the frame's committed page image. The image is
// immutable — commits publish a fresh copy rather than mutating it — so
// the caller may read it without holding any pin or lock, even after
// the frame is evicted.
func (f *Frame) Snapshot() *page.Page { return f.snap.Load() }

// InstallSnapshot publishes a copy of the working image as the new
// committed snapshot. Only the committing writer may call it, at a
// point where the working image is quiescent.
func (f *Frame) InstallSnapshot() {
	cp := *f.Page
	f.snap.Store(&cp)
}

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      uint64 // Get found the page resident
	Misses    uint64 // Get did not find the page
	Evictions uint64 // clean frames evicted to make room
}

// shardCount is the number of frame-table shards for full-size pools.
// It is a power of two so shard selection is a mask.
const shardCount = 16

// shard is one slice of the frame table with its own lock and LRU.
type shard struct {
	mu     sync.Mutex
	cap    int
	frames map[page.ID]*Frame
	lru    *list.List // of evictable (clean, unpinned) *Frame; front = MRU
}

// Pool is an LRU page cache.
type Pool struct {
	shards []shard
	mask   uint64
	cap    int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// New returns a pool that aims to hold at most capacity pages.
// Capacity must be at least 1. Pools smaller than 8 pages per shard use
// a single shard, which preserves exact global LRU order for the tiny
// pools the tests and cache-sweep experiments build.
func New(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	n := shardCount
	if capacity < 8*shardCount {
		n = 1
	}
	p := &Pool{shards: make([]shard, n), mask: uint64(n - 1), cap: capacity}
	for i := range p.shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		p.shards[i] = shard{cap: c, frames: make(map[page.ID]*Frame, c), lru: list.New()}
	}
	return p
}

func (p *Pool) shardFor(id page.ID) *shard {
	return &p.shards[uint64(id)&p.mask]
}

// Get returns the resident frame for id, pinned, or nil if the page is
// not cached.
func (p *Pool) Get(id page.ID) *Frame {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[id]
	if !ok {
		p.misses.Add(1)
		return nil
	}
	p.hits.Add(1)
	sh.pinLocked(f)
	return f
}

// Snapshot returns the committed image of a resident page, or nil on a
// miss. The image is immutable, so the frame is not pinned: the caller
// may read the returned page for as long as it likes regardless of what
// happens to the frame. This is the concurrent readers' fast path.
func (p *Pool) Snapshot(id page.ID) *page.Page {
	sh := p.shardFor(id)
	sh.mu.Lock()
	f, ok := sh.frames[id]
	sh.mu.Unlock()
	if !ok {
		p.misses.Add(1)
		return nil
	}
	p.hits.Add(1)
	return f.Snapshot()
}

// Insert adds a page image (typically just read from disk) to the pool
// and returns its frame, pinned. Inserting a page that is already
// resident is a programming error and panics; racing readers use
// GetOrInsert instead.
func (p *Pool) Insert(id page.ID, img *page.Page) *Frame {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.frames[id]; ok {
		panic("buffer: Insert of already-resident page")
	}
	return p.insertLocked(sh, id, img)
}

// GetOrInsert returns the resident frame for id, pinned, inserting img
// as its image if the page is not cached. It reports whether img was
// installed. This resolves the double-miss race: two readers can both
// miss, both read the page from disk, and both call GetOrInsert — the
// first installs, the second gets the first's frame. Neither hit nor
// miss counters move (the preceding Get or Snapshot already counted the
// miss).
func (p *Pool) GetOrInsert(id page.ID, img *page.Page) (*Frame, bool) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[id]; ok {
		sh.pinLocked(f)
		return f, false
	}
	return p.insertLocked(sh, id, img), true
}

func (p *Pool) insertLocked(sh *shard, id page.ID, img *page.Page) *Frame {
	p.makeRoomLocked(sh)
	f := &Frame{ID: id, Page: img}
	f.pins.Store(1)
	cp := *img
	f.snap.Store(&cp)
	sh.frames[id] = f
	return f
}

func (sh *shard) pinLocked(f *Frame) {
	sh.unlistLocked(f)
	f.pins.Add(1)
}

func (sh *shard) unlistLocked(f *Frame) {
	if f.elem != nil {
		sh.lru.Remove(f.elem)
		f.elem = nil
	}
}

// relistLocked makes f evictable if it is clean, unpinned, and still
// the shard's frame for its page. The residency check matters after
// Drop/DropClean/Forget: a handle released later must not re-enter the
// eviction list as a zombie, where its eventual eviction would delete
// whatever fresh frame now holds the same page ID.
func (sh *shard) relistLocked(f *Frame) {
	if f.elem == nil && f.pins.Load() == 0 && !f.dirty.Load() {
		if cur, ok := sh.frames[f.ID]; ok && cur == f {
			f.elem = sh.lru.PushFront(f)
		}
	}
}

// Release unpins a frame previously returned by Get or Insert. When the
// pin count drops to zero the frame becomes eligible for eviction (once
// clean).
func (p *Pool) Release(f *Frame) {
	sh := p.shardFor(f.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.pins.Load() <= 0 {
		panic("buffer: Release of unpinned frame")
	}
	f.pins.Add(-1)
	sh.relistLocked(f)
}

// makeRoomLocked evicts the least recently used evictable frames until
// the shard is under its capacity. With every frame dirty or pinned the
// eviction list is empty and the shard grows instead (no-steal).
func (p *Pool) makeRoomLocked(sh *shard) {
	for len(sh.frames) >= sh.cap {
		e := sh.lru.Back()
		if e == nil {
			return // everything dirty or pinned: allow growth
		}
		f := e.Value.(*Frame)
		sh.lru.Remove(e)
		f.elem = nil
		delete(sh.frames, f.ID)
		p.evictions.Add(1)
	}
}

// MarkDirty flags a (pinned) frame as modified, removing it from the
// eviction candidates until the next commit cleans it.
func (p *Pool) MarkDirty(f *Frame) {
	sh := p.shardFor(f.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f.dirty.Store(true)
	sh.unlistLocked(f)
}

// DirtyFrames returns the frames currently flagged dirty, sorted by
// page ID. The order matters: the commit path logs and writes back the
// dirty set in this order, so a given workload produces byte-identical
// WAL and file images on every machine — which the seeded crash-point
// sweeps rely on (map iteration order would reshuffle every run). The
// frames are not pinned; the caller must hold the store's writer lock
// while using them.
func (p *Pool) DirtyFrames() []*Frame {
	var out []*Frame
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty.Load() {
				out = append(out, f)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MarkAllClean clears the dirty flag on every frame (after the images
// have been made durable via the WAL or the main file), returning the
// unpinned ones to the eviction candidates.
func (p *Pool) MarkAllClean() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			f.dirty.Store(false)
			sh.relistLocked(f)
		}
		sh.mu.Unlock()
	}
}

// Forget removes a page from the pool regardless of state. Used when a
// page is freed.
func (p *Pool) Forget(id page.ID) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[id]
	if !ok {
		return
	}
	sh.unlistLocked(f)
	delete(sh.frames, id)
}

// Drop discards every frame. It is the in-process equivalent of closing
// and reopening the database: the next access to any page is cold.
// Dropping while dirty frames exist loses their modifications, so the
// store only calls this after a commit or checkpoint.
func (p *Pool) Drop() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.frames = make(map[page.ID]*Frame, sh.cap)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// DropClean discards every clean, unpinned frame. This is the remote
// client's reconnect invalidation: pages fetched over a dead session
// may be stale by the time the connection is back, but dirty frames
// exist nowhere else (no-steal) and pinned frames are still in use by
// a caller, so both stay resident.
func (p *Pool) DropClean() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id, f := range sh.frames {
			if !f.dirty.Load() && f.pins.Load() == 0 {
				sh.unlistLocked(f)
				delete(sh.frames, id)
			}
		}
		sh.mu.Unlock()
	}
}

// ResidentIDs lists the pages currently in the pool, in unspecified
// order.
func (p *Pool) ResidentIDs() []page.ID {
	var out []page.ID
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id := range sh.frames {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// Len reports the number of resident pages.
func (p *Pool) Len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += len(sh.frames)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cumulative counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
	}
}
