// Package buffer implements the page buffer pool.
//
// The pool caches page images in memory with LRU replacement. It is the
// component that produces the HyperModel benchmark's cold/warm
// distinction: a cold run starts with an empty pool (every access is a
// disk or server fetch), a warm run finds the working set resident.
//
// The pool is no-steal: dirty frames are never evicted, because the
// write-ahead log is redo-only and an early write-back of uncommitted
// data could not be undone after a crash. If every frame is dirty or
// pinned the pool grows past its nominal capacity; the store bounds
// this by checkpointing.
package buffer

import (
	"container/list"
	"sync"

	"hypermodel/internal/storage/page"
)

// Frame is a cached page together with its bookkeeping.
type Frame struct {
	ID    page.ID
	Page  *page.Page
	pins  int
	dirty bool
	// elem is the frame's position in the eviction list. Only clean,
	// unpinned frames are listed; everything else is ineligible, which
	// keeps eviction O(1) even when the pool is full of dirty pages
	// (bulk loads under the no-steal policy).
	elem *list.Element
}

// Dirty reports whether the frame has modifications that are not yet in
// the main database file.
func (f *Frame) Dirty() bool { return f.dirty }

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      uint64 // Get found the page resident
	Misses    uint64 // Get did not find the page
	Evictions uint64 // clean frames evicted to make room
}

// Pool is an LRU page cache.
type Pool struct {
	mu     sync.Mutex
	cap    int
	frames map[page.ID]*Frame
	lru    *list.List // of evictable (clean, unpinned) *Frame; front = MRU
	stats  Stats
}

// New returns a pool that aims to hold at most capacity pages.
// Capacity must be at least 1.
func New(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		cap:    capacity,
		frames: make(map[page.ID]*Frame, capacity),
		lru:    list.New(),
	}
}

// Get returns the resident frame for id, pinned, or nil if the page is
// not cached.
func (p *Pool) Get(id page.ID) *Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		p.stats.Misses++
		return nil
	}
	p.stats.Hits++
	p.pinLocked(f)
	return f
}

// Insert adds a page image (typically just read from disk) to the pool
// and returns its frame, pinned. Inserting a page that is already
// resident is a programming error and panics.
func (p *Pool) Insert(id page.ID, img *page.Page) *Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[id]; ok {
		panic("buffer: Insert of already-resident page")
	}
	p.makeRoomLocked()
	f := &Frame{ID: id, Page: img, pins: 1}
	p.frames[id] = f
	return f
}

func (p *Pool) pinLocked(f *Frame) {
	p.unlistLocked(f)
	f.pins++
}

func (p *Pool) unlistLocked(f *Frame) {
	if f.elem != nil {
		p.lru.Remove(f.elem)
		f.elem = nil
	}
}

// relistLocked makes f evictable if it is clean, unpinned, and still
// the pool's frame for its page. The residency check matters after
// Drop/DropClean/Forget: a handle released later must not re-enter the
// eviction list as a zombie, where its eventual eviction would delete
// whatever fresh frame now holds the same page ID.
func (p *Pool) relistLocked(f *Frame) {
	if f.elem == nil && f.pins == 0 && !f.dirty {
		if cur, ok := p.frames[f.ID]; ok && cur == f {
			f.elem = p.lru.PushFront(f)
		}
	}
}

// Release unpins a frame previously returned by Get or Insert. When the
// pin count drops to zero the frame becomes eligible for eviction (once
// clean).
func (p *Pool) Release(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic("buffer: Release of unpinned frame")
	}
	f.pins--
	p.relistLocked(f)
}

// makeRoomLocked evicts the least recently used evictable frames until
// the pool is under capacity. With every frame dirty or pinned the
// eviction list is empty and the pool grows instead (no-steal).
func (p *Pool) makeRoomLocked() {
	for len(p.frames) >= p.cap {
		e := p.lru.Back()
		if e == nil {
			return // everything dirty or pinned: allow growth
		}
		f := e.Value.(*Frame)
		p.lru.Remove(e)
		f.elem = nil
		delete(p.frames, f.ID)
		p.stats.Evictions++
	}
}

// MarkDirty flags a (pinned) frame as modified, removing it from the
// eviction candidates until the next commit cleans it.
func (p *Pool) MarkDirty(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f.dirty = true
	p.unlistLocked(f)
}

// DirtyFrames returns the frames currently flagged dirty, in
// unspecified order. The frames are not pinned; the caller must hold
// the store's mutation lock while using them.
func (p *Pool) DirtyFrames() []*Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Frame
	for _, f := range p.frames {
		if f.dirty {
			out = append(out, f)
		}
	}
	return out
}

// MarkAllClean clears the dirty flag on every frame (after the images
// have been made durable via the WAL or the main file), returning the
// unpinned ones to the eviction candidates.
func (p *Pool) MarkAllClean() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		f.dirty = false
		p.relistLocked(f)
	}
}

// Forget removes a page from the pool regardless of state. Used when a
// page is freed.
func (p *Pool) Forget(id page.ID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return
	}
	p.unlistLocked(f)
	delete(p.frames, id)
}

// Drop discards every frame. It is the in-process equivalent of closing
// and reopening the database: the next access to any page is cold.
// Dropping while dirty frames exist loses their modifications, so the
// store only calls this after a commit or checkpoint.
func (p *Pool) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[page.ID]*Frame, p.cap)
	p.lru.Init()
}

// DropClean discards every clean, unpinned frame. This is the remote
// client's reconnect invalidation: pages fetched over a dead session
// may be stale by the time the connection is back, but dirty frames
// exist nowhere else (no-steal) and pinned frames are still in use by
// a caller, so both stay resident.
func (p *Pool) DropClean() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if !f.dirty && f.pins == 0 {
			p.unlistLocked(f)
			delete(p.frames, id)
		}
	}
}

// ResidentIDs lists the pages currently in the pool, in unspecified
// order.
func (p *Pool) ResidentIDs() []page.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]page.ID, 0, len(p.frames))
	for id := range p.frames {
		out = append(out, id)
	}
	return out
}

// Len reports the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Stats returns a snapshot of the cumulative counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
