package slotted

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hypermodel/internal/storage/page"
)

func TestInsertGet(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	slot, ok := s.Insert([]byte("record one"))
	if !ok {
		t.Fatal("insert failed on empty page")
	}
	got, ok := s.Get(slot)
	if !ok || string(got) != "record one" {
		t.Fatalf("get = %q %v", got, ok)
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestZeroPageIsValidEmpty(t *testing.T) {
	s := Wrap(page.New(page.TypeSlotted))
	if s.Count() != 0 {
		t.Fatal("zero page not empty")
	}
	if _, ok := s.Get(0); ok {
		t.Fatal("get on zero page succeeded")
	}
}

func TestDeleteReusesSlot(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	a, _ := s.Insert([]byte("aaa"))
	b, _ := s.Insert([]byte("bbb"))
	if !s.Delete(a) {
		t.Fatal("delete failed")
	}
	if s.Delete(a) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := s.Get(a); ok {
		t.Fatal("deleted record still readable")
	}
	c, _ := s.Insert([]byte("ccc"))
	if c != a {
		t.Fatalf("dead slot not reused: got %d want %d", c, a)
	}
	got, _ := s.Get(b)
	if string(got) != "bbb" {
		t.Fatal("unrelated record damaged")
	}
}

func TestTrailingDeadSlotsTrimmed(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	a, _ := s.Insert([]byte("a"))
	b, _ := s.Insert([]byte("b"))
	s.Delete(b)
	s.Delete(a)
	if s.nslots() != 0 {
		t.Fatalf("nslots = %d after deleting everything", s.nslots())
	}
}

func TestUpdateInPlace(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	slot, _ := s.Insert([]byte("something long enough"))
	if !s.Update(slot, []byte("short")) {
		t.Fatal("shrinking update failed")
	}
	got, _ := s.Get(slot)
	if string(got) != "short" {
		t.Fatalf("got %q", got)
	}
	if !s.Update(slot, bytes.Repeat([]byte("x"), 300)) {
		t.Fatal("growing update failed with free space available")
	}
	got, _ = s.Get(slot)
	if len(got) != 300 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestUpdateTooBigRollsBack(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	slot, _ := s.Insert([]byte("keep me"))
	// Fill the page so there is no room to grow.
	for {
		if _, ok := s.Insert(bytes.Repeat([]byte("f"), 512)); !ok {
			break
		}
	}
	if s.Update(slot, bytes.Repeat([]byte("g"), 2000)) {
		t.Fatal("oversized update succeeded")
	}
	got, ok := s.Get(slot)
	if !ok || string(got) != "keep me" {
		t.Fatalf("record damaged by failed update: %q %v", got, ok)
	}
}

func TestFillToCapacityAndCompaction(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	var slots []int
	for i := 0; ; i++ {
		slot, ok := s.Insert(bytes.Repeat([]byte{byte(i)}, 100))
		if !ok {
			break
		}
		slots = append(slots, slot)
	}
	if len(slots) < 35 {
		t.Fatalf("only %d 100-byte records fit", len(slots))
	}
	// Delete every other record, then insert records that only fit
	// after compaction.
	for i := 0; i < len(slots); i += 2 {
		s.Delete(slots[i])
	}
	n := 0
	for {
		if _, ok := s.Insert(bytes.Repeat([]byte("Z"), 150)); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no inserts possible after freeing half the page (compaction broken)")
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		got, ok := s.Get(slots[i])
		if !ok || len(got) != 100 || got[0] != byte(i) {
			t.Fatalf("record %d damaged", i)
		}
	}
}

func TestMaxRecord(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	if _, ok := s.Insert(make([]byte, MaxRecord)); !ok {
		t.Fatal("MaxRecord-sized insert failed on empty page")
	}
	s = Init(page.New(page.TypeSlotted))
	if _, ok := s.Insert(make([]byte, MaxRecord+1)); ok {
		t.Fatal("oversized insert succeeded")
	}
}

func TestSlotsIteration(t *testing.T) {
	s := Init(page.New(page.TypeSlotted))
	a, _ := s.Insert([]byte("a"))
	b, _ := s.Insert([]byte("b"))
	c, _ := s.Insert([]byte("c"))
	s.Delete(b)
	var seen []int
	s.Slots(func(slot int, data []byte) bool {
		seen = append(seen, slot)
		return true
	})
	if len(seen) != 2 || seen[0] != a || seen[1] != c {
		t.Fatalf("seen = %v", seen)
	}
	// Early stop.
	n := 0
	s.Slots(func(int, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestQuickModel drives a page with random insert/update/delete against
// a map model.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Init(page.New(page.TypeSlotted))
		model := map[int][]byte{}
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				data := make([]byte, rng.Intn(200))
				rng.Read(data)
				if slot, ok := s.Insert(data); ok {
					if _, exists := model[slot]; exists {
						t.Errorf("seed %d: live slot %d reused", seed, slot)
						return false
					}
					model[slot] = append([]byte(nil), data...)
				}
			case 2: // update random live slot
				for slot := range model {
					data := make([]byte, rng.Intn(200))
					rng.Read(data)
					if s.Update(slot, data) {
						model[slot] = append([]byte(nil), data...)
					}
					break
				}
			case 3: // delete random live slot
				for slot := range model {
					if !s.Delete(slot) {
						t.Errorf("seed %d: delete of live slot failed", seed)
						return false
					}
					delete(model, slot)
					break
				}
			}
			if s.Count() != len(model) {
				t.Errorf("seed %d step %d: count %d != model %d", seed, step, s.Count(), len(model))
				return false
			}
		}
		for slot, want := range model {
			got, ok := s.Get(slot)
			if !ok || !bytes.Equal(got, want) {
				t.Errorf("seed %d: slot %d mismatch", seed, slot)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
