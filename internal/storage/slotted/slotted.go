// Package slotted implements slotted record pages: variable-length
// records addressed by a stable (page, slot) pair.
//
// The package manipulates a single page payload; allocation across
// pages, overflow chains for large records and object identity are the
// object store's job (internal/objstore).
//
// Payload layout:
//
//	0   uint16  nslots (length of the slot directory)
//	2.. slot directory: nslots × {offset uint16, length uint16}
//	... free space ...
//	... record bytes, growing down from the end of the payload
//
// A slot with offset 0xFFFF is dead; dead slots are reused by Insert so
// record addresses stay stable and small.
package slotted

import (
	"encoding/binary"

	"hypermodel/internal/storage/page"
)

const (
	payloadSize = page.Size - page.HeaderSize
	hdrSize     = 2
	slotSize    = 4
	deadOffset  = 0xFFFF
)

// MaxRecord is the largest record Insert accepts: one record must
// always fit on an otherwise empty page.
const MaxRecord = payloadSize - hdrSize - slotSize

// Page wraps a page payload with slotted-record accessors. It holds no
// state of its own; construct one freely around a pinned page.
type Page struct{ p []byte }

// Wrap returns slotted accessors for the given page's payload. The page
// must have been initialized by Init (or be all zeroes, which is a
// valid empty slotted page).
func Wrap(pg *page.Page) Page { return Page{pg.Payload()} }

// Init clears the payload into an empty slotted page.
func Init(pg *page.Page) Page {
	pg.Reset(page.TypeSlotted)
	return Page{pg.Payload()}
}

func (s Page) nslots() int     { return int(binary.LittleEndian.Uint16(s.p)) }
func (s Page) setNSlots(n int) { binary.LittleEndian.PutUint16(s.p, uint16(n)) }

func (s Page) slotOff(i int) int { return int(binary.LittleEndian.Uint16(s.p[hdrSize+slotSize*i:])) }
func (s Page) slotLen(i int) int {
	return int(binary.LittleEndian.Uint16(s.p[hdrSize+slotSize*i+2:]))
}

func (s Page) setSlot(i, off, length int) {
	binary.LittleEndian.PutUint16(s.p[hdrSize+slotSize*i:], uint16(off))
	binary.LittleEndian.PutUint16(s.p[hdrSize+slotSize*i+2:], uint16(length))
}

// Count reports the number of live records.
func (s Page) Count() int {
	n := 0
	for i := 0; i < s.nslots(); i++ {
		if s.slotOff(i) != deadOffset {
			n++
		}
	}
	return n
}

// lowWater is the end of the slot directory.
func (s Page) lowWater() int { return hdrSize + slotSize*s.nslots() }

// minRecOff is the lowest byte used by any live record.
func (s Page) minRecOff() int {
	min := payloadSize
	for i := 0; i < s.nslots(); i++ {
		if off := s.slotOff(i); off != deadOffset && off < min {
			min = off
		}
	}
	return min
}

// FreeFor reports whether a record of the given length can be inserted,
// possibly after compaction.
func (s Page) FreeFor(length int) bool { return s.FreeForReserve(length, 0) }

// FreeForReserve reports whether a record of the given length fits
// while leaving at least reserve bytes free afterwards. Placement
// policies use the reserve as a fill factor: pages loaded with slack
// absorb later record growth without relocations, which is what keeps
// clustering intact once relationships are added to stored objects.
func (s Page) FreeForReserve(length, reserve int) bool {
	if length > MaxRecord {
		return false
	}
	free := s.freeTotal()
	need := length + reserve
	if !s.hasDeadSlot() {
		need += slotSize
	}
	return free >= need
}

func (s Page) hasDeadSlot() bool {
	for i := 0; i < s.nslots(); i++ {
		if s.slotOff(i) == deadOffset {
			return true
		}
	}
	return false
}

// freeTotal is total reclaimable space (contiguous after compaction).
func (s Page) freeTotal() int {
	used := 0
	for i := 0; i < s.nslots(); i++ {
		if s.slotOff(i) != deadOffset {
			used += s.slotLen(i)
		}
	}
	return payloadSize - s.lowWater() - used
}

func (s Page) freeContiguous() int { return s.minRecOff() - s.lowWater() }

// compact rewrites live records tightly against the end of the payload.
func (s Page) compact() {
	type rec struct {
		slot int
		data []byte
	}
	var recs []rec
	for i := 0; i < s.nslots(); i++ {
		if off := s.slotOff(i); off != deadOffset {
			recs = append(recs, rec{i, append([]byte(nil), s.p[off:off+s.slotLen(i)]...)})
		}
	}
	top := payloadSize
	for _, r := range recs {
		top -= len(r.data)
		copy(s.p[top:], r.data)
		s.setSlot(r.slot, top, len(r.data))
	}
}

// Insert stores data and returns its slot number, or ok=false if the
// page cannot hold it.
func (s Page) Insert(data []byte) (slot int, ok bool) {
	if !s.FreeFor(len(data)) {
		return 0, false
	}
	slot = -1
	for i := 0; i < s.nslots(); i++ {
		if s.slotOff(i) == deadOffset {
			slot = i
			break
		}
	}
	if slot == -1 {
		// Growing the directory must not overwrite record bytes, and
		// compact must never see an uninitialized slot entry: make
		// room first, then append the slot as dead.
		if s.freeContiguous() < slotSize+len(data) {
			s.compact()
		}
		slot = s.nslots()
		s.setNSlots(slot + 1)
		s.setSlot(slot, deadOffset, 0)
	}
	if s.freeContiguous() < len(data) {
		s.compact()
	}
	off := s.minRecOff() - len(data)
	copy(s.p[off:], data)
	s.setSlot(slot, off, len(data))
	return slot, true
}

// Get returns the record in slot, or ok=false if the slot is dead or
// out of range. The returned slice aliases page memory.
func (s Page) Get(slot int) (data []byte, ok bool) {
	if slot < 0 || slot >= s.nslots() || s.slotOff(slot) == deadOffset {
		return nil, false
	}
	off := s.slotOff(slot)
	return s.p[off : off+s.slotLen(slot)], true
}

// Update replaces the record in slot with data, keeping its address.
// It reports false if the slot is dead or the new data does not fit on
// the page (the caller must then relocate the record).
func (s Page) Update(slot int, data []byte) bool {
	old, ok := s.Get(slot)
	if !ok {
		return false
	}
	if len(data) <= len(old) {
		off := s.slotOff(slot)
		copy(s.p[off:], data)
		s.setSlot(slot, off, len(data))
		return true
	}
	// Free the old space first, then check the fit.
	oldOff, oldLen := s.slotOff(slot), s.slotLen(slot)
	s.setSlot(slot, deadOffset, 0)
	if s.freeTotal() < len(data) {
		s.setSlot(slot, oldOff, oldLen) // roll back
		return false
	}
	if s.freeContiguous() < len(data) {
		s.compact()
	}
	off := s.minRecOff() - len(data)
	copy(s.p[off:], data)
	s.setSlot(slot, off, len(data))
	return true
}

// Delete marks slot dead. Deleting a dead or out-of-range slot is a
// no-op returning false.
func (s Page) Delete(slot int) bool {
	if slot < 0 || slot >= s.nslots() || s.slotOff(slot) == deadOffset {
		return false
	}
	s.setSlot(slot, deadOffset, 0)
	// Trim trailing dead slots so long-lived pages do not accumulate
	// directory entries.
	n := s.nslots()
	for n > 0 && s.slotOff(n-1) == deadOffset {
		n--
	}
	s.setNSlots(n)
	return true
}

// Slots calls fn for every live record in ascending slot order. The
// data slice aliases page memory.
func (s Page) Slots(fn func(slot int, data []byte) bool) {
	for i := 0; i < s.nslots(); i++ {
		if off := s.slotOff(i); off != deadOffset {
			if !fn(i, s.p[off:off+s.slotLen(i)]) {
				return
			}
		}
	}
}
