package hyper

import (
	"testing"
	"testing/quick"

	// The generator is exercised against the in-memory backend; using
	// a tiny local fake here would duplicate memdb, so these tests
	// live on the real interface via a minimal stub.
	"math/rand"
)

// stubBackend records creations without storing content — enough to
// check generator-side invariants (counts, ranges, determinism)
// without a database.
type stubBackend struct {
	nodes   map[NodeID]Node
	parents map[NodeID]NodeID
	childN  map[NodeID]int
	partN   map[NodeID]int
	refN    map[NodeID]int
	texts   map[NodeID]string
	forms   map[NodeID]Bitmap
	edges   []Edge
	commits int
}

func newStub() *stubBackend {
	return &stubBackend{
		nodes:   map[NodeID]Node{},
		parents: map[NodeID]NodeID{},
		childN:  map[NodeID]int{},
		partN:   map[NodeID]int{},
		refN:    map[NodeID]int{},
		texts:   map[NodeID]string{},
		forms:   map[NodeID]Bitmap{},
	}
}

func (s *stubBackend) Name() string { return "stub" }
func (s *stubBackend) CreateNode(n Node, _ NodeID) error {
	s.nodes[n.ID] = n
	return nil
}
func (s *stubBackend) CreateTextNode(n Node, text string, _ NodeID) error {
	s.nodes[n.ID] = n
	s.texts[n.ID] = text
	return nil
}
func (s *stubBackend) CreateFormNode(n Node, bm Bitmap, _ NodeID) error {
	s.nodes[n.ID] = n
	s.forms[n.ID] = bm
	return nil
}
func (s *stubBackend) AddChild(p, c NodeID) error {
	s.childN[p]++
	s.parents[c] = p
	return nil
}
func (s *stubBackend) AddPart(w, p NodeID) error { s.partN[w]++; return nil }
func (s *stubBackend) AddRef(e Edge) error {
	s.refN[e.From]++
	s.edges = append(s.edges, e)
	return nil
}
func (s *stubBackend) Node(id NodeID) (Node, error)                           { return s.nodes[id], nil }
func (s *stubBackend) Hundred(id NodeID) (int32, error)                       { return s.nodes[id].Hundred, nil }
func (s *stubBackend) SetHundred(NodeID, int32) error                         { return nil }
func (s *stubBackend) OIDOf(NodeID) (OID, error)                              { return 0, ErrNoOIDs }
func (s *stubBackend) HundredByOID(OID) (int32, error)                        { return 0, ErrNoOIDs }
func (s *stubBackend) RangeHundred(int32, int32) ([]NodeID, error)            { return nil, nil }
func (s *stubBackend) RangeMillion(int32, int32) ([]NodeID, error)            { return nil, nil }
func (s *stubBackend) Children(NodeID) ([]NodeID, error)                      { return nil, nil }
func (s *stubBackend) Parts(NodeID) ([]NodeID, error)                         { return nil, nil }
func (s *stubBackend) RefsTo(NodeID) ([]Edge, error)                          { return nil, nil }
func (s *stubBackend) Parent(NodeID) (NodeID, bool, error)                    { return 0, false, nil }
func (s *stubBackend) PartOf(NodeID) ([]NodeID, error)                        { return nil, nil }
func (s *stubBackend) RefsFrom(NodeID) ([]Edge, error)                        { return nil, nil }
func (s *stubBackend) ScanTen(NodeID, NodeID, func(NodeID, int32) bool) error { return nil }
func (s *stubBackend) Text(id NodeID) (string, error)                         { return s.texts[id], nil }
func (s *stubBackend) SetText(NodeID, string) error                           { return nil }
func (s *stubBackend) Form(id NodeID) (Bitmap, error)                         { return s.forms[id], nil }
func (s *stubBackend) SetForm(NodeID, Bitmap) error                           { return nil }
func (s *stubBackend) PutBlob(string, []byte) error                           { return nil }
func (s *stubBackend) GetBlob(string) ([]byte, error)                         { return nil, ErrNotFound }
func (s *stubBackend) DeleteBlob(string) error                                { return nil }
func (s *stubBackend) Commit() error                                          { s.commits++; return nil }
func (s *stubBackend) DropCaches() error                                      { return nil }
func (s *stubBackend) Close() error                                           { return nil }

// TestQuickGeneratorInvariants checks, for random seeds and levels,
// the §5.2 count identities: N-1 child relationships, N-1 part
// relationships, N reference relationships, attribute ranges, and the
// creation-order independence of the structure.
func TestQuickGeneratorInvariants(t *testing.T) {
	f := func(seed int64, levelPick uint8, orderPick bool) bool {
		level := 1 + int(levelPick%3) // 1..3
		order := OrderDFS
		if orderPick {
			order = OrderBFS
		}
		st := newStub()
		lay, tm, err := Generate(st, GenConfig{LeafLevel: level, Seed: seed, Order: order})
		if err != nil {
			t.Error(err)
			return false
		}
		total := lay.Total()
		if len(st.nodes) != total {
			t.Errorf("seed %d: %d nodes, want %d", seed, len(st.nodes), total)
			return false
		}
		childEdges, partEdges, refEdges := 0, 0, 0
		for _, n := range st.childN {
			childEdges += n
		}
		for _, n := range st.partN {
			partEdges += n
		}
		for _, n := range st.refN {
			refEdges += n
		}
		if childEdges != total-1 || partEdges != total-1 || refEdges != total {
			t.Errorf("seed %d: edges %d/%d/%d, want %d/%d/%d",
				seed, childEdges, partEdges, refEdges, total-1, total-1, total)
			return false
		}
		for id, n := range st.nodes {
			if n.ID != id || n.Ten < 0 || n.Ten >= 10 || n.Hundred < 0 || n.Hundred >= 100 ||
				n.Thousand < 0 || n.Thousand >= 1000 || n.Million < 0 || n.Million >= 1000000 {
				t.Errorf("seed %d: bad node %+v", seed, n)
				return false
			}
		}
		for _, e := range st.edges {
			if e.OffsetFrom < 0 || e.OffsetFrom > 9 || e.OffsetTo < 0 || e.OffsetTo > 9 {
				t.Errorf("seed %d: bad edge %+v", seed, e)
				return false
			}
		}
		if tm.InternalCount+tm.LeafCount != total {
			t.Errorf("seed %d: timings count %d nodes", seed, tm.InternalCount+tm.LeafCount)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratorDeterministic: equal seeds produce byte-identical
// structures and contents.
func TestGeneratorDeterministic(t *testing.T) {
	gen := func() *stubBackend {
		st := newStub()
		if _, _, err := Generate(st, GenConfig{LeafLevel: 3, Seed: 123}); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := gen(), gen()
	if len(a.nodes) != len(b.nodes) {
		t.Fatal("node counts differ")
	}
	for id, na := range a.nodes {
		if nb := b.nodes[id]; na != nb {
			t.Fatalf("node %d differs: %+v vs %+v", id, na, nb)
		}
	}
	for id, ta := range a.texts {
		if tb := b.texts[id]; ta != tb {
			t.Fatalf("text %d differs", id)
		}
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	// Different seeds diverge.
	c := newStub()
	if _, _, err := Generate(c, GenConfig{LeafLevel: 3, Seed: 124}); err != nil {
		t.Fatal(err)
	}
	same := 0
	for id, n := range a.nodes {
		if c.nodes[id].Million == n.Million {
			same++
		}
	}
	if same == len(a.nodes) {
		t.Fatal("different seeds produced identical attributes")
	}
}

// TestGeneratorRejectsBadConfig covers the error paths.
func TestGeneratorRejectsBadConfig(t *testing.T) {
	if _, _, err := Generate(newStub(), GenConfig{LeafLevel: 0}); err == nil {
		t.Fatal("level 0 accepted")
	}
	if _, _, err := Generate(newStub(), GenConfig{LeafLevel: 2, Order: Order(9)}); err == nil {
		t.Fatal("bogus order accepted")
	}
}

// TestCommitEvery verifies incremental commits fire.
func TestCommitEvery(t *testing.T) {
	st := newStub()
	if _, _, err := Generate(st, GenConfig{LeafLevel: 2, Seed: 1, CommitEvery: 10}); err != nil {
		t.Fatal(err)
	}
	// 31 nodes + 31 part-adds + 31 refs with a commit each 10 items,
	// plus the phase commits: expect well over 3.
	if st.commits < 6 {
		t.Fatalf("only %d commits with CommitEvery=10", st.commits)
	}
}

// TestAttributeUniformity is a coarse distribution check: over many
// nodes the hundred attribute must cover its range roughly uniformly
// (the paper demands uniform draws; a skew would distort the 10%
// selectivity of O3).
func TestAttributeUniformity(t *testing.T) {
	st := newStub()
	if _, _, err := Generate(st, GenConfig{LeafLevel: 4, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	var buckets [10]int
	for _, n := range st.nodes {
		buckets[n.Hundred/10]++
	}
	total := len(st.nodes)
	for i, c := range buckets {
		frac := float64(c) / float64(total)
		if frac < 0.05 || frac > 0.15 { // expected 0.10
			t.Fatalf("hundred decile %d holds %.0f%% of nodes", i, frac*100)
		}
	}
	_ = rand.Int // keep math/rand imported for the stub docs
}
