package hyper

import (
	"math/rand"
	"testing"
)

func TestTotalNodesMatchesPaper(t *testing.T) {
	// §5.2: "0(1), 1(5), 2(25), 3(125), 4(625), 5(3125), 6(15625), and
	// a total of 19531 nodes for level 6, adding one level will give a
	// total of 97656 nodes."
	wantLevel := []int{1, 5, 25, 125, 625, 3125, 15625}
	for lvl, want := range wantLevel {
		if got := NodesAtLevel(lvl); got != want {
			t.Fatalf("NodesAtLevel(%d) = %d, want %d", lvl, got, want)
		}
	}
	wantTotal := map[int]int{4: 781, 5: 3906, 6: 19531, 7: 97656}
	for lvl, want := range wantTotal {
		if got := TotalNodes(lvl); got != want {
			t.Fatalf("TotalNodes(%d) = %d, want %d", lvl, got, want)
		}
	}
}

func TestClosureSizeMatchesPaper(t *testing.T) {
	// §6.5: "n-level4 = 6, n-level5 = 31 and n-level6 = 156."
	want := map[int]int{4: 6, 5: 31, 6: 156}
	for leaf, n := range want {
		if got := ClosureSize(3, leaf); got != n {
			t.Fatalf("ClosureSize(3, %d) = %d, want %d", leaf, got, n)
		}
	}
}

func TestLevelIDsArePartition(t *testing.T) {
	const leaf = 6
	next := NodeID(1)
	for lvl := 0; lvl <= leaf; lvl++ {
		first, last := LevelIDs(lvl)
		if first != next {
			t.Fatalf("level %d starts at %d, want %d", lvl, first, next)
		}
		if int(last-first)+1 != NodesAtLevel(lvl) {
			t.Fatalf("level %d spans %d ids", lvl, last-first+1)
		}
		next = last + 1
	}
	if int(next-1) != TotalNodes(leaf) {
		t.Fatalf("levels cover %d ids, want %d", next-1, TotalNodes(leaf))
	}
}

func TestLayoutLevelOf(t *testing.T) {
	lay := Layout{LeafLevel: 4}
	cases := map[NodeID]int{1: 0, 2: 1, 6: 1, 7: 2, 31: 2, 32: 3, 156: 3, 157: 4, 781: 4}
	for id, want := range cases {
		if got := lay.LevelOf(id); got != want {
			t.Fatalf("LevelOf(%d) = %d, want %d", id, got, want)
		}
	}
	if got := lay.LevelOf(782); got != -1 {
		t.Fatalf("LevelOf(out of range) = %d", got)
	}
}

func TestLayoutRandomDraws(t *testing.T) {
	lay := Layout{LeafLevel: 4}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		if id := lay.RandomNode(rng); id < 1 || int(id) > lay.Total() {
			t.Fatalf("RandomNode out of range: %d", id)
		}
		if id := lay.RandomNonRoot(rng); id < 2 || int(id) > lay.Total() {
			t.Fatalf("RandomNonRoot out of range: %d", id)
		}
		if id := lay.RandomInternal(rng); lay.LevelOf(id) >= lay.LeafLevel {
			t.Fatalf("RandomInternal drew leaf %d", id)
		}
		if id := lay.RandomClosureStart(rng); lay.LevelOf(id) != 3 {
			t.Fatalf("RandomClosureStart drew level %d", lay.LevelOf(id))
		}
		if id := lay.RandomTextNode(rng); lay.LevelOf(id) != lay.LeafLevel {
			t.Fatalf("RandomTextNode drew level %d", lay.LevelOf(id))
		}
		first, _ := LevelIDs(lay.LeafLevel)
		if id, ok := lay.RandomFormNode(rng); !ok || !IsFormLeaf(int(id-first)) {
			t.Fatalf("RandomFormNode drew non-form %d", id)
		}
	}
}

func TestFormCountsMatchPaper(t *testing.T) {
	// §5.2: 125 form nodes and 15 500 text nodes in the level-6
	// database.
	cases := map[int]int{4: 5, 5: 25, 6: 125}
	for leaf, want := range cases {
		lay := Layout{LeafLevel: leaf}
		if got := lay.FormCount(); got != want {
			t.Fatalf("FormCount(level %d) = %d, want %d", leaf, got, want)
		}
		forms := 0
		for j := 0; j < NodesAtLevel(leaf); j++ {
			if IsFormLeaf(j) {
				forms++
			}
		}
		if forms != want {
			t.Fatalf("IsFormLeaf marks %d forms at level %d, want %d", forms, leaf, want)
		}
	}
}

func TestClosureStartLevelClamps(t *testing.T) {
	for leaf, want := range map[int]int{2: 1, 3: 2, 4: 3, 5: 3, 6: 3} {
		lay := Layout{LeafLevel: leaf}
		if got := lay.ClosureStartLevel(); got != want {
			t.Fatalf("ClosureStartLevel(leaf %d) = %d, want %d", leaf, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInternal.String() != "Node" || KindText.String() != "TextNode" || KindForm.String() != "FormNode" {
		t.Fatal("unexpected kind names")
	}
}
