package hyper

import (
	"encoding/binary"
	"fmt"
)

// This file implements the benchmark's operation set (§6) against the
// Backend interface. Operation numbers follow the paper: O1–O18, with
// the 5A/5B and 7A/7B variants.
//
// All operations return references (NodeIDs), never copies of nodes,
// as §6 requires, and closure results can be stored in the database via
// SaveNodeList.

// NameLookup (O1) finds the node with the given uniqueId and returns
// its hundred attribute.
func NameLookup(b Backend, id NodeID) (int32, error) {
	return b.Hundred(id)
}

// NameOIDLookup (O2) returns the hundred attribute of the node with the
// given system object identifier.
func NameOIDLookup(b Backend, oid OID) (int32, error) {
	return b.HundredByOID(oid)
}

// RangeLookupHundred (O3) returns the set of nodes with hundred in
// [x, x+9] — 10% selectivity.
func RangeLookupHundred(b Backend, x int32) ([]NodeID, error) {
	return b.RangeHundred(x, x+HundredWindow-1)
}

// RangeLookupMillion (O4) returns the set of nodes with million in
// [x, x+9999] — 1% selectivity.
func RangeLookupMillion(b Backend, x int32) ([]NodeID, error) {
	return b.RangeMillion(x, x+MillionWindow-1)
}

// GroupLookup1N (O5A) returns the ordered children of a node.
func GroupLookup1N(b Backend, id NodeID) ([]NodeID, error) {
	return b.Children(id)
}

// GroupLookupMN (O5B) returns the parts of a node.
func GroupLookupMN(b Backend, id NodeID) ([]NodeID, error) {
	return b.Parts(id)
}

// GroupLookupMNAtt (O6) returns the node(s) referenced by a node
// through the M-N attribute relation refsTo.
func GroupLookupMNAtt(b Backend, id NodeID) ([]NodeID, error) {
	edges, err := b.RefsTo(id)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, len(edges))
	for i, e := range edges {
		out[i] = e.To
	}
	return out, nil
}

// RefLookup1N (O7A) returns a set containing the node's parent.
func RefLookup1N(b Backend, id NodeID) ([]NodeID, error) {
	parent, ok, err := b.Parent(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return []NodeID{parent}, nil
}

// RefLookupMN (O7B) returns the set of nodes this node is part of.
func RefLookupMN(b Backend, id NodeID) ([]NodeID, error) {
	return b.PartOf(id)
}

// RefLookupMNAtt (O8) returns the (possibly empty) set of nodes that
// reference the given node.
func RefLookupMNAtt(b Backend, id NodeID) ([]NodeID, error) {
	edges, err := b.RefsFrom(id)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, len(edges))
	for i, e := range edges {
		out[i] = e.From
	}
	return out, nil
}

// SeqScan (O9) visits the ten attribute of every node of the test
// structure (uniqueIds [first, last]) and returns the number of nodes
// visited. No result values are returned, per the specification — the
// attribute is retrieved into a sink to ensure node access.
func SeqScan(b Backend, first, last NodeID) (int, error) {
	count := 0
	var sink int32
	err := b.ScanTen(first, last, func(_ NodeID, ten int32) bool {
		sink = ten
		count++
		return true
	})
	_ = sink
	return count, err
}

// Closure1N (O10) lists every node reachable from start through the
// 1-N relationship, in pre-order, preserving the children ordering.
// The start node itself heads the list (the paper's n factors — 6, 31,
// 156 — count it).
func Closure1N(b Backend, start NodeID) ([]NodeID, error) {
	var out []NodeID
	var walk func(id NodeID) error
	walk = func(id NodeID) error {
		out = append(out, id)
		children, err := b.Children(id)
		if err != nil {
			return err
		}
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return nil, err
	}
	return out, nil
}

// Closure1NAttSum (O11) sums the hundred attribute over the 1-N closure
// of start, returning the sum and the number of nodes visited.
func Closure1NAttSum(b Backend, start NodeID) (sum int64, visited int, err error) {
	var walk func(id NodeID) error
	walk = func(id NodeID) error {
		h, err := b.Hundred(id)
		if err != nil {
			return err
		}
		sum += int64(h)
		visited++
		children, err := b.Children(id)
		if err != nil {
			return err
		}
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return 0, 0, err
	}
	return sum, visited, nil
}

// Closure1NAttSet (O12) sets hundred := 99 − hundred on every node of
// the 1-N closure of start; running it twice restores the original
// values. It returns the number of nodes updated.
func Closure1NAttSet(b Backend, start NodeID) (updated int, err error) {
	var walk func(id NodeID) error
	walk = func(id NodeID) error {
		h, err := b.Hundred(id)
		if err != nil {
			return err
		}
		if err := b.SetHundred(id, int32(HundredRange-1)-h); err != nil {
			return err
		}
		updated++
		children, err := b.Children(id)
		if err != nil {
			return err
		}
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return 0, err
	}
	return updated, nil
}

// Closure1NPred (O13) returns the nodes reachable from start through
// the 1-N relationship, excluding — and terminating the recursion at —
// nodes whose million attribute lies in [x, x+9999].
func Closure1NPred(b Backend, start NodeID, x int32) ([]NodeID, error) {
	lo, hi := x, x+MillionWindow-1
	var out []NodeID
	var walk func(id NodeID) error
	walk = func(id NodeID) error {
		n, err := b.Node(id)
		if err != nil {
			return err
		}
		if n.Million >= lo && n.Million <= hi {
			return nil // excluded, and the subtree below is pruned
		}
		out = append(out, id)
		children, err := b.Children(id)
		if err != nil {
			return err
		}
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return nil, err
	}
	return out, nil
}

// ClosureMN (O14) lists every node reachable from start through the M-N
// relationship, pre-order. Shared sub-parts are listed once. Because
// clustering follows the 1-N hierarchy, the paper expects this to run
// slower than Closure1N when cold.
func ClosureMN(b Backend, start NodeID) ([]NodeID, error) {
	seen := map[NodeID]bool{}
	var out []NodeID
	var walk func(id NodeID) error
	walk = func(id NodeID) error {
		if seen[id] {
			return nil
		}
		seen[id] = true
		out = append(out, id)
		parts, err := b.Parts(id)
		if err != nil {
			return err
		}
		for _, p := range parts {
			if err := walk(p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return nil, err
	}
	return out, nil
}

// ClosureMNAtt (O15) lists the nodes reachable from start through the
// M-N attribute relationship to the given depth (25 at benchmark time).
// The relation has no terminating condition — every node has an
// outgoing reference — so the depth bound, plus cycle detection, ends
// the traversal. The start node is not part of the result.
func ClosureMNAtt(b Backend, start NodeID, depth int) ([]NodeID, error) {
	seen := map[NodeID]bool{start: true}
	var out []NodeID
	var walk func(id NodeID, left int) error
	walk = func(id NodeID, left int) error {
		if left == 0 {
			return nil
		}
		edges, err := b.RefsTo(id)
		if err != nil {
			return err
		}
		for _, e := range edges {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			out = append(out, e.To)
			if err := walk(e.To, left-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start, depth); err != nil {
		return nil, err
	}
	return out, nil
}

// NodeDist pairs a node with its distance from a closure's start node,
// measured by summing offsetTo along the path (O18).
type NodeDist struct {
	ID   NodeID
	Dist int64
}

// ClosureMNAttLinkSum (O18) returns the nodes reachable from start
// through the M-N attribute relationship to the given depth, each
// paired with its total distance from start (the sum of the offsetTo
// attributes along the path followed).
func ClosureMNAttLinkSum(b Backend, start NodeID, depth int) ([]NodeDist, error) {
	seen := map[NodeID]bool{start: true}
	var out []NodeDist
	var walk func(id NodeID, dist int64, left int) error
	walk = func(id NodeID, dist int64, left int) error {
		if left == 0 {
			return nil
		}
		edges, err := b.RefsTo(id)
		if err != nil {
			return err
		}
		for _, e := range edges {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			d := dist + int64(e.OffsetTo)
			out = append(out, NodeDist{e.To, d})
			if err := walk(e.To, d, left-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start, 0, depth); err != nil {
		return nil, err
	}
	return out, nil
}

// TextNodeEdit (O16) substitutes "version1" → "version-2" in a
// TextNode (forward), or back (reverse), retrieving and storing the
// node. It returns ErrNotFound-wrapped errors for wrong targets.
func TextNodeEdit(b Backend, id NodeID, forward bool) error {
	text, err := b.Text(id)
	if err != nil {
		return err
	}
	edited, changed := EditText(text, forward)
	if !changed {
		return fmt.Errorf("hyper: textNodeEdit: node %d has no %q to substitute", id, VersionWord)
	}
	return b.SetText(id, edited)
}

// FormNodeEdit (O17) inverts the given subrectangle (between 25×25 and
// 50×50 per the paper) of a FormNode's bitmap, retrieving and storing
// the node.
func FormNodeEdit(b Backend, id NodeID, r Rect) error {
	bm, err := b.Form(id)
	if err != nil {
		return err
	}
	bm.InvertRect(r)
	return b.SetForm(id, bm)
}

// EncodeNodeList serializes a closure result so it can be stored in the
// database (§6.5: "the list should be storable in the database").
func EncodeNodeList(ids []NodeID) []byte {
	out := make([]byte, 8*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(id))
	}
	return out
}

// DecodeNodeList parses EncodeNodeList's format.
func DecodeNodeList(data []byte) ([]NodeID, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("hyper: node list length %d not a multiple of 8", len(data))
	}
	out := make([]NodeID, len(data)/8)
	for i := range out {
		out[i] = NodeID(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// SaveNodeList stores a closure result under a name.
func SaveNodeList(b Backend, name string, ids []NodeID) error {
	return b.PutBlob("list/"+name, EncodeNodeList(ids))
}

// LoadNodeList retrieves a stored closure result.
func LoadNodeList(b Backend, name string) ([]NodeID, error) {
	data, err := b.GetBlob("list/" + name)
	if err != nil {
		return nil, err
	}
	return DecodeNodeList(data)
}
