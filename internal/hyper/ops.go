package hyper

import (
	"encoding/binary"
	"fmt"
)

// This file implements the benchmark's operation set (§6) against the
// Backend interface. Operation numbers follow the paper: O1–O18, with
// the 5A/5B and 7A/7B variants.
//
// All operations return references (NodeIDs), never copies of nodes,
// as §6 requires, and closure results can be stored in the database via
// SaveNodeList.

// NameLookup (O1) finds the node with the given uniqueId and returns
// its hundred attribute.
func NameLookup(b Backend, id NodeID) (int32, error) {
	return b.Hundred(id)
}

// NameOIDLookup (O2) returns the hundred attribute of the node with the
// given system object identifier.
func NameOIDLookup(b Backend, oid OID) (int32, error) {
	return b.HundredByOID(oid)
}

// RangeLookupHundred (O3) returns the set of nodes with hundred in
// [x, x+9] — 10% selectivity.
func RangeLookupHundred(b Backend, x int32) ([]NodeID, error) {
	return b.RangeHundred(x, x+HundredWindow-1)
}

// RangeLookupMillion (O4) returns the set of nodes with million in
// [x, x+9999] — 1% selectivity.
func RangeLookupMillion(b Backend, x int32) ([]NodeID, error) {
	return b.RangeMillion(x, x+MillionWindow-1)
}

// GroupLookup1N (O5A) returns the ordered children of a node.
func GroupLookup1N(b Backend, id NodeID) ([]NodeID, error) {
	return b.Children(id)
}

// GroupLookupMN (O5B) returns the parts of a node.
func GroupLookupMN(b Backend, id NodeID) ([]NodeID, error) {
	return b.Parts(id)
}

// projectEdges projects one endpoint out of an edge list. Empty edge
// lists (leaves, unreferenced nodes) are the common case on the test
// database, so they return nil instead of allocating an empty slice
// the caller immediately discards.
func projectEdges(edges []Edge, pick func(Edge) NodeID) []NodeID {
	if len(edges) == 0 {
		return nil
	}
	out := make([]NodeID, len(edges))
	for i, e := range edges {
		out[i] = pick(e)
	}
	return out
}

// GroupLookupMNAtt (O6) returns the node(s) referenced by a node
// through the M-N attribute relation refsTo.
func GroupLookupMNAtt(b Backend, id NodeID) ([]NodeID, error) {
	edges, err := b.RefsTo(id)
	if err != nil {
		return nil, err
	}
	return projectEdges(edges, func(e Edge) NodeID { return e.To }), nil
}

// RefLookup1N (O7A) returns a set containing the node's parent.
func RefLookup1N(b Backend, id NodeID) ([]NodeID, error) {
	parent, ok, err := b.Parent(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return []NodeID{parent}, nil
}

// RefLookupMN (O7B) returns the set of nodes this node is part of.
func RefLookupMN(b Backend, id NodeID) ([]NodeID, error) {
	return b.PartOf(id)
}

// RefLookupMNAtt (O8) returns the (possibly empty) set of nodes that
// reference the given node.
func RefLookupMNAtt(b Backend, id NodeID) ([]NodeID, error) {
	edges, err := b.RefsFrom(id)
	if err != nil {
		return nil, err
	}
	return projectEdges(edges, func(e Edge) NodeID { return e.From }), nil
}

// SeqScan (O9) visits the ten attribute of every node of the test
// structure (uniqueIds [first, last]) and returns the number of nodes
// visited. No result values are returned, per the specification — the
// attribute is retrieved into a sink to ensure node access.
func SeqScan(b Backend, first, last NodeID) (int, error) {
	count := 0
	var sink int32
	err := b.ScanTen(first, last, func(_ NodeID, ten int32) bool {
		sink = ten
		count++
		return true
	})
	_ = sink
	return count, err
}

// The closure operations below traverse the database one BFS frontier
// at a time through the batch API (hyper.ChildrenBatch etc.), so a
// BatchReader backend pays its per-call overhead — lock round, page
// lookup, network round trip — once per level instead of once per
// node. The paper mandates the *result* order (pre-order, children
// ordering preserved), not the *fetch* order, so each operation
// fetches level by level into a cache and then assembles the pre-order
// listing from the cache, byte-identical to a per-node depth-first
// walk.

// childrenLevels BFS-fetches the children list of every node reachable
// from start through the 1-N relationship, one batched call per level.
// levels[k][i] is the children of the i'th node of the level-k
// frontier; total is the exact closure size, used to preallocate
// results. No id → children map is needed: the 1-N hierarchy is a
// tree, and a pre-order walk visits each level's nodes in frontier
// (left-to-right) order, so per-level cursors recover every node's
// children list during assembly.
func childrenLevels(b Backend, start NodeID) (levels [][][]NodeID, total int, err error) {
	frontier := []NodeID{start}
	var pending func() error
	for len(frontier) > 0 {
		awaitFrontier(pending)
		lists, err := ChildrenBatch(b, frontier)
		if err != nil {
			return nil, 0, err
		}
		width := 0
		for _, l := range lists {
			width += len(l)
		}
		next := make([]NodeID, 0, width)
		for _, l := range lists {
			next = append(next, l...)
		}
		pending = kickFrontier(b, next)
		levels = append(levels, lists)
		total += len(frontier)
		frontier = next
	}
	return levels, total, nil
}

// Closure1N (O10) lists every node reachable from start through the
// 1-N relationship, in pre-order, preserving the children ordering.
// The start node itself heads the list (the paper's n factors — 6, 31,
// 156 — count it).
func Closure1N(b Backend, start NodeID) ([]NodeID, error) {
	levels, total, err := childrenLevels(b, start)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, 0, total)
	cursors := make([]int, len(levels))
	var emit func(level int, id NodeID)
	emit = func(level int, id NodeID) {
		out = append(out, id)
		kids := levels[level][cursors[level]]
		cursors[level]++
		for _, c := range kids {
			emit(level+1, c)
		}
	}
	emit(0, start)
	return out, nil
}

// Closure1NAttSum (O11) sums the hundred attribute over the 1-N closure
// of start, returning the sum and the number of nodes visited.
func Closure1NAttSum(b Backend, start NodeID) (sum int64, visited int, err error) {
	frontier := []NodeID{start}
	var pending func() error
	for len(frontier) > 0 {
		awaitFrontier(pending)
		hs, err := HundredBatch(b, frontier)
		if err != nil {
			return 0, 0, err
		}
		lists, err := ChildrenBatch(b, frontier)
		if err != nil {
			return 0, 0, err
		}
		var next []NodeID
		for _, l := range lists {
			next = append(next, l...)
		}
		// Kick the next level's fetch before summing this one.
		pending = kickFrontier(b, next)
		for i := range frontier {
			sum += int64(hs[i])
			visited++
		}
		frontier = next
	}
	return sum, visited, nil
}

// Closure1NAttSet (O12) sets hundred := 99 − hundred on every node of
// the 1-N closure of start; running it twice restores the original
// values. It returns the number of nodes updated.
func Closure1NAttSet(b Backend, start NodeID) (updated int, err error) {
	frontier := []NodeID{start}
	var pending func() error
	for len(frontier) > 0 {
		awaitFrontier(pending)
		hs, err := HundredBatch(b, frontier)
		if err != nil {
			return 0, err
		}
		lists, err := ChildrenBatch(b, frontier)
		if err != nil {
			return 0, err
		}
		var next []NodeID
		for _, l := range lists {
			next = append(next, l...)
		}
		// Kick the next level's fetch, then update this one while the
		// pages travel.
		pending = kickFrontier(b, next)
		for i, id := range frontier {
			if err := b.SetHundred(id, int32(HundredRange-1)-hs[i]); err != nil {
				awaitFrontier(pending)
				return 0, err
			}
			updated++
		}
		frontier = next
	}
	return updated, nil
}

// Closure1NPred (O13) returns the nodes reachable from start through
// the 1-N relationship, excluding — and terminating the recursion at —
// nodes whose million attribute lies in [x, x+9999].
func Closure1NPred(b Backend, start NodeID, x int32) ([]NodeID, error) {
	lo, hi := x, x+MillionWindow-1
	// BFS with per-level predicate filtering. flags[k][i] records
	// whether the i'th node of the level-k frontier passed; lists[k][j]
	// is the children of the j'th *kept* node. The next frontier holds
	// only kept nodes' children, so pruned subtrees are never fetched.
	var flags [][]bool
	var lists [][][]NodeID
	total := 0
	frontier := []NodeID{start}
	var pending func() error
	for len(frontier) > 0 {
		awaitFrontier(pending)
		nodes, err := NodesBatch(b, frontier)
		if err != nil {
			return nil, err
		}
		keep := make([]bool, len(frontier))
		kept := make([]NodeID, 0, len(frontier))
		for i, id := range frontier {
			if nodes[i].Million >= lo && nodes[i].Million <= hi {
				continue // excluded, and the subtree below is pruned
			}
			keep[i] = true
			kept = append(kept, id)
		}
		level, err := ChildrenBatch(b, kept)
		if err != nil {
			return nil, err
		}
		width := 0
		for _, l := range level {
			width += len(l)
		}
		next := make([]NodeID, 0, width)
		for _, l := range level {
			next = append(next, l...)
		}
		pending = kickFrontier(b, next)
		flags = append(flags, keep)
		lists = append(lists, level)
		total += len(kept)
		frontier = next
	}
	if total == 0 {
		return nil, nil
	}
	// Assemble pre-order: kept nodes of each level are visited in
	// frontier order, so one children cursor (kc) and one flag cursor
	// (fc) per level walk the BFS data in step with the DFS.
	out := make([]NodeID, 0, total)
	kc := make([]int, len(lists))
	fc := make([]int, len(flags))
	var emit func(level int, id NodeID)
	emit = func(level int, id NodeID) {
		out = append(out, id)
		kids := lists[level][kc[level]]
		kc[level]++
		for _, c := range kids {
			i := fc[level+1]
			fc[level+1]++
			if flags[level+1][i] {
				emit(level+1, c)
			}
		}
	}
	fc[0] = 1 // start's own flag, consumed here
	if !flags[0][0] {
		return nil, nil
	}
	emit(0, start)
	return out, nil
}

// ClosureMN (O14) lists every node reachable from start through the M-N
// relationship, pre-order. Shared sub-parts are listed once. Because
// clustering follows the 1-N hierarchy, the paper expects this to run
// slower than Closure1N when cold.
func ClosureMN(b Backend, start NodeID) ([]NodeID, error) {
	// One map assigns each reachable node a dense discovery index. The
	// BFS resolves every part reference to its index as it is fetched
	// and packs the lists into one flat arena (offs[i]..offs[i+1] bounds
	// node i's parts), so the replay below runs on plain slices with no
	// hashing at all. ids doubles as the BFS queue: each round's
	// frontier is the still-unfetched suffix of the discovery order.
	idx := map[NodeID]int32{start: 0}
	ids := []NodeID{start}
	offs := make([]int32, 1, 16)
	var arena []int32
	var pending func() error
	for fetched := 0; fetched < len(ids); {
		frontier := ids[fetched:]
		awaitFrontier(pending)
		pls, err := PartsBatch(b, frontier)
		if err != nil {
			return nil, err
		}
		fetched = len(ids)
		for _, pl := range pls {
			for _, p := range pl {
				j, ok := idx[p]
				if !ok {
					j = int32(len(ids))
					idx[p] = j
					ids = append(ids, p)
				}
				arena = append(arena, j)
			}
			offs = append(offs, int32(len(arena)))
		}
		pending = kickFrontier(b, ids[fetched:])
	}
	// Replay the depth-first walk from the cache: the BFS above visited
	// exactly the reachable set, so every parts list the walk needs is
	// present, and the emitted order matches a per-node DFS.
	out := make([]NodeID, 0, len(ids))
	visited := make([]bool, len(ids))
	var emit func(i int32)
	emit = func(i int32) {
		if visited[i] {
			return
		}
		visited[i] = true
		out = append(out, ids[i])
		for _, j := range arena[offs[i]:offs[i+1]] {
			emit(j)
		}
	}
	emit(0)
	return out, nil
}

// mnRef is a resolved association edge: the target's discovery index
// plus the offsetTo attribute O18 sums along the path.
type mnRef struct {
	to  int32
	off int32
}

// refsToClosure BFS-prefetches the outgoing edges of every node within
// depth−1 hops of start, one batched call per level. A depth-bounded
// DFS can only ever ask for the edges of a node it reached over a path
// of at most depth−1 edges, and such a node's BFS level (its shortest
// distance) is no larger, so the cache is complete for the replay.
// ids[i] is the i'th discovered node (start = 0); its edges live in
// arena[offs[i]:offs[i+1]], each resolved to the target's discovery
// index so the replay runs on plain slices with no hashing. ids
// doubles as the BFS queue. Nodes first seen on the last level have an
// index but no offs entry — the replay never dereferences them,
// because it stops one hop earlier.
func refsToClosure(b Backend, start NodeID, depth int) (ids []NodeID, offs []int32, arena []mnRef, err error) {
	idx := map[NodeID]int32{start: 0}
	ids = []NodeID{start}
	offs = make([]int32, 1, 16)
	fetched := 0
	var pending func() error
	for level := 0; level < depth && fetched < len(ids); level++ {
		frontier := ids[fetched:]
		awaitFrontier(pending)
		els, err := RefsToBatch(b, frontier)
		if err != nil {
			return nil, nil, nil, err
		}
		fetched = len(ids)
		for _, el := range els {
			for _, e := range el {
				j, ok := idx[e.To]
				if !ok {
					j = int32(len(ids))
					idx[e.To] = j
					ids = append(ids, e.To)
				}
				arena = append(arena, mnRef{to: j, off: e.OffsetTo})
			}
			offs = append(offs, int32(len(arena)))
		}
		if level+1 < depth {
			pending = kickFrontier(b, ids[fetched:])
			// The replay below needs no fetches, so a kick for the
			// level the loop is about to cut off would go to waste.
		}
	}
	awaitFrontier(pending)
	return ids, offs, arena, nil
}

// ClosureMNAtt (O15) lists the nodes reachable from start through the
// M-N attribute relationship to the given depth (25 at benchmark time).
// The relation has no terminating condition — every node has an
// outgoing reference — so the depth bound, plus cycle detection, ends
// the traversal. The start node is not part of the result.
func ClosureMNAtt(b Backend, start NodeID, depth int) ([]NodeID, error) {
	ids, offs, arena, err := refsToClosure(b, start, depth)
	if err != nil {
		return nil, err
	}
	bound := len(ids) - 1 // distinct nodes beyond start
	if bound == 0 {
		return nil, nil
	}
	// Replay the seed's depth-first walk from the cache. The walk order
	// decides which nodes the depth bound cuts off, so it must be the
	// DFS order, not the BFS fetch order.
	visited := make([]bool, len(ids))
	visited[0] = true
	out := make([]NodeID, 0, bound)
	var walk func(i int32, left int)
	walk = func(i int32, left int) {
		if left == 0 {
			return
		}
		for _, r := range arena[offs[i]:offs[i+1]] {
			if visited[r.to] {
				continue
			}
			visited[r.to] = true
			out = append(out, ids[r.to])
			walk(r.to, left-1)
		}
	}
	walk(0, depth)
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// NodeDist pairs a node with its distance from a closure's start node,
// measured by summing offsetTo along the path (O18).
type NodeDist struct {
	ID   NodeID
	Dist int64
}

// ClosureMNAttLinkSum (O18) returns the nodes reachable from start
// through the M-N attribute relationship to the given depth, each
// paired with its total distance from start (the sum of the offsetTo
// attributes along the path followed).
func ClosureMNAttLinkSum(b Backend, start NodeID, depth int) ([]NodeDist, error) {
	ids, offs, arena, err := refsToClosure(b, start, depth)
	if err != nil {
		return nil, err
	}
	bound := len(ids) - 1
	if bound == 0 {
		return nil, nil
	}
	visited := make([]bool, len(ids))
	visited[0] = true
	out := make([]NodeDist, 0, bound)
	var walk func(i int32, dist int64, left int)
	walk = func(i int32, dist int64, left int) {
		if left == 0 {
			return
		}
		for _, r := range arena[offs[i]:offs[i+1]] {
			if visited[r.to] {
				continue
			}
			visited[r.to] = true
			d := dist + int64(r.off)
			out = append(out, NodeDist{ids[r.to], d})
			walk(r.to, d, left-1)
		}
	}
	walk(0, 0, depth)
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// TextNodeEdit (O16) substitutes "version1" → "version-2" in a
// TextNode (forward), or back (reverse), retrieving and storing the
// node. It returns ErrNotFound-wrapped errors for wrong targets.
func TextNodeEdit(b Backend, id NodeID, forward bool) error {
	text, err := b.Text(id)
	if err != nil {
		return err
	}
	edited, changed := EditText(text, forward)
	if !changed {
		return fmt.Errorf("hyper: textNodeEdit: node %d has no %q to substitute", id, VersionWord)
	}
	return b.SetText(id, edited)
}

// FormNodeEdit (O17) inverts the given subrectangle (between 25×25 and
// 50×50 per the paper) of a FormNode's bitmap, retrieving and storing
// the node.
func FormNodeEdit(b Backend, id NodeID, r Rect) error {
	bm, err := b.Form(id)
	if err != nil {
		return err
	}
	bm.InvertRect(r)
	return b.SetForm(id, bm)
}

// EncodeNodeList serializes a closure result so it can be stored in the
// database (§6.5: "the list should be storable in the database").
func EncodeNodeList(ids []NodeID) []byte {
	out := make([]byte, 8*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(id))
	}
	return out
}

// DecodeNodeList parses EncodeNodeList's format.
func DecodeNodeList(data []byte) ([]NodeID, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("hyper: node list length %d not a multiple of 8", len(data))
	}
	out := make([]NodeID, len(data)/8)
	for i := range out {
		out[i] = NodeID(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// SaveNodeList stores a closure result under a name.
func SaveNodeList(b Backend, name string, ids []NodeID) error {
	return b.PutBlob("list/"+name, EncodeNodeList(ids))
}

// LoadNodeList retrieves a stored closure result.
func LoadNodeList(b Backend, name string) ([]NodeID, error) {
	data, err := b.GetBlob("list/" + name)
	if err != nil {
		return nil, err
	}
	return DecodeNodeList(data)
}
