package hyper

import "fmt"

// This file provides the uniform entry points for batched reads. Each
// helper dispatches to the backend's native BatchReader implementation
// when present and otherwise falls back to one single-item call per
// id, so the batched closure operations in ops.go run unchanged on any
// Backend.

// BatchError reports the first failing item of a batched read. It
// wraps the underlying per-item error, so errors.Is(err, ErrNotFound)
// keeps working across the batch boundary.
type BatchError struct {
	// Index is the position in the request slice of the item that
	// failed.
	Index int
	// Err is the underlying single-item error.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("hyper: batch item %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// batchFallback serves a batch with one single-item call per id,
// preserving the batch contract (item order, no-op on empty, first
// failure wrapped in *BatchError).
func batchFallback[T any](ids []NodeID, get func(NodeID) (T, error)) ([]T, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	out := make([]T, len(ids))
	for i, id := range ids {
		v, err := get(id)
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		out[i] = v
	}
	return out, nil
}

// NodesBatch returns the attributes of each listed node.
func NodesBatch(b Backend, ids []NodeID) ([]Node, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if br, ok := b.(BatchReader); ok {
		return br.NodesBatch(ids)
	}
	return batchFallback(ids, b.Node)
}

// HundredBatch returns the hundred attribute of each listed node.
func HundredBatch(b Backend, ids []NodeID) ([]int32, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if br, ok := b.(BatchReader); ok {
		return br.HundredBatch(ids)
	}
	return batchFallback(ids, b.Hundred)
}

// ChildrenBatch returns each listed node's ordered children.
func ChildrenBatch(b Backend, ids []NodeID) ([][]NodeID, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if br, ok := b.(BatchReader); ok {
		return br.ChildrenBatch(ids)
	}
	return batchFallback(ids, b.Children)
}

// PartsBatch returns each listed node's M-N parts.
func PartsBatch(b Backend, ids []NodeID) ([][]NodeID, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if br, ok := b.(BatchReader); ok {
		return br.PartsBatch(ids)
	}
	return batchFallback(ids, b.Parts)
}

// RefsToBatch returns each listed node's outgoing association edges.
func RefsToBatch(b Backend, ids []NodeID) ([][]Edge, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if br, ok := b.(BatchReader); ok {
		return br.RefsToBatch(ids)
	}
	return batchFallback(ids, b.RefsTo)
}

// kickFrontier starts warming the backend's caches with the next BFS
// frontier when the backend supports asynchronous prefetch, returning
// the wait function (nil when there is nothing to kick). The closure
// loops call it the moment a next frontier is known, so the fetch
// overlaps with the current level's computation.
func kickFrontier(b Backend, ids []NodeID) func() error {
	if len(ids) == 0 {
		return nil
	}
	if fp, ok := b.(FrontierPrefetcher); ok {
		return fp.PrefetchFrontier(ids)
	}
	return nil
}

// awaitFrontier settles a pending kickFrontier before the frontier is
// fetched for real. The prefetch is advisory, so its error is
// deliberately dropped: a page it failed to warm is simply fetched —
// and any real failure surfaced — by the synchronous batch read that
// follows.
func awaitFrontier(wait func() error) {
	if wait != nil {
		_ = wait()
	}
}
