package hyper

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGenTextShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		text := GenText(rng)
		words := strings.Split(text, " ")
		if len(words) < TextMinWords || len(words) > TextMaxWords {
			t.Fatalf("text has %d words", len(words))
		}
		if words[0] != VersionWord || words[len(words)/2] != VersionWord || words[len(words)-1] != VersionWord {
			t.Fatal("version1 markers misplaced")
		}
		for _, w := range words {
			if len(w) < WordMinLetter || len(w) > WordMaxLetter {
				t.Fatalf("word %q has bad length", w)
			}
			for _, c := range w {
				if (c < 'a' || c > 'z') && !strings.ContainsRune(VersionWord, c) {
					t.Fatalf("word %q has non-lowercase char", w)
				}
			}
		}
	}
}

func TestGenTextAverageSizeMatchesPaper(t *testing.T) {
	// ≈55 words × ≈6.5 bytes ≈ 360 bytes of content budgeted as "380
	// bytes per TextNode". Accept a generous band.
	rng := rand.New(rand.NewSource(2))
	total := 0
	const n = 500
	for i := 0; i < n; i++ {
		total += len(GenText(rng))
	}
	avg := total / n
	if avg < 250 || avg > 450 {
		t.Fatalf("average text size %d bytes, expected ≈360", avg)
	}
}

func TestEditTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		orig := GenText(rng)
		fwd, changed := EditText(orig, true)
		if !changed {
			t.Fatal("forward edit found nothing to change")
		}
		if strings.Contains(fwd, VersionWord+" ") || strings.HasSuffix(fwd, " "+VersionWord) {
			t.Fatal("forward edit left version1 markers")
		}
		if len(fwd) != len(orig)+3 {
			t.Fatalf("forward edit length %d -> %d (three markers, +1 char each)", len(orig), len(fwd))
		}
		back, changed := EditText(fwd, false)
		if !changed || back != orig {
			t.Fatal("backward edit did not restore the original")
		}
	}
}

func TestEditTextNoMarker(t *testing.T) {
	out, changed := EditText("plain words only", true)
	if changed || out != "plain words only" {
		t.Fatal("edit of marker-free text reported a change")
	}
}
