package hyper

import "errors"

// ErrNoSnapshots is returned by Snapshot on backends that cannot pin a
// committed version: the volatile image backend, and sessions over the
// page-server client (snapshots are a capability of the local store's
// version ring; a workstation reads a consistent view through its own
// cache and optimistic validation instead).
var ErrNoSnapshots = errors.New("hyper: backend does not support snapshots")

// CommitStats are a database's transaction counters. Fields a backend
// cannot observe from its seat are zero: a local store fills the flush
// and batching counters, a page-server session fills Conflicts from
// its optimistic-validation aborts, the image backend counts only
// Commits.
type CommitStats struct {
	// Commits is the number of transactions committed.
	Commits uint64
	// Conflicts is the number of commits rejected by optimistic
	// validation (the caller retried with fresh caches).
	Conflicts uint64
	// Flushes is the number of durable log flushes that served those
	// commits; Commits/Flushes is the group-commit amortization factor.
	Flushes uint64
	// GroupCommits is the number of flushes that carried more than one
	// transaction.
	GroupCommits uint64
	// GroupedTxns is the total number of transactions that shared a
	// flush with others.
	GroupedTxns uint64
	// MaxBatch is the largest number of transactions in one flush.
	MaxBatch uint64
}

// DB is the transaction-first surface a database handle presents: the
// twenty-operation Backend mapping plus the transaction control every
// realization supports. OpenOODB, OpenRelDB, OpenMemDB and DialServer
// all return it, so downstream code is written against one interface
// whether the pages live in a local store, behind a page server, or in
// a volatile image.
//
// The optional capabilities (BatchReader, FrontierPrefetcher,
// SchemaModifier, StatsReporter) remain discoverable by type
// assertion, exactly as on Backend.
type DB interface {
	Backend

	// Abort discards all uncommitted changes (rollback). Backends over
	// the page store realize it as a cache drop (no-steal buffering);
	// the image backend reloads its snapshot.
	Abort() error

	// Snapshot returns a read-only database pinned to the newest
	// committed version: its reads are stable while commits proceed on
	// the parent, until the pinned version ages out of the store's
	// version ring (reads then fail with the store's snapshot-too-old
	// error, and the caller re-snapshots). Mutations through a snapshot
	// fail. Closing a snapshot releases nothing and never disturbs the
	// parent. Backends without a version ring return ErrNoSnapshots.
	Snapshot() (DB, error)

	// CommitStats reports the database's transaction counters.
	CommitStats() CommitStats

	// CacheStats reports cache hits, misses and disk (or server) reads
	// — the cold/warm evidence of the measurement protocol. For the
	// image backend a miss is a whole-image reload.
	CacheStats() (hits, misses, diskReads uint64)
}
