package hyper

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBitmapIsWhite(t *testing.T) {
	bm := NewBitmap(100, 100)
	if bm.CountBlack() != 0 {
		t.Fatal("fresh bitmap not all white")
	}
}

func TestSetGet(t *testing.T) {
	bm := NewBitmap(37, 21) // deliberately not byte-aligned width
	bm.Set(36, 20, true)
	bm.Set(0, 0, true)
	if !bm.Get(36, 20) || !bm.Get(0, 0) || bm.Get(1, 0) {
		t.Fatal("pixel get/set broken")
	}
	bm.Set(0, 0, false)
	if bm.Get(0, 0) {
		t.Fatal("clear failed")
	}
}

func TestRowIsolation(t *testing.T) {
	// With a width that is not a multiple of 8, setting the last pixel
	// of a row must not bleed into the next row.
	bm := NewBitmap(9, 4)
	bm.Set(8, 1, true)
	for y := 0; y < 4; y++ {
		for x := 0; x < 9; x++ {
			want := x == 8 && y == 1
			if bm.Get(x, y) != want {
				t.Fatalf("pixel (%d,%d) = %v", x, y, !want)
			}
		}
	}
}

func TestInvertRectTwiceIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bm := NewBitmap(100+rng.Intn(60), 100+rng.Intn(60))
		// Pre-mark some random pixels.
		for i := 0; i < 50; i++ {
			bm.Set(rng.Intn(bm.W), rng.Intn(bm.H), true)
		}
		before := append([]byte(nil), EncodeBitmap(bm)...)
		r := Rect{X: rng.Intn(bm.W), Y: rng.Intn(bm.H), W: 25 + rng.Intn(26), H: 25 + rng.Intn(26)}
		bm.InvertRect(r)
		bm.InvertRect(r)
		after := EncodeBitmap(bm)
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertRectCounts(t *testing.T) {
	bm := NewBitmap(200, 200)
	bm.InvertRect(Rect{X: 10, Y: 10, W: 25, H: 50})
	if got := bm.CountBlack(); got != 25*50 {
		t.Fatalf("inverted %d pixels, want %d", got, 25*50)
	}
	// Overlapping invert flips back the intersection.
	bm.InvertRect(Rect{X: 10, Y: 10, W: 25, H: 25})
	if got := bm.CountBlack(); got != 25*25 {
		t.Fatalf("after overlap: %d, want %d", got, 25*25)
	}
}

func TestInvertRectClipped(t *testing.T) {
	bm := NewBitmap(100, 100)
	bm.InvertRect(Rect{X: 90, Y: 95, W: 50, H: 50})
	if got := bm.CountBlack(); got != 10*5 {
		t.Fatalf("clipped invert flipped %d, want %d", got, 50)
	}
	bm.InvertRect(Rect{X: -10, Y: -10, W: 20, H: 20})
	if got := bm.CountBlack(); got != 50+10*10 {
		t.Fatalf("negative-origin invert flipped to %d", got)
	}
}

func TestBitmapCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bm := NewBitmap(1+rng.Intn(400), 1+rng.Intn(400))
		for i := 0; i < 100; i++ {
			bm.Set(rng.Intn(bm.W), rng.Intn(bm.H), rng.Intn(2) == 0)
		}
		got, err := DecodeBitmap(EncodeBitmap(bm))
		if err != nil || got.W != bm.W || got.H != bm.H {
			return false
		}
		for y := 0; y < bm.H; y++ {
			for x := 0; x < bm.W; x++ {
				if got.Get(x, y) != bm.Get(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBitmapRejectsGarbage(t *testing.T) {
	if _, err := DecodeBitmap([]byte{1, 2}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := DecodeBitmap([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("zero-size bitmap accepted")
	}
	bm := NewBitmap(16, 16)
	enc := EncodeBitmap(bm)
	if _, err := DecodeBitmap(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated bitmap accepted")
	}
}

func TestBitmapAverageSizeMatchesPaper(t *testing.T) {
	// The paper budgets ≈7800 bytes per FormNode; the average of our
	// encoding over the uniform size distribution must be in that
	// ballpark (±25%).
	rng := rand.New(rand.NewSource(99))
	totalBytes := 0
	const n = 300
	for i := 0; i < n; i++ {
		w := BitmapMinSide + rng.Intn(BitmapMaxSide-BitmapMinSide+1)
		h := BitmapMinSide + rng.Intn(BitmapMaxSide-BitmapMinSide+1)
		totalBytes += len(EncodeBitmap(NewBitmap(w, h)))
	}
	avg := totalBytes / n
	if avg < 5800 || avg > 9800 {
		t.Fatalf("average FormNode size %d bytes, paper says ≈7800", avg)
	}
}
