package hyper

import "testing"

// FuzzDecodeBitmap: arbitrary bytes must never panic the bitmap
// decoder, and accepted bitmaps must round-trip.
func FuzzDecodeBitmap(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBitmap(NewBitmap(100, 100)))
	f.Add(EncodeBitmap(NewBitmap(1, 1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		bm, err := DecodeBitmap(data)
		if err != nil {
			return
		}
		re := EncodeBitmap(bm)
		if len(re) != len(data) {
			t.Fatalf("round trip changed size: %d -> %d", len(data), len(re))
		}
		// Pixel access over the whole surface must stay in bounds.
		for y := 0; y < bm.H; y += 7 {
			for x := 0; x < bm.W; x += 7 {
				bm.Get(x, y)
			}
		}
	})
}

// FuzzDecodeNodeList: stored closure results parse or error, never
// panic.
func FuzzDecodeNodeList(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeNodeList([]NodeID{1, 2, 3}))
	f.Add([]byte{1, 2, 3}) // not a multiple of 8
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := DecodeNodeList(data)
		if err != nil {
			return
		}
		re := EncodeNodeList(ids)
		if len(re) != len(data) {
			t.Fatal("node list round trip changed size")
		}
	})
}
