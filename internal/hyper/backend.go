package hyper

import "errors"

// OID is a backend-assigned object identifier, the "system-generated
// identifier" of operation O2 (nameOIDLookup). Backends without object
// identity (the relational mapping) may return ErrNoOIDs.
type OID uint64

// ErrNoOIDs is returned by backends that do not expose system object
// identifiers (O2 is then reported as not applicable, as the paper
// allows: "both kinds of lookup should be measured if applicable").
var ErrNoOIDs = errors.New("hyper: backend does not expose object identifiers")

// ErrNotFound is returned for lookups of nodes, blobs or edges that do
// not exist.
var ErrNotFound = errors.New("hyper: not found")

// ErrWrongKind is returned when a content operation targets a node of
// the wrong class (e.g. Text on a FormNode).
var ErrWrongKind = errors.New("hyper: wrong node kind")

// Backend is the mapping of the HyperModel conceptual schema onto one
// concrete database system. The twenty benchmark operations (ops.go)
// and the test-database generator (generate.go) are written against
// this interface; internal/backend provides the object-oriented,
// relational and in-memory realizations.
//
// Backends are not safe for concurrent use; the transaction layer and
// the page server serialize access.
type Backend interface {
	// Name identifies the mapping ("oodb", "reldb", "memdb", ...).
	Name() string

	// CreateNode stores an interior node. near, when non-zero, is a
	// physical placement hint: cluster the new node with near. Systems
	// that support clustering use it along the 1-N hierarchy (§5.2).
	CreateNode(n Node, near NodeID) error
	// CreateTextNode stores a TextNode leaf with its text content.
	CreateTextNode(n Node, text string, near NodeID) error
	// CreateFormNode stores a FormNode leaf with its bitmap content.
	CreateFormNode(n Node, bm Bitmap, near NodeID) error
	// AddChild appends child to parent's ordered children list (the
	// 1-N aggregation parent/children).
	AddChild(parent, child NodeID) error
	// AddPart relates part to whole (the M-N aggregation partOf/parts).
	AddPart(whole, part NodeID) error
	// AddRef stores one refTo/refFrom association with its offset
	// attributes.
	AddRef(e Edge) error

	// Node returns a node's attributes.
	Node(id NodeID) (Node, error)
	// Hundred returns just the hundred attribute (O1's payload).
	Hundred(id NodeID) (int32, error)
	// SetHundred updates the hundred attribute, maintaining indexes.
	SetHundred(id NodeID, v int32) error
	// OIDOf translates a uniqueId to the backend's object identifier.
	OIDOf(id NodeID) (OID, error)
	// HundredByOID is O2: attribute access through the object
	// identifier, bypassing the key index.
	HundredByOID(oid OID) (int32, error)

	// RangeHundred returns the nodes with lo <= hundred <= hi (O3).
	RangeHundred(lo, hi int32) ([]NodeID, error)
	// RangeMillion returns the nodes with lo <= million <= hi (O4).
	RangeMillion(lo, hi int32) ([]NodeID, error)

	// Children returns the ordered children of id (O5A). The returned
	// order must be insertion order.
	Children(id NodeID) ([]NodeID, error)
	// Parts returns the parts of id (O5B); order is unspecified.
	Parts(id NodeID) ([]NodeID, error)
	// RefsTo returns the edges leaving id (O6).
	RefsTo(id NodeID) ([]Edge, error)

	// Parent returns id's parent in the 1-N hierarchy (O7A); ok is
	// false for the root.
	Parent(id NodeID) (parent NodeID, ok bool, err error)
	// PartOf returns the wholes id is part of (O7B).
	PartOf(id NodeID) ([]NodeID, error)
	// RefsFrom returns the edges arriving at id (O8).
	RefsFrom(id NodeID) ([]Edge, error)

	// ScanTen visits the ten attribute of every node with uniqueId in
	// [first, last] (O9). The range replaces "all instances of Node":
	// the paper forbids using the class extension because the database
	// may hold other node structures.
	ScanTen(first, last NodeID, visit func(id NodeID, ten int32) bool) error

	// Text returns a TextNode's content.
	Text(id NodeID) (string, error)
	// SetText replaces a TextNode's content (O16).
	SetText(id NodeID, text string) error
	// Form returns a FormNode's bitmap.
	Form(id NodeID) (Bitmap, error)
	// SetForm replaces a FormNode's bitmap (O17).
	SetForm(id NodeID, bm Bitmap) error

	// PutBlob/GetBlob/DeleteBlob store uninterpreted named values in
	// the database. Closure results ("the list should be storable in
	// the database", §6.5), version chains and access-control lists
	// build on them.
	PutBlob(key string, data []byte) error
	GetBlob(key string) ([]byte, error)
	DeleteBlob(key string) error

	// Commit makes all changes durable (the protocol's step (c)).
	Commit() error
	// DropCaches empties every cache the backend controls, so the next
	// operation sequence runs cold (the protocol's step (e), "close the
	// database").
	DropCaches() error
	// Close commits and releases the backend.
	Close() error
}

// BatchReader is the optional batched-read capability. The closure
// operations (O10–O15, O18) traverse the database one BFS frontier at
// a time and hand every frontier to these methods in one call, so a
// backend that implements them can amortize per-call overheads across
// the whole frontier: memdb takes its mutex once per frontier, oodb
// fetches each data page once per frontier (and, over the page-server
// client, fetches all of a frontier's missing pages in a single framed
// round trip), reldb probes its B+tree tables in one sorted pass.
//
// Semantics mirror N single calls item-for-item: result i corresponds
// to ids[i] (children keep their insertion order), duplicates in ids
// are allowed, an empty batch is a no-op, and a missing node fails the
// whole batch with a *BatchError carrying the offending index and
// wrapping ErrNotFound. Backends without the interface are served by
// the generic per-item fallbacks in batch.go.
type BatchReader interface {
	// NodesBatch returns the attributes of each listed node.
	NodesBatch(ids []NodeID) ([]Node, error)
	// HundredBatch returns the hundred attribute of each listed node.
	HundredBatch(ids []NodeID) ([]int32, error)
	// ChildrenBatch returns each node's ordered children.
	ChildrenBatch(ids []NodeID) ([][]NodeID, error)
	// PartsBatch returns each node's M-N parts.
	PartsBatch(ids []NodeID) ([][]NodeID, error)
	// RefsToBatch returns each node's outgoing association edges.
	RefsToBatch(ids []NodeID) ([][]Edge, error)
}

// FrontierPrefetcher is the optional asynchronous warm-ahead
// capability. The closure operations hand the *next* BFS frontier to
// PrefetchFrontier as soon as they know it, then go on computing over
// the current level; a backend over the page-server client starts the
// next frontier's batched page fetch immediately, so the network round
// trip overlaps with the traversal's own work instead of serializing
// behind it.
//
// The kick is advisory: implementations warm caches, nothing more. The
// returned wait function blocks until the background fetch settles and
// reports its error; callers must invoke it before the next fetch of
// those nodes (and before the transaction commits or aborts), but may
// ignore the error — a failed prefetch only means the synchronous path
// pays the round trip itself.
type FrontierPrefetcher interface {
	PrefetchFrontier(ids []NodeID) (wait func() error)
}

// SchemaModifier is the optional dynamic-schema extension (R4, §6.8
// extension 1): add a class like DrawNode at runtime and attach new
// attributes to it.
type SchemaModifier interface {
	// AddClass registers a new node class under the given name and
	// returns its kind.
	AddClass(name string) (Kind, error)
	// Classes lists the registered dynamic classes.
	Classes() (map[string]Kind, error)
	// AddAttribute declares a new attribute on a class.
	AddAttribute(class Kind, attr string) error
	// SetAttr stores a dynamic attribute value on a node.
	SetAttr(id NodeID, attr string, v int64) error
	// Attr reads a dynamic attribute value from a node.
	Attr(id NodeID, attr string) (int64, bool, error)
}

// Aborter is the optional rollback extension: discard all uncommitted
// changes instead of committing them. Backends over the page store
// support it natively (no-steal buffering makes rollback a cache
// drop); the image backend realizes it by reloading the snapshot.
type Aborter interface {
	Abort() error
}

// StatsReporter is an optional diagnostic interface: backends that sit
// on the page store expose cache-level counters so the harness can show
// the cold/warm evidence (disk reads per run).
type StatsReporter interface {
	CacheStats() (hits, misses, diskReads uint64)
}
