package hyper

import (
	"fmt"
	"math/rand"
	"time"
)

// Order selects the creation order of the 1-N tree.
type Order int

const (
	// OrderDFS creates each subtree completely before its siblings,
	// which maximizes the effect of the clustering near-hint: children
	// are created while their parent's page still has room.
	OrderDFS Order = iota
	// OrderBFS creates the tree level by level; with sequential
	// placement this clusters by level instead of by subtree.
	OrderBFS
)

// GenConfig parameterizes test-database generation (§5.2).
type GenConfig struct {
	// LeafLevel is the level of the leaf nodes: the paper's three
	// database sizes are 4, 5 and 6 (781 / 3 906 / 19 531 nodes).
	// Smaller levels are allowed for tests.
	LeafLevel int
	// Seed drives the uniform random generator. Equal seeds produce
	// identical databases.
	Seed int64
	// Order is the creation order; OrderDFS is the default and the one
	// the clustering experiment relies on.
	Order Order
	// CommitEvery inserts a database commit after every n node
	// creations during the load (0 = commit only at phase ends).
	CommitEvery int
	// BaseID is the uniqueId of the structure's root (default 1).
	// Distinct bases let several independent test structures share one
	// database, which §6.4.1 explicitly allows ("the database should
	// be allowed to have other instances of class Node, e.g. a second
	// copy of the test-database"); operations on one structure must
	// not touch the other.
	BaseID NodeID
}

// GenTimings reports the database-creation measurements of §5.3
// ("Operations for Database Creation"): per-phase wall time, node and
// relationship counts, and the closing commit.
type GenTimings struct {
	InternalNodes time.Duration
	InternalCount int
	LeafNodes     time.Duration
	LeafCount     int
	ChildRels     time.Duration
	ChildRelCount int
	PartRels      time.Duration
	PartRelCount  int
	RefRels       time.Duration
	RefRelCount   int
	Commit        time.Duration
	Total         time.Duration
}

// Layout describes the generated structure so the benchmark driver can
// draw inputs ("a random node on level three", "a random text node").
// Everything is derived from the level-major uniqueId numbering; the
// schema and the operations never consult it.
type Layout struct {
	LeafLevel int
	Seed      int64
	// Base is the structure's root uniqueId (1 unless the structure
	// was generated with a BaseID offset to share the database).
	Base NodeID
}

// base returns the root id, defaulting the zero value to 1.
func (l Layout) base() NodeID {
	if l.Base == 0 {
		return 1
	}
	return l.Base
}

// Total returns the structure's node count.
func (l Layout) Total() int { return TotalNodes(l.LeafLevel) }

// FirstID and LastID bound the structure's uniqueIds (inclusive).
func (l Layout) FirstID() NodeID { return l.base() }

// LastID returns the largest uniqueId in the structure.
func (l Layout) LastID() NodeID { return l.base() + NodeID(l.Total()) - 1 }

// LevelIDs returns the structure's inclusive id range on one level.
func (l Layout) LevelIDs(level int) (first, last NodeID) {
	first, last = LevelIDs(level)
	return first + l.base() - 1, last + l.base() - 1
}

// LevelOf returns the level holding the given uniqueId, or -1 if the
// id is outside the structure.
func (l Layout) LevelOf(id NodeID) int {
	if id < l.FirstID() || id > l.LastID() {
		return -1
	}
	rel := id - l.base() + 1
	for lvl := 0; lvl <= l.LeafLevel; lvl++ {
		_, last := LevelIDs(lvl)
		if rel <= last {
			return lvl
		}
	}
	return -1
}

// RandomNode draws a uniform node from the whole structure.
func (l Layout) RandomNode(rng *rand.Rand) NodeID {
	return l.base() + NodeID(rng.Intn(l.Total()))
}

// RandomNonRoot draws a uniform node excluding the root.
func (l Layout) RandomNonRoot(rng *rand.Rand) NodeID {
	return l.base() + 1 + NodeID(rng.Intn(l.Total()-1))
}

// RandomInternal draws a uniform non-leaf node.
func (l Layout) RandomInternal(rng *rand.Rand) NodeID {
	return l.base() + NodeID(rng.Intn(TotalNodes(l.LeafLevel-1)))
}

// RandomAtLevel draws a uniform node from one level.
func (l Layout) RandomAtLevel(rng *rand.Rand, level int) NodeID {
	first, _ := l.LevelIDs(level)
	return first + NodeID(rng.Intn(NodesAtLevel(level)))
}

// ClosureStartLevel is the level closures start from: level 3 per §6.5
// (n = 6, 31, 156 for the three paper databases), clamped to one level
// above the leaves for miniature test databases.
func (l Layout) ClosureStartLevel() int {
	if l.LeafLevel-1 < 3 {
		return l.LeafLevel - 1
	}
	return 3
}

// RandomClosureStart draws a closure start node (level 3 in the paper's
// databases).
func (l Layout) RandomClosureStart(rng *rand.Rand) NodeID {
	return l.RandomAtLevel(rng, l.ClosureStartLevel())
}

// IsFormLeaf reports whether the leaf with the given zero-based leaf
// index is a FormNode: the last of every group of 125 leaves, which
// yields exactly the paper's counts (125 FormNodes and 15 500 TextNodes
// among the 15 625 leaves of the level-6 database).
func IsFormLeaf(leafIndex int) bool { return leafIndex%TextPerForm == TextPerForm-1 }

// RandomTextNode draws a uniform TextNode.
func (l Layout) RandomTextNode(rng *rand.Rand) NodeID {
	first, _ := l.LevelIDs(l.LeafLevel)
	for {
		j := rng.Intn(NodesAtLevel(l.LeafLevel))
		if !IsFormLeaf(j) {
			return first + NodeID(j)
		}
	}
}

// RandomFormNode draws a uniform FormNode. Databases smaller than 125
// leaves have none; ok reports availability.
func (l Layout) RandomFormNode(rng *rand.Rand) (NodeID, bool) {
	nForms := l.FormCount()
	if nForms == 0 {
		return 0, false
	}
	first, _ := l.LevelIDs(l.LeafLevel)
	j := rng.Intn(nForms)*TextPerForm + TextPerForm - 1
	return first + NodeID(j), true
}

// FormCount returns the number of FormNode leaves.
func (l Layout) FormCount() int { return NodesAtLevel(l.LeafLevel) / TextPerForm }

// nodeID computes the level-major uniqueId of the j-th node (0-based)
// on a level.
func nodeID(level, j int) NodeID { return FirstIDAtLevel(level) + NodeID(j) }

// nodeIDAt is nodeID shifted to the structure's base.
func (l Layout) nodeIDAt(level, j int) NodeID { return nodeID(level, j) + l.base() - 1 }

// Generate builds the test database of §5.2 into the backend:
//
//   - the 1-N tree with fan-out 5 down to cfg.LeafLevel, leaves being
//     TextNodes except every 126th, which is a FormNode;
//   - the M-N aggregation: every non-leaf node related to 5 uniformly
//     random nodes of the next level;
//   - the M-N association with attributes: every node referencing one
//     uniformly random node, offsets uniform in [0,10).
//
// All attribute values are uniform in their intervals. The timings of
// each phase (the §5.3 creation measurements) are returned.
func Generate(b Backend, cfg GenConfig) (Layout, *GenTimings, error) {
	if cfg.LeafLevel < 1 {
		return Layout{}, nil, fmt.Errorf("hyper: leaf level %d out of range", cfg.LeafLevel)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lay := Layout{LeafLevel: cfg.LeafLevel, Seed: cfg.Seed, Base: cfg.BaseID}
	if lay.Base == 0 {
		lay.Base = 1
	}
	tm := &GenTimings{}
	startAll := time.Now() //hyperlint:allow detrand -- build-timing metric, not on the data path

	sinceCommit := 0
	maybeCommit := func() error {
		sinceCommit++
		if cfg.CommitEvery > 0 && sinceCommit >= cfg.CommitEvery {
			sinceCommit = 0
			return b.Commit()
		}
		return nil
	}

	newNode := func(id NodeID, kind Kind) Node {
		return Node{
			ID:       id,
			Kind:     kind,
			Ten:      int32(rng.Intn(TenRange)),
			Hundred:  int32(rng.Intn(HundredRange)),
			Thousand: int32(rng.Intn(ThousandRange)),
			Million:  int32(rng.Intn(MillionRange)),
		}
	}

	createOne := func(level, j int, parent NodeID) error {
		id := lay.nodeIDAt(level, j)
		if level == cfg.LeafLevel {
			leafStart := time.Now() //hyperlint:allow detrand -- build-timing metric, not on the data path
			var err error
			if IsFormLeaf(j) {
				side := func() int { return BitmapMinSide + rng.Intn(BitmapMaxSide-BitmapMinSide+1) }
				err = b.CreateFormNode(newNode(id, KindForm), NewBitmap(side(), side()), parent)
			} else {
				err = b.CreateTextNode(newNode(id, KindText), GenText(rng), parent)
			}
			tm.LeafNodes += time.Since(leafStart) //hyperlint:allow detrand -- build-timing metric, not on the data path
			tm.LeafCount++
			if err != nil {
				return err
			}
		} else {
			intStart := time.Now() //hyperlint:allow detrand -- build-timing metric, not on the data path
			err := b.CreateNode(newNode(id, KindInternal), parent)
			tm.InternalNodes += time.Since(intStart) //hyperlint:allow detrand -- build-timing metric, not on the data path
			tm.InternalCount++
			if err != nil {
				return err
			}
		}
		if parent != 0 {
			relStart := time.Now() //hyperlint:allow detrand -- build-timing metric, not on the data path
			err := b.AddChild(parent, id)
			tm.ChildRels += time.Since(relStart) //hyperlint:allow detrand -- build-timing metric, not on the data path
			tm.ChildRelCount++
			if err != nil {
				return err
			}
		}
		return maybeCommit()
	}

	// Phase 1+2: nodes and 1-N relationships.
	switch cfg.Order {
	case OrderDFS:
		var walk func(level, j int, parent NodeID) error
		walk = func(level, j int, parent NodeID) error {
			if err := createOne(level, j, parent); err != nil {
				return err
			}
			if level == cfg.LeafLevel {
				return nil
			}
			id := lay.nodeIDAt(level, j)
			for c := 0; c < FanOut; c++ {
				if err := walk(level+1, j*FanOut+c, id); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(0, 0, 0); err != nil {
			return lay, nil, err
		}
	case OrderBFS:
		if err := createOne(0, 0, 0); err != nil {
			return lay, nil, err
		}
		for level := 1; level <= cfg.LeafLevel; level++ {
			for j := 0; j < NodesAtLevel(level); j++ {
				if err := createOne(level, j, lay.nodeIDAt(level-1, j/FanOut)); err != nil {
					return lay, nil, err
				}
			}
		}
	default:
		return lay, nil, fmt.Errorf("hyper: unknown creation order %d", cfg.Order)
	}
	if err := b.Commit(); err != nil {
		return lay, nil, err
	}

	// Phase 3: the M-N aggregation. Each non-leaf node gets 5 uniform
	// random parts from the next level (Figure 3).
	for level := 0; level < cfg.LeafLevel; level++ {
		for j := 0; j < NodesAtLevel(level); j++ {
			whole := lay.nodeIDAt(level, j)
			for c := 0; c < FanOut; c++ {
				part := lay.RandomAtLevel(rng, level+1)
				relStart := time.Now() //hyperlint:allow detrand -- build-timing metric, not on the data path
				err := b.AddPart(whole, part)
				tm.PartRels += time.Since(relStart) //hyperlint:allow detrand -- build-timing metric, not on the data path
				tm.PartRelCount++
				if err != nil {
					return lay, nil, err
				}
			}
			if err := maybeCommit(); err != nil {
				return lay, nil, err
			}
		}
	}
	if err := b.Commit(); err != nil {
		return lay, nil, err
	}

	// Phase 4: the M-N association with attributes. Each node, visited
	// once, references one uniform random node (Figure 4).
	total := lay.Total()
	for i := 0; i < total; i++ {
		e := Edge{
			From:       lay.FirstID() + NodeID(i),
			To:         lay.RandomNode(rng),
			OffsetFrom: int32(rng.Intn(10)),
			OffsetTo:   int32(rng.Intn(10)),
		}
		relStart := time.Now() //hyperlint:allow detrand -- build-timing metric, not on the data path
		err := b.AddRef(e)
		tm.RefRels += time.Since(relStart) //hyperlint:allow detrand -- build-timing metric, not on the data path
		tm.RefRelCount++
		if err != nil {
			return lay, nil, err
		}
		if err := maybeCommit(); err != nil {
			return lay, nil, err
		}
	}

	commitStart := time.Now() //hyperlint:allow detrand -- build-timing metric, not on the data path
	if err := b.Commit(); err != nil {
		return lay, nil, err
	}
	tm.Commit = time.Since(commitStart) //hyperlint:allow detrand -- build-timing metric, not on the data path
	tm.Total = time.Since(startAll)     //hyperlint:allow detrand -- build-timing metric, not on the data path
	return lay, tm, nil
}
