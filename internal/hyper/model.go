// Package hyper implements the HyperModel benchmark's conceptual level:
// the schema (Figure 1), the test-database generator (§5.2), and the
// twenty benchmark operations (§6) expressed against an abstract
// Backend so they can be mapped onto different database systems — the
// paper's stated methodology ("a high-level description which can be
// mapped into a realization on different database-systems").
package hyper

import "fmt"

// NodeID is the uniqueId attribute: a dense, unique numbering of the
// test database's nodes starting at 1. Zero is never a valid NodeID.
//
// Per §5.2, nothing in the schema or the operations may exploit the
// uniqueId to infer a node's position in the structure; only the
// benchmark driver (which generated the database) uses the numbering to
// draw inputs.
type NodeID uint64

// Kind is the node's class in the generalization hierarchy of Figure 1.
type Kind uint8

// Node classes. Additional classes (e.g. DrawNode, the R4 schema-
// modification exercise) are registered dynamically through the
// backend's catalog and receive kinds >= KindUser.
const (
	KindInternal Kind = iota // plain Node: interior of the hierarchy
	KindText                 // TextNode leaf
	KindForm                 // FormNode (bitmap) leaf
	KindUser                 // first dynamically-added class
)

func (k Kind) String() string {
	switch k {
	case KindInternal:
		return "Node"
	case KindText:
		return "TextNode"
	case KindForm:
		return "FormNode"
	default:
		return fmt.Sprintf("UserKind(%d)", uint8(k))
	}
}

// Node carries the attributes every node owns (Figure 1): the dense
// uniqueId plus the ten/hundred/thousand/million attributes drawn
// uniformly from [0,10), [0,100), [0,1000) and [0,1e6).
//
// The intervals are zero-based (the paper's prose says 1..max, but its
// own closure1NAttSet operation computes 99−hundred, which requires
// hundred ∈ [0,99]; see DESIGN.md §2).
type Node struct {
	ID       NodeID
	Kind     Kind
	Ten      int32
	Hundred  int32
	Thousand int32
	Million  int32
}

// Edge is one refTo/refFrom association (Figure 4): a directed link
// between two arbitrary nodes carrying the offsetFrom/offsetTo
// attributes (each uniform in [0,10)), usable as a weighted graph.
type Edge struct {
	From       NodeID
	To         NodeID
	OffsetFrom int32
	OffsetTo   int32
}

// Rect is a pixel-aligned rectangle inside a FormNode bitmap, used by
// the formNodeEdit operation (O17): invert the subrectangle at (X,Y)
// with the given width and height.
type Rect struct {
	X, Y, W, H int
}

// FanOut is the tree fan-out of the test database: every interior node
// has exactly five children (§5.2).
const FanOut = 5

// TextPerForm is the ratio of text leaves to form leaves: one FormNode
// per 125 TextNodes (§5.2).
const TextPerForm = 125

// NodesAtLevel returns the number of nodes on a single level of the 1-N
// hierarchy: 5^level.
func NodesAtLevel(level int) int {
	n := 1
	for i := 0; i < level; i++ {
		n *= FanOut
	}
	return n
}

// TotalNodes returns the number of nodes in a database whose leaves are
// on the given level: (5^(level+1) − 1) / 4. The paper's sizes: level 4
// → 781, level 5 → 3 906, level 6 → 19 531.
func TotalNodes(leafLevel int) int {
	return (NodesAtLevel(leafLevel+1) - 1) / (FanOut - 1)
}

// FirstIDAtLevel returns the uniqueId of the first node on the given
// level under the generator's level-major numbering (level 0 is the
// root, ID 1).
func FirstIDAtLevel(level int) NodeID {
	if level == 0 {
		return 1
	}
	return NodeID(TotalNodes(level-1) + 1)
}

// LevelIDs returns the inclusive uniqueId range [first, last] of the
// nodes on the given level.
func LevelIDs(level int) (first, last NodeID) {
	first = FirstIDAtLevel(level)
	last = first + NodeID(NodesAtLevel(level)) - 1
	return first, last
}

// ClosureSize returns the number of nodes in a full 1-N subtree rooted
// at startLevel in a database with leaves on leafLevel — the paper's
// per-operation n factors: 6 for level 4, 31 for level 5, 156 for
// level 6 (closures start on level 3).
func ClosureSize(startLevel, leafLevel int) int {
	return TotalNodes(leafLevel - startLevel)
}

// Attribute intervals.
const (
	TenRange      = 10
	HundredRange  = 100
	ThousandRange = 1000
	MillionRange  = 1000000
)

// Range-lookup selectivity windows (§6.2): the hundred window covers
// 10 values (10% selectivity), the million window 10 000 values (1%).
const (
	HundredWindow = 10
	MillionWindow = 10000
)

// Bitmap dimension bounds (§5.1): form nodes are white bitmaps with
// each side uniform in [100,400].
const (
	BitmapMinSide = 100
	BitmapMaxSide = 400
)

// Text generation bounds (§5.1): 10–100 words of 1–10 lowercase
// letters; the first, middle and last words are "version1".
const (
	TextMinWords  = 10
	TextMaxWords  = 100
	WordMinLetter = 1
	WordMaxLetter = 10
)

// The version marker substituted by textNodeEdit (O16).
const (
	VersionWord     = "version1"
	VersionWordEdit = "version-2"
)
