package hyper

import (
	"math/rand"
	"strings"
)

// GenText produces a TextNode's initial content (§5.1): 10–100 words
// separated by single spaces, each word 1–10 random lowercase letters,
// with the first, middle and last words replaced by "version1". The
// average result is ≈300 bytes, matching the paper's "380 bytes per
// TextNode" including the node overhead.
func GenText(rng *rand.Rand) string {
	n := TextMinWords + rng.Intn(TextMaxWords-TextMinWords+1)
	words := make([]string, n)
	for i := range words {
		wl := WordMinLetter + rng.Intn(WordMaxLetter-WordMinLetter+1)
		var sb strings.Builder
		for j := 0; j < wl; j++ {
			sb.WriteByte(byte('a' + rng.Intn(26)))
		}
		words[i] = sb.String()
	}
	words[0] = VersionWord
	words[n/2] = VersionWord
	words[n-1] = VersionWord
	return strings.Join(words, " ")
}

// EditText performs the textNodeEdit substitution (O16). Forward
// replaces every "version1" with "version-2" (one character longer);
// backward restores it. It reports whether any substitution happened.
func EditText(text string, forward bool) (string, bool) {
	from, to := VersionWord, VersionWordEdit
	if !forward {
		from, to = to, from
	}
	if !strings.Contains(text, from) {
		return text, false
	}
	return strings.ReplaceAll(text, from, to), true
}
