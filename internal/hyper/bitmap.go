package hyper

import (
	"encoding/binary"
	"fmt"
)

// Bitmap is a FormNode's content: a 1-bit-per-pixel image, initially
// all white (all zero bits), between 100×100 and 400×400 pixels. At one
// bit per pixel an average 250×250 bitmap is ≈7.8 kB, matching the
// paper's "7800 bytes per FormNode".
type Bitmap struct {
	W, H int
	bits []byte // row-major, rows padded to whole bytes
}

// NewBitmap returns an all-white (all zero) bitmap.
func NewBitmap(w, h int) Bitmap {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("hyper: invalid bitmap size %d×%d", w, h))
	}
	return Bitmap{W: w, H: h, bits: make([]byte, ((w+7)/8)*h)}
}

func (b Bitmap) rowBytes() int { return (b.W + 7) / 8 }

// Get reports the pixel at (x, y); true is black.
func (b Bitmap) Get(x, y int) bool {
	idx := y*b.rowBytes() + x/8
	return b.bits[idx]&(1<<(x%8)) != 0
}

// Set writes the pixel at (x, y).
func (b Bitmap) Set(x, y int, black bool) {
	idx := y*b.rowBytes() + x/8
	if black {
		b.bits[idx] |= 1 << (x % 8)
	} else {
		b.bits[idx] &^= 1 << (x % 8)
	}
}

// InvertRect inverts the pixels of r (clipped to the bitmap). This is
// the formNodeEdit operation's mutation (O17): invert a subrectangle
// between 25×25 and 50×50 pixels.
func (b Bitmap) InvertRect(r Rect) {
	x1, y1 := r.X, r.Y
	x2, y2 := r.X+r.W, r.Y+r.H
	if x1 < 0 {
		x1 = 0
	}
	if y1 < 0 {
		y1 = 0
	}
	if x2 > b.W {
		x2 = b.W
	}
	if y2 > b.H {
		y2 = b.H
	}
	for y := y1; y < y2; y++ {
		row := y * b.rowBytes()
		for x := x1; x < x2; x++ {
			b.bits[row+x/8] ^= 1 << (x % 8)
		}
	}
}

// CountBlack returns the number of black pixels (tests, invariants).
func (b Bitmap) CountBlack() int {
	n := 0
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				n++
			}
		}
	}
	return n
}

// EncodeBitmap serializes a bitmap: width u16, height u16, bits.
func EncodeBitmap(b Bitmap) []byte {
	out := make([]byte, 4+len(b.bits))
	binary.LittleEndian.PutUint16(out[0:2], uint16(b.W))
	binary.LittleEndian.PutUint16(out[2:4], uint16(b.H))
	copy(out[4:], b.bits)
	return out
}

// DecodeBitmap parses the EncodeBitmap format.
func DecodeBitmap(data []byte) (Bitmap, error) {
	if len(data) < 4 {
		return Bitmap{}, fmt.Errorf("hyper: bitmap too short (%d bytes)", len(data))
	}
	w := int(binary.LittleEndian.Uint16(data[0:2]))
	h := int(binary.LittleEndian.Uint16(data[2:4]))
	if w <= 0 || h <= 0 {
		return Bitmap{}, fmt.Errorf("hyper: bitmap has invalid size %d×%d", w, h)
	}
	want := ((w + 7) / 8) * h
	if len(data)-4 != want {
		return Bitmap{}, fmt.Errorf("hyper: bitmap size %d×%d needs %d bytes, have %d", w, h, want, len(data)-4)
	}
	return Bitmap{W: w, H: h, bits: append([]byte(nil), data[4:]...)}, nil
}
