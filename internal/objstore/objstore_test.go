package objstore

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

func openStore(t *testing.T, opts Options) (*Store, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	os, err := Open(st, 0, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	return os, st
}

func TestPutGetRoundTrip(t *testing.T) {
	os, _ := openStore(t, Options{})
	oid, err := os.Put([]byte("object body"), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	if oid == InvalidOID {
		t.Fatal("allocated the invalid OID")
	}
	got, err := os.Get(oid)
	if err != nil || string(got) != "object body" {
		t.Fatalf("get = %q %v", got, err)
	}
}

func TestOIDsAreMonotonic(t *testing.T) {
	os, _ := openStore(t, Options{})
	var last OID
	for i := 0; i < 100; i++ {
		oid, err := os.Put([]byte{byte(i)}, InvalidOID)
		if err != nil {
			t.Fatal(err)
		}
		if oid <= last {
			t.Fatalf("OID %d after %d", oid, last)
		}
		last = oid
	}
}

func TestGetMissing(t *testing.T) {
	os, _ := openStore(t, Options{})
	if _, err := os.Get(12345); err == nil {
		t.Fatal("get of unknown OID succeeded")
	}
	ok, err := os.Exists(12345)
	if err != nil || ok {
		t.Fatalf("exists = %v %v", ok, err)
	}
}

func TestLargeObjectOverflow(t *testing.T) {
	os, _ := openStore(t, Options{})
	// A 400×400 bitmap like the paper's largest FormNode: 20 kB.
	big := make([]byte, 20000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	oid, err := os.Put(big, InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large object corrupted")
	}
}

func TestUpdateInPlacePreservesOID(t *testing.T) {
	os, _ := openStore(t, Options{})
	oid, err := os.Put([]byte("version1 text"), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Update(oid, []byte("version-2 text")); err != nil {
		t.Fatal(err)
	}
	got, err := os.Get(oid)
	if err != nil || string(got) != "version-2 text" {
		t.Fatalf("after update: %q %v", got, err)
	}
}

func TestUpdateGrowAcrossOverflowBoundary(t *testing.T) {
	os, _ := openStore(t, Options{})
	oid, err := os.Put([]byte("small"), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("B"), 30000)
	if err := os.Update(oid, big); err != nil {
		t.Fatal(err)
	}
	got, err := os.Get(oid)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatal("grow to overflow failed")
	}
	// And shrink back.
	if err := os.Update(oid, []byte("tiny again")); err != nil {
		t.Fatal(err)
	}
	got, err = os.Get(oid)
	if err != nil || string(got) != "tiny again" {
		t.Fatalf("shrink back: %q %v", got, err)
	}
}

func TestDeleteFreesAndForgets(t *testing.T) {
	os, st := openStore(t, Options{})
	big := bytes.Repeat([]byte("D"), 25000)
	oid, err := os.Put(big, InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	pagesBefore := st.PageCount()
	if err := os.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Get(oid); err == nil {
		t.Fatal("deleted object readable")
	}
	// Re-inserting a same-size object must reuse freed chain pages, not
	// grow the file.
	if _, err := os.Put(big, InvalidOID); err != nil {
		t.Fatal(err)
	}
	if got := st.PageCount(); got > pagesBefore {
		t.Fatalf("file grew from %d to %d pages despite free list", pagesBefore, got)
	}
}

func TestClusteringPlacesNearParent(t *testing.T) {
	os, _ := openStore(t, Options{Clustering: true})
	parent, err := os.Put(bytes.Repeat([]byte("p"), 80), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave children of this parent with unrelated allocations;
	// near-hint must keep children on the parent's page anyway.
	for i := 0; i < 5; i++ {
		child, err := os.Put(bytes.Repeat([]byte("c"), 80), parent)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := os.Put(bytes.Repeat([]byte("x"), 80), InvalidOID); err != nil {
			t.Fatal(err)
		}
		same, err := os.SamePage(parent, child)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Fatalf("child %d not clustered with parent", i)
		}
	}
}

func TestClusteringDisabledIgnoresNear(t *testing.T) {
	os, _ := openStore(t, Options{Clustering: false})
	parent, err := os.Put(bytes.Repeat([]byte("p"), 1000), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the cursor page and move on so the parent's page has room
	// but is not the cursor.
	for i := 0; i < 20; i++ {
		if _, err := os.Put(bytes.Repeat([]byte("f"), 1000), InvalidOID); err != nil {
			t.Fatal(err)
		}
	}
	child, err := os.Put(bytes.Repeat([]byte("c"), 100), parent)
	if err != nil {
		t.Fatal(err)
	}
	same, err := os.SamePage(parent, child)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("near-hint honored with clustering disabled")
	}
}

func TestScanVisitsAllInOIDOrder(t *testing.T) {
	os, _ := openStore(t, Options{})
	want := map[OID][]byte{}
	for i := 0; i < 300; i++ {
		data := []byte{byte(i), byte(i >> 8)}
		oid, err := os.Put(data, InvalidOID)
		if err != nil {
			t.Fatal(err)
		}
		want[oid] = data
	}
	var lastOID OID
	n := 0
	err := os.Scan(func(oid OID, data []byte) (bool, error) {
		if oid <= lastOID {
			t.Fatalf("scan out of order: %d after %d", oid, lastOID)
		}
		lastOID = oid
		if !bytes.Equal(data, want[oid]) {
			t.Fatalf("oid %d data mismatch", oid)
		}
		n++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("scanned %d, want %d", n, len(want))
	}
	if c, _ := os.Count(); c != len(want) {
		t.Fatalf("count = %d", c)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	st, err := store.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	os1, err := Open(st, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oid, err := os1.Put([]byte("survives"), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	os2, err := Open(st2, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os2.Get(oid)
	if err != nil || string(got) != "survives" {
		t.Fatalf("after reopen: %q %v", got, err)
	}
	// OID allocation continues above the persisted objects.
	oid2, err := os2.Put([]byte("new"), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	if oid2 <= oid {
		t.Fatalf("OID %d reused after reopen (had %d)", oid2, oid)
	}
}

// TestQuickModel compares the object store against a map model under a
// random workload including large objects.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		st, err := store.Open(filepath.Join(t.TempDir(), "db"), nil)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		os, err := Open(st, 0, 1, Options{Clustering: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[OID][]byte{}
		var oids []OID
		randData := func() []byte {
			var n int
			if rng.Intn(10) == 0 {
				n = 4000 + rng.Intn(9000) // overflow-sized
			} else {
				n = rng.Intn(300)
			}
			d := make([]byte, n)
			rng.Read(d)
			return d
		}
		pick := func() (OID, bool) {
			if len(oids) == 0 {
				return 0, false
			}
			return oids[rng.Intn(len(oids))], true
		}
		for step := 0; step < 200; step++ {
			switch rng.Intn(6) {
			case 0, 1, 2: // put
				var near OID
				if o, ok := pick(); ok && rng.Intn(2) == 0 {
					near = o
				}
				d := randData()
				oid, err := os.Put(d, near)
				if err != nil {
					t.Fatal(err)
				}
				model[oid] = d
				oids = append(oids, oid)
			case 3: // update
				if oid, ok := pick(); ok {
					d := randData()
					if err := os.Update(oid, d); err != nil {
						t.Fatal(err)
					}
					model[oid] = d
				}
			case 4: // delete
				if len(oids) > 0 {
					i := rng.Intn(len(oids))
					oid := oids[i]
					oids = append(oids[:i], oids[i+1:]...)
					if err := os.Delete(oid); err != nil {
						t.Fatal(err)
					}
					delete(model, oid)
				}
			case 5: // get
				if oid, ok := pick(); ok {
					got, err := os.Get(oid)
					if err != nil || !bytes.Equal(got, model[oid]) {
						t.Errorf("seed %d step %d: get mismatch (%v)", seed, step, err)
						return false
					}
				}
			}
		}
		n := 0
		err = os.Scan(func(oid OID, data []byte) (bool, error) {
			want, ok := model[oid]
			if !ok || !bytes.Equal(data, want) {
				t.Errorf("seed %d: scan found wrong object %d", seed, oid)
				return false, nil
			}
			n++
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPageOfDiagnostics(t *testing.T) {
	os, _ := openStore(t, Options{})
	oid, err := os.Put([]byte("x"), InvalidOID)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := os.PageOf(oid)
	if err != nil || pg == page.Invalid {
		t.Fatalf("PageOf = %d %v", pg, err)
	}
}
