package objstore

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hypermodel/internal/storage/store"
)

func benchStore(b *testing.B, opts Options) *Store {
	b.Helper()
	st, err := store.Open(filepath.Join(b.TempDir(), "db"), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	os, err := Open(st, 0, 1, opts)
	if err != nil {
		b.Fatal(err)
	}
	return os
}

func BenchmarkPut100B(b *testing.B) {
	os := benchStore(b, Options{})
	data := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := os.Put(data, InvalidOID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutClusteredNear(b *testing.B) {
	os := benchStore(b, Options{Clustering: true})
	data := make([]byte, 100)
	anchor, err := os.Put(data, InvalidOID)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := os.Put(data, anchor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	os := benchStore(b, Options{})
	const n = 5000
	oids := make([]OID, n)
	data := make([]byte, 100)
	for i := range oids {
		oid, err := os.Put(data, InvalidOID)
		if err != nil {
			b.Fatal(err)
		}
		oids[i] = oid
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := os.Get(oids[rng.Intn(n)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateInPlace(b *testing.B) {
	os := benchStore(b, Options{})
	oid, err := os.Put(make([]byte, 200), InvalidOID)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		if err := os.Update(oid, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutLargeOverflow(b *testing.B) {
	os := benchStore(b, Options{})
	data := make([]byte, 20000) // a FormNode-sized object
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := os.Put(data, InvalidOID); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
}
