// Package objstore implements a persistent object store: byte-string
// objects identified by system-generated object identifiers (OIDs).
//
// This is the storage model of the object-oriented DBMSs the HyperModel
// benchmark was designed for (GemStone, Vbase): objects live in slotted
// data pages, an object table maps OID → (page, slot), and new objects
// can be placed *near* an existing object. The oodb backend uses the
// near-hint to cluster the 1-N aggregation hierarchy, which is exactly
// the clustering effect the paper predicts for closure1N vs closureMN
// (§5.2, §6.5) and which experiment E11 ablates.
//
// Objects larger than a page spill into a chain of overflow pages; the
// data page keeps a fixed-size stub.
package objstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"hypermodel/internal/btree"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/slotted"
	"hypermodel/internal/storage/store"
)

// OID identifies an object. OIDs are allocated monotonically from 1;
// zero is never a valid OID.
type OID uint64

// InvalidOID is the zero, never-allocated object identifier.
const InvalidOID OID = 0

// ErrNotFound is returned when an OID does not denote a live object.
var ErrNotFound = errors.New("objstore: object not found")

// Record stubs stored in slotted pages.
const (
	flagInline   = 0
	flagOverflow = 1

	overflowStubSize = 1 + 4 + 8 // flag, total length, first chain page
)

// maxInline is the largest object stored directly in a data page.
const maxInline = slotted.MaxRecord - 1 // minus the flag byte

// Overflow chain page payload: next page (u64), used bytes (u16), data.
const (
	ovfNextOff = 0
	ovfUsedOff = 8
	ovfDataOff = 10
	ovfChunk   = page.Size - page.HeaderSize - ovfDataOff
)

// Store is a persistent object store over a page Space.
type Store struct {
	sp         store.Space
	table      *btree.Tree // OID → RID (pageID u64, slot u16)
	metaPage   page.ID     // holds nextOID and the allocation cursor
	clustering bool
	reserve    int       // bytes kept free at Put time (fill factor)
	scatter    int       // ScatterWindow
	recent     []page.ID // ring of recent data pages (scatter mode)
	scatterRng *rand.Rand
}

// Options configure an object store.
type Options struct {
	// Clustering enables the near-hint: Put(data, near) tries to place
	// the new object on the same page as near. Disabled, all placement
	// is sequential (the E11 ablation).
	Clustering bool
	// FillFactor bounds how full a data page may be at Put time, in
	// [0.1, 1.0]; zero selects the default 0.75. The slack left behind
	// absorbs later object growth (relationship lists being appended)
	// without relocating records, which would otherwise undo
	// clustering. Updates ignore the factor: growth may consume the
	// slack completely.
	FillFactor float64
	// ScatterWindow, when positive, deliberately de-clusters placement:
	// each insert picks a random page among the last N data pages
	// instead of the current fill page. It models a store whose
	// placement ignores the aggregation hierarchy entirely (the paper's
	// "no clustering" case, where even creation order gives no
	// locality). Ignored when Clustering is true.
	ScatterWindow int
}

// objstore meta page payload layout.
const (
	metaNextOIDOff = 0 // uint64
	metaCursorOff  = 8 // uint64: current fill page for placements
)

// Open returns the object store persisted in the two given root slots
// (one for the object table, one for the store's meta page), creating
// it if the slots are unset.
func Open(sp store.Space, tableRootSlot, metaRootSlot int, opts Options) (*Store, error) {
	tbl, err := btree.Open(sp, tableRootSlot)
	if err != nil {
		return nil, err
	}
	ff := opts.FillFactor
	if ff == 0 {
		ff = 0.75
	}
	if ff < 0.1 {
		ff = 0.1
	}
	if ff > 1 {
		ff = 1
	}
	s := &Store{
		sp: sp, table: tbl, clustering: opts.Clustering,
		reserve: int((1 - ff) * float64(page.Size-page.HeaderSize)),
		scatter: opts.ScatterWindow,
	}
	if s.scatter > 0 {
		s.scatterRng = rand.New(rand.NewSource(int64(s.scatter)))
	}
	if id := sp.Root(metaRootSlot); id != page.Invalid {
		s.metaPage = id
		return s, nil
	}
	id, h, err := sp.Alloc(page.TypeObjTable)
	if err != nil {
		return nil, fmt.Errorf("objstore: create meta: %w", err)
	}
	pl := h.Page().Payload()
	binary.LittleEndian.PutUint64(pl[metaNextOIDOff:], 1)
	binary.LittleEndian.PutUint64(pl[metaCursorOff:], uint64(page.Invalid))
	h.Release()
	sp.SetRoot(metaRootSlot, id)
	s.metaPage = id
	return s, nil
}

// SetClustering toggles the near-hint at runtime (used by the E11
// ablation harness before loading).
func (s *Store) SetClustering(on bool) { s.clustering = on }

func (s *Store) meta() (store.Handle, []byte, error) {
	h, err := s.sp.Get(s.metaPage)
	if err != nil {
		return nil, nil, err
	}
	return h, h.Page().Payload(), nil
}

func (s *Store) nextOID() (OID, error) {
	h, pl, err := s.meta()
	if err != nil {
		return 0, err
	}
	defer h.Release()
	oid := binary.LittleEndian.Uint64(pl[metaNextOIDOff:])
	binary.LittleEndian.PutUint64(pl[metaNextOIDOff:], oid+1)
	h.MarkDirty()
	return OID(oid), nil
}

func (s *Store) cursor() (page.ID, error) {
	h, pl, err := s.meta()
	if err != nil {
		return page.Invalid, err
	}
	defer h.Release()
	return page.ID(binary.LittleEndian.Uint64(pl[metaCursorOff:])), nil
}

func (s *Store) setCursor(id page.ID) error {
	h, pl, err := s.meta()
	if err != nil {
		return err
	}
	defer h.Release()
	binary.LittleEndian.PutUint64(pl[metaCursorOff:], uint64(id))
	h.MarkDirty()
	return nil
}

// rid is an object's physical address.
type rid struct {
	pg   page.ID
	slot uint16
}

func ridValue(r rid) []byte {
	var b [10]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(r.pg))
	binary.LittleEndian.PutUint16(b[8:], r.slot)
	return b[:]
}

func ridFromValue(b []byte) rid {
	return rid{page.ID(binary.LittleEndian.Uint64(b[:8])), binary.LittleEndian.Uint16(b[8:])}
}

func oidKey(oid OID) []byte { return btree.U64Key(uint64(oid)) }

func (s *Store) lookup(oid OID) (rid, error) {
	v, ok, err := s.table.Get(oidKey(oid))
	if err != nil {
		return rid{}, err
	}
	if !ok {
		return rid{}, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	return ridFromValue(v), nil
}

// Put stores data as a new object and returns its OID. If near is a
// live OID and clustering is enabled, the store tries to co-locate the
// new object on near's data page.
func (s *Store) Put(data []byte, near OID) (OID, error) {
	oid, err := s.nextOID()
	if err != nil {
		return InvalidOID, err
	}
	r, err := s.place(data, near)
	if err != nil {
		return InvalidOID, err
	}
	if err := s.table.Put(oidKey(oid), ridValue(r)); err != nil {
		return InvalidOID, err
	}
	return oid, nil
}

// place writes the record (inline or overflow stub + chain) and returns
// its address.
func (s *Store) place(data []byte, near OID) (rid, error) {
	rec, err := s.buildRecord(data)
	if err != nil {
		return rid{}, err
	}
	// Near hint first; everything else shares placeRecord.
	if s.clustering && near != InvalidOID {
		if nr, err := s.lookup(near); err == nil {
			if r, ok, err := s.tryInsert(nr.pg, rec); err != nil {
				return rid{}, err
			} else if ok {
				return r, nil
			}
		}
	}
	return s.placeRecord(rec)
}

// placeRecord places an already-built record using the store's
// placement policy (scatter ring or sequential fill page, then a fresh
// page). Relocations during Update take the same path, so the policy
// governs the whole lifetime of a record.
func (s *Store) placeRecord(rec []byte) (rid, error) {
	if s.scatter > 0 {
		// Scatter mode: records go to random pages of a constantly
		// topped-up ring of open pages — never a shared fill page,
		// which would recreate the locality this mode exists to
		// destroy. Pages that no longer fit leave the ring.
		for len(s.recent) < s.scatter {
			id, h, err := s.sp.Alloc(page.TypeSlotted)
			if err != nil {
				return rid{}, err
			}
			h.Release()
			s.recent = append(s.recent, id)
		}
		for attempt := 0; len(s.recent) > 0 && attempt < 8; attempt++ {
			i := s.scatterRng.Intn(len(s.recent))
			r, ok, err := s.tryInsert(s.recent[i], rec)
			if err != nil {
				return rid{}, err
			}
			if ok {
				return r, nil
			}
			// Page full: drop it from the ring.
			s.recent[i] = s.recent[len(s.recent)-1]
			s.recent = s.recent[:len(s.recent)-1]
		}
	} else {
		// Sequential mode: the current fill page.
		cur, err := s.cursor()
		if err != nil {
			return rid{}, err
		}
		if cur != page.Invalid {
			if r, ok, err := s.tryInsert(cur, rec); err != nil {
				return rid{}, err
			} else if ok {
				return r, nil
			}
		}
	}
	// Fresh page, which becomes the fill page and joins the ring.
	id, h, err := s.sp.Alloc(page.TypeSlotted)
	if err != nil {
		return rid{}, err
	}
	sp := slotted.Wrap(h.Page())
	slot, ok := sp.Insert(rec)
	h.MarkDirty()
	h.Release()
	if !ok {
		return rid{}, errors.New("objstore: record does not fit an empty page")
	}
	if err := s.setCursor(id); err != nil {
		return rid{}, err
	}
	s.noteDataPage(id)
	return rid{id, uint16(slot)}, nil
}

// noteDataPage remembers an open data page for the scatter ring.
func (s *Store) noteDataPage(id page.ID) {
	if s.scatter <= 0 || len(s.recent) >= s.scatter {
		return
	}
	s.recent = append(s.recent, id)
}

func (s *Store) tryInsert(pg page.ID, rec []byte) (rid, bool, error) {
	h, err := s.sp.Get(pg)
	if err != nil {
		return rid{}, false, err
	}
	defer h.Release()
	if h.Page().Type() != page.TypeSlotted {
		return rid{}, false, nil
	}
	sp := slotted.Wrap(h.Page())
	if !sp.FreeForReserve(len(rec), s.reserve) {
		return rid{}, false, nil
	}
	slot, ok := sp.Insert(rec)
	if !ok {
		return rid{}, false, nil
	}
	h.MarkDirty()
	return rid{pg, uint16(slot)}, true, nil
}

// buildRecord returns the record bytes: inline payload or an overflow
// stub with the chain already written.
func (s *Store) buildRecord(data []byte) ([]byte, error) {
	if len(data) <= maxInline {
		rec := make([]byte, 1+len(data))
		rec[0] = flagInline
		copy(rec[1:], data)
		return rec, nil
	}
	first, err := s.writeChain(data)
	if err != nil {
		return nil, err
	}
	rec := make([]byte, overflowStubSize)
	rec[0] = flagOverflow
	binary.LittleEndian.PutUint32(rec[1:], uint32(len(data)))
	binary.LittleEndian.PutUint64(rec[5:], uint64(first))
	return rec, nil
}

func (s *Store) writeChain(data []byte) (page.ID, error) {
	first := page.Invalid
	var prev store.Handle
	var prevPl []byte
	for off := 0; off < len(data); off += ovfChunk {
		end := off + ovfChunk
		if end > len(data) {
			end = len(data)
		}
		id, h, err := s.sp.Alloc(page.TypeOverflow)
		if err != nil {
			if prev != nil {
				prev.Release()
			}
			return page.Invalid, err
		}
		pl := h.Page().Payload()
		binary.LittleEndian.PutUint64(pl[ovfNextOff:], uint64(page.Invalid))
		binary.LittleEndian.PutUint16(pl[ovfUsedOff:], uint16(end-off))
		copy(pl[ovfDataOff:], data[off:end])
		if prev != nil {
			binary.LittleEndian.PutUint64(prevPl[ovfNextOff:], uint64(id))
			prev.Release()
		} else {
			first = id
		}
		prev, prevPl = h, pl
	}
	if prev != nil {
		prev.Release()
	}
	return first, nil
}

func (s *Store) readChain(first page.ID, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	id := first
	for id != page.Invalid {
		h, err := s.sp.Get(id)
		if err != nil {
			return nil, err
		}
		pl := h.Page().Payload()
		used := int(binary.LittleEndian.Uint16(pl[ovfUsedOff:]))
		out = append(out, pl[ovfDataOff:ovfDataOff+used]...)
		next := page.ID(binary.LittleEndian.Uint64(pl[ovfNextOff:]))
		h.Release()
		id = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("objstore: overflow chain length %d, stub says %d", len(out), total)
	}
	return out, nil
}

func (s *Store) freeChain(first page.ID) error {
	id := first
	for id != page.Invalid {
		h, err := s.sp.Get(id)
		if err != nil {
			return err
		}
		next := page.ID(binary.LittleEndian.Uint64(h.Page().Payload()[ovfNextOff:]))
		h.Release()
		if err := s.sp.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// Get returns a copy of the object's bytes.
func (s *Store) Get(oid OID) ([]byte, error) {
	r, err := s.lookup(oid)
	if err != nil {
		return nil, err
	}
	return s.read(r)
}

func (s *Store) read(r rid) ([]byte, error) {
	h, err := s.sp.Get(r.pg)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	rec, ok := slotted.Wrap(h.Page()).Get(int(r.slot))
	if !ok {
		return nil, fmt.Errorf("%w: stale address %d/%d", ErrNotFound, r.pg, r.slot)
	}
	switch rec[0] {
	case flagInline:
		return append([]byte(nil), rec[1:]...), nil
	case flagOverflow:
		total := int(binary.LittleEndian.Uint32(rec[1:]))
		first := page.ID(binary.LittleEndian.Uint64(rec[5:]))
		return s.readChain(first, total)
	default:
		return nil, fmt.Errorf("objstore: corrupt record flag %d", rec[0])
	}
}

// Update replaces the object's bytes, preserving its OID. The object
// stays on its page when the new value fits there; otherwise it is
// relocated and the object table updated.
func (s *Store) Update(oid OID, data []byte) error {
	r, err := s.lookup(oid)
	if err != nil {
		return err
	}
	h, err := s.sp.Get(r.pg)
	if err != nil {
		return err
	}
	sp := slotted.Wrap(h.Page())
	old, ok := sp.Get(int(r.slot))
	if !ok {
		h.Release()
		return fmt.Errorf("%w: stale address for oid %d", ErrNotFound, oid)
	}
	// Free a previous overflow chain if any; we rewrite from scratch.
	if old[0] == flagOverflow {
		first := page.ID(binary.LittleEndian.Uint64(old[5:]))
		h.Release()
		if err := s.freeChain(first); err != nil {
			return err
		}
		h, err = s.sp.Get(r.pg)
		if err != nil {
			return err
		}
		sp = slotted.Wrap(h.Page())
	}
	rec, err := s.buildRecord(data)
	if err != nil {
		h.Release()
		return err
	}
	if sp.Update(int(r.slot), rec) {
		h.MarkDirty()
		h.Release()
		return nil
	}
	// Does not fit in place: delete and re-place elsewhere.
	sp.Delete(int(r.slot))
	h.MarkDirty()
	h.Release()
	nr, err := s.placeRecord(rec)
	if err != nil {
		return err
	}
	return s.table.Put(oidKey(oid), ridValue(nr))
}

// Delete removes the object and frees any overflow chain. Data pages
// that become empty are returned to the free list.
func (s *Store) Delete(oid OID) error {
	r, err := s.lookup(oid)
	if err != nil {
		return err
	}
	h, err := s.sp.Get(r.pg)
	if err != nil {
		return err
	}
	sp := slotted.Wrap(h.Page())
	rec, ok := sp.Get(int(r.slot))
	if !ok {
		h.Release()
		return fmt.Errorf("%w: stale address for oid %d", ErrNotFound, oid)
	}
	var chain page.ID = page.Invalid
	if rec[0] == flagOverflow {
		chain = page.ID(binary.LittleEndian.Uint64(rec[5:]))
	}
	sp.Delete(int(r.slot))
	empty := sp.Count() == 0
	h.MarkDirty()
	h.Release()
	if chain != page.Invalid {
		if err := s.freeChain(chain); err != nil {
			return err
		}
	}
	if _, err := s.table.Delete(oidKey(oid)); err != nil {
		return err
	}
	if empty {
		// Never free the allocation cursor; the next Put may use it.
		if cur, err := s.cursor(); err != nil {
			return err
		} else if cur != r.pg {
			return s.sp.Free(r.pg)
		}
	}
	return nil
}

// Exists reports whether oid denotes a live object.
func (s *Store) Exists(oid OID) (bool, error) {
	_, ok, err := s.table.Get(oidKey(oid))
	return ok, err
}

// Scan visits every object in ascending OID order. The data slice is a
// copy and may be retained. The callback returns false to stop early.
func (s *Store) Scan(fn func(oid OID, data []byte) (bool, error)) error {
	return s.table.Scan(nil, nil, func(k, v []byte) (bool, error) {
		data, err := s.read(ridFromValue(v))
		if err != nil {
			return false, err
		}
		return fn(OID(btree.U64FromKey(k)), data)
	})
}

// Count reports the number of live objects (a full table scan).
func (s *Store) Count() (int, error) { return s.table.Count() }

// Sweep deletes every object for which live reports false — the
// garbage-collection half of R10 ("garbage collection of
// non-referenced objects should also be supported"). Orphans arise
// when a crash separates object creation from the index insert that
// would reference it. It returns the number of objects freed.
func (s *Store) Sweep(live func(OID) bool) (freed int, err error) {
	// Collect first: deleting while scanning the table would disturb
	// the B+tree iteration.
	var dead []OID
	err = s.table.Scan(nil, nil, func(k, _ []byte) (bool, error) {
		oid := OID(btree.U64FromKey(k))
		if !live(oid) {
			dead = append(dead, oid)
		}
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	for _, oid := range dead {
		if err := s.Delete(oid); err != nil {
			return freed, err
		}
		freed++
	}
	return freed, nil
}

// SamePage reports whether two objects currently share a data page
// (used by clustering tests and diagnostics).
func (s *Store) SamePage(a, b OID) (bool, error) {
	ra, err := s.lookup(a)
	if err != nil {
		return false, err
	}
	rb, err := s.lookup(b)
	if err != nil {
		return false, err
	}
	return ra.pg == rb.pg, nil
}

// PageOf returns the data page currently holding oid's record
// (diagnostics; the address changes if the object is relocated).
func (s *Store) PageOf(oid OID) (page.ID, error) {
	r, err := s.lookup(oid)
	if err != nil {
		return page.Invalid, err
	}
	return r.pg, nil
}
