package objstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/slotted"
	"hypermodel/internal/storage/store"
)

// Prefetcher is the optional bulk-fetch capability of a page Space. A
// Space backed by a page server implements it by requesting all listed
// pages in one framed round trip; Prefetch only warms the cache, so
// implementations may ignore pages that are already resident.
type Prefetcher interface {
	Prefetch(ids []page.ID) error
}

// AsyncPrefetcher is the optional asynchronous bulk-fetch capability
// of a page Space: PrefetchAsync starts warming the cache and returns
// immediately, so the fetch overlaps with the caller's computation.
// The returned wait function blocks until the fetch settles and
// reports its error; it must be called before the transaction commits
// or aborts.
type AsyncPrefetcher interface {
	PrefetchAsync(ids []page.ID) (wait func() error)
}

// PrefetchOIDs starts warming the cache with every listed object's
// data page, without blocking on the fetch. It returns nil when the
// Space cannot fetch asynchronously (the caller simply proceeds to its
// synchronous reads). Only the objects' primary data pages are warmed
// — overflow chains reveal themselves one hop at a time and are left
// to GetBatch's lockstep walk.
func (s *Store) PrefetchOIDs(oids []OID) (wait func() error) {
	ap, ok := s.sp.(AsyncPrefetcher)
	if !ok || len(oids) == 0 {
		return nil
	}
	distinct := make([]page.ID, 0, len(oids))
	seen := make(map[page.ID]bool, len(oids))
	for _, oid := range oids {
		r, err := s.lookup(oid)
		if err != nil {
			continue // advisory: the synchronous read will surface it
		}
		if !seen[r.pg] {
			seen[r.pg] = true
			distinct = append(distinct, r.pg)
		}
	}
	if len(distinct) == 0 {
		return nil
	}
	return ap.PrefetchAsync(distinct)
}

// GetBatch returns a copy of each listed object's bytes, out[i] for
// oids[i]. Records are visited grouped by data page so every page is
// fetched and pinned once per batch regardless of how many objects it
// holds, and when the underlying Space supports Prefetch, all of a
// batch's pages are requested in bulk before any is read. Overflow
// chains are walked in lockstep — one prefetch per chain generation —
// so even spilled objects cost one round trip per chain hop for the
// whole batch, not per object.
func (s *Store) GetBatch(oids []OID) ([][]byte, error) {
	if len(oids) == 0 {
		return nil, nil
	}
	rids := make([]rid, len(oids))
	for i, oid := range oids {
		r, err := s.lookup(oid)
		if err != nil {
			return nil, fmt.Errorf("objstore: batch item %d: %w", i, err)
		}
		rids[i] = r
	}
	order := make([]int, len(oids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := rids[order[a]], rids[order[b]]
		if ra.pg != rb.pg {
			return ra.pg < rb.pg
		}
		return ra.slot < rb.slot
	})
	if pf, ok := s.sp.(Prefetcher); ok {
		distinct := make([]page.ID, 0, len(order))
		for _, i := range order {
			if n := len(distinct); n == 0 || distinct[n-1] != rids[i].pg {
				distinct = append(distinct, rids[i].pg)
			}
		}
		if err := pf.Prefetch(distinct); err != nil {
			return nil, err
		}
	}
	// Single page-grouped pass over the stubs, holding one page at a
	// time. Overflow records are only noted here; their chains resolve
	// below once every stub has been seen.
	type chainState struct {
		idx   int // index into out
		next  page.ID
		total int
	}
	out := make([][]byte, len(oids))
	var chains []chainState
	var h store.Handle
	var cur page.ID
	for _, i := range order {
		r := rids[i]
		if h == nil || r.pg != cur {
			if h != nil {
				h.Release()
			}
			var err error
			h, err = s.sp.Get(r.pg)
			if err != nil {
				return nil, err
			}
			cur = r.pg
		}
		rec, ok := slotted.Wrap(h.Page()).Get(int(r.slot))
		if !ok {
			h.Release()
			return nil, fmt.Errorf("%w: stale address %d/%d", ErrNotFound, r.pg, r.slot)
		}
		switch rec[0] {
		case flagInline:
			out[i] = append([]byte(nil), rec[1:]...)
		case flagOverflow:
			total := int(binary.LittleEndian.Uint32(rec[1:]))
			first := page.ID(binary.LittleEndian.Uint64(rec[5:]))
			out[i] = make([]byte, 0, total)
			chains = append(chains, chainState{idx: i, next: first, total: total})
		default:
			h.Release()
			return nil, fmt.Errorf("objstore: corrupt record flag %d", rec[0])
		}
	}
	if h != nil {
		h.Release()
	}
	// Lockstep chain walk: each generation prefetches the next page of
	// every unfinished chain in one bulk request, then consumes them.
	pf, bulk := s.sp.(Prefetcher)
	for len(chains) > 0 {
		if bulk && len(chains) > 1 {
			gen := make([]page.ID, 0, len(chains))
			for _, c := range chains {
				gen = append(gen, c.next)
			}
			sort.Slice(gen, func(a, b int) bool { return gen[a] < gen[b] })
			if err := pf.Prefetch(gen); err != nil {
				return nil, err
			}
		}
		live := chains[:0]
		for _, c := range chains {
			h, err := s.sp.Get(c.next)
			if err != nil {
				return nil, err
			}
			pl := h.Page().Payload()
			used := int(binary.LittleEndian.Uint16(pl[ovfUsedOff:]))
			out[c.idx] = append(out[c.idx], pl[ovfDataOff:ovfDataOff+used]...)
			next := page.ID(binary.LittleEndian.Uint64(pl[ovfNextOff:]))
			h.Release()
			if next != page.Invalid {
				c.next = next
				live = append(live, c)
			} else if len(out[c.idx]) != c.total {
				return nil, fmt.Errorf("objstore: overflow chain length %d, stub says %d",
					len(out[c.idx]), c.total)
			}
		}
		chains = live
	}
	return out, nil
}
