package oodb

import (
	"bytes"
	"path/filepath"
	"testing"

	"hypermodel/internal/hyper"
	"hypermodel/internal/objstore"
)

// TestGarbageCollect creates orphan objects (as a crash between object
// creation and index insert would) and verifies GC removes exactly
// them.
func TestGarbageCollect(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "db"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutBlob("keep", []byte("live blob")); err != nil {
		t.Fatal(err)
	}
	live, err := db.objs.Count()
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate orphans: objects with no index entry.
	for i := 0; i < 7; i++ {
		if _, err := db.objs.Put(bytes.Repeat([]byte("junk"), 50), objstore.InvalidOID); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	freed, err := db.GarbageCollect()
	if err != nil {
		t.Fatal(err)
	}
	if freed != 7 {
		t.Fatalf("GC freed %d objects, want 7", freed)
	}
	after, err := db.objs.Count()
	if err != nil {
		t.Fatal(err)
	}
	if after != live {
		t.Fatalf("object count %d after GC, want %d", after, live)
	}
	// Every node and the blob survive.
	nodes, err := hyper.Closure1N(db, lay.FirstID())
	if err != nil || len(nodes) != lay.Total() {
		t.Fatalf("structure damaged by GC: %d nodes (%v)", len(nodes), err)
	}
	if _, err := db.GetBlob("keep"); err != nil {
		t.Fatalf("blob lost by GC: %v", err)
	}
	// A second pass finds nothing.
	freed, err = db.GarbageCollect()
	if err != nil || freed != 0 {
		t.Fatalf("second GC freed %d (%v)", freed, err)
	}
}

// TestBackupRestores verifies the R10 backup: the copy opens as a
// database with identical contents, independent of the original.
func TestBackupRestores(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "main.db"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	backupPath := filepath.Join(dir, "backup.db")
	if err := db.Backup(backupPath); err != nil {
		t.Fatal(err)
	}
	// Mutate the original after the backup.
	if err := db.SetHundred(3, 99); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	origVal, err := db.Hundred(3)
	if err != nil || origVal != 99 {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := Open(backupPath, DefaultOptions())
	if err != nil {
		t.Fatalf("open backup: %v", err)
	}
	defer restored.Close()
	nodes, err := hyper.Closure1N(restored, lay.FirstID())
	if err != nil || len(nodes) != lay.Total() {
		t.Fatalf("backup structure: %d nodes (%v)", len(nodes), err)
	}
	h, err := restored.Hundred(3)
	if err != nil {
		t.Fatal(err)
	}
	if h == 99 {
		t.Fatal("backup contains post-backup mutation")
	}
}

func TestBackupRejectsNonEmptyTarget(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "main.db"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "exists.db")
	if err := db.Backup(target); err != nil {
		t.Fatal(err)
	}
	if err := db.Backup(target); err == nil {
		t.Fatal("backup onto an existing database succeeded")
	}
}
