package oodb

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hypermodel/internal/backend/backendtest"
	"hypermodel/internal/hyper"
	"hypermodel/internal/storage/store"
)

func TestConformance(t *testing.T) {
	var lastPath string
	backendtest.Run(t, backendtest.Config{
		Open: func(t *testing.T) hyper.Backend {
			lastPath = filepath.Join(t.TempDir(), "oodb.db")
			db, err := Open(lastPath, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
		Reopen: func(t *testing.T, b hyper.Backend) hyper.Backend {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			db, err := Open(lastPath, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
	})
}

func TestConformanceUnclustered(t *testing.T) {
	backendtest.Run(t, backendtest.Config{
		Open: func(t *testing.T) hyper.Backend {
			db, err := Open(filepath.Join(t.TempDir(), "oodb.db"), Options{Clustering: false})
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
	})
}

// TestClusteringLocality checks the E11 premise: with DFS creation and
// the near-hint, the nodes of a 1-N subtree occupy far fewer distinct
// pages than without clustering.
func TestClusteringLocality(t *testing.T) {
	distinctPages := func(clustered bool, order hyper.Order) int {
		path := filepath.Join(t.TempDir(), "db")
		db, err := Open(path, Options{Clustering: clustered, Scatter: !clustered})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 4, Seed: 5, Order: order})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		start := lay.RandomClosureStart(rng)
		nodes, err := hyper.Closure1N(db, start)
		if err != nil {
			t.Fatal(err)
		}
		pages := map[uint64]bool{}
		for _, id := range nodes {
			oid, err := db.oidOf(id)
			if err != nil {
				t.Fatal(err)
			}
			pg, err := db.objs.PageOf(oid)
			if err != nil {
				t.Fatal(err)
			}
			pages[uint64(pg)] = true
		}
		return len(pages)
	}
	clustered := distinctPages(true, hyper.OrderDFS)
	scattered := distinctPages(false, hyper.OrderBFS)
	if clustered >= scattered {
		t.Fatalf("clustered closure touches %d pages, unclustered %d — clustering has no effect", clustered, scattered)
	}
	// A level-3 closure is 6 nodes; clustered they should sit on very
	// few pages (fill-factor slack spreads them slightly).
	if clustered > 3 {
		t.Fatalf("clustered 6-node closure touches %d pages", clustered)
	}
}

// TestColdRunHitsDisk checks the cold/warm mechanism end to end: after
// DropCaches the same closure issues disk reads; repeated warm it does
// not.
func TestColdRunHitsDisk(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "db"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	start := lay.RandomClosureStart(rng)

	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	_, _, r0 := db.CacheStats()
	if _, err := hyper.Closure1N(db, start); err != nil {
		t.Fatal(err)
	}
	_, _, r1 := db.CacheStats()
	if r1 == r0 {
		t.Fatal("cold closure issued no disk reads")
	}
	if _, err := hyper.Closure1N(db, start); err != nil {
		t.Fatal(err)
	}
	_, _, r2 := db.CacheStats()
	if r2 != r1 {
		t.Fatalf("warm closure issued %d disk reads", r2-r1)
	}
}

func TestObjectCodecRoundTrip(t *testing.T) {
	o := &object{
		node:      hyper.Node{ID: 42, Kind: hyper.KindText, Ten: 3, Hundred: 77, Thousand: 500, Million: 123456},
		parentOID: 9,
		parentID:  8,
		children:  []ref{{1, 10}, {2, 11}},
		parts:     []ref{{3, 12}},
		partOf:    []ref{{4, 13}, {5, 14}, {6, 15}},
		refsTo:    []edgeRef{{7, 16, 1, 2}},
		refsFrom:  []edgeRef{{8, 17, 3, 4}, {9, 18, 5, 6}},
		text:      []byte("hello version1 world"),
	}
	got, err := decodeObject(encodeObject(o))
	if err != nil {
		t.Fatal(err)
	}
	if got.node != o.node || got.parentOID != o.parentOID || got.parentID != o.parentID {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.children) != 2 || got.children[1] != o.children[1] {
		t.Fatalf("children mismatch: %+v", got.children)
	}
	if len(got.refsFrom) != 2 || got.refsFrom[0] != o.refsFrom[0] {
		t.Fatalf("refsFrom mismatch: %+v", got.refsFrom)
	}
	if string(got.text) != string(o.text) || got.form != nil {
		t.Fatal("content mismatch")
	}
}

func TestObjectCodecRejectsCorrupt(t *testing.T) {
	o := &object{node: hyper.Node{ID: 1}}
	enc := encodeObject(o)
	if _, err := decodeObject(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated object accepted")
	}
	if _, err := decodeObject(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := decodeObject(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

// TestCrashRecovery commits work, crashes the store, and verifies the
// database recovers to the committed state.
func TestCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	db, err := Open(path, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err := hyper.Generate(db, hyper.GenConfig{LeafLevel: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed update, then an uncommitted one, then crash.
	if err := db.SetHundred(5, 42); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetHundred(5, 77); err != nil {
		t.Fatal(err)
	}
	db.Store().(*store.Store).CrashForTesting()

	db2, err := Open(path, DefaultOptions())
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	defer db2.Close()
	h, err := db2.Hundred(5)
	if err != nil {
		t.Fatal(err)
	}
	if h != 42 {
		t.Fatalf("after crash recovery hundred = %d, want committed 42", h)
	}
	// Structure intact.
	nodes, err := hyper.Closure1N(db2, 1)
	if err != nil || len(nodes) != lay.Total() {
		t.Fatalf("closure after recovery: %d nodes (%v), want %d", len(nodes), err, lay.Total())
	}
}
